//! [`BatchRunner`] — many independent CCA queries over one shared,
//! immutable R-tree, executed across threads.
//!
//! Since PR 4 the runner is a thin adapter over the [`cca_serve`]
//! scheduler: queries are submitted as serving requests (each under its own
//! [`QueryContext`]) into the bounded priority queue and executed by a
//! worker pool — since PR 6 an owned [`ServingInstance`] (private and
//! per-batch in [`BatchRunner::run`]; shared, long-lived and
//! caller-provided in [`BatchRunner::run_on`], where batches coexist with
//! a network gateway's traffic and tenant stats accumulate across
//! batches). The public API is unchanged from the original
//! work-stealing runner — a batch admits every query (the queue is sized to
//! the batch, so nothing is shed) and blocks until all tickets resolve —
//! but the runner now inherits the serving semantics: per-query deadlines
//! and I/O budgets ([`BatchRunner::query_deadline`],
//! [`BatchRunner::query_io_budget`]) that turn runaway queries into
//! [`QueryResult::aborted`] partial results, and a batch-wide scheduling
//! priority ([`BatchRunner::priority`]).
//!
//! Matchings are bit-identical between parallel and sequential execution —
//! the algorithms never read buffer-pool state, only charge it — which
//! [`BatchRunner::run_sequential`] exists to demonstrate (and tests
//! enforce). Every query runs under its own [`QueryContext`], so per-query
//! [`AlgoStats::io`] reports exactly the pages that query touched even
//! while workers share the sharded buffer pool; the per-query fault counts
//! sum to the batch-aggregate delta on [`BatchReport::io`] — aborted
//! queries included, since a context is charged for precisely the faults it
//! caused before stopping.

use std::time::{Duration, Instant};

use cca_core::solver::{Solver, SolverConfig, SolverRegistry, UnknownSolver};
use cca_core::{AlgoStats, Matching};
use cca_flow::SspaCache;
use cca_serve::{OwnedTicket, Request, ServeConfig, ServingInstance};
use cca_storage::{AbortReason, IoStats, Priority, QueryContext, TenantId};

use crate::SpatialAssignment;

/// Executes batches of queries against one [`SpatialAssignment`].
pub struct BatchRunner<'a> {
    instance: &'a SpatialAssignment,
    registry: SolverRegistry,
    threads: usize,
    priority: Priority,
    tenant: TenantId,
    deadline: Option<Duration>,
    io_budget: Option<u64>,
}

impl<'a> BatchRunner<'a> {
    /// A runner over `instance` using the default registry and one worker
    /// per available hardware thread.
    pub fn new(instance: &'a SpatialAssignment) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        BatchRunner {
            instance,
            registry: SolverRegistry::with_defaults(),
            threads,
            priority: Priority::Normal,
            tenant: TenantId::DEFAULT,
            deadline: None,
            io_budget: None,
        }
    }

    /// Sets the worker-thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "at least one worker thread");
        self.threads = threads;
        self
    }

    /// Replaces the solver registry (e.g. to add custom solvers).
    pub fn registry(mut self, registry: SolverRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Sets the scheduling priority the batch's queries are submitted at
    /// (relevant when several batches share one instance's serving layer).
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Labels every query of the batch with `tenant`: each query's
    /// [`QueryContext`] carries the id, so its buffer-pool traffic and
    /// abort state are attributable to the tenant all the way down, and a
    /// serving deployment running several batches through one shared
    /// `cca_serve` scheduler gets tenant-fair dispatch and per-tenant
    /// quotas between them.
    pub fn tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Gives every query of the batch a deadline of `timeout` from its
    /// submission (queue wait included). Queries past the deadline abort
    /// cooperatively and come back as partial results with
    /// [`QueryResult::aborted`] set.
    pub fn query_deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Some(timeout);
        self
    }

    /// Caps every query of the batch at `faults` page faults. A query that
    /// exhausts its budget aborts with [`AbortReason::IoBudgetExceeded`]
    /// and its partial `stats.io.faults` equals the budget exactly.
    pub fn query_io_budget(mut self, faults: u64) -> Self {
        self.io_budget = Some(faults);
        self
    }

    /// Runs `queries` across the configured worker threads.
    ///
    /// Fails up front (before touching the instance) if any query names an
    /// unregistered solver.
    pub fn run(&self, queries: &[SolverConfig]) -> Result<BatchReport, UnknownSolver> {
        self.execute(queries, self.threads)
    }

    /// Runs `queries` one after another on a single worker — the reference
    /// semantics `run` must reproduce result-wise.
    pub fn run_sequential(&self, queries: &[SolverConfig]) -> Result<BatchReport, UnknownSolver> {
        self.execute(queries, 1)
    }

    /// The per-query context a batch query is submitted under.
    fn query_context(&self) -> QueryContext {
        let mut ctx = QueryContext::new()
            .with_priority(self.priority)
            .with_tenant(self.tenant);
        if let Some(faults) = self.io_budget {
            ctx = ctx.with_io_budget(faults);
        }
        if let Some(timeout) = self.deadline {
            ctx = ctx.with_timeout(timeout);
        }
        ctx
    }

    fn execute(
        &self,
        queries: &[SolverConfig],
        threads: usize,
    ) -> Result<BatchReport, UnknownSolver> {
        // Build every solver up front: any bad config fails the batch
        // before the instance is touched.
        let solvers: Vec<Box<dyn Solver>> = queries
            .iter()
            .map(|q| self.registry.build(q))
            .collect::<Result<_, _>>()?;
        let store = self.instance.tree().store();
        // One defined starting state per batch; queries then share the
        // warming cache, as concurrent traffic on a live instance would.
        store.clear_cache();
        let io_before = store.io_stats();
        let start = Instant::now();

        // One warm-start cache per batch: repeated/similar SSPA queries
        // resume from each other's verified final state instead of
        // re-deriving γ augmenting paths from scratch.
        let sspa_cache = SspaCache::new();
        let workers = threads.min(queries.len()).max(1);
        // The queue admits the whole batch, so nothing is shed and every
        // ticket resolves; streaming front-ends that want load shedding use
        // a shared [`ServingInstance`] (see `run_on`) with a smaller
        // capacity.
        let config = ServeConfig::default()
            .workers(workers)
            .queue_capacity(queries.len().max(1));
        let instance: ServingInstance<QueryResult> = ServingInstance::start(config);
        let results = self.submit_all(&instance, queries, &solvers, &sspa_cache, false);
        instance.shutdown();
        Ok(BatchReport {
            results,
            io: store.io_stats().since(&io_before),
            wall: start.elapsed(),
        })
    }

    /// Runs `queries` on a *shared* [`ServingInstance`] instead of a
    /// private per-batch pool — the cross-batch serving path: several
    /// sequential batches (and any concurrent submitters, e.g. a network
    /// gateway) share the instance's workers, queue capacity, tenant
    /// quotas and cumulative [`cca_serve::TenantStats`].
    ///
    /// Differences from [`BatchRunner::run`], which follow from sharing:
    /// the buffer pool is *not* cleared (a live instance's cache keeps its
    /// warmth across batches); shed submissions are retried with
    /// backpressure until admitted (the queue belongs to everyone, so the
    /// batch waits its turn rather than panicking); and
    /// [`BatchReport::io`] is the *sum of the batch's own per-query
    /// attributed I/O*, not a store-wide delta — concurrent traffic from
    /// other submitters must not pollute this batch's number.
    pub fn run_on(
        &self,
        instance: &ServingInstance<QueryResult>,
        queries: &[SolverConfig],
    ) -> Result<BatchReport, UnknownSolver> {
        let solvers: Vec<Box<dyn Solver>> = queries
            .iter()
            .map(|q| self.registry.build(q))
            .collect::<Result<_, _>>()?;
        let start = Instant::now();
        let sspa_cache = SspaCache::new();
        let results = self.submit_all(instance, queries, &solvers, &sspa_cache, true);
        let io = results
            .iter()
            .fold(IoStats::default(), |acc, r| acc + r.stats.io);
        Ok(BatchReport {
            results,
            io,
            wall: start.elapsed(),
        })
    }

    /// Submits every query through an instance scope (the closures borrow
    /// `self`, `queries` and `solvers` from this stack frame) and waits
    /// for all tickets. With `backpressure` a shed submission is retried
    /// until the shared queue admits it; without it admission is expected
    /// (the private batch queue is sized to the batch).
    fn submit_all(
        &self,
        instance: &ServingInstance<QueryResult>,
        queries: &[SolverConfig],
        solvers: &[Box<dyn Solver>],
        sspa_cache: &SspaCache,
        backpressure: bool,
    ) -> Vec<QueryResult> {
        instance.scope(|scope| {
            let tickets: Vec<OwnedTicket<QueryResult>> = queries
                .iter()
                .enumerate()
                .map(|(i, query)| {
                    let solver = &*solvers[i];
                    loop {
                        let request = Request::new(move |ctx: &QueryContext| {
                            self.run_one(i, query, solver, sspa_cache, ctx)
                        })
                        .context(self.query_context());
                        match scope.submit(request) {
                            Ok(ticket) => break ticket,
                            Err(rejected) if backpressure => {
                                // The shared queue is momentarily full (or
                                // this tenant's slots are): yield and
                                // re-offer — batch semantics are "run all",
                                // so shedding degrades to waiting.
                                let _ = rejected;
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            Err(rejected) => {
                                panic!("batch queue is sized to the batch: {rejected}")
                            }
                        }
                    }
                })
                .collect();
            tickets.into_iter().map(OwnedTicket::wait).collect()
        })
    }

    fn run_one(
        &self,
        index: usize,
        config: &SolverConfig,
        solver: &dyn Solver,
        sspa_cache: &SspaCache,
        ctx: &QueryContext,
    ) -> QueryResult {
        // The scheduler hands each query its own context: the store charges
        // it alongside its shard counters, so `stats.io` is this query's
        // own traffic even with other workers hammering the same pool — and
        // the context's deadline/budget/cancellation govern the run.
        let problem = self
            .instance
            .problem()
            .with_context(ctx)
            .with_sspa_cache(sspa_cache);
        let outcome = solver.run(&problem);
        let aborted = outcome.abort_reason();
        let (matching, stats) = outcome.into_parts();
        QueryResult {
            index,
            label: solver.label(),
            config: config.clone(),
            matching,
            stats,
            aborted,
        }
    }
}

/// One query's outcome within a batch.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Position of the query in the submitted batch.
    pub index: usize,
    /// The solver's figure label (`"IDA"`, `"CAN"`, …).
    pub label: String,
    /// The config the query was built from.
    pub config: SolverConfig,
    pub matching: Matching,
    /// Algorithm counters, CPU time, and this query's own buffer-pool
    /// traffic (attributed through its [`QueryContext`]).
    pub stats: AlgoStats,
    /// Why the query aborted (deadline / I/O budget / cancellation), or
    /// `None` when it ran to completion. Aborted queries carry their
    /// partial matching and exact partial I/O attribution.
    pub aborted: Option<AbortReason>,
}

/// The outcome of one batch: per-query results (in submission order) plus
/// batch-aggregate I/O and wall time.
pub struct BatchReport {
    pub results: Vec<QueryResult>,
    /// Buffer-pool traffic of the whole batch over the shared tree: the
    /// store-wide delta for a private-pool run ([`BatchRunner::run`]), or
    /// the sum of the batch's own per-query attributed I/O when the
    /// instance is shared ([`BatchRunner::run_on`]).
    pub io: IoStats,
    /// Wall-clock time of the batch (all workers).
    pub wall: Duration,
}

impl BatchReport {
    /// Sum of all matching costs.
    pub fn total_cost(&self) -> f64 {
        self.results.iter().map(|r| r.matching.cost()).sum()
    }

    /// Sum of per-query CPU time (exceeds `wall` when workers overlap).
    pub fn total_cpu(&self) -> Duration {
        self.results.iter().map(|r| r.stats.cpu_time).sum()
    }

    /// Number of queries that aborted (deadline / budget / cancellation).
    pub fn num_aborted(&self) -> usize {
        self.results.iter().filter(|r| r.aborted.is_some()).count()
    }

    /// Aggregate algorithm counters across the batch, with the batch-level
    /// I/O folded in.
    pub fn aggregate_stats(&self) -> AlgoStats {
        let mut agg = AlgoStats {
            io: self.io,
            ..Default::default()
        };
        for r in &self.results {
            agg.esub_edges += r.stats.esub_edges;
            agg.dijkstra_runs += r.stats.dijkstra_runs;
            agg.pua_runs += r.stats.pua_runs;
            agg.iterations += r.stats.iterations;
            agg.invalid_paths += r.stats.invalid_paths;
            agg.fast_phase_matches += r.stats.fast_phase_matches;
            agg.cpu_time += r.stats.cpu_time;
        }
        agg
    }
}
