//! [`BatchRunner`] — many independent CCA queries over one shared,
//! immutable R-tree, executed across threads.
//!
//! This is the first concrete step toward the serving scenario the roadmap
//! targets: one loaded instance answering a stream of assignment queries.
//! Workers pull query configs from an atomic cursor, build their solver
//! from a [`SolverRegistry`], and solve against the shared tree; the paged
//! store is thread-safe, so the buffer pool behaves like a DBMS buffer
//! cache shared by concurrent queries.
//!
//! Matchings are bit-identical between parallel and sequential execution —
//! the algorithms never read buffer-pool state, only charge it — which
//! [`BatchRunner::run_sequential`] exists to demonstrate (and tests
//! enforce). Every query runs under its own [`IoSession`], so per-query
//! [`AlgoStats::io`] reports exactly the pages that query touched even
//! while workers share the sharded buffer pool; the per-query fault counts
//! sum to the batch-aggregate delta on [`BatchReport::io`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use cca_core::solver::{Solver, SolverConfig, SolverRegistry, UnknownSolver};
use cca_core::{AlgoStats, Matching};
use cca_storage::{IoSession, IoStats};

use crate::SpatialAssignment;

/// Executes batches of queries against one [`SpatialAssignment`].
pub struct BatchRunner<'a> {
    instance: &'a SpatialAssignment,
    registry: SolverRegistry,
    threads: usize,
}

impl<'a> BatchRunner<'a> {
    /// A runner over `instance` using the default registry and one worker
    /// per available hardware thread.
    pub fn new(instance: &'a SpatialAssignment) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        BatchRunner {
            instance,
            registry: SolverRegistry::with_defaults(),
            threads,
        }
    }

    /// Sets the worker-thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "at least one worker thread");
        self.threads = threads;
        self
    }

    /// Replaces the solver registry (e.g. to add custom solvers).
    pub fn registry(mut self, registry: SolverRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Runs `queries` across the configured worker threads.
    ///
    /// Fails up front (before touching the instance) if any query names an
    /// unregistered solver.
    pub fn run(&self, queries: &[SolverConfig]) -> Result<BatchReport, UnknownSolver> {
        self.execute(queries, self.threads)
    }

    /// Runs `queries` one after another on the calling thread — the
    /// reference semantics `run` must reproduce result-wise.
    pub fn run_sequential(&self, queries: &[SolverConfig]) -> Result<BatchReport, UnknownSolver> {
        self.execute(queries, 1)
    }

    fn execute(
        &self,
        queries: &[SolverConfig],
        threads: usize,
    ) -> Result<BatchReport, UnknownSolver> {
        // Build every solver up front: any bad config fails the batch
        // before the instance is touched.
        let solvers: Vec<Box<dyn Solver>> = queries
            .iter()
            .map(|q| self.registry.build(q))
            .collect::<Result<_, _>>()?;
        let store = self.instance.tree().store();
        // One defined starting state per batch; queries then share the
        // warming cache, as concurrent traffic on a live instance would.
        store.clear_cache();
        let io_before = store.io_stats();
        let start = Instant::now();

        let workers = threads.min(queries.len()).max(1);
        let results: Vec<QueryResult> = if workers == 1 {
            // Sequential batches run right here on the calling thread.
            queries
                .iter()
                .enumerate()
                .map(|(i, q)| self.run_one(i, q, &*solvers[i]))
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<QueryResult>>> =
                queries.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= queries.len() {
                            break;
                        }
                        let result = self.run_one(i, &queries[i], &*solvers[i]);
                        *slots[i].lock().unwrap() = Some(result);
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .unwrap_or_else(|e| e.into_inner())
                        .expect("every query index was claimed by a worker")
                })
                .collect()
        };
        Ok(BatchReport {
            results,
            io: store.io_stats().since(&io_before),
            wall: start.elapsed(),
        })
    }

    fn run_one(&self, index: usize, config: &SolverConfig, solver: &dyn Solver) -> QueryResult {
        // A fresh session per query: the store charges it alongside its
        // shard counters, so `stats.io` is this query's own traffic even
        // with other workers hammering the same pool.
        let session = IoSession::new();
        let problem = self.instance.problem().with_session(&session);
        let (matching, stats) = solver.run(&problem);
        QueryResult {
            index,
            label: solver.label(),
            config: config.clone(),
            matching,
            stats,
        }
    }
}

/// One query's outcome within a batch.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Position of the query in the submitted batch.
    pub index: usize,
    /// The solver's figure label (`"IDA"`, `"CAN"`, …).
    pub label: String,
    /// The config the query was built from.
    pub config: SolverConfig,
    pub matching: Matching,
    /// Algorithm counters, CPU time, and this query's own buffer-pool
    /// traffic (attributed through its [`IoSession`]).
    pub stats: AlgoStats,
}

/// The outcome of one batch: per-query results (in submission order) plus
/// batch-aggregate I/O and wall time.
pub struct BatchReport {
    pub results: Vec<QueryResult>,
    /// Buffer-pool traffic of the whole batch over the shared tree.
    pub io: IoStats,
    /// Wall-clock time of the batch (all workers).
    pub wall: Duration,
}

impl BatchReport {
    /// Sum of all matching costs.
    pub fn total_cost(&self) -> f64 {
        self.results.iter().map(|r| r.matching.cost()).sum()
    }

    /// Sum of per-query CPU time (exceeds `wall` when workers overlap).
    pub fn total_cpu(&self) -> Duration {
        self.results.iter().map(|r| r.stats.cpu_time).sum()
    }

    /// Aggregate algorithm counters across the batch, with the batch-level
    /// I/O folded in.
    pub fn aggregate_stats(&self) -> AlgoStats {
        let mut agg = AlgoStats {
            io: self.io,
            ..Default::default()
        };
        for r in &self.results {
            agg.esub_edges += r.stats.esub_edges;
            agg.dijkstra_runs += r.stats.dijkstra_runs;
            agg.pua_runs += r.stats.pua_runs;
            agg.iterations += r.stats.iterations;
            agg.invalid_paths += r.stats.invalid_paths;
            agg.fast_phase_matches += r.stats.fast_phase_matches;
            agg.cpu_time += r.stats.cpu_time;
        }
        agg
    }
}
