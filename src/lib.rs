//! # cca — Capacity Constrained Assignment in Spatial Databases
//!
//! A Rust reproduction of U, Yiu, Mouratidis & Mamoulis, *"Capacity
//! Constrained Assignment in Spatial Databases"*, SIGMOD 2008.
//!
//! Given a large, disk-resident customer set `P` and a small provider set
//! `Q` where each provider `q` serves at most `q.k` customers, CCA computes
//! the maximum-size matching minimising the total Euclidean distance
//! (Equation 1 of the paper). This crate bundles the whole workspace behind
//! one façade. Algorithms are selected from data through the trait-based
//! solver pipeline:
//!
//! ```
//! use cca::{SolverConfig, SpatialAssignment};
//! use cca::geo::Point;
//!
//! let providers = vec![
//!     (Point::new(10.0, 10.0), 2), // a provider with capacity 2
//!     (Point::new(90.0, 90.0), 1),
//! ];
//! let customers = vec![
//!     Point::new(12.0, 11.0),
//!     Point::new(8.0, 9.0),
//!     Point::new(88.0, 91.0),
//! ];
//! let instance = SpatialAssignment::build(providers, customers);
//! let result = instance.run_config(&SolverConfig::new("ida")).unwrap();
//! assert_eq!(result.matching.size(), 3);
//! result.validate().unwrap();
//! ```
//!
//! Many independent queries against one instance go through the parallel
//! [`BatchRunner`] — since PR 4 a thin adapter over the [`serve`] crate's
//! worker pool, which since PR 5 schedules **tenant-fair**: weighted
//! deficit-round-robin across tenants first, priority+aging within each
//! tenant second, with per-tenant admission quotas and [`TenantStats`]
//! operator snapshots. Individual runs accept a [`QueryContext`]
//! ([`SpatialAssignment::run_solver_ctx`]) carrying a tenant label,
//! deadline, I/O budget and cancellation flag; an aborted run returns its
//! partial matching with exact partial I/O attribution — deadlines are
//! polled inside the CPU-bound flow loops too, so even an all-in-memory
//! solve cannot overshoot. The legacy [`Algorithm`] enum is kept as a thin
//! back-compat wrapper that maps onto [`SolverConfig`]s.
//!
//! Since PR 8 the registry also carries an **approximate tier** for
//! instances beyond exact reach: `SolverConfig::new("coreset")` solves
//! exactly on a capacity-aware importance-sampled coreset and lifts the
//! assignment back (bounded swap refinement in R-tree neighbourhoods),
//! and `SolverConfig::new("da")` runs deterministic-annealing Gibbs
//! assignment — both feasible by construction, context-abortable with
//! partial results, and selectable by name end-to-end with no protocol
//! changes.
//!
//! Since PR 9 a **dynamic world** is served by [`ContinuousAssignment`]:
//! a feasible matching maintained under a stream of [`WorldEvent`]s
//! (arrivals, departures, capacity changes, provider moves) with
//! bounded-neighbourhood incremental repair, warm-started full re-solves
//! and unwind-on-abort semantics. Event streams for testing and
//! benchmarking come from `cca_datagen::ArrivalProcess`.
//!
//! Sub-crates (re-exported below): [`geo`] geometry, [`storage`] the paged
//! disk + LRU buffer, [`rtree`] the spatial index, [`flow`] the min-cost-flow
//! substrate, [`core`] the CCA algorithms and solver pipeline, [`serve`] the
//! admission-controlled serving layer, [`datagen`] the workload generator
//! reproducing the paper's data protocol.

pub use cca_core as core;
pub use cca_datagen as datagen;
pub use cca_flow as flow;
pub use cca_geo as geo;
pub use cca_rtree as rtree;
pub use cca_serve as serve;
pub use cca_storage as storage;

mod batch;

pub use batch::{BatchReport, BatchRunner, QueryResult};
pub use cca_core::dynamic::{
    ContinuousAssignment, ContinuousConfig, DynamicStats, EventReport, RepairKind, WorldEvent,
};
pub use cca_core::solver::{Outcome, Problem, Solver, SolverConfig, SolverRegistry, UnknownSolver};
pub use cca_serve::{
    OwnedTicket, Rejected, ServeConfig, ServingInstance, TenantQuota, TenantStats,
};
pub use cca_storage::{AbortReason, Priority, QueryContext, TenantId};

use cca_core::{AlgoStats, Matching, RefineMethod};
use cca_geo::Point;
use cca_rtree::RTree;
use cca_storage::PageStore;

/// Legacy algorithm selector, kept as a back-compat wrapper over
/// [`SolverConfig`] — see [`Algorithm::to_config`]. New code should build
/// configs directly and go through [`SpatialAssignment::run_config`] or the
/// [`SolverRegistry`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Algorithm {
    /// Full-graph SSPA baseline (§2.2) — exact, memory-hungry, slow.
    Sspa,
    /// Range Incremental Algorithm (§3.1) — exact.
    Ria { theta: f64 },
    /// Nearest Neighbor Incremental Algorithm (§3.2) — exact.
    Nia,
    /// Incremental On-demand Algorithm (§3.3) — exact; the paper's best.
    Ida,
    /// IDA with the grouped-ANN I/O optimisation (§3.4.2).
    IdaGrouped { group_size: usize },
    /// Service-provider approximation (§4.1), error ≤ 2γδ.
    Sa { delta: f64, refine: RefineMethod },
    /// Customer approximation (§4.2), error ≤ γδ; the paper's recommended
    /// approximate method.
    Ca { delta: f64, refine: RefineMethod },
}

impl Algorithm {
    /// The equivalent data-driven solver selection.
    pub fn to_config(self) -> SolverConfig {
        match self {
            Algorithm::Sspa => SolverConfig::new("sspa"),
            Algorithm::Ria { theta } => SolverConfig::new("ria").theta(theta),
            Algorithm::Nia => SolverConfig::new("nia"),
            Algorithm::Ida => SolverConfig::new("ida"),
            Algorithm::IdaGrouped { group_size } => {
                SolverConfig::new("ida-grouped").group_size(group_size)
            }
            Algorithm::Sa { delta, refine } => SolverConfig::new("sa").delta(delta).refine(refine),
            Algorithm::Ca { delta, refine } => SolverConfig::new("ca").delta(delta).refine(refine),
        }
    }

    /// Chart label matching the paper's figures.
    pub fn label(&self) -> String {
        match self {
            Algorithm::Sspa => "SSPA".into(),
            Algorithm::Ria { .. } => "RIA".into(),
            Algorithm::Nia => "NIA".into(),
            Algorithm::Ida | Algorithm::IdaGrouped { .. } => "IDA".into(),
            Algorithm::Sa { refine, .. } => format!("SA{}", refine.suffix()),
            Algorithm::Ca { refine, .. } => format!("CA{}", refine.suffix()),
        }
    }
}

/// The result of one algorithm run: the matching plus the measurements the
/// paper reports (|Esub|, CPU time, charged I/O time).
pub struct RunResult<'a> {
    pub matching: Matching,
    pub stats: AlgoStats,
    /// Why the run aborted (deadline / I/O budget / cancellation through
    /// its [`QueryContext`]), or `None` when it completed. Aborted runs
    /// carry the partial matching and exact partial I/O attribution.
    pub aborted: Option<AbortReason>,
    instance: &'a SpatialAssignment,
}

impl RunResult<'_> {
    /// Assignment cost `Ψ(M)`.
    pub fn cost(&self) -> f64 {
        self.matching.cost()
    }

    /// Validates the matching against the instance.
    pub fn validate(&self) -> Result<(), String> {
        self.matching
            .validate_unit(&self.instance.providers, &self.instance.customers)
    }
}

/// A CCA instance: providers in memory, customers behind a paged R-tree —
/// the storage layout the paper assumes (§3).
pub struct SpatialAssignment {
    providers: Vec<(Point, u32)>,
    customers: Vec<Point>,
    tree: RTree,
}

impl SpatialAssignment {
    /// Builds the instance with the paper's storage settings: 1 KB pages and
    /// an LRU buffer sized at 1 % of the R-tree (§5.1).
    pub fn build(providers: Vec<(Point, u32)>, customers: Vec<Point>) -> Self {
        Self::build_with_storage(providers, customers, 1024, 1.0)
    }

    /// Builds with explicit page size (bytes) and buffer percentage.
    ///
    /// Uses a single-shard store — the paper's one global LRU — so fault
    /// counts and charged I/O are identical on every machine (a sharded
    /// store floors each shard at one buffer page, which would let the
    /// host's core count perturb small paper-style buffers). Serving
    /// deployments that want concurrent faulting opt in via
    /// [`SpatialAssignment::build_with_storage_sharded`] with
    /// [`cca_storage::default_shards`].
    pub fn build_with_storage(
        providers: Vec<(Point, u32)>,
        customers: Vec<Point>,
        page_size: usize,
        buffer_percent: f64,
    ) -> Self {
        Self::build_with_storage_sharded(providers, customers, page_size, buffer_percent, 1)
    }

    /// Builds with an explicit buffer-pool shard count (`1` reproduces the
    /// single-mutex, single-LRU storage of the paper's sequential setting;
    /// more shards let parallel batches fault pages independently).
    pub fn build_with_storage_sharded(
        providers: Vec<(Point, u32)>,
        customers: Vec<Point>,
        page_size: usize,
        buffer_percent: f64,
        shards: usize,
    ) -> Self {
        let items: Vec<(Point, u64)> = customers
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as u64))
            .collect();
        // Generous provisional buffer during construction; finish_build
        // shrinks it to the experiment setting.
        let store = PageStore::with_config_sharded(page_size, 1 << 14, shards);
        let tree = RTree::bulk_load(store, &items);
        tree.finish_build(buffer_percent);
        SpatialAssignment {
            providers,
            customers,
            tree,
        }
    }

    /// Providers (position, capacity).
    pub fn providers(&self) -> &[(Point, u32)] {
        &self.providers
    }

    /// Customer positions; ids are indices into this slice.
    pub fn customers(&self) -> &[Point] {
        &self.customers
    }

    /// The underlying R-tree (for I/O statistics and direct queries).
    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    /// `γ = min(|P|, Σ q.k)` — the size every maximal matching must reach.
    pub fn gamma(&self) -> u64 {
        let cap: u64 = self.providers.iter().map(|&(_, k)| u64::from(k)).sum();
        cap.min(self.customers.len() as u64)
    }

    /// This instance as a solver-pipeline [`Problem`]: providers plus both
    /// customer access paths (the R-tree and the in-memory slice).
    pub fn problem(&self) -> Problem<'_> {
        Problem::new(&self.providers)
            .with_tree(&self.tree)
            .with_customers(&self.customers)
    }

    /// Runs the solver selected by `config` (through the default
    /// [`SolverRegistry`]) from a cold buffer cache.
    pub fn run_config(&self, config: &SolverConfig) -> Result<RunResult<'_>, UnknownSolver> {
        let solver = SolverRegistry::with_defaults().build(config)?;
        Ok(self.run_solver(&*solver))
    }

    /// Runs `solver` from a cold buffer cache and returns the matching with
    /// CPU and charged-I/O statistics.
    ///
    /// The run is given its own [`QueryContext`], so `stats.io` is the
    /// traffic *this query* caused — the same attribution path the parallel
    /// [`BatchRunner`] uses (for a lone query on a cold cache it equals the
    /// store's global delta).
    pub fn run_solver(&self, solver: &dyn Solver) -> RunResult<'_> {
        self.run_solver_ctx(solver, &QueryContext::new())
    }

    /// Runs `solver` from a cold buffer cache under the caller's
    /// [`QueryContext`]: traffic is charged to `ctx`, and its deadline,
    /// I/O budget or cancellation abort the run cooperatively —
    /// [`RunResult::aborted`] then carries the reason and the stats hold
    /// the exact partial attribution (a fault budget is met exactly:
    /// `stats.io.faults == budget`).
    pub fn run_solver_ctx(&self, solver: &dyn Solver, ctx: &QueryContext) -> RunResult<'_> {
        self.tree.store().clear_cache();
        self.tree.store().reset_stats();
        let outcome = solver.run(&self.problem().with_context(ctx));
        let aborted = outcome.abort_reason();
        let (matching, stats) = outcome.into_parts();
        RunResult {
            matching,
            stats,
            aborted,
            instance: self,
        }
    }

    /// [`SpatialAssignment::run_config`] under a caller-supplied
    /// [`QueryContext`] (deadline / I/O budget / cancellation).
    pub fn run_config_ctx(
        &self,
        config: &SolverConfig,
        ctx: &QueryContext,
    ) -> Result<RunResult<'_>, UnknownSolver> {
        let solver = SolverRegistry::with_defaults().build(config)?;
        Ok(self.run_solver_ctx(&*solver, ctx))
    }

    /// Back-compat wrapper: runs a legacy [`Algorithm`] selection through
    /// the solver pipeline.
    pub fn run(&self, algorithm: Algorithm) -> RunResult<'_> {
        self.run_config(&algorithm.to_config())
            .expect("legacy algorithms map onto registered solvers")
    }

    /// A parallel batch runner over this instance's shared R-tree.
    pub fn batch(&self) -> BatchRunner<'_> {
        BatchRunner::new(self)
    }
}
