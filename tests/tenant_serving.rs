//! Integration tests for PR 5's multi-tenant serving: the flow-loop
//! deadline poll (a CPU-bound solve aborts with no page access involved),
//! tenant labels threaded façade → context → problem, and per-tenant
//! dispatch/attribution through the two-level scheduler.

use std::time::{Duration, Instant};

use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::serve::{serve, Request, ServeConfig};
use cca::{AbortReason, Outcome};
use cca::{
    Priority, Problem, QueryContext, SolverConfig, SolverRegistry, SpatialAssignment, TenantId,
    TenantQuota,
};

fn instance(seed: u64, customers: usize) -> SpatialAssignment {
    let w = WorkloadConfig {
        num_providers: 16,
        num_customers: customers,
        capacity: CapacitySpec::Fixed(30),
        q_dist: SpatialDistribution::Clustered,
        p_dist: SpatialDistribution::Clustered,
        seed,
    }
    .generate();
    SpatialAssignment::build_with_storage_sharded(w.providers, w.customers, 1024, 4.0, 4)
}

/// The PR's flow-abort acceptance test: a flow-heavy SSPA query on a large
/// *memory-resident* graph with an already-expired deadline aborts from
/// inside the flow loop — `Outcome::Aborted` with partial attribution and
/// not a single page access to trip it. Before the flow-loop poll existed,
/// this run would have burned the whole γ-iteration solve and only then
/// been classified late.
#[test]
fn expired_deadline_aborts_inside_the_flow_loop_without_page_access() {
    let w = WorkloadConfig {
        num_providers: 30,
        num_customers: 3_000,
        capacity: CapacitySpec::Fixed(10),
        q_dist: SpatialDistribution::Uniform,
        p_dist: SpatialDistribution::Uniform,
        seed: 9,
    }
    .generate();
    // Memory-resident problem: no tree, no pages — only the CPU loop can
    // observe the deadline.
    let problem = Problem::new(&w.providers).with_customers(&w.customers);
    let ctx = QueryContext::new().with_deadline(Instant::now() - Duration::from_millis(1));
    let problem = problem.with_context(&ctx);
    let solver = SolverRegistry::with_defaults()
        .build(&SolverConfig::new("sspa"))
        .unwrap();
    let outcome = solver.run(&problem);
    match outcome {
        Outcome::Aborted {
            partial,
            partial_stats,
            reason,
        } => {
            assert_eq!(reason, AbortReason::DeadlineExceeded);
            assert_eq!(
                partial.size(),
                0,
                "the poll fired before the first augmentation — the solve \
                 did not run to completion and get classified late"
            );
            assert_eq!(partial_stats.io.faults, 0, "no page access occurred");
            assert_eq!(partial_stats.iterations, 0);
        }
        Outcome::Complete { .. } => panic!("expired deadline must abort"),
    }
    assert_eq!(ctx.stats().faults, 0);
}

/// Same poll, mid-run: cancelling a CPU-bound SSPA solve from another
/// thread stops it between augmentations with a capacity-feasible partial
/// matching of exactly `iterations` units.
#[test]
fn cancellation_stops_a_cpu_bound_solve_mid_run() {
    let w = WorkloadConfig {
        num_providers: 40,
        num_customers: 2_500,
        capacity: CapacitySpec::Fixed(10),
        q_dist: SpatialDistribution::Uniform,
        p_dist: SpatialDistribution::Uniform,
        seed: 10,
    }
    .generate();
    let problem = Problem::new(&w.providers).with_customers(&w.customers);
    let ctx = QueryContext::new();
    let canceller = ctx.clone();
    let fuse = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(10));
        canceller.cancel();
    });
    let problem = problem.with_context(&ctx);
    let solver = SolverRegistry::with_defaults()
        .build(&SolverConfig::new("sspa"))
        .unwrap();
    let outcome = solver.run(&problem);
    fuse.join().unwrap();
    assert_eq!(outcome.abort_reason(), Some(AbortReason::Cancelled));
    let (partial, stats) = outcome.into_parts();
    assert!(
        partial.size() < 400,
        "γ = 400 augmentations outlast a 10 ms fuse"
    );
    assert_eq!(partial.size(), stats.iterations);
    partial
        .validate_unit_partial(&w.providers, &w.customers)
        .unwrap();
}

/// The memory-resident source carries the context too: every exact solver
/// on an all-in-memory problem observes an expired deadline — through the
/// driver loop-head polls and the engine's flow-loop polls — without a
/// single page access.
#[test]
fn memory_resident_exact_solvers_observe_the_deadline() {
    let w = WorkloadConfig {
        num_providers: 12,
        num_customers: 800,
        capacity: CapacitySpec::Fixed(10),
        q_dist: SpatialDistribution::Uniform,
        p_dist: SpatialDistribution::Uniform,
        seed: 11,
    }
    .generate();
    let registry = SolverRegistry::with_defaults();
    for name in ["ida", "nia", "ria"] {
        let problem = Problem::new(&w.providers).with_customers(&w.customers);
        let ctx = QueryContext::new().with_deadline(Instant::now() - Duration::from_millis(1));
        let problem = problem.with_context(&ctx);
        let solver = registry
            .build(&SolverConfig::new(name).theta(20.0))
            .unwrap();
        let outcome = solver.run(&problem);
        assert_eq!(
            outcome.abort_reason(),
            Some(AbortReason::DeadlineExceeded),
            "{name}: an in-memory solve must still respect its deadline"
        );
        let (partial, stats) = outcome.into_parts();
        assert!(partial.size() < problem.gamma(), "{name}: stopped early");
        assert_eq!(stats.io.faults, 0, "{name}: no page access");
    }
}

/// Tenant labels survive the whole builder chain: context → problem.
#[test]
fn tenant_threads_from_context_to_problem() {
    let providers = vec![(cca::geo::Point::new(0.0, 0.0), 1)];
    let customers = vec![cca::geo::Point::new(1.0, 0.0)];
    let bare = Problem::new(&providers).with_customers(&customers);
    assert_eq!(bare.tenant(), TenantId::DEFAULT, "context-less default");
    let ctx = QueryContext::new().with_tenant(TenantId(42));
    let labelled = bare.with_context(&ctx);
    assert_eq!(labelled.tenant(), TenantId(42));
}

/// Two tenants sharing one instance through the serving layer: dispatch
/// counts and I/O attribution aggregate per tenant, and the disjoint
/// per-tenant fault totals sum exactly to the store's global delta — the
/// PR 3 attribution invariant, lifted to tenants.
#[test]
fn tenant_stats_aggregate_dispatches_and_io() {
    const GOLD: TenantId = TenantId(1);
    const FREE: TenantId = TenantId(2);
    let instance = instance(77, 6_000);
    let registry = SolverRegistry::with_defaults();
    let queries = 6usize;
    let solvers: Vec<_> = (0..2 * queries)
        .map(|_| registry.build(&SolverConfig::new("ida")).unwrap())
        .collect();
    instance.tree().store().clear_cache();
    let io_before = instance.tree().store().io_stats();
    let config = ServeConfig::default()
        .workers(2)
        .queue_capacity(64)
        .tenant_quota(GOLD, TenantQuota::default().weight(2));
    let (gold, free) = serve(config, |handle| {
        let tickets: Vec<_> = solvers
            .iter()
            .enumerate()
            .map(|(i, solver)| {
                let solver = &**solver;
                let instance = &instance;
                let tenant = if i < queries { GOLD } else { FREE };
                handle
                    .submit(
                        Request::new(move |ctx: &QueryContext| {
                            solver
                                .run(&instance.problem().with_context(ctx))
                                .is_complete()
                        })
                        .tenant(tenant)
                        .priority(Priority::Normal),
                    )
                    .expect("queue sized to the burst")
            })
            .collect();
        for t in tickets {
            assert!(t.wait(), "unconstrained queries complete");
        }
        (
            handle.tenant_stats_for(GOLD).unwrap(),
            handle.tenant_stats_for(FREE).unwrap(),
        )
    });
    for (name, stats) in [("gold", &gold), ("free", &free)] {
        assert_eq!(stats.submitted, queries as u64, "{name}");
        assert_eq!(stats.dispatched, queries as u64, "{name}");
        assert_eq!(stats.completed, queries as u64, "{name}");
        assert_eq!(stats.aborted, 0, "{name}");
        assert_eq!(stats.queued, 0, "{name}");
        assert_eq!(stats.in_flight, 0, "{name}");
        assert!(stats.io.faults > 0, "{name}: IDA faults on a cold cache");
        assert!(stats.total_latency > Duration::ZERO, "{name}");
        assert!(stats.max_latency <= stats.total_latency, "{name}");
    }
    assert_eq!(gold.weight, 2);
    assert_eq!(free.weight, 1);
    let global = instance.tree().store().io_stats().since(&io_before);
    assert_eq!(
        gold.io.faults + free.io.faults,
        global.faults,
        "disjoint tenant attributions sum to the store delta"
    );
}

/// `BatchRunner::tenant` labels a whole batch; results are unchanged from
/// an unlabelled run (the label governs scheduling and attribution, never
/// the matching).
#[test]
fn batch_runner_tenant_label_does_not_change_results() {
    let instance = instance(31, 2_000);
    let queries = vec![
        SolverConfig::new("ida"),
        SolverConfig::new("ca").delta(10.0),
        SolverConfig::new("nia"),
    ];
    let plain = instance.batch().threads(2).run(&queries).unwrap();
    let labelled = instance
        .batch()
        .threads(2)
        .tenant(TenantId(7))
        .priority(Priority::High)
        .run(&queries)
        .unwrap();
    assert_eq!(plain.results.len(), labelled.results.len());
    for (a, b) in plain.results.iter().zip(&labelled.results) {
        assert_eq!(a.matching.cost(), b.matching.cost(), "{}", a.label);
        assert_eq!(a.aborted, b.aborted);
    }
}
