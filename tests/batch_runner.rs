//! Integration tests for the parallel [`cca::BatchRunner`]: determinism
//! against sequential execution, per-query statistics, and error handling.

use cca::core::RefineMethod;
use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::{SolverConfig, SpatialAssignment};

fn instance(seed: u64, np: usize) -> SpatialAssignment {
    let w = WorkloadConfig {
        num_providers: 12,
        num_customers: np,
        capacity: CapacitySpec::Fixed(20),
        q_dist: SpatialDistribution::Clustered,
        p_dist: SpatialDistribution::Clustered,
        seed,
    }
    .generate();
    SpatialAssignment::build(w.providers, w.customers)
}

/// A mixed batch touching every solver family.
fn mixed_queries() -> Vec<SolverConfig> {
    vec![
        SolverConfig::new("ida"),
        SolverConfig::new("ca").delta(10.0),
        SolverConfig::new("nia"),
        SolverConfig::new("sa").delta(40.0),
        SolverConfig::new("ida-grouped").group_size(4),
        SolverConfig::new("ca")
            .delta(20.0)
            .refine(RefineMethod::ExclusiveNn),
        SolverConfig::new("ria").theta(20.0),
        SolverConfig::new("ida").disable_pua(true),
        SolverConfig::new("sa")
            .delta(20.0)
            .refine(RefineMethod::ExclusiveNn),
        SolverConfig::new("ca").delta(40.0),
    ]
}

/// The acceptance bar: ≥ 8 queries executed concurrently over the shared
/// tree produce results identical to sequential execution, with per-query
/// stats attached.
#[test]
fn parallel_batch_matches_sequential_exactly() {
    let instance = instance(400, 2500);
    let queries = mixed_queries();
    assert!(queries.len() >= 8);

    let runner = instance.batch().threads(8);
    let parallel = runner.run(&queries).unwrap();
    let sequential = runner.run_sequential(&queries).unwrap();

    assert_eq!(parallel.results.len(), queries.len());
    for (p, s) in parallel.results.iter().zip(&sequential.results) {
        assert_eq!(p.index, s.index);
        assert_eq!(p.label, s.label);
        assert_eq!(p.config, s.config, "config travels with the result");
        assert_eq!(
            p.matching.pairs, s.matching.pairs,
            "query {} ({}) differs under concurrency",
            p.index, p.label
        );
        assert_eq!(p.stats.esub_edges, s.stats.esub_edges);
        assert_eq!(p.stats.iterations, s.stats.iterations);
        assert_eq!(p.stats.fast_phase_matches, s.stats.fast_phase_matches);
    }
    assert!((parallel.total_cost() - sequential.total_cost()).abs() < 1e-9);
}

/// The same guarantees hold over a multi-shard pool: determinism against
/// sequential execution and exact per-query attribution, with workers
/// faulting through independent shard locks.
#[test]
fn sharded_pool_keeps_determinism_and_attribution() {
    let w = cca::datagen::WorkloadConfig {
        num_providers: 12,
        num_customers: 2000,
        capacity: CapacitySpec::Fixed(20),
        q_dist: SpatialDistribution::Clustered,
        p_dist: SpatialDistribution::Clustered,
        seed: 406,
    }
    .generate();
    let instance =
        SpatialAssignment::build_with_storage_sharded(w.providers, w.customers, 1024, 1.0, 4);
    assert_eq!(instance.tree().store().num_shards(), 4);
    let queries = mixed_queries();
    let runner = instance.batch().threads(8);
    let parallel = runner.run(&queries).unwrap();
    let sequential = runner.run_sequential(&queries).unwrap();
    for (p, s) in parallel.results.iter().zip(&sequential.results) {
        assert_eq!(p.matching.pairs, s.matching.pairs, "query {}", p.index);
    }
    let fault_sum: u64 = parallel.results.iter().map(|r| r.stats.io.faults).sum();
    assert_eq!(fault_sum, parallel.io.faults);
    assert!(parallel.results.iter().all(|r| r.stats.io.faults > 0));
}

/// Running the same batch twice is bit-reproducible (queries share a cache
/// but never mutate results through it).
#[test]
fn repeated_batches_are_reproducible() {
    let instance = instance(401, 1500);
    let queries = mixed_queries();
    let runner = instance.batch().threads(4);
    let a = runner.run(&queries).unwrap();
    let b = runner.run(&queries).unwrap();
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(x.matching.pairs, y.matching.pairs);
    }
}

#[test]
fn per_query_stats_and_batch_io_are_reported() {
    let instance = instance(402, 2000);
    let queries = mixed_queries();
    let report = instance.batch().threads(8).run(&queries).unwrap();

    for r in &report.results {
        assert!(
            r.matching.size() > 0,
            "query {} produced a matching",
            r.index
        );
        assert!(
            r.stats.iterations > 0 || r.stats.fast_phase_matches > 0,
            "query {} has algorithm counters",
            r.index
        );
        assert!(
            r.stats.io.faults > 0,
            "query {} ({}) must report its own attributed I/O",
            r.index,
            r.label
        );
    }
    assert!(report.io.faults > 0, "the batch as a whole faulted pages");
    // The attribution invariant: disjoint per-query sessions partition the
    // batch's buffer-pool traffic exactly.
    let fault_sum: u64 = report.results.iter().map(|r| r.stats.io.faults).sum();
    let hit_sum: u64 = report.results.iter().map(|r| r.stats.io.hits).sum();
    assert_eq!(
        fault_sum, report.io.faults,
        "per-query faults must sum to the batch aggregate"
    );
    assert_eq!(
        hit_sum, report.io.hits,
        "per-query hits must sum to the batch aggregate"
    );
    assert!(report.wall.as_nanos() > 0);
    let agg = report.aggregate_stats();
    assert_eq!(agg.io, report.io);
    assert_eq!(agg.cpu_time, report.total_cpu());
    assert!(
        agg.esub_edges
            >= report
                .results
                .iter()
                .map(|r| r.stats.esub_edges)
                .max()
                .unwrap()
    );
}

/// Results come back in submission order regardless of completion order.
#[test]
fn results_preserve_submission_order() {
    let instance = instance(403, 1200);
    let queries = mixed_queries();
    let report = instance.batch().threads(8).run(&queries).unwrap();
    for (i, r) in report.results.iter().enumerate() {
        assert_eq!(r.index, i);
        assert_eq!(r.config, queries[i]);
    }
}

#[test]
fn unknown_query_fails_the_whole_batch_up_front() {
    let instance = instance(404, 600);
    let mut queries = mixed_queries();
    queries.push(SolverConfig::new("astar"));
    let err = instance.batch().run(&queries).map(|_| ()).unwrap_err();
    assert!(err.to_string().contains("astar"));
}

/// Oversubscription (more workers than queries) and single-query batches
/// both behave.
#[test]
fn degenerate_batch_shapes() {
    let instance = instance(405, 500);
    let one = [SolverConfig::new("ida")];
    let report = instance.batch().threads(16).run(&one).unwrap();
    assert_eq!(report.results.len(), 1);

    let none: [SolverConfig; 0] = [];
    let report = instance.batch().run(&none).unwrap();
    assert!(report.results.is_empty());
    assert_eq!(report.total_cost(), 0.0);
}
