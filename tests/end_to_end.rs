//! End-to-end integration tests spanning every crate: generated workloads →
//! R-tree construction → exact and approximate CCA → validation against the
//! independent flow-solver oracle.

use cca::core::{ca_error_bound, sa_error_bound, RefineMethod};
use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::flow::sspa::{solve_complete_bipartite, unit_customers, FlowProvider};
use cca::{Algorithm, SpatialAssignment};

fn workload(nq: usize, np: usize, k: u32, seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        num_providers: nq,
        num_customers: np,
        capacity: CapacitySpec::Fixed(k),
        q_dist: SpatialDistribution::Clustered,
        p_dist: SpatialDistribution::Clustered,
        seed,
    }
}

fn oracle_cost(instance: &SpatialAssignment) -> f64 {
    let fps: Vec<FlowProvider> = instance
        .providers()
        .iter()
        .map(|&(pos, cap)| FlowProvider { pos, cap })
        .collect();
    solve_complete_bipartite(&fps, &unit_customers(instance.customers()))
        .0
        .cost
}

#[test]
fn all_exact_algorithms_agree_on_generated_workload() {
    let w = workload(15, 600, 25, 101).generate();
    let instance = SpatialAssignment::build(w.providers, w.customers);
    let want = oracle_cost(&instance);

    for algo in [
        Algorithm::Ria { theta: 5.0 },
        Algorithm::Nia,
        Algorithm::Ida,
        Algorithm::IdaGrouped { group_size: 4 },
        Algorithm::Sspa,
    ] {
        let r = instance.run(algo);
        r.validate().unwrap_or_else(|e| panic!("{algo:?}: {e}"));
        assert!(
            (r.cost() - want).abs() < 1e-6,
            "{algo:?}: cost {} vs oracle {want}",
            r.cost()
        );
    }
}

#[test]
fn approximations_bounded_on_generated_workload() {
    let w = workload(20, 900, 30, 102).generate();
    let instance = SpatialAssignment::build(w.providers, w.customers);
    let want = oracle_cost(&instance);
    let gamma = instance.gamma();

    for refine in [RefineMethod::NnBased, RefineMethod::ExclusiveNn] {
        let sa = instance.run(Algorithm::Sa {
            delta: 40.0,
            refine,
        });
        sa.validate().unwrap();
        assert!(sa.cost() - want <= sa_error_bound(gamma, 40.0) + 1e-6);
        assert!(
            sa.cost() + 1e-6 >= want,
            "approximation cannot beat optimum"
        );

        let ca = instance.run(Algorithm::Ca {
            delta: 10.0,
            refine,
        });
        ca.validate().unwrap();
        assert!(ca.cost() - want <= ca_error_bound(gamma, 10.0) + 1e-6);
        assert!(ca.cost() + 1e-6 >= want);
    }
}

#[test]
fn ca_is_near_optimal_at_paper_default_delta() {
    // §5.3: "CA with as small δ as 10 achieves great performance improvement
    // over IDA, while producing a matching only marginally worse than the
    // optimal" — we assert a generous 25% ceiling (the paper reports ~12%).
    let w = workload(25, 1200, 40, 103).generate();
    let instance = SpatialAssignment::build(w.providers, w.customers);
    let exact = instance.run(Algorithm::Ida);
    let approx = instance.run(Algorithm::Ca {
        delta: 10.0,
        refine: RefineMethod::NnBased,
    });
    let quality = approx.cost() / exact.cost();
    assert!(
        (1.0..1.25).contains(&quality),
        "CA quality ratio {quality} out of expected band"
    );
}

#[test]
fn mixed_capacities_stay_exact() {
    let cfg = WorkloadConfig {
        num_providers: 12,
        num_customers: 500,
        capacity: CapacitySpec::Mixed { lo: 10, hi: 40 },
        q_dist: SpatialDistribution::Uniform,
        p_dist: SpatialDistribution::Clustered,
        seed: 104,
    };
    let w = cfg.generate();
    let instance = SpatialAssignment::build(w.providers, w.customers);
    let want = oracle_cost(&instance);
    let r = instance.run(Algorithm::Ida);
    r.validate().unwrap();
    assert!((r.cost() - want).abs() < 1e-6);
}

#[test]
fn cross_distribution_instances_stay_exact() {
    for (qd, pd) in [
        (SpatialDistribution::Uniform, SpatialDistribution::Clustered),
        (SpatialDistribution::Clustered, SpatialDistribution::Uniform),
    ] {
        let cfg = WorkloadConfig {
            num_providers: 10,
            num_customers: 400,
            capacity: CapacitySpec::Fixed(30),
            q_dist: qd,
            p_dist: pd,
            seed: 105,
        };
        let w = cfg.generate();
        let instance = SpatialAssignment::build(w.providers, w.customers);
        let want = oracle_cost(&instance);
        for algo in [
            Algorithm::Ida,
            Algorithm::Nia,
            Algorithm::Ria { theta: 10.0 },
        ] {
            let r = instance.run(algo);
            assert!(
                (r.cost() - want).abs() < 1e-6,
                "{qd:?} vs {pd:?}, {algo:?}: {} vs {want}",
                r.cost()
            );
        }
    }
}

#[test]
fn determinism_same_seed_same_everything() {
    let make = || {
        let w = workload(8, 300, 20, 106).generate();
        let instance = SpatialAssignment::build(w.providers, w.customers);
        let r = instance.run(Algorithm::Ida);
        (
            r.cost(),
            r.stats.esub_edges,
            r.stats.io.faults,
            r.matching.size(),
        )
    };
    assert_eq!(make(), make(), "runs must be bit-reproducible per seed");
}

#[test]
fn esub_is_a_small_fraction_of_the_complete_graph() {
    // The core claim of §3: the incremental algorithms materialise a small
    // subgraph (SSPA's is 100% by construction). The explored fraction is
    // workload-dependent — roughly 9-33% per seed at this small, heavily
    // saturated scale (k·|Q|/|P| = 0.8), mean ≈ 19% — so the guard averages
    // several seeds against a threshold with real margin and bounds every
    // individual instance by the observed envelope.
    let mut total_frac = 0.0;
    let seeds = [107u64, 108, 109, 110, 111];
    for &seed in &seeds {
        let w = workload(20, 2000, 80, seed).generate();
        let instance = SpatialAssignment::build(w.providers, w.customers);
        let r = instance.run(Algorithm::Ida);
        let full = (instance.providers().len() * instance.customers().len()) as u64;
        let frac = r.stats.esub_edges as f64 / full as f64;
        assert!(
            frac < 0.40,
            "seed {seed}: |Esub| fraction {frac} blew the envelope"
        );
        total_frac += frac;
    }
    let mean = total_frac / seeds.len() as f64;
    assert!(mean < 0.25, "mean |Esub| fraction {mean} >= 25%");
}

#[test]
fn grouped_ann_reduces_page_faults() {
    let w = workload(30, 5000, 100, 108).generate();
    let instance = SpatialAssignment::build(w.providers, w.customers);
    let plain = instance.run(Algorithm::Ida);
    let grouped = instance.run(Algorithm::IdaGrouped { group_size: 8 });
    assert!(
        (plain.cost() - grouped.cost()).abs() < 1e-6,
        "grouping must not change the result"
    );
    assert!(
        grouped.stats.io.faults <= plain.stats.io.faults,
        "grouped ANN {} faults vs plain {}",
        grouped.stats.io.faults,
        plain.stats.io.faults
    );
}

#[test]
fn gamma_bounded_by_both_sides() {
    let w = workload(5, 100, 10, 109).generate(); // Σk = 50 < |P| = 100
    let instance = SpatialAssignment::build(w.providers.clone(), w.customers.clone());
    assert_eq!(instance.gamma(), 50);
    let r = instance.run(Algorithm::Ida);
    assert_eq!(r.matching.size(), 50);

    let w = workload(5, 20, 10, 110).generate(); // Σk = 50 > |P| = 20
    let instance = SpatialAssignment::build(w.providers, w.customers);
    assert_eq!(instance.gamma(), 20);
    let r = instance.run(Algorithm::Ida);
    assert_eq!(r.matching.size(), 20);
}
