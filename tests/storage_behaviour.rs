//! Integration tests for the storage model: the paper's I/O accounting must
//! behave like a real buffered disk (cold/warm effects, buffer-size
//! sensitivity), because total time in the evaluation is dominated by
//! charged I/O.

use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::{Algorithm, SpatialAssignment};

fn build(seed: u64, buffer_percent: f64) -> SpatialAssignment {
    let cfg = WorkloadConfig {
        num_providers: 20,
        num_customers: 4000,
        capacity: CapacitySpec::Fixed(60),
        q_dist: SpatialDistribution::Clustered,
        p_dist: SpatialDistribution::Clustered,
        seed,
    };
    let w = cfg.generate();
    SpatialAssignment::build_with_storage(w.providers, w.customers, 1024, buffer_percent)
}

#[test]
fn larger_buffer_means_fewer_faults() {
    let small = build(200, 1.0);
    let large = build(200, 50.0);
    let r_small = small.run(Algorithm::Ida);
    let r_large = large.run(Algorithm::Ida);
    assert!(
        (r_small.cost() - r_large.cost()).abs() < 1e-6,
        "buffer size must not affect the matching"
    );
    assert!(
        r_large.stats.io.faults < r_small.stats.io.faults,
        "50% buffer {} faults vs 1% buffer {}",
        r_large.stats.io.faults,
        r_small.stats.io.faults
    );
}

#[test]
fn charged_io_time_follows_fault_count() {
    let instance = build(201, 1.0);
    let r = instance.run(Algorithm::Ida);
    let expect_ms = r.stats.io.faults as f64 * 10.0;
    assert!((r.stats.io.charged_io_time_ms() - expect_ms).abs() < 1e-9);
    assert!(r.stats.total_time_s() >= r.stats.io_time_s());
}

#[test]
fn runs_start_cold_every_time() {
    let instance = build(202, 1.0);
    let a = instance.run(Algorithm::Ida);
    let b = instance.run(Algorithm::Ida);
    assert_eq!(
        a.stats.io.faults, b.stats.io.faults,
        "run() must cold-start the cache for fair comparisons"
    );
}

#[test]
fn page_size_changes_fanout_but_not_results() {
    let cfg = WorkloadConfig {
        num_providers: 10,
        num_customers: 1500,
        capacity: CapacitySpec::Fixed(30),
        q_dist: SpatialDistribution::Uniform,
        p_dist: SpatialDistribution::Uniform,
        seed: 203,
    };
    let w = cfg.generate();
    let small_pages =
        SpatialAssignment::build_with_storage(w.providers.clone(), w.customers.clone(), 512, 1.0);
    let large_pages =
        SpatialAssignment::build_with_storage(w.providers.clone(), w.customers.clone(), 4096, 1.0);
    let rs = small_pages.run(Algorithm::Ida);
    let rl = large_pages.run(Algorithm::Ida);
    assert!((rs.cost() - rl.cost()).abs() < 1e-6);
    assert!(
        small_pages.tree().store().num_pages() > large_pages.tree().store().num_pages(),
        "smaller pages need more of them"
    );
}

#[test]
fn approximations_do_less_io_than_exact() {
    use cca::core::RefineMethod;
    let instance = build(204, 1.0);
    let exact = instance.run(Algorithm::Ida);
    let ca = instance.run(Algorithm::Ca {
        delta: 10.0,
        refine: RefineMethod::NnBased,
    });
    // CA reads the tree once to partition it; IDA performs per-iteration NN
    // I/O. On a clustered 4K-point instance CA must not fault more.
    assert!(
        ca.stats.io.faults <= exact.stats.io.faults,
        "CA {} faults vs IDA {}",
        ca.stats.io.faults,
        exact.stats.io.faults
    );
}
