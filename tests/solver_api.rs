//! Integration tests for the trait-based solver pipeline at the façade
//! level: registry round-trips, config-driven runs, and back-compat of the
//! legacy `Algorithm` wrapper.

use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::flow::sspa::{solve_complete_bipartite, unit_customers, FlowProvider};
use cca::{Algorithm, SolverConfig, SolverRegistry, SpatialAssignment};

fn small_instance(seed: u64) -> SpatialAssignment {
    let w = WorkloadConfig {
        num_providers: 6,
        num_customers: 150,
        capacity: CapacitySpec::Fixed(12),
        q_dist: SpatialDistribution::Clustered,
        p_dist: SpatialDistribution::Clustered,
        seed,
    }
    .generate();
    SpatialAssignment::build(w.providers, w.customers)
}

fn oracle_cost(instance: &SpatialAssignment) -> f64 {
    let fps: Vec<FlowProvider> = instance
        .providers()
        .iter()
        .map(|&(pos, cap)| FlowProvider { pos, cap })
        .collect();
    solve_complete_bipartite(&fps, &unit_customers(instance.customers()))
        .0
        .cost
}

/// Registry round-trip: every registered solver name resolves, solves a
/// small instance through the façade, and (with δ driven to ~0 for the
/// approximations, a wide θ for RIA) lands on the SSPA-optimal cost.
/// The approximate tier rides the same loop: `coreset` degenerates to an
/// exact solve at this size (auto coreset size ≥ n), while `da` is only
/// held to a constant-factor band — annealing has no per-instance
/// optimality guarantee.
#[test]
fn every_registered_solver_reaches_the_optimal_cost() {
    let instance = small_instance(301);
    let want = oracle_cost(&instance);
    let registry = SolverRegistry::with_defaults();
    assert_eq!(
        registry.names().count(),
        9,
        "the paper's seven algorithms plus the approximate tier"
    );

    for name in registry.names() {
        let config = SolverConfig::new(name).theta(30.0).delta(1e-9);
        let r = instance
            .run_config(&config)
            .unwrap_or_else(|e| panic!("{e}"));
        r.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        if name == "da" {
            assert!(
                r.cost() < 3.0 * want,
                "da: cost {} vs oracle {want}",
                r.cost()
            );
        } else {
            assert!(
                (r.cost() - want).abs() < 1e-6,
                "{name}: cost {} vs oracle {want}",
                r.cost()
            );
        }
    }
}

#[test]
fn unknown_solver_name_is_rejected_not_panicked() {
    let instance = small_instance(302);
    let err = instance
        .run_config(&SolverConfig::new("simulated-annealing"))
        .map(|_| ())
        .unwrap_err();
    assert!(err.to_string().contains("simulated-annealing"));
    assert!(err.to_string().contains("sspa"), "lists known solvers");
}

/// The legacy enum is a faithful wrapper: every variant maps onto a config
/// that produces the identical matching.
#[test]
fn legacy_algorithm_wrapper_matches_config_path() {
    use cca::core::RefineMethod;
    let instance = small_instance(303);
    for algo in [
        Algorithm::Sspa,
        Algorithm::Ria { theta: 12.0 },
        Algorithm::Nia,
        Algorithm::Ida,
        Algorithm::IdaGrouped { group_size: 4 },
        Algorithm::Sa {
            delta: 30.0,
            refine: RefineMethod::ExclusiveNn,
        },
        Algorithm::Ca {
            delta: 8.0,
            refine: RefineMethod::NnBased,
        },
    ] {
        let via_enum = instance.run(algo);
        let via_config = instance.run_config(&algo.to_config()).unwrap();
        assert_eq!(
            via_enum.matching.pairs, via_config.matching.pairs,
            "{algo:?}"
        );
        assert_eq!(via_enum.stats.esub_edges, via_config.stats.esub_edges);
    }
}

/// Custom solvers slot into the same registry the built-ins use.
#[test]
fn custom_solver_registration() {
    use cca::core::solver::IdaSolver;
    let mut registry = SolverRegistry::with_defaults();
    registry.register("house-special", |_| Box::new(IdaSolver::default()));
    assert!(registry.contains("house-special"));

    let instance = small_instance(304);
    let solver = registry.build_by_name("house-special").unwrap();
    let r = instance.run_solver(&*solver);
    r.validate().unwrap();
    assert!((r.cost() - oracle_cost(&instance)).abs() < 1e-6);
}

/// Solver labels follow the paper's figure naming.
#[test]
fn labels_match_paper_figures() {
    use cca::core::RefineMethod;
    let registry = SolverRegistry::with_defaults();
    let cases = [
        ("sspa", "SSPA"),
        ("ria", "RIA"),
        ("nia", "NIA"),
        ("ida", "IDA"),
        ("ida-grouped", "IDA"),
        ("sa", "SAN"),
        ("ca", "CAN"),
    ];
    for (name, label) in cases {
        let solver = registry.build_by_name(name).unwrap();
        assert_eq!(solver.label(), label);
    }
    let solver = registry
        .build(&SolverConfig::new("ca").refine(RefineMethod::ExclusiveNn))
        .unwrap();
    assert_eq!(solver.label(), "CAE");
}
