//! Integration tests for [`cca::QueryContext`] end to end: deterministic
//! I/O-budget aborts with exact partial attribution, deadline and
//! cancellation aborts, and the batch attribution invariant under aborts.

use std::time::{Duration, Instant};

use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::{AbortReason, QueryContext, SolverConfig, SpatialAssignment};

fn instance_sharded(seed: u64, np: usize, shards: usize) -> SpatialAssignment {
    let w = WorkloadConfig {
        num_providers: 12,
        num_customers: np,
        capacity: CapacitySpec::Fixed(20),
        q_dist: SpatialDistribution::Clustered,
        p_dist: SpatialDistribution::Clustered,
        seed,
    }
    .generate();
    SpatialAssignment::build_with_storage_sharded(w.providers, w.customers, 1024, 1.0, shards)
}

/// The satellite acceptance test: a query exceeding its I/O budget aborts
/// with partial stats whose `io.faults` equals the configured budget —
/// exactly, deterministically, at one and at four shards.
#[test]
fn io_budget_abort_reports_exactly_the_budget() {
    for shards in [1, 4] {
        let instance = instance_sharded(500, 4000, shards);
        assert_eq!(instance.tree().store().num_shards(), shards);
        for name in ["ida", "nia", "ria", "ida-grouped"] {
            let config = SolverConfig::new(name).theta(20.0).group_size(4);
            // Baseline: how many faults does the full run take?
            let full = instance.run_config(&config).unwrap();
            assert!(full.aborted.is_none());
            let full_faults = full.stats.io.faults;
            assert!(full_faults > 2, "{name}: baseline must fault");

            let budget = full_faults / 2;
            let ctx = QueryContext::new().with_io_budget(budget);
            let partial = instance.run_config_ctx(&config, &ctx).unwrap();
            assert_eq!(
                partial.aborted,
                Some(AbortReason::IoBudgetExceeded),
                "{name} at {shards} shard(s)"
            );
            assert_eq!(
                partial.stats.io.faults, budget,
                "{name} at {shards} shard(s): partial faults must equal the budget"
            );
            assert_eq!(ctx.stats().faults, budget);
            assert!(
                partial.matching.size() <= full.matching.size(),
                "{name}: aborted run returns a partial matching"
            );
        }
    }
}

/// An already-expired deadline aborts before the first page fault; a
/// generous one lets the query complete.
#[test]
fn deadline_governs_the_run() {
    let instance = instance_sharded(501, 1500, 1);
    let expired = QueryContext::new().with_deadline(Instant::now() - Duration::from_millis(1));
    let r = instance
        .run_config_ctx(&SolverConfig::new("ida"), &expired)
        .unwrap();
    assert_eq!(r.aborted, Some(AbortReason::DeadlineExceeded));
    assert_eq!(
        r.stats.io.faults, 0,
        "no page was faulted past the deadline"
    );
    assert_eq!(r.matching.size(), 0);

    let generous = QueryContext::new().with_timeout(Duration::from_secs(3600));
    let r = instance
        .run_config_ctx(&SolverConfig::new("ida"), &generous)
        .unwrap();
    assert!(r.aborted.is_none());
    assert!(r.matching.size() > 0);
}

/// Cancelling the context clone held by the caller aborts the run, and the
/// CA partition descent honours the abort too.
#[test]
fn cancellation_and_ca_descent_abort() {
    let instance = instance_sharded(502, 1500, 1);
    let ctx = QueryContext::new();
    ctx.cancel();
    for name in ["ida", "ca", "sa"] {
        let r = instance
            .run_config_ctx(&SolverConfig::new(name).delta(10.0), &ctx)
            .unwrap();
        assert_eq!(r.aborted, Some(AbortReason::Cancelled), "{name}");
    }
}

/// The acceptance criterion: budget-aborted queries in a parallel batch
/// still attribute their partial I/O exactly — per-query faults sum to the
/// batch aggregate, and each aborted query's fault count equals the budget.
#[test]
fn batch_attribution_invariant_holds_under_aborts() {
    for shards in [1, 4] {
        let instance = instance_sharded(503, 2500, shards);
        let queries = vec![
            SolverConfig::new("ida"),
            SolverConfig::new("nia"),
            SolverConfig::new("ida-grouped").group_size(4),
            SolverConfig::new("ria").theta(20.0),
            SolverConfig::new("ida"),
            SolverConfig::new("nia"),
        ];
        let budget = 8u64;
        let report = instance
            .batch()
            .threads(4)
            .query_io_budget(budget)
            .run(&queries)
            .unwrap();
        assert_eq!(report.results.len(), queries.len());
        assert_eq!(
            report.num_aborted(),
            queries.len(),
            "an 8-fault budget aborts every query of this size"
        );
        for r in &report.results {
            assert_eq!(
                r.aborted,
                Some(AbortReason::IoBudgetExceeded),
                "query {}",
                r.index
            );
            assert_eq!(
                r.stats.io.faults, budget,
                "query {} ({}) partial faults must equal the budget",
                r.index, r.label
            );
        }
        let fault_sum: u64 = report.results.iter().map(|r| r.stats.io.faults).sum();
        let hit_sum: u64 = report.results.iter().map(|r| r.stats.io.hits).sum();
        assert_eq!(
            fault_sum, report.io.faults,
            "per-query faults must sum to the batch aggregate even under aborts"
        );
        assert_eq!(hit_sum, report.io.hits);
    }
}

/// A batch-wide zero deadline sheds all work cooperatively: every query
/// aborts with `DeadlineExceeded` and zero I/O.
#[test]
fn batch_deadline_zero_aborts_everything() {
    let instance = instance_sharded(504, 1200, 1);
    let queries = vec![SolverConfig::new("ida"), SolverConfig::new("nia")];
    let report = instance
        .batch()
        .threads(2)
        .query_deadline(Duration::ZERO)
        .run(&queries)
        .unwrap();
    for r in &report.results {
        assert_eq!(r.aborted, Some(AbortReason::DeadlineExceeded));
        assert_eq!(r.stats.io.faults, 0);
        assert_eq!(r.matching.size(), 0);
    }
    assert_eq!(report.io.faults, 0);
}

/// An unconstrained batch on the serving path reports no aborts — the
/// scheduler adapter changes nothing about complete runs.
#[test]
fn unconstrained_batch_reports_no_aborts() {
    let instance = instance_sharded(505, 1200, 1);
    let queries = vec![
        SolverConfig::new("ida"),
        SolverConfig::new("ca").delta(20.0),
    ];
    let report = instance.batch().threads(2).run(&queries).unwrap();
    assert_eq!(report.num_aborted(), 0);
    assert!(report.results.iter().all(|r| r.aborted.is_none()));
    assert!(report.results.iter().all(|r| r.matching.size() > 0));
}
