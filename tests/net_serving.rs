//! PR 6 acceptance: one persistent [`ServingInstance`] behind a TCP
//! gateway serves sequential batches *and* concurrent network tenants,
//! with cross-batch tenant stats, quota shedding and aborts observable as
//! distinct typed wire errors, and per-tenant I/O attribution that sums
//! to the store's fault delta.

use std::sync::Arc;
use std::time::Duration;

use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::{Priority, ServeConfig, SolverConfig, SpatialAssignment, TenantId, TenantQuota};
use cca_net::{
    codec, ErrorCode, Gateway, Hello, NetClient, NetError, NetRequest, NetResponse, NetServer,
    ProblemSpec, SolveRequest, PROTOCOL_VERSION,
};

const TENANT_A: TenantId = TenantId(1);
const TENANT_B: TenantId = TenantId(2);

/// A disk-backed dataset small enough to solve quickly, big enough that a
/// 1-fault I/O budget is hopeless.
fn dataset() -> Arc<SpatialAssignment> {
    let w = WorkloadConfig {
        num_providers: 8,
        num_customers: 2_000,
        capacity: CapacitySpec::Fixed(300),
        q_dist: SpatialDistribution::Clustered,
        p_dist: SpatialDistribution::Clustered,
        seed: 60,
    }
    .generate();
    Arc::new(SpatialAssignment::build_with_storage_sharded(
        w.providers,
        w.customers,
        1024,
        1.0,
        4,
    ))
}

/// A CPU-heavy inline problem: large complete-bipartite SSPA solve that
/// cannot finish inside a sub-second deadline but aborts cooperatively
/// from the flow loop.
fn blocker_problem() -> ProblemSpec {
    let w = WorkloadConfig {
        num_providers: 10,
        num_customers: 8_000,
        capacity: CapacitySpec::Fixed(1_000),
        q_dist: SpatialDistribution::Uniform,
        p_dist: SpatialDistribution::Uniform,
        seed: 61,
    }
    .generate();
    ProblemSpec::Inline {
        providers: w.providers,
        customers: w.customers,
    }
}

/// A small inline problem that solves in milliseconds.
fn quick_problem() -> ProblemSpec {
    let w = WorkloadConfig {
        num_providers: 4,
        num_customers: 60,
        capacity: CapacitySpec::Fixed(20),
        q_dist: SpatialDistribution::Uniform,
        p_dist: SpatialDistribution::Uniform,
        seed: 62,
    }
    .generate();
    ProblemSpec::Inline {
        providers: w.providers,
        customers: w.customers,
    }
}

fn server_fault(err: NetError) -> cca_net::WireFault {
    match err {
        NetError::Server(fault) => *fault,
        other => panic!("expected a server fault, got {other:?}"),
    }
}

fn spin_until(what: &str, mut done: impl FnMut() -> bool) {
    for _ in 0..2_000 {
        if done() {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("timed out waiting for {what}");
}

#[test]
fn one_instance_serves_batches_and_concurrent_tenants_with_typed_shedding() {
    let data = dataset();
    let store_before = data.tree().store().io_stats();

    // One worker and a one-slot global queue make shedding deterministic;
    // tenant B additionally gets a single queue slot of its own.
    let gateway = Arc::new(
        Gateway::builder()
            .serve_config(
                ServeConfig::default()
                    .workers(1)
                    .queue_capacity(1)
                    .tenant_quota(TENANT_B, TenantQuota::default().queue_slots(1)),
            )
            .dataset("paper", Arc::clone(&data))
            .start(),
    );

    // ---- Phase 0: two sequential batches through the same instance -----
    // (no TCP involved yet — the instance outlives individual batches and
    // accumulates tenant A's stats across them).
    let runner = data.batch().tenant(TENANT_A);
    let batch = [SolverConfig::new("ida"), SolverConfig::new("nia")];
    let report1 = runner.run_on(gateway.instance(), &batch).unwrap();
    assert_eq!(report1.results.len(), 2);
    let after_first = gateway
        .instance()
        .tenant_stats_for(TENANT_A)
        .expect("tenant A served a batch");
    assert_eq!(after_first.completed, 2);

    let report2 = runner.run_on(gateway.instance(), &batch).unwrap();
    assert_eq!(report2.results.len(), 2);
    let after_second = gateway
        .instance()
        .tenant_stats_for(TENANT_A)
        .expect("tenant A stats persist");
    assert_eq!(
        after_second.completed, 4,
        "stats accumulate across batches on one instance"
    );
    assert!(report1.io.faults > 0, "disk-backed batch faults pages");

    // ---- Phase 1: the TCP front-end goes live over the same instance ---
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&gateway)).unwrap();
    let addr = server.local_addr();

    let mut a1 = NetClient::connect(addr, TENANT_A).unwrap();
    let mut a2 = NetClient::connect(addr, TENANT_A).unwrap();
    let b1 = NetClient::connect(addr, TENANT_B).unwrap();
    let mut b2 = NetClient::connect(addr, TENANT_B).unwrap();
    a1.ping().unwrap();

    // An I/O-budgeted dataset solve aborts with its own wire code and
    // carries its exact partial attribution (faults == budget).
    let fault = server_fault(
        a1.solve(
            SolveRequest::new(
                SolverConfig::new("ida"),
                ProblemSpec::Dataset("paper".into()),
            )
            .io_budget(1),
        )
        .unwrap_err(),
    );
    assert_eq!(fault.code, ErrorCode::IoBudgetExceeded);
    let partial = fault.partial_stats.expect("aborts carry partial stats");
    assert_eq!(partial.io.faults, 1, "charged exactly the budget");

    // Occupy the single worker with a deadline-doomed CPU-bound solve...
    let blocker = std::thread::spawn({
        let mut a1 = a1;
        move || {
            let err = a1
                .solve(
                    SolveRequest::new(SolverConfig::new("sspa"), blocker_problem())
                        .deadline(Duration::from_millis(750)),
                )
                .unwrap_err();
            (a1, server_fault(err))
        }
    });
    spin_until("the blocker to occupy the worker", || {
        gateway
            .instance()
            .tenant_stats_for(TENANT_A)
            .is_some_and(|s| s.in_flight == 1)
    });

    // ...queue tenant B's quick solve behind it (fills the global queue)...
    let queued_b = std::thread::spawn({
        let mut b1 = b1;
        move || {
            let reply = b1.solve(SolveRequest::new(
                SolverConfig::new("sspa"),
                quick_problem(),
            ));
            (b1, reply)
        }
    });
    spin_until("tenant B's solve to queue", || {
        gateway.instance().queue_len() == 1
    });

    // ...and observe both shedding variants as their own wire codes:
    // tenant B's second request trips B's one-slot quota, tenant A's
    // second request trips the full global queue.
    let fault = server_fault(
        b2.solve(SolveRequest::new(
            SolverConfig::new("sspa"),
            quick_problem(),
        ))
        .unwrap_err(),
    );
    assert_eq!(fault.code, ErrorCode::TenantQuotaExceeded);
    let fault = server_fault(
        a2.solve(SolveRequest::new(
            SolverConfig::new("sspa"),
            quick_problem(),
        ))
        .unwrap_err(),
    );
    assert_eq!(fault.code, ErrorCode::QueueFull);

    // The blocker comes back as a deadline abort (not a hang, not a drop).
    let (a1, fault) = blocker.join().unwrap();
    assert_eq!(fault.code, ErrorCode::DeadlineExceeded);
    assert!(fault.partial_stats.is_some());
    let (b1, queued_reply) = queued_b.join().unwrap();
    queued_reply.expect("tenant B's queued solve runs once the worker frees");

    // ---- Phase 2: both tenants solve concurrently against the dataset --
    let solver_names = ["ida", "nia"];
    let workers: Vec<_> = [(a1, TENANT_A), (b1, TENANT_B)]
        .into_iter()
        .map(|(mut client, tenant)| {
            std::thread::spawn(move || {
                for name in solver_names {
                    loop {
                        match client.solve(SolveRequest::new(
                            SolverConfig::new(name),
                            ProblemSpec::Dataset("paper".into()),
                        )) {
                            Ok(reply) => {
                                assert!(reply.matching.size() > 0, "{tenant:?}/{name}");
                                break;
                            }
                            // The shared queue is tiny; shedding is the
                            // backpressure signal, so re-offer.
                            Err(NetError::Server(fault))
                                if matches!(
                                    fault.code,
                                    ErrorCode::QueueFull | ErrorCode::TenantQuotaExceeded
                                ) =>
                            {
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            Err(other) => panic!("{tenant:?}/{name}: {other}"),
                        }
                    }
                }
                client
            })
        })
        .collect();
    let mut clients: Vec<NetClient> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    // ---- Stats: attribution, rates and cross-source accumulation -------
    let stats = clients[0].stats().unwrap().tenants;
    let a = stats
        .iter()
        .find(|s| s.tenant == TENANT_A)
        .expect("tenant A visible over the wire");
    let b = stats
        .iter()
        .find(|s| s.tenant == TENANT_B)
        .expect("tenant B visible over the wire");
    // Tenant A: 4 batch queries + the io-budget abort + the deadline
    // abort + 2 dataset solves. Tenant B: 3 solves. Shed counts are lower
    // bounds: phase 2's backpressure retries shed nondeterministically.
    assert_eq!(a.completed, 6, "batches and wire solves share one ledger");
    assert_eq!(a.aborted, 2);
    assert!(a.rejected >= 1, "tenant A saw the full global queue");
    assert_eq!(b.completed, 3);
    assert!(b.rejected >= 1, "tenant B tripped its own quota");
    assert!(a.qps > 0.0, "offered-rate meter saw tenant A");
    assert!(b.qps > 0.0, "offered-rate meter saw tenant B");

    // Every page fault since the snapshot happened under some tenant's
    // context: per-tenant attributed faults sum to the store-wide delta.
    let store_delta = data.tree().store().io_stats().since(&store_before);
    assert_eq!(
        a.io.faults + b.io.faults,
        store_delta.faults,
        "attributed I/O sums to the store's fault delta"
    );
    assert!(store_delta.faults > 0);

    server.shutdown();
    gateway.instance().tenant_stats();
}

/// PR 8: the approximate tier is reachable by name through the unchanged
/// wire protocol — `coreset` and `da` solve a loopback client's requests
/// end-to-end, admission and per-tenant attribution hold, and a doomed
/// I/O budget still surfaces as the same typed abort carrying exact
/// partial attribution.
#[test]
fn approximate_solvers_serve_by_name_with_attribution_and_typed_aborts() {
    let data = dataset();
    let store_before = data.tree().store().io_stats();
    let gateway = Arc::new(
        Gateway::builder()
            .serve_config(ServeConfig::default().workers(1).queue_capacity(4))
            .dataset("paper", Arc::clone(&data))
            .start(),
    );
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&gateway)).unwrap();
    let mut client = NetClient::connect(server.local_addr(), TENANT_A).unwrap();

    // Coreset against the disk-backed dataset: a genuinely subsampled run
    // (256 reps for 2 000 customers) must still return the full matching —
    // feasibility is by construction, γ = min(2 000, 8·300).
    let reply = client
        .solve(SolveRequest::new(
            SolverConfig::new("coreset")
                .coreset_size(256)
                .swap_passes(1),
            ProblemSpec::Dataset("paper".into()),
        ))
        .unwrap();
    assert_eq!(reply.matching.size(), 2_000, "lifted matching is full-size");

    // Deterministic annealing on an inline problem, same wire path.
    let reply = client
        .solve(SolveRequest::new(SolverConfig::new("da"), quick_problem()))
        .unwrap();
    assert_eq!(reply.matching.size(), 60, "da hardens to a full matching");

    // A 1-fault budget cannot even sweep the customer pages: the abort
    // comes back as the existing typed wire error with exact partial
    // attribution, no new protocol surface.
    let fault = server_fault(
        client
            .solve(
                SolveRequest::new(
                    SolverConfig::new("coreset"),
                    ProblemSpec::Dataset("paper".into()),
                )
                .io_budget(1),
            )
            .unwrap_err(),
    );
    assert_eq!(fault.code, ErrorCode::IoBudgetExceeded);
    let partial = fault.partial_stats.expect("aborts carry partial stats");
    assert_eq!(partial.io.faults, 1, "charged exactly the budget");

    // Admission ledger and I/O attribution cover the approximate tier like
    // any other solver: 2 completions + 1 abort, and tenant A's attributed
    // faults equal the store-wide delta (it was the only tenant).
    let stats = client.stats().unwrap().tenants;
    let a = stats
        .iter()
        .find(|s| s.tenant == TENANT_A)
        .expect("tenant A visible over the wire");
    assert_eq!(a.completed, 2);
    assert_eq!(a.aborted, 1);
    let store_delta = data.tree().store().io_stats().since(&store_before);
    assert_eq!(a.io.faults, store_delta.faults, "attribution sums exactly");
    assert!(store_delta.faults > 0, "the dataset solve faulted pages");

    server.shutdown();
}

#[test]
fn version_mismatch_and_garbage_frames_get_typed_errors() {
    let gateway = Arc::new(
        Gateway::builder()
            .serve_config(ServeConfig::default().workers(1).queue_capacity(2))
            .start(),
    );
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&gateway)).unwrap();
    let addr = server.local_addr();
    let max = gateway.max_frame();

    // A client speaking the wrong protocol version is told so and cut off.
    {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        let hello = Hello {
            tenant: TENANT_A,
            version: PROTOCOL_VERSION + 1,
        };
        codec::send_message(&mut stream, &hello, max).unwrap();
        let reply: NetResponse = codec::recv_message(&mut stream, max).unwrap().unwrap();
        match reply {
            NetResponse::Error(fault) => assert_eq!(fault.code, ErrorCode::VersionMismatch),
            other => panic!("expected version mismatch, got {other:?}"),
        }
        assert!(
            codec::recv_message::<NetResponse>(&mut stream, max)
                .unwrap()
                .is_none(),
            "server closes a mismatched connection"
        );
    }

    // A well-framed but undecodable payload gets a BadRequest *and keeps
    // the connection alive* (framing never desynchronised).
    {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        codec::send_message(&mut stream, &Hello::new(TENANT_A), max).unwrap();
        let ack: NetResponse = codec::recv_message(&mut stream, max).unwrap().unwrap();
        assert!(matches!(ack, NetResponse::Hello(_)));

        codec::write_frame(&mut stream, b"}{ definitely not a request", max).unwrap();
        let reply: NetResponse = codec::recv_message(&mut stream, max).unwrap().unwrap();
        match reply {
            NetResponse::Error(fault) => assert_eq!(fault.code, ErrorCode::BadRequest),
            other => panic!("expected bad request, got {other:?}"),
        }

        codec::send_message(&mut stream, &NetRequest::Ping, max).unwrap();
        let reply: NetResponse = codec::recv_message(&mut stream, max).unwrap().unwrap();
        assert!(matches!(reply, NetResponse::Pong), "connection survived");
    }

    // Priority still rides the wire end-to-end after a reconnect.
    let mut client = NetClient::connect(addr, TENANT_B).unwrap();
    let reply = client
        .solve(
            SolveRequest::new(
                SolverConfig::new("sspa"),
                ProblemSpec::Inline {
                    providers: vec![(cca::geo::Point::new(0.0, 0.0), 4)],
                    customers: vec![cca::geo::Point::new(1.0, 1.0)],
                },
            )
            .priority(Priority::High),
        )
        .unwrap();
    assert_eq!(reply.matching.size(), 1);

    server.shutdown();
}
