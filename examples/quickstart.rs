//! Quickstart: build a small CCA instance and solve it exactly.
//!
//! Run with: `cargo run --release --example quickstart`

use cca::geo::Point;
use cca::{SolverConfig, SpatialAssignment};

fn main() {
    // Three wireless access points with limited client slots (the paper's
    // running example: WiFi receivers vs. access points, Figure 1).
    let providers = vec![
        (Point::new(200.0, 300.0), 3), // q1, capacity 3
        (Point::new(500.0, 500.0), 5), // q2, capacity 5
        (Point::new(800.0, 250.0), 3), // q3, capacity 3
    ];

    // Twelve receivers scattered around them.
    let customers = vec![
        Point::new(120.0, 80.0),  // p1 — far from everyone
        Point::new(210.0, 310.0), // p2..p4 near q1
        Point::new(190.0, 280.0),
        Point::new(230.0, 330.0),
        Point::new(480.0, 520.0), // p5..p9 near q2
        Point::new(520.0, 480.0),
        Point::new(510.0, 530.0),
        Point::new(460.0, 470.0),
        Point::new(540.0, 510.0),
        Point::new(790.0, 260.0), // p10..p12 near q3
        Point::new(820.0, 240.0),
        Point::new(780.0, 230.0),
    ];

    let instance = SpatialAssignment::build(providers, customers);
    println!(
        "instance: |Q| = {}, |P| = {}, gamma = {}",
        instance.providers().len(),
        instance.customers().len(),
        instance.gamma()
    );

    // IDA is the paper's best exact algorithm (§5.2); solvers are looked
    // up by name through the registry-backed config API.
    let result = instance
        .run_config(&SolverConfig::new("ida"))
        .expect("ida is registered");
    result.validate().expect("matching must be valid");

    println!("optimal assignment cost Ψ(M) = {:.2}", result.cost());
    println!("subgraph edges |Esub|      = {}", result.stats.esub_edges);
    println!("page faults                = {}", result.stats.io.faults);
    let mut pairs = result.matching.pairs.clone();
    pairs.sort_by_key(|p| (p.provider, p.customer));
    for p in &pairs {
        println!(
            "  provider q{} <- customer p{} (distance {:.1})",
            p.provider + 1,
            p.customer + 1,
            p.dist
        );
    }

    // Capacity totals 11 < 12 customers: exactly one receiver (the remote
    // p1) stays unserved, as in Figure 1 of the paper.
    let assigned: Vec<u64> = pairs.iter().map(|p| p.customer).collect();
    let unserved: Vec<u64> = (0..12).filter(|c| !assigned.contains(c)).collect();
    println!("unserved customers: {unserved:?}");
}
