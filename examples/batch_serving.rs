//! Batch serving: one loaded instance answering many assignment queries in
//! parallel over its shared R-tree — the shape of the serving workload the
//! roadmap grows toward.
//!
//! Run with: `cargo run --release --example batch_serving`

use std::time::Instant;

use cca::core::RefineMethod;
use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::{SolverConfig, SpatialAssignment};

fn main() {
    // One shared instance, as a long-lived service would hold.
    let cfg = WorkloadConfig {
        num_providers: 40,
        num_customers: 8_000,
        capacity: CapacitySpec::Fixed(50),
        q_dist: SpatialDistribution::Clustered,
        p_dist: SpatialDistribution::Clustered,
        seed: 42,
    };
    let w = cfg.generate();
    // A serving instance opts into the sharded buffer pool (8 ways here) so
    // concurrent workers fault pages independently; paper experiments use
    // the default single-shard build for machine-independent I/O numbers.
    let instance =
        SpatialAssignment::build_with_storage_sharded(w.providers, w.customers, 1024, 1.0, 8);
    println!(
        "instance: |Q| = {}, |P| = {}, shards = {}, gamma = {}",
        instance.providers().len(),
        instance.customers().len(),
        instance.tree().store().num_shards(),
        instance.gamma()
    );

    // A mixed query stream: exact solves next to approximations at several
    // quality/latency trade-offs — every solver goes through the registry.
    let mut queries = Vec::new();
    for delta in [10.0, 20.0, 40.0] {
        queries.push(SolverConfig::new("ca").delta(delta));
        queries.push(
            SolverConfig::new("ca")
                .delta(delta)
                .refine(RefineMethod::ExclusiveNn),
        );
        queries.push(SolverConfig::new("sa").delta(delta));
    }
    queries.push(SolverConfig::new("ida"));
    queries.push(SolverConfig::new("ida-grouped").group_size(8));
    queries.push(SolverConfig::new("nia"));

    let runner = instance.batch();

    let t0 = Instant::now();
    let sequential = runner
        .run_sequential(&queries)
        .expect("all queries name registered solvers");
    let seq_wall = t0.elapsed();

    let t0 = Instant::now();
    let parallel = runner.run(&queries).expect("same queries, same registry");
    let par_wall = t0.elapsed();

    println!(
        "\n{} queries | sequential {:.2?} | parallel {:.2?} ({} workers available)",
        queries.len(),
        seq_wall,
        par_wall,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    println!(
        "batch I/O: {} faults, {:.1}% buffer hits",
        parallel.io.faults,
        100.0 * parallel.io.hit_ratio()
    );

    println!(
        "\n{:<6} {:<6} {:>12} {:>10} {:>10} {:>8} {:>9}",
        "query", "algo", "cost", "|Esub|", "cpu", "faults", "io(s)"
    );
    for r in &parallel.results {
        println!(
            "{:<6} {:<6} {:>12.1} {:>10} {:>10.2?} {:>8} {:>9.2}",
            r.index,
            r.label,
            r.matching.cost(),
            r.stats.esub_edges,
            r.stats.cpu_time,
            r.stats.io.faults,
            r.stats.io_time_s()
        );
    }

    // Per-query I/O is attributed through IoSessions, so disjoint queries
    // partition the batch's buffer-pool traffic exactly.
    let fault_sum: u64 = parallel.results.iter().map(|r| r.stats.io.faults).sum();
    assert_eq!(fault_sum, parallel.io.faults);
    println!(
        "\nper-query faults sum to the batch aggregate: {} = {}",
        fault_sum, parallel.io.faults
    );

    // Parallel execution must not change any result.
    for (s, p) in sequential.results.iter().zip(&parallel.results) {
        assert_eq!(s.matching.pairs, p.matching.pairs, "query {}", s.index);
    }
    println!("\nparallel results identical to sequential — determinism holds");
}
