//! Serving demo: submit / deadline / shed on a mixed workload.
//!
//! One loaded instance behind the `cca-serve` scheduler: a burst of mixed
//! queries is submitted against a deliberately small admission queue, so
//! the run shows all three serving outcomes —
//!
//! * **completed** results (high-priority queries overtake the backlog),
//! * **aborted** partial results (queries carrying a tight I/O budget or
//!   deadline stop cooperatively, with their partial I/O attributed
//!   exactly),
//! * **shed** requests (`Rejected::QueueFull` once the backlog is at
//!   capacity — admission itself is a capacity decision).
//!
//! Run with: `cargo run --release --example serving`

use std::time::{Duration, Instant};

use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::serve::{serve, Rejected, Request, ServeConfig};
use cca::{Priority, QueryContext, SolverConfig, SolverRegistry, SpatialAssignment};

/// One query of the burst: config plus its serving parameters.
struct Query {
    name: &'static str,
    config: SolverConfig,
    priority: Priority,
    io_budget: Option<u64>,
    deadline: Option<Duration>,
}

impl Query {
    fn new(name: &'static str, config: SolverConfig, priority: Priority) -> Self {
        Query {
            name,
            config,
            priority,
            io_budget: None,
            deadline: None,
        }
    }

    fn io_budget(mut self, faults: u64) -> Self {
        self.io_budget = Some(faults);
        self
    }

    fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }
}

/// What one serving request produced (for the summary table).
struct Served {
    name: &'static str,
    priority: Priority,
    outcome: String,
    matched: usize,
    faults: u64,
}

fn main() {
    // One shared instance, as a long-lived service would hold it; the
    // sharded pool lets workers fault pages independently.
    let w = WorkloadConfig {
        num_providers: 32,
        num_customers: 10_000,
        capacity: CapacitySpec::Fixed(40),
        q_dist: SpatialDistribution::Clustered,
        p_dist: SpatialDistribution::Clustered,
        seed: 77,
    }
    .generate();
    let instance =
        SpatialAssignment::build_with_storage_sharded(w.providers, w.customers, 1024, 2.0, 8);
    println!(
        "instance: |Q| = {}, |P| = {}, gamma = {}, {} shard(s)\n",
        instance.providers().len(),
        instance.customers().len(),
        instance.gamma(),
        instance.tree().store().num_shards()
    );

    // A burst of mixed queries: exact solves, approximations, a few
    // latency-capped probes.
    let registry = SolverRegistry::with_defaults();
    let burst = vec![
        Query::new("ida", SolverConfig::new("ida"), Priority::Normal),
        Query::new("ida/budget", SolverConfig::new("ida"), Priority::Normal).io_budget(40),
        Query::new(
            "ca δ=10",
            SolverConfig::new("ca").delta(10.0),
            Priority::High,
        ),
        Query::new("ida/expired", SolverConfig::new("ida"), Priority::Low).deadline(Duration::ZERO),
        Query::new("nia", SolverConfig::new("nia"), Priority::Low),
        Query::new(
            "ida-grouped",
            SolverConfig::new("ida-grouped").group_size(8),
            Priority::Normal,
        ),
        Query::new(
            "sa δ=20",
            SolverConfig::new("sa").delta(20.0),
            Priority::Normal,
        ),
        Query::new(
            "ria θ=20",
            SolverConfig::new("ria").theta(20.0),
            Priority::Low,
        )
        .io_budget(60),
        Query::new("ida #2", SolverConfig::new("ida"), Priority::Critical),
        Query::new(
            "ca δ=20",
            SolverConfig::new("ca").delta(20.0),
            Priority::Normal,
        ),
    ];
    let solvers: Vec<_> = burst
        .iter()
        .map(|q| registry.build(&q.config).expect("registered"))
        .collect();

    // A small queue (2 workers, 6 backlog permits) so the tail of the
    // burst is shed — the admission decision the serving layer makes
    // explicit instead of queueing unboundedly.
    let config = ServeConfig::default()
        .workers(2)
        .queue_capacity(6)
        .aging_period(4);
    let t0 = Instant::now();
    let (served, shed) = serve(config, |handle| {
        let mut tickets = Vec::new();
        let mut shed = Vec::new();
        for (i, query) in burst.iter().enumerate() {
            let mut ctx = QueryContext::new().with_priority(query.priority);
            if let Some(faults) = query.io_budget {
                ctx = ctx.with_io_budget(faults);
            }
            if let Some(d) = query.deadline {
                ctx = ctx.with_timeout(d);
            }
            let solver = &*solvers[i];
            let instance = &instance;
            let request = Request::new(move |ctx: &QueryContext| {
                let outcome = solver.run(&instance.problem().with_context(ctx));
                let reason = outcome.abort_reason();
                let (matching, stats) = outcome.into_parts();
                (matching, stats, reason)
            })
            .context(ctx);
            match handle.submit(request) {
                Ok(ticket) => tickets.push((i, ticket)),
                // Everything here runs as one (default) tenant, so only the
                // global capacity sheds; `examples/tenants.rs` shows the
                // per-tenant quota rejections.
                Err(Rejected::QueueFull { capacity }) => shed.push((query.name, capacity)),
                Err(rejected @ Rejected::TenantQuotaExceeded { .. }) => {
                    unreachable!("no tenant quotas configured: {rejected}")
                }
            }
        }
        let served: Vec<Served> = tickets
            .into_iter()
            .map(|(i, ticket)| {
                let (matching, stats, reason) = ticket.wait();
                Served {
                    name: burst[i].name,
                    priority: burst[i].priority,
                    outcome: match reason {
                        None => "complete".to_string(),
                        Some(r) => format!("aborted: {r}"),
                    },
                    matched: matching.size() as usize,
                    faults: stats.io.faults,
                }
            })
            .collect();
        (served, shed)
    });

    println!(
        "{:<14} {:>9} {:>8} {:>7}  outcome",
        "query", "priority", "matched", "faults"
    );
    for s in &served {
        println!(
            "{:<14} {:>9} {:>8} {:>7}  {}",
            s.name,
            format!("{:?}", s.priority),
            s.matched,
            s.faults,
            s.outcome
        );
    }
    for (name, capacity) in &shed {
        println!(
            "{name:<14} {:>9} {:>8} {:>7}  shed: queue full ({capacity})",
            "-", "-", "-"
        );
    }
    println!(
        "\n{} served ({} complete, {} aborted), {} shed, wall {:?}",
        served.len(),
        served.iter().filter(|s| s.outcome == "complete").count(),
        served.iter().filter(|s| s.outcome != "complete").count(),
        shed.len(),
        t0.elapsed()
    );
}
