//! WiFi capacity planning with the exact/approximate trade-off (§4).
//!
//! The paper's abstract scenario: WiFi receivers (customers) must be bound
//! to access points (providers) with limited client slots. A network
//! operator re-plans bindings frequently, so response time matters; this
//! example sweeps the CA approximation's δ knob against exact IDA to show
//! the quality/time trade-off of Figure 14, and checks Theorem 4's bound.
//!
//! Run with: `cargo run --release --example wifi_planning`

use std::time::Instant;

use cca::core::{ca_error_bound, RefineMethod};
use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::{SolverConfig, SpatialAssignment};

fn main() {
    // A dense deployment: 60 access points x 40 client slots, 5000 receivers
    // clustered in hotspots.
    let cfg = WorkloadConfig {
        num_providers: 60,
        num_customers: 5000,
        capacity: CapacitySpec::Fixed(40),
        q_dist: SpatialDistribution::Clustered,
        p_dist: SpatialDistribution::Clustered,
        seed: 7,
    };
    let w = cfg.generate();
    let instance = SpatialAssignment::build(w.providers.clone(), w.customers.clone());
    println!(
        "deployment: {} APs x 40 slots, {} receivers, gamma = {}",
        w.providers.len(),
        w.customers.len(),
        instance.gamma()
    );

    // Exact reference.
    let t0 = Instant::now();
    let exact = instance
        .run_config(&SolverConfig::new("ida"))
        .expect("ida is registered");
    let exact_wall = t0.elapsed();
    exact.validate().expect("exact matching valid");
    println!(
        "\nexact IDA: cost = {:.0}, wall = {exact_wall:?}, charged I/O = {:.2}s",
        exact.cost(),
        exact.stats.io_time_s()
    );

    // CA sweep over δ (the Figure 14 axis).
    println!(
        "\n{:<8} {:>10} {:>9} {:>12} {:>12} {:>10}",
        "delta", "cost", "quality", "bound-ok", "wall", "|Esub|"
    );
    for delta in [5.0, 10.0, 20.0, 40.0, 80.0, 160.0] {
        let t0 = Instant::now();
        let approx = instance
            .run_config(
                &SolverConfig::new("ca")
                    .delta(delta)
                    .refine(RefineMethod::ExclusiveNn),
            )
            .expect("ca is registered");
        let wall = t0.elapsed();
        approx.validate().expect("approximate matching valid");
        let quality = approx.cost() / exact.cost();
        let bound = ca_error_bound(instance.gamma(), delta);
        let within = approx.cost() - exact.cost() <= bound + 1e-6;
        println!(
            "{:<8} {:>10.0} {:>9.4} {:>12} {:>12.2?} {:>10}",
            delta,
            approx.cost(),
            quality,
            if within { "yes" } else { "VIOLATED" },
            wall,
            approx.stats.esub_edges
        );
        assert!(within, "Theorem 4 must hold");
    }

    println!(
        "\nreading: small delta ~ near-optimal but slower; large delta trades \
         quality for speed — the shape of Figure 14."
    );
}
