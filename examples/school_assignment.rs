//! School assignment: the paper's motivating municipal scenario (§1).
//!
//! "The municipality could assign children to schools (with certain capacity
//! each) such that the average traveling distance of children to their
//! schools is minimized."
//!
//! This example generates a clustered city on a synthetic road network,
//! compares the optimal CCA assignment (IDA) against the naive
//! nearest-school policy, and shows why the naive policy is infeasible.
//!
//! Run with: `cargo run --release --example school_assignment`

use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::geo::Point;
use cca::{SolverConfig, SpatialAssignment};

fn main() {
    // 12 schools with 260 seats each; 3000 children, both clustered (dense
    // neighbourhoods plus suburban sprawl, 80/20 as in the paper's §5.1).
    let cfg = WorkloadConfig {
        num_providers: 12,
        num_customers: 3000,
        capacity: CapacitySpec::Fixed(260),
        q_dist: SpatialDistribution::Clustered,
        p_dist: SpatialDistribution::Clustered,
        seed: 42,
    };
    let w = cfg.generate();
    let instance = SpatialAssignment::build(w.providers.clone(), w.customers.clone());
    println!(
        "city: {} schools x 260 seats, {} children (gamma = {})",
        w.providers.len(),
        w.customers.len(),
        instance.gamma()
    );

    // --- naive policy: every child to the nearest school -----------------
    let mut naive_load = vec![0u32; w.providers.len()];
    let mut naive_cost = 0.0;
    for &child in &w.customers {
        let (best, d) = w
            .providers
            .iter()
            .enumerate()
            .map(|(i, &(s, _))| (i, s.dist(&child)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one school");
        naive_load[best] += 1;
        naive_cost += d;
    }
    let overfull: Vec<(usize, u32)> = naive_load
        .iter()
        .enumerate()
        .filter(|&(_, &l)| l > 260)
        .map(|(i, &l)| (i, l))
        .collect();
    println!("\nnearest-school policy (the Voronoi assignment of Figure 1):");
    println!("  total distance        = {:.0}", naive_cost);
    println!(
        "  schools over capacity = {} of {} {:?}",
        overfull.len(),
        w.providers.len(),
        overfull
    );
    println!("  => infeasible: capacities are violated");

    // --- optimal CCA ------------------------------------------------------
    let result = instance
        .run_config(&SolverConfig::new("ida"))
        .expect("ida is registered");
    result.validate().expect("CCA matching is valid");
    println!("\noptimal CCA (IDA):");
    println!("  total distance        = {:.0}", result.cost());
    println!("  matched children      = {}", result.matching.size());
    let load = result.matching.provider_load(w.providers.len());
    println!(
        "  max school load       = {} (cap 260)",
        load.iter().max().unwrap()
    );
    println!(
        "  mean walk per child   = {:.1} map units",
        result.cost() / result.matching.size() as f64
    );
    println!(
        "  |Esub| explored       = {} (complete graph would be {})",
        result.stats.esub_edges,
        w.providers.len() * w.customers.len()
    );

    // --- how much does feasibility cost? ----------------------------------
    // The optimal feasible cost is necessarily >= the infeasible lower
    // bound; the gap is the price of respecting seat counts.
    let price = result.cost() / naive_cost;
    println!("\nprice of capacity constraints: {price:.3}x the (infeasible) Voronoi cost");

    // Children that travel farthest under the optimal plan — the ones a
    // planner would inspect first.
    let mut pairs = result.matching.pairs.clone();
    pairs.sort_by(|a, b| b.dist.total_cmp(&a.dist));
    println!("\nlongest five commutes:");
    for p in pairs.iter().take(5) {
        println!(
            "  child at {} -> school q{} ({:.1} units)",
            fmt_point(p.customer_pos),
            p.provider,
            p.dist
        );
    }
}

fn fmt_point(p: Point) -> String {
    format!("({:.0}, {:.0})", p.x, p.y)
}
