//! Public-clinic assignment under mismatched distributions (§5.2, Fig. 13).
//!
//! The paper's third scenario: "the assignment of residents to designated,
//! public clinics of given individual capacities". The hard case its
//! evaluation highlights is when providers and customers follow *different*
//! distributions — e.g. clinics placed uniformly across a city while
//! residents crowd into a few neighbourhoods. This example measures all
//! four U/C combinations and mixed clinic capacities (Fig. 12's axis).
//!
//! Run with: `cargo run --release --example clinic_dispatch`

use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::{SolverConfig, SpatialAssignment};

fn run_combo(
    q_dist: SpatialDistribution,
    p_dist: SpatialDistribution,
    capacity: CapacitySpec,
) -> (String, f64, u64, u64) {
    let cfg = WorkloadConfig {
        num_providers: 40,
        num_customers: 4000,
        capacity,
        q_dist,
        p_dist,
        seed: 99,
    };
    let w = cfg.generate();
    let instance = SpatialAssignment::build(w.providers, w.customers);
    let r = instance
        .run_config(&SolverConfig::new("ida"))
        .expect("ida is registered");
    r.validate().expect("valid matching");
    (
        format!("{}vs{}", q_dist.label(), p_dist.label()),
        r.cost(),
        r.stats.esub_edges,
        r.stats.io.faults,
    )
}

fn main() {
    println!("clinics = 40, residents = 4000, capacity k = 110 (fixed)\n");
    println!(
        "{:<8} {:>12} {:>10} {:>8}   note",
        "combo", "cost", "|Esub|", "faults"
    );
    let mut esub_same = 0u64;
    let mut esub_cross = 0u64;
    for (qd, pd) in [
        (SpatialDistribution::Uniform, SpatialDistribution::Uniform),
        (SpatialDistribution::Uniform, SpatialDistribution::Clustered),
        (SpatialDistribution::Clustered, SpatialDistribution::Uniform),
        (
            SpatialDistribution::Clustered,
            SpatialDistribution::Clustered,
        ),
    ] {
        let (label, cost, esub, faults) = run_combo(qd, pd, CapacitySpec::Fixed(110));
        let note = match (qd, pd) {
            (SpatialDistribution::Uniform, SpatialDistribution::Clustered) => {
                "clinics far from crowded districts compete for residents"
            }
            (SpatialDistribution::Clustered, SpatialDistribution::Uniform) => {
                "co-located clinics must reach far to fill capacity"
            }
            _ => "matched distributions: local assignments suffice",
        };
        println!("{label:<8} {cost:>12.0} {esub:>10} {faults:>8}   {note}");
        if qd == pd {
            esub_same = esub_same.max(esub);
        } else {
            esub_cross = esub_cross.max(esub);
        }
    }
    println!(
        "\ncross-distribution instances explore {:.1}x more edges than matched \
         ones — the effect behind Figure 13.",
        esub_cross as f64 / esub_same as f64
    );

    // Mixed capacities (Figure 12): heterogeneous clinics change nothing
    // about feasibility or the algorithms' pruning.
    println!("\nmixed clinic capacities (range 55~165, same expected total):");
    let (label, cost, esub, faults) = run_combo(
        SpatialDistribution::Clustered,
        SpatialDistribution::Clustered,
        CapacitySpec::Mixed { lo: 55, hi: 165 },
    );
    println!("{label:<8} {cost:>12.0} {esub:>10} {faults:>8}   (CvsC, mixed k)");
}
