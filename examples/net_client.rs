//! Network serving demo, client side: typed solves, typed failures and
//! per-tenant stats over TCP.
//!
//! Connects to a running `net_server` example, then walks through the
//! protocol: a ping, a solve against the preloaded `"paper"` dataset, an
//! inline solve (the problem rides the request), a deliberately
//! impossible I/O budget (to show a typed abort with partial stats) and
//! finally the per-tenant stats view.
//!
//! Run with: `cargo run --release --example net_client [addr] [tenant]`
//! (defaults: `127.0.0.1:4708`, tenant 1).

use std::time::Duration;

use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::{Priority, SolverConfig, TenantId};
use cca_net::{NetClient, NetError, ProblemSpec, SolveRequest};

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:4708".to_string());
    let tenant = TenantId(
        std::env::args()
            .nth(2)
            .and_then(|t| t.parse().ok())
            .unwrap_or(1),
    );

    let mut client = match NetClient::connect(addr.as_str(), tenant) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("cannot reach {addr}: {e}");
            eprintln!("start the server first: cargo run --release --example net_server");
            std::process::exit(1);
        }
    };
    client.ping().expect("ping");
    println!("connected to {addr} as tenant {}", tenant.0);

    // A solve against the server-side dataset: only config + knobs travel.
    // On slow hardware the deadline may fire — that comes back as a typed
    // abort with partial attribution, same as any other.
    match client.solve(
        SolveRequest::new(
            SolverConfig::new("ida"),
            ProblemSpec::Dataset("paper".into()),
        )
        .priority(Priority::High)
        .deadline(Duration::from_secs(120)),
    ) {
        Ok(reply) => println!(
            "dataset solve: |M| = {}, cost = {:.1}, {} faults, {:?} cpu",
            reply.matching.size(),
            reply.matching.cost(),
            reply.stats.io.faults,
            reply.stats.cpu_time
        ),
        Err(NetError::Server(fault)) => {
            let partial = fault.partial_stats.as_ref().expect("partial stats");
            println!(
                "dataset solve: {} after {:?} cpu, {} faults charged",
                fault.code, partial.cpu_time, partial.io.faults
            );
        }
        Err(e) => panic!("dataset solve: {e}"),
    }

    // An inline solve: the problem data rides the request frame.
    let w = WorkloadConfig {
        num_providers: 6,
        num_customers: 500,
        capacity: CapacitySpec::Fixed(100),
        q_dist: SpatialDistribution::Uniform,
        p_dist: SpatialDistribution::Uniform,
        seed: 7,
    }
    .generate();
    let reply = client
        .solve(SolveRequest::new(
            SolverConfig::new("sspa"),
            ProblemSpec::Inline {
                providers: w.providers,
                customers: w.customers,
            },
        ))
        .expect("inline solve");
    println!(
        "inline solve:  |M| = {}, cost = {:.1} (optimal, in-memory)",
        reply.matching.size(),
        reply.matching.cost()
    );

    // An impossible I/O budget: the abort comes back as a typed error
    // with the query's exact partial attribution, not a silent drop.
    match client.solve(
        SolveRequest::new(
            SolverConfig::new("ida"),
            ProblemSpec::Dataset("paper".into()),
        )
        .io_budget(1),
    ) {
        Err(NetError::Server(fault)) => {
            let partial = fault.partial_stats.as_ref().expect("partial stats");
            println!(
                "budgeted solve: {} — partial run charged {} fault(s)",
                fault.code, partial.io.faults
            );
        }
        other => panic!("expected a typed abort, got {other:?}"),
    }

    // The serving stats, as the gateway sees them (all tenants).
    println!("tenant stats:");
    for s in client.stats().expect("stats").tenants {
        println!(
            "  tenant {:>3}: {:.2} qps, {} completed, {} aborted, {} shed, {} faults",
            s.tenant.0, s.qps, s.completed, s.aborted, s.rejected, s.io.faults
        );
    }
}
