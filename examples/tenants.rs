//! Multi-tenant serving demo: two weighted tenants sharing one instance.
//!
//! One loaded instance behind the two-level `cca-serve` scheduler:
//!
//! * **gold** (weight 3) submits a modest mixed-priority batch;
//! * **bronze** (weight 1, 6 queue slots, in-flight cap 1) floods the
//!   scheduler with many high-priority requests.
//!
//! Despite bronze bidding everything at high priority, level 1 dispatches
//! by weighted deficit-round-robin — gold gets ~3× bronze's share while
//! both are backlogged — and bronze's flood beyond its queue-slot quota is
//! shed with `Rejected::TenantQuotaExceeded` while gold keeps submitting
//! freely. The run ends with the operator's per-tenant [`TenantStats`]
//! table: dispatches, aborts, cumulative attributed I/O and latency.
//!
//! Run with: `cargo run --release --example tenants`

use std::time::Instant;

use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::serve::{serve, Rejected, Request, ServeConfig};
use cca::{
    Priority, QueryContext, SolverConfig, SolverRegistry, SpatialAssignment, TenantId, TenantQuota,
    TenantStats,
};

const GOLD: TenantId = TenantId(1);
const BRONZE: TenantId = TenantId(2);

fn tenant_name(t: TenantId) -> &'static str {
    match t {
        GOLD => "gold",
        BRONZE => "bronze",
        _ => "anon",
    }
}

fn main() {
    let w = WorkloadConfig {
        num_providers: 24,
        num_customers: 8_000,
        capacity: CapacitySpec::Fixed(40),
        q_dist: SpatialDistribution::Clustered,
        p_dist: SpatialDistribution::Clustered,
        seed: 5,
    }
    .generate();
    let instance =
        SpatialAssignment::build_with_storage_sharded(w.providers, w.customers, 1024, 4.0, 8);
    println!(
        "instance: |Q| = {}, |P| = {}, gamma = {}\n",
        instance.providers().len(),
        instance.customers().len(),
        instance.gamma()
    );

    let registry = SolverRegistry::with_defaults();
    // gold: a modest batch of mixed priorities. bronze: a flood, all High.
    let gold_burst: Vec<(SolverConfig, Priority)> = vec![
        (SolverConfig::new("ida"), Priority::Normal),
        (SolverConfig::new("ca").delta(10.0), Priority::High),
        (
            SolverConfig::new("ida-grouped").group_size(8),
            Priority::Low,
        ),
        (SolverConfig::new("ida"), Priority::Normal),
        (SolverConfig::new("ca").delta(20.0), Priority::Normal),
        (SolverConfig::new("ida"), Priority::Critical),
    ];
    let bronze_flood: Vec<(SolverConfig, Priority)> = (0..16)
        .map(|_| (SolverConfig::new("ida"), Priority::High))
        .collect();
    let bursts: Vec<(TenantId, &[(SolverConfig, Priority)])> =
        vec![(GOLD, &gold_burst), (BRONZE, &bronze_flood)];
    let solvers: Vec<(TenantId, Priority, _)> = bursts
        .iter()
        .flat_map(|&(tenant, burst)| {
            let registry = &registry;
            burst.iter().map(move |(config, priority)| {
                (
                    tenant,
                    *priority,
                    registry.build(config).expect("registered"),
                )
            })
        })
        .collect();

    // gold is weighted 3:1 over bronze, and bronze is boxed in: 6 backlog
    // permits, one query running at a time.
    let config = ServeConfig::default()
        .workers(2)
        .queue_capacity(64)
        .aging_period(4)
        .tenant_quota(GOLD, TenantQuota::default().weight(3))
        .tenant_quota(
            BRONZE,
            TenantQuota::default()
                .weight(1)
                .queue_slots(6)
                .max_in_flight(1),
        );
    let t0 = Instant::now();
    let (stats, shed) = serve(config, |handle| {
        let mut tickets = Vec::new();
        let mut shed: Vec<(TenantId, Rejected)> = Vec::new();
        for (tenant, priority, solver) in &solvers {
            let instance = &instance;
            let request = Request::new(move |ctx: &QueryContext| {
                solver
                    .run(&instance.problem().with_context(ctx))
                    .is_complete()
            })
            .context(
                QueryContext::new()
                    .with_tenant(*tenant)
                    .with_priority(*priority),
            );
            match handle.submit(request) {
                Ok(ticket) => tickets.push(ticket),
                Err(rejected) => shed.push((*tenant, rejected)),
            }
        }
        for ticket in tickets {
            ticket.wait();
        }
        (handle.tenant_stats(), shed)
    });

    println!(
        "{:<8} {:>6} {:>9} {:>10} {:>8} {:>7} {:>8} {:>11} {:>10}",
        "tenant",
        "weight",
        "submitted",
        "dispatched",
        "complete",
        "shed",
        "faults",
        "io-cost",
        "mean-lat"
    );
    for s in &stats {
        print_row(s);
    }
    if let Some((tenant, rejected)) = shed.first() {
        println!(
            "\n{} request(s) shed, all {}'s: \"{rejected}\"",
            shed.len(),
            tenant_name(*tenant)
        );
    }
    println!("wall {:?}", t0.elapsed());
}

fn print_row(s: &TenantStats) {
    println!(
        "{:<8} {:>6} {:>9} {:>10} {:>8} {:>7} {:>8} {:>9.0}ms {:>8.1}ms",
        tenant_name(s.tenant),
        s.weight,
        s.submitted,
        s.dispatched,
        s.completed,
        s.rejected,
        s.io.faults,
        s.charged_io_ms(),
        s.mean_latency().as_secs_f64() * 1e3,
    );
}
