//! Network serving demo, server side: a TCP gateway over one persistent
//! serving instance.
//!
//! Builds a disk-backed dataset (preloaded as `"paper"`), starts a
//! [`cca_net::Gateway`] with a bounded queue and a per-tenant quota for
//! tenant 2, binds a loopback TCP server and serves until killed. Pair it
//! with the `net_client` example:
//!
//! ```text
//! cargo run --release --example net_server             # terminal 1
//! cargo run --release --example net_client             # terminal 2
//! ```
//!
//! Run with: `cargo run --release --example net_server [addr]`
//! (default address `127.0.0.1:4708`).

use std::sync::Arc;
use std::time::Duration;

use cca::datagen::{CapacitySpec, SpatialDistribution, WorkloadConfig};
use cca::{ServeConfig, SpatialAssignment, TenantId, TenantQuota};
use cca_net::{Gateway, NetServer};

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:4708".to_string());

    println!("building dataset `paper` (16 providers, 8k customers)…");
    let w = WorkloadConfig {
        num_providers: 16,
        num_customers: 8_000,
        capacity: CapacitySpec::Fixed(600),
        q_dist: SpatialDistribution::Clustered,
        p_dist: SpatialDistribution::Clustered,
        seed: 2008,
    }
    .generate();
    let data = Arc::new(SpatialAssignment::build_with_storage_sharded(
        w.providers,
        w.customers,
        1024,
        8.0,
        8,
    ));

    let gateway = Arc::new(
        Gateway::builder()
            .serve_config(
                ServeConfig::default()
                    .workers(4)
                    .queue_capacity(32)
                    // Tenant 2 is deliberately throttled so the client
                    // demo can show quota shedding.
                    .tenant_quota(TenantId(2), TenantQuota::default().queue_slots(2).weight(1)),
            )
            .dataset("paper", Arc::clone(&data))
            .start(),
    );

    let server = NetServer::bind(addr.as_str(), Arc::clone(&gateway)).expect("bind");
    println!("serving on {} — Ctrl+C to stop", server.local_addr());
    println!("datasets: paper (γ = {})", data.gamma());

    // Serve forever; print a small per-tenant dashboard now and then.
    loop {
        std::thread::sleep(Duration::from_secs(10));
        let stats = gateway.instance().tenant_stats();
        if stats.is_empty() {
            println!("idle — no tenants seen yet");
            continue;
        }
        for s in stats {
            println!(
                "tenant {:>3}: {:.2} qps, {} completed, {} aborted, {} shed, {} faults",
                s.tenant.0, s.qps, s.completed, s.aborted, s.rejected, s.io.faults
            );
        }
    }
}
