//! Dynamic deletion (Guttman `Delete` + `CondenseTree`).
//!
//! Completes the maintenance pair started by [`crate::insert`]: a dynamic
//! world where customers depart needs the index to shrink, not just grow.
//! Underfull nodes are condensed the way Guttman prescribed — the node is
//! dissolved and its surviving points re-inserted from the root — rather
//! than rebalanced in place, which keeps the occupancy invariant without a
//! sibling-borrowing protocol.
//!
//! Freed pages are not recycled (the [`cca_storage::PageStore`] has no free
//! list); a long-lived dynamic tree trades a little dead space for the
//! simplicity of append-only page allocation, exactly like the insert
//! path's split pages.

use cca_geo::Point;
use cca_storage::{PageId, QueryContext};

use crate::entry::{ItemId, LeafEntry};
use crate::insert::min_fill;
use crate::node::Node;
use crate::tree::RTree;

impl RTree {
    /// Deletes the entry matching `point` and `id` exactly, condensing
    /// underfull nodes and shrinking the root. Returns `false` (and leaves
    /// the tree untouched) when no such entry exists.
    pub fn delete(&mut self, point: Point, id: ItemId) -> bool {
        self.delete_ctx(point, id, None)
    }

    /// [`RTree::delete`] with the operation's page traffic charged to `ctx`
    /// for per-query I/O attribution under dynamic workloads.
    ///
    /// Like [`RTree::insert_ctx`], maintenance is atomic: the delete always
    /// runs to completion (including orphan re-insertion), so a budget or
    /// deadline trip recorded on `ctx` surfaces at the caller's next
    /// `ctx.check()` poll with the tree in a consistent state.
    pub fn delete_ctx(&mut self, point: Point, id: ItemId, ctx: Option<&QueryContext>) -> bool {
        let mut orphans: Vec<LeafEntry> = Vec::new();
        let found = self
            .delete_rec(self.root(), point, id, ctx, &mut orphans)
            .is_some();
        if !found {
            return false;
        }
        // Root shrink: an inner root left with a single entry promotes its
        // child (repeatedly, if condensation cascaded).
        while self.height() > 1 {
            match self.read_node_ctx(self.root(), ctx) {
                Node::Inner(entries) if entries.len() == 1 => {
                    let child = entries[0].child;
                    let h = self.height() - 1;
                    self.set_root(child, h);
                }
                _ => break,
            }
        }
        // Re-home the points of every dissolved node. They never left the
        // tree logically, so they bypass the size counter.
        for e in orphans {
            self.insert_no_count(e.point, e.id, ctx);
        }
        self.dec_size();
        true
    }

    /// Recursive find-leaf + condense. Returns `None` when the entry is not
    /// under `page`; `Some(underflow)` when it was removed, with `underflow`
    /// signalling that `page` fell below minimum fill and should be
    /// dissolved by its parent.
    fn delete_rec(
        &mut self,
        page: PageId,
        point: Point,
        id: ItemId,
        ctx: Option<&QueryContext>,
        orphans: &mut Vec<LeafEntry>,
    ) -> Option<bool> {
        let mut n = self.read_node_ctx(page, ctx);
        match &mut n {
            Node::Leaf(entries) => {
                let pos = entries
                    .iter()
                    .position(|e| e.id == id && e.point == point)?;
                entries.swap_remove(pos);
                let underflow = entries.len() < min_fill(self.leaf_capacity());
                self.write_node_ctx(page, ctx, &n);
                Some(underflow)
            }
            Node::Inner(entries) => {
                // The point may fall inside several overlapping child MBRs;
                // probe each candidate until one owns the entry.
                let mut hit: Option<(usize, bool)> = None;
                for (i, entry) in entries.iter().enumerate() {
                    if !entry.mbr.contains_point(&point) {
                        continue;
                    }
                    if let Some(under) = self.delete_rec(entry.child, point, id, ctx, orphans) {
                        hit = Some((i, under));
                        break;
                    }
                }
                let (i, child_underflow) = hit?;
                if child_underflow && entries.len() > 1 {
                    // Condense: dissolve the underfull child, queueing its
                    // surviving points for re-insertion from the root.
                    let child = entries[i].child;
                    self.collect_leaf_entries(child, ctx, orphans);
                    entries.swap_remove(i);
                } else {
                    // The child absorbed the removal (or is our only child,
                    // left for the root-shrink loop): refresh its exact MBR.
                    entries[i].mbr = self.read_node_ctx(entries[i].child, ctx).mbr();
                }
                let underflow = entries.len() < min_fill(self.inner_capacity());
                self.write_node_ctx(page, ctx, &n);
                Some(underflow)
            }
        }
    }

    /// Flattens a dissolved subtree to its leaf entries. Unlike
    /// [`RTree::for_each_point_under`] this never polls the context —
    /// condensation must finish once the entry is out.
    fn collect_leaf_entries(
        &self,
        page: PageId,
        ctx: Option<&QueryContext>,
        out: &mut Vec<LeafEntry>,
    ) {
        match self.read_node_ctx(page, ctx) {
            Node::Leaf(entries) => out.extend(entries),
            Node::Inner(entries) => {
                for e in entries {
                    self.collect_leaf_entries(e.child, ctx, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_storage::PageStore;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fresh_tree() -> RTree {
        RTree::new(PageStore::with_config(1024, 4096))
    }

    fn random_items(n: usize, seed: u64) -> Vec<(Point, ItemId)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)),
                    i as ItemId,
                )
            })
            .collect()
    }

    #[test]
    fn delete_from_single_leaf() {
        let mut t = fresh_tree();
        t.insert(Point::new(5.0, 5.0), 1);
        t.insert(Point::new(6.0, 6.0), 2);
        assert!(t.delete(Point::new(5.0, 5.0), 1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.check_invariants(), 1);
        assert_eq!(t.knn(Point::new(0.0, 0.0), 1)[0].1, 2);
    }

    #[test]
    fn delete_missing_returns_false_and_leaves_tree_alone() {
        let mut t = fresh_tree();
        for &(p, id) in &random_items(100, 7) {
            t.insert(p, id);
        }
        // Same id, wrong position; wrong id, real position; both absent.
        assert!(!t.delete(Point::new(-1.0, -1.0), 0));
        assert!(!t.delete(Point::new(5000.0, 5000.0), 9999));
        assert_eq!(t.len(), 100);
        assert_eq!(t.check_invariants(), 100);
    }

    #[test]
    fn delete_everything_empties_the_tree() {
        let mut t = fresh_tree();
        let items = random_items(500, 8);
        for &(p, id) in &items {
            t.insert(p, id);
        }
        assert!(t.height() > 1);
        for &(p, id) in &items {
            assert!(t.delete(p, id), "every inserted entry must be deletable");
        }
        assert_eq!(t.len(), 0);
        assert_eq!(t.check_invariants(), 0);
        assert_eq!(t.height(), 1, "condense + root shrink must collapse");
        assert!(t.root_mbr().is_empty());
    }

    #[test]
    fn interleaved_insert_delete_keeps_queries_exact() {
        let mut t = fresh_tree();
        let items = random_items(2000, 9);
        let mut live: Vec<(Point, ItemId)> = Vec::new();
        for (i, &(p, id)) in items.iter().enumerate() {
            t.insert(p, id);
            live.push((p, id));
            if i % 3 == 2 {
                // Delete a pseudo-random live entry.
                let victim = (i * 7919) % live.len();
                let (vp, vid) = live.swap_remove(victim);
                assert!(t.delete(vp, vid));
            }
        }
        assert_eq!(t.len(), live.len());
        assert_eq!(t.check_invariants(), live.len());

        let q = Point::new(500.0, 500.0);
        let got = t.knn(q, 20);
        let mut want: Vec<f64> = live.iter().map(|(p, _)| q.dist(p)).collect();
        want.sort_by(f64::total_cmp);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.2 - w).abs() < 1e-12);
        }
    }

    #[test]
    fn duplicate_points_delete_one_at_a_time() {
        let mut t = fresh_tree();
        for i in 0..100 {
            t.insert(Point::new(7.0, 7.0), i as ItemId);
        }
        for i in 0..100 {
            assert!(t.delete(Point::new(7.0, 7.0), i as ItemId));
            assert_eq!(t.len(), 99 - i);
            t.check_invariants();
        }
    }

    #[test]
    fn delete_ctx_charges_io_and_stays_atomic_past_budget() {
        let items = random_items(3000, 10);
        let mut t = RTree::bulk_load(PageStore::with_config(1024, 4096), &items);
        t.finish_build(1.0); // tiny cold buffer: every descent faults

        let ctx = QueryContext::new().with_io_budget(1);
        let (p, id) = items[1234];
        assert!(t.delete_ctx(p, id, Some(&ctx)));
        let stats = ctx.stats();
        assert!(
            stats.faults >= 1,
            "cold descent must charge faults to the context: {stats:?}"
        );
        // The budget tripped mid-delete, but the operation completed and the
        // tree is whole; only the *next* poll observes the abort.
        assert_eq!(t.check_invariants(), 2999);
        assert!(ctx.check().is_err(), "budget exhaustion must be recorded");
    }
}
