//! Fixed-layout node (de)serialisation.
//!
//! Page layout (little-endian):
//!
//! ```text
//! byte 0      : node kind (0 = leaf, 1 = inner)
//! byte 1      : reserved (0)
//! bytes 2..4  : entry count (u16)
//! bytes 4..   : entries
//!               leaf : x f64 | y f64 | id u64            (24 bytes)
//!               inner: lox f64 | loy f64 | hix f64 | hiy f64 | child u32 (36 bytes)
//! ```
//!
//! With the paper's 1 KB pages this yields a fanout of 42 points per leaf and
//! 28 children per inner node.

use cca_geo::{Point, Rect};
use cca_storage::PageId;

use crate::entry::{InnerEntry, ItemId, LeafEntry, INNER_ENTRY_SIZE, LEAF_ENTRY_SIZE};

/// Byte offset of the first entry within a page.
pub const HEADER_SIZE: usize = 4;

const KIND_LEAF: u8 = 0;
const KIND_INNER: u8 = 1;

/// Maximum number of leaf entries per page of `page_size` bytes.
#[inline]
pub fn leaf_capacity(page_size: usize) -> usize {
    (page_size - HEADER_SIZE) / LEAF_ENTRY_SIZE
}

/// Maximum number of inner entries per page of `page_size` bytes.
#[inline]
pub fn inner_capacity(page_size: usize) -> usize {
    (page_size - HEADER_SIZE) / INNER_ENTRY_SIZE
}

/// A fully materialised node, used on the insert/split path and by tree
/// inspection. Hot read paths use the streaming [`for_each_leaf_entry`] /
/// [`for_each_inner_entry`] decoders instead, which avoid this allocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Node {
    Leaf(Vec<LeafEntry>),
    Inner(Vec<InnerEntry>),
}

impl Node {
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }

    pub fn len(&self) -> usize {
        match self {
            Node::Leaf(v) => v.len(),
            Node::Inner(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// MBR of all entries in the node.
    pub fn mbr(&self) -> Rect {
        match self {
            Node::Leaf(v) => v.iter().map(|e| e.point).collect(),
            Node::Inner(v) => v.iter().fold(Rect::empty(), |acc, e| acc.union(&e.mbr)),
        }
    }
}

#[inline]
fn read_f64(buf: &[u8], off: usize) -> f64 {
    f64::from_le_bytes(buf[off..off + 8].try_into().expect("8-byte slice"))
}

#[inline]
fn read_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().expect("8-byte slice"))
}

#[inline]
fn read_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().expect("4-byte slice"))
}

/// Entry count stored in the page header.
#[inline]
pub fn entry_count(page: &[u8]) -> usize {
    u16::from_le_bytes([page[2], page[3]]) as usize
}

/// True if the page holds a leaf node.
#[inline]
pub fn is_leaf_page(page: &[u8]) -> bool {
    page[0] == KIND_LEAF
}

/// Streams the leaf entries of a serialised leaf page into `f`.
///
/// # Panics
/// Debug-asserts the page kind; feeding an inner page is a caller bug.
pub fn for_each_leaf_entry(page: &[u8], mut f: impl FnMut(Point, ItemId)) {
    debug_assert!(is_leaf_page(page), "expected leaf page");
    let n = entry_count(page);
    let mut off = HEADER_SIZE;
    for _ in 0..n {
        let x = read_f64(page, off);
        let y = read_f64(page, off + 8);
        let id = read_u64(page, off + 16);
        f(Point::new(x, y), id);
        off += LEAF_ENTRY_SIZE;
    }
}

/// Streams the inner entries of a serialised inner page into `f`.
pub fn for_each_inner_entry(page: &[u8], mut f: impl FnMut(Rect, PageId)) {
    debug_assert!(!is_leaf_page(page), "expected inner page");
    let n = entry_count(page);
    let mut off = HEADER_SIZE;
    for _ in 0..n {
        let lox = read_f64(page, off);
        let loy = read_f64(page, off + 8);
        let hix = read_f64(page, off + 16);
        let hiy = read_f64(page, off + 24);
        let child = read_u32(page, off + 32);
        f(
            Rect::new(Point::new(lox, loy), Point::new(hix, hiy)),
            PageId(child),
        );
        off += INNER_ENTRY_SIZE;
    }
}

/// Decodes a full [`Node`] from page bytes.
pub fn decode(page: &[u8]) -> Node {
    if is_leaf_page(page) {
        let mut v = Vec::with_capacity(entry_count(page));
        for_each_leaf_entry(page, |point, id| v.push(LeafEntry { point, id }));
        Node::Leaf(v)
    } else {
        let mut v = Vec::with_capacity(entry_count(page));
        for_each_inner_entry(page, |mbr, child| v.push(InnerEntry { mbr, child }));
        Node::Inner(v)
    }
}

/// Serialises a node into a `page_size`-byte buffer.
///
/// # Panics
/// Panics if the node exceeds the page capacity — splits must happen before
/// encoding.
pub fn encode(node: &Node, page_size: usize) -> Vec<u8> {
    let mut buf = vec![0u8; page_size];
    match node {
        Node::Leaf(entries) => {
            assert!(
                entries.len() <= leaf_capacity(page_size),
                "leaf overflow: {} > {}",
                entries.len(),
                leaf_capacity(page_size)
            );
            buf[0] = KIND_LEAF;
            buf[2..4].copy_from_slice(&(entries.len() as u16).to_le_bytes());
            let mut off = HEADER_SIZE;
            for e in entries {
                buf[off..off + 8].copy_from_slice(&e.point.x.to_le_bytes());
                buf[off + 8..off + 16].copy_from_slice(&e.point.y.to_le_bytes());
                buf[off + 16..off + 24].copy_from_slice(&e.id.to_le_bytes());
                off += LEAF_ENTRY_SIZE;
            }
        }
        Node::Inner(entries) => {
            assert!(
                entries.len() <= inner_capacity(page_size),
                "inner overflow: {} > {}",
                entries.len(),
                inner_capacity(page_size)
            );
            buf[0] = KIND_INNER;
            buf[2..4].copy_from_slice(&(entries.len() as u16).to_le_bytes());
            let mut off = HEADER_SIZE;
            for e in entries {
                buf[off..off + 8].copy_from_slice(&e.mbr.lo.x.to_le_bytes());
                buf[off + 8..off + 16].copy_from_slice(&e.mbr.lo.y.to_le_bytes());
                buf[off + 16..off + 24].copy_from_slice(&e.mbr.hi.x.to_le_bytes());
                buf[off + 24..off + 32].copy_from_slice(&e.mbr.hi.y.to_le_bytes());
                buf[off + 32..off + 36].copy_from_slice(&e.child.0.to_le_bytes());
                off += INNER_ENTRY_SIZE;
            }
        }
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_page_size_fanout() {
        assert_eq!(leaf_capacity(1024), 42);
        assert_eq!(inner_capacity(1024), 28);
    }

    #[test]
    fn leaf_roundtrip() {
        let node = Node::Leaf(vec![
            LeafEntry::new(Point::new(1.5, -2.5), 42),
            LeafEntry::new(Point::new(0.0, 0.0), 0),
            LeafEntry::new(Point::new(999.9, 1000.0), u64::MAX),
        ]);
        let bytes = encode(&node, 1024);
        assert_eq!(decode(&bytes), node);
        assert!(is_leaf_page(&bytes));
        assert_eq!(entry_count(&bytes), 3);
    }

    #[test]
    fn inner_roundtrip() {
        let node = Node::Inner(vec![
            InnerEntry::new(
                Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
                PageId(9),
            ),
            InnerEntry::new(
                Rect::new(Point::new(-5.0, 2.0), Point::new(3.0, 8.0)),
                PageId(u32::MAX - 1),
            ),
        ]);
        let bytes = encode(&node, 1024);
        assert_eq!(decode(&bytes), node);
        assert!(!is_leaf_page(&bytes));
    }

    #[test]
    fn empty_nodes_roundtrip() {
        for node in [Node::Leaf(vec![]), Node::Inner(vec![])] {
            let bytes = encode(&node, 256);
            assert_eq!(decode(&bytes), node);
            assert!(decode(&bytes).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "leaf overflow")]
    fn overfull_leaf_panics() {
        let entries = (0..100)
            .map(|i| LeafEntry::new(Point::new(i as f64, 0.0), i))
            .collect();
        encode(&Node::Leaf(entries), 1024);
    }

    #[test]
    fn node_mbr_covers_entries() {
        let node = Node::Leaf(vec![
            LeafEntry::new(Point::new(1.0, 5.0), 1),
            LeafEntry::new(Point::new(-2.0, 3.0), 2),
        ]);
        let mbr = node.mbr();
        assert_eq!(mbr, Rect::new(Point::new(-2.0, 3.0), Point::new(1.0, 5.0)));
    }

    fn leaf_entry() -> impl Strategy<Value = LeafEntry> {
        (-1e6..1e6f64, -1e6..1e6f64, any::<u64>())
            .prop_map(|(x, y, id)| LeafEntry::new(Point::new(x, y), id))
    }

    proptest! {
        #[test]
        fn prop_leaf_roundtrip(entries in proptest::collection::vec(leaf_entry(), 0..42)) {
            let node = Node::Leaf(entries);
            prop_assert_eq!(decode(&encode(&node, 1024)), node);
        }

        #[test]
        fn prop_streaming_matches_decode(entries in proptest::collection::vec(leaf_entry(), 0..42)) {
            let node = Node::Leaf(entries.clone());
            let bytes = encode(&node, 1024);
            let mut streamed = Vec::new();
            for_each_leaf_entry(&bytes, |p, id| streamed.push(LeafEntry::new(p, id)));
            prop_assert_eq!(streamed, entries);
        }
    }
}
