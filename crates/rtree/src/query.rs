//! Range and annular-range search.
//!
//! RIA (§3.1) drives the tree with `T`-range searches around each provider
//! and, on extension, *annular* range searches retrieving customers within
//! `(T − θ, T]` — both implemented here with MBR-based pruning.

use cca_geo::Point;
use cca_storage::{Aborted, PageId, QueryContext};

use crate::entry::ItemId;
use crate::node;
use crate::tree::RTree;

impl RTree {
    /// Returns all points within Euclidean distance `r` of `center`
    /// (inclusive), together with their distances.
    pub fn range_search(&self, center: Point, r: f64) -> Vec<(Point, ItemId, f64)> {
        self.range_search_ctx(center, r, None)
            .expect("a context-free search cannot abort")
    }

    /// [`RTree::range_search`] with the search's I/O charged to `ctx`.
    ///
    /// The descent polls the context before every page visit and returns
    /// the typed [`Aborted`] error instead of traversing on when the query
    /// is cancelled, past its deadline or out of I/O budget.
    pub fn range_search_ctx(
        &self,
        center: Point,
        r: f64,
        ctx: Option<&QueryContext>,
    ) -> Result<Vec<(Point, ItemId, f64)>, Aborted> {
        let mut out = Vec::new();
        self.range_into(center, 0.0, r, true, ctx, &mut out)?;
        Ok(out)
    }

    /// Annular range search: points `p` with `lo < dist(center, p) <= hi`.
    ///
    /// The half-open interval matches RIA's extension step, which must not
    /// re-fetch points already retrieved by the previous `T`-range search
    /// (§3.1: "points of P within the distance range (T − θ, T] ... are
    /// identified").
    pub fn annular_range_search(
        &self,
        center: Point,
        lo: f64,
        hi: f64,
    ) -> Vec<(Point, ItemId, f64)> {
        self.annular_range_search_ctx(center, lo, hi, None)
            .expect("a context-free search cannot abort")
    }

    /// [`RTree::annular_range_search`] charged to `ctx`, with the same
    /// typed-abort contract as [`RTree::range_search_ctx`].
    pub fn annular_range_search_ctx(
        &self,
        center: Point,
        lo: f64,
        hi: f64,
        ctx: Option<&QueryContext>,
    ) -> Result<Vec<(Point, ItemId, f64)>, Aborted> {
        let mut out = Vec::new();
        self.range_into(center, lo, hi, false, ctx, &mut out)?;
        Ok(out)
    }

    /// Shared recursion: collects points with `dist ∈ (lo, hi]`, or
    /// `[0, hi]` when `include_lo`.
    fn range_into(
        &self,
        center: Point,
        lo: f64,
        hi: f64,
        include_lo: bool,
        ctx: Option<&QueryContext>,
        out: &mut Vec<(Point, ItemId, f64)>,
    ) -> Result<(), Aborted> {
        if hi < 0.0 {
            return Ok(());
        }
        self.range_rec(
            self.root(),
            self.height(),
            center,
            lo,
            hi,
            include_lo,
            ctx,
            out,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn range_rec(
        &self,
        page: PageId,
        level_height: u32,
        center: Point,
        lo: f64,
        hi: f64,
        include_lo: bool,
        ctx: Option<&QueryContext>,
        out: &mut Vec<(Point, ItemId, f64)>,
    ) -> Result<(), Aborted> {
        if let Some(ctx) = ctx {
            ctx.check()?;
        }
        if level_height == 1 {
            self.store().with_page_ctx(page, ctx, |bytes| {
                node::for_each_leaf_entry(bytes, |p, id| {
                    let d = center.dist(&p);
                    let above_lo = if include_lo { d >= lo } else { d > lo };
                    if above_lo && d <= hi {
                        out.push((p, id, d));
                    }
                });
            });
            return Ok(());
        }
        // Children that may contain qualifying points: the subtree MBR must
        // intersect the annulus — mindist <= hi and maxdist >= lo (a subtree
        // entirely inside the inner disk cannot contribute).
        let children: Vec<PageId> = self.store().with_page_ctx(page, ctx, |bytes| {
            let mut v = Vec::new();
            node::for_each_inner_entry(bytes, |mbr, child| {
                if mbr.mindist(&center) <= hi && mbr.maxdist(&center) >= lo {
                    v.push(child);
                }
            });
            v
        });
        for c in children {
            self.range_rec(c, level_height - 1, center, lo, hi, include_lo, ctx, out)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_storage::PageStore;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_items(n: usize, seed: u64) -> Vec<(Point, ItemId)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)),
                    i as ItemId,
                )
            })
            .collect()
    }

    fn brute_range(items: &[(Point, ItemId)], c: Point, r: f64) -> Vec<ItemId> {
        let mut v: Vec<ItemId> = items
            .iter()
            .filter(|(p, _)| c.dist(p) <= r)
            .map(|&(_, id)| id)
            .collect();
        v.sort_unstable();
        v
    }

    fn brute_annulus(items: &[(Point, ItemId)], c: Point, lo: f64, hi: f64) -> Vec<ItemId> {
        let mut v: Vec<ItemId> = items
            .iter()
            .filter(|(p, _)| {
                let d = c.dist(p);
                d > lo && d <= hi
            })
            .map(|&(_, id)| id)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn range_matches_brute_force() {
        let items = random_items(3000, 11);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 4096), &items);
        for (c, r) in [
            (Point::new(500.0, 500.0), 50.0),
            (Point::new(0.0, 0.0), 200.0),
            (Point::new(999.0, 10.0), 5.0),
            (Point::new(500.0, 500.0), 0.0),
        ] {
            let mut got: Vec<ItemId> = tree
                .range_search(c, r)
                .into_iter()
                .map(|(_, id, _)| id)
                .collect();
            got.sort_unstable();
            assert_eq!(got, brute_range(&items, c, r), "c={c} r={r}");
        }
    }

    #[test]
    fn range_reports_correct_distances() {
        let items = random_items(500, 12);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 4096), &items);
        let c = Point::new(300.0, 700.0);
        for (p, _, d) in tree.range_search(c, 100.0) {
            assert!((c.dist(&p) - d).abs() < 1e-12);
            assert!(d <= 100.0);
        }
    }

    #[test]
    fn annulus_matches_brute_force_and_is_half_open() {
        let items = random_items(3000, 13);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 4096), &items);
        let c = Point::new(400.0, 400.0);
        for (lo, hi) in [(0.0, 50.0), (50.0, 100.0), (100.0, 300.0), (200.0, 200.0)] {
            let mut got: Vec<ItemId> = tree
                .annular_range_search(c, lo, hi)
                .into_iter()
                .map(|(_, id, _)| id)
                .collect();
            got.sort_unstable();
            assert_eq!(got, brute_annulus(&items, c, lo, hi), "lo={lo} hi={hi}");
        }
    }

    #[test]
    fn annulus_union_equals_range() {
        // RIA correctness depends on annuli tiling the disk exactly.
        let items = random_items(2000, 14);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 4096), &items);
        let c = Point::new(250.0, 750.0);
        let theta = 40.0;
        let full: Vec<ItemId> = {
            let mut v: Vec<ItemId> = tree
                .range_search(c, 5.0 * theta)
                .into_iter()
                .map(|(_, id, _)| id)
                .collect();
            v.sort_unstable();
            v
        };
        let mut tiled: Vec<ItemId> = tree
            .range_search(c, theta)
            .into_iter()
            .map(|(_, id, _)| id)
            .collect();
        for i in 1..5 {
            tiled.extend(
                tree.annular_range_search(c, i as f64 * theta, (i + 1) as f64 * theta)
                    .into_iter()
                    .map(|(_, id, _)| id),
            );
        }
        tiled.sort_unstable();
        assert_eq!(tiled, full);
    }

    #[test]
    fn empty_tree_returns_nothing() {
        let tree = RTree::bulk_load(PageStore::with_config(1024, 16), &[]);
        assert!(tree.range_search(Point::new(0.0, 0.0), 1000.0).is_empty());
        assert!(tree
            .annular_range_search(Point::new(0.0, 0.0), 1.0, 10.0)
            .is_empty());
    }

    #[test]
    fn negative_radius_returns_nothing() {
        let items = random_items(100, 15);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 64), &items);
        assert!(tree.range_search(Point::new(500.0, 500.0), -1.0).is_empty());
    }

    #[test]
    fn range_prunes_io() {
        // A tiny query must touch far fewer pages than a full scan.
        let items = random_items(20000, 16);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 8192), &items);
        tree.finish_build(100.0); // large buffer; count cold faults only
        tree.range_search(Point::new(500.0, 500.0), 10.0);
        let small = tree.io_stats().faults;
        tree.store().clear_cache();
        tree.store().reset_stats();
        tree.range_search(Point::new(500.0, 500.0), 2000.0);
        let full = tree.io_stats().faults;
        assert!(
            small * 10 < full,
            "expected >10x pruning: small={small} full={full}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_range_equals_brute(seed in 0u64..1000, n in 1usize..400,
                                   cx in 0.0..1000.0f64, cy in 0.0..1000.0f64,
                                   r in 0.0..500.0f64) {
            let items = random_items(n, seed);
            let tree = RTree::bulk_load(PageStore::with_config(1024, 1024), &items);
            let c = Point::new(cx, cy);
            let mut got: Vec<ItemId> =
                tree.range_search(c, r).into_iter().map(|(_, id, _)| id).collect();
            got.sort_unstable();
            prop_assert_eq!(got, brute_range(&items, c, r));
        }
    }
}
