//! R-tree entry types.

use cca_geo::{Point, Rect};
use cca_storage::PageId;

/// Identifier of an indexed point (the customer's position in `P`).
pub type ItemId = u64;

/// A leaf-level entry: an indexed point plus its identifier.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LeafEntry {
    pub point: Point,
    pub id: ItemId,
}

impl LeafEntry {
    pub fn new(point: Point, id: ItemId) -> Self {
        LeafEntry { point, id }
    }
}

/// An internal-level entry: the MBR of a child node plus its page id.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InnerEntry {
    pub mbr: Rect,
    pub child: PageId,
}

impl InnerEntry {
    pub fn new(mbr: Rect, child: PageId) -> Self {
        InnerEntry { mbr, child }
    }
}

/// On-disk byte size of a leaf entry: x, y (`f64` each) + id (`u64`).
pub const LEAF_ENTRY_SIZE: usize = 24;

/// On-disk byte size of an inner entry: four MBR coordinates (`f64`) + child
/// page id (`u32`).
pub const INNER_ENTRY_SIZE: usize = 36;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_sizes_match_layout() {
        // 2 coords + id.
        assert_eq!(LEAF_ENTRY_SIZE, 8 + 8 + 8);
        // 4 coords + page id.
        assert_eq!(INNER_ENTRY_SIZE, 4 * 8 + 4);
    }

    #[test]
    fn constructors_store_fields() {
        let le = LeafEntry::new(Point::new(1.0, 2.0), 7);
        assert_eq!(le.point, Point::new(1.0, 2.0));
        assert_eq!(le.id, 7);
        let ie = InnerEntry::new(
            Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
            PageId(3),
        );
        assert_eq!(ie.child, PageId(3));
    }
}
