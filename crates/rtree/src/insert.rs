//! Dynamic insertion (Guttman R-tree with quadratic split).
//!
//! The paper's experiments index a static `P`, but a credible R-tree library
//! supports incremental maintenance; dynamic insertion also lets tests build
//! adversarial trees that STR packing would never produce.

use cca_geo::{Point, Rect};
use cca_storage::{PageId, QueryContext};

use crate::entry::{InnerEntry, ItemId, LeafEntry};
use crate::node::Node;
use crate::tree::RTree;

/// Minimum fill factor for splits, as a fraction of capacity (Guttman's `m`).
const MIN_FILL: f64 = 0.4;

impl RTree {
    /// Inserts one point, splitting nodes (and growing the root) as needed.
    pub fn insert(&mut self, point: Point, id: ItemId) {
        self.insert_ctx(point, id, None);
    }

    /// [`RTree::insert`] with the operation's page traffic charged to `ctx`
    /// for per-query I/O attribution under dynamic workloads.
    ///
    /// Maintenance is atomic: the insert always runs to completion. An
    /// exhausted I/O budget or expired deadline is recorded on the context
    /// — and will trip the caller's next `ctx.check()` poll — but never
    /// tears the tree mid-update.
    pub fn insert_ctx(&mut self, point: Point, id: ItemId, ctx: Option<&QueryContext>) {
        assert!(point.is_finite(), "non-finite point inserted");
        self.insert_no_count(point, id, ctx);
        self.bump_size();
    }

    /// Insert without touching `size` — the delete path re-homes condensed
    /// orphans through this (they never left the tree, logically).
    pub(crate) fn insert_no_count(&mut self, point: Point, id: ItemId, ctx: Option<&QueryContext>) {
        if let Some((left, right)) = self.insert_rec(self.root(), point, id, ctx) {
            // Root split: grow the tree by one level.
            let new_root = self.alloc_node_ctx(ctx, &Node::Inner(vec![left, right]));
            let h = self.height() + 1;
            self.set_root(new_root, h);
        }
    }

    /// Recursive insert; returns `Some((left, right))` when `page` split.
    fn insert_rec(
        &mut self,
        page: PageId,
        point: Point,
        id: ItemId,
        ctx: Option<&QueryContext>,
    ) -> Option<(InnerEntry, InnerEntry)> {
        let mut n = self.read_node_ctx(page, ctx);
        match &mut n {
            Node::Leaf(entries) => {
                entries.push(LeafEntry::new(point, id));
                if entries.len() <= self.leaf_capacity() {
                    self.write_node_ctx(page, ctx, &n);
                    return None;
                }
                let (a, b) = quadratic_split(
                    std::mem::take(entries),
                    |e| Rect::from_point(e.point),
                    min_fill(self.leaf_capacity()),
                );
                let mbr_a = a.iter().map(|e| e.point).collect();
                let mbr_b = b.iter().map(|e| e.point).collect();
                self.write_node_ctx(page, ctx, &Node::Leaf(a));
                let right_page = self.alloc_node_ctx(ctx, &Node::Leaf(b));
                Some((
                    InnerEntry::new(mbr_a, page),
                    InnerEntry::new(mbr_b, right_page),
                ))
            }
            Node::Inner(entries) => {
                let chosen = choose_subtree(entries, point);
                let split = self.insert_rec(entries[chosen].child, point, id, ctx);
                match split {
                    None => {
                        // Child absorbed the point: refresh its MBR.
                        entries[chosen].mbr.expand_point(&point);
                        self.write_node_ctx(page, ctx, &n);
                        None
                    }
                    Some((left, right)) => {
                        entries[chosen] = left;
                        entries.push(right);
                        if entries.len() <= self.inner_capacity() {
                            self.write_node_ctx(page, ctx, &n);
                            return None;
                        }
                        let (a, b) = quadratic_split(
                            std::mem::take(entries),
                            |e| e.mbr,
                            min_fill(self.inner_capacity()),
                        );
                        let mbr_a = a.iter().fold(Rect::empty(), |acc, e| acc.union(&e.mbr));
                        let mbr_b = b.iter().fold(Rect::empty(), |acc, e| acc.union(&e.mbr));
                        self.write_node_ctx(page, ctx, &Node::Inner(a));
                        let right_page = self.alloc_node_ctx(ctx, &Node::Inner(b));
                        Some((
                            InnerEntry::new(mbr_a, page),
                            InnerEntry::new(mbr_b, right_page),
                        ))
                    }
                }
            }
        }
    }
}

pub(crate) fn min_fill(cap: usize) -> usize {
    ((cap as f64 * MIN_FILL) as usize).max(1)
}

/// Guttman's `ChooseSubtree`: least area enlargement, ties by smaller area.
fn choose_subtree(entries: &[InnerEntry], point: Point) -> usize {
    let target = Rect::from_point(point);
    let mut best = 0usize;
    let mut best_enlarge = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, e) in entries.iter().enumerate() {
        let enlarge = e.mbr.enlargement(&target);
        let area = e.mbr.area();
        if enlarge < best_enlarge || (enlarge == best_enlarge && area < best_area) {
            best = i;
            best_enlarge = enlarge;
            best_area = area;
        }
    }
    best
}

/// Guttman's quadratic split.
///
/// Picks the pair of entries whose combined MBR wastes the most area as
/// seeds, then distributes the rest by maximal preference difference,
/// honouring the minimum fill `m`.
fn quadratic_split<E: Clone>(
    entries: Vec<E>,
    rect_of: impl Fn(&E) -> Rect,
    m: usize,
) -> (Vec<E>, Vec<E>) {
    debug_assert!(entries.len() >= 2);
    // Seed selection: maximise dead area d = area(union) - area(a) - area(b).
    let (mut seed_a, mut seed_b, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let ra = rect_of(&entries[i]);
            let rb = rect_of(&entries[j]);
            let d = ra.union(&rb).area() - ra.area() - rb.area();
            if d > worst {
                worst = d;
                seed_a = i;
                seed_b = j;
            }
        }
    }

    let total = entries.len();
    let mut group_a: Vec<E> = Vec::with_capacity(total);
    let mut group_b: Vec<E> = Vec::with_capacity(total);
    let mut mbr_a = rect_of(&entries[seed_a]);
    let mut mbr_b = rect_of(&entries[seed_b]);
    let mut rest: Vec<E> = Vec::with_capacity(total - 2);
    for (i, e) in entries.into_iter().enumerate() {
        if i == seed_a {
            group_a.push(e);
        } else if i == seed_b {
            group_b.push(e);
        } else {
            rest.push(e);
        }
    }

    while let Some(idx) = pick_next(&rest, &rect_of, &mbr_a, &mbr_b) {
        let e = rest.swap_remove(idx);
        let remaining = rest.len();
        // Forced assignment: if a group needs every remaining entry
        // (including this one) to reach minimum fill, it takes them all.
        let need_a = m.saturating_sub(group_a.len());
        let need_b = m.saturating_sub(group_b.len());
        let r = rect_of(&e);
        let to_a = if need_a > remaining {
            true
        } else if need_b > remaining {
            false
        } else {
            let ea = mbr_a.enlargement(&r);
            let eb = mbr_b.enlargement(&r);
            if ea != eb {
                ea < eb
            } else if mbr_a.area() != mbr_b.area() {
                mbr_a.area() < mbr_b.area()
            } else {
                group_a.len() <= group_b.len()
            }
        };
        if to_a {
            mbr_a = mbr_a.union(&r);
            group_a.push(e);
        } else {
            mbr_b = mbr_b.union(&r);
            group_b.push(e);
        }
    }
    (group_a, group_b)
}

/// Guttman's `PickNext`: the entry with maximal |d(a) − d(b)| preference.
fn pick_next<E>(
    rest: &[E],
    rect_of: &impl Fn(&E) -> Rect,
    mbr_a: &Rect,
    mbr_b: &Rect,
) -> Option<usize> {
    if rest.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut best_diff = f64::NEG_INFINITY;
    for (i, e) in rest.iter().enumerate() {
        let r = rect_of(e);
        let diff = (mbr_a.enlargement(&r) - mbr_b.enlargement(&r)).abs();
        if diff > best_diff {
            best_diff = diff;
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_storage::PageStore;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fresh_tree() -> RTree {
        RTree::new(PageStore::with_config(1024, 4096))
    }

    #[test]
    fn insert_single_point() {
        let mut t = fresh_tree();
        t.insert(Point::new(5.0, 5.0), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.check_invariants(), 1);
        let nn = t.knn(Point::new(5.0, 5.0), 1);
        assert_eq!(nn[0].1, 1);
    }

    #[test]
    fn insert_until_leaf_splits() {
        let mut t = fresh_tree();
        for i in 0..43 {
            t.insert(Point::new(i as f64, i as f64), i as ItemId);
        }
        assert_eq!(t.height(), 2, "43rd point must split the 42-entry leaf");
        assert_eq!(t.check_invariants(), 43);
    }

    #[test]
    fn insert_thousands_keeps_invariants() {
        let mut t = fresh_tree();
        let mut rng = StdRng::seed_from_u64(31);
        let items: Vec<(Point, ItemId)> = (0..3000)
            .map(|i| {
                (
                    Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)),
                    i as ItemId,
                )
            })
            .collect();
        for &(p, id) in &items {
            t.insert(p, id);
        }
        assert_eq!(t.check_invariants(), 3000);
        assert!(t.height() >= 3);

        // Queries agree with brute force after dynamic construction.
        let q = Point::new(500.0, 500.0);
        let got = t.knn(q, 10);
        let mut want: Vec<f64> = items.iter().map(|(p, _)| q.dist(p)).collect();
        want.sort_by(f64::total_cmp);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.2 - w).abs() < 1e-12);
        }
    }

    #[test]
    fn skewed_insertion_order_still_balanced() {
        // Sorted insertion is the classic R-tree worst case; invariants and
        // query correctness must still hold.
        let mut t = fresh_tree();
        for i in 0..2000 {
            t.insert(Point::new(i as f64 * 0.5, 0.0), i as ItemId);
        }
        assert_eq!(t.check_invariants(), 2000);
        let hits = t.range_search(Point::new(100.0, 0.0), 10.0);
        assert_eq!(hits.len(), 41); // x in [90,110] step 0.5 -> 41 points
    }

    #[test]
    fn duplicate_points_insertable() {
        let mut t = fresh_tree();
        for i in 0..200 {
            t.insert(Point::new(7.0, 7.0), i as ItemId);
        }
        assert_eq!(t.check_invariants(), 200);
        assert_eq!(t.range_search(Point::new(7.0, 7.0), 0.0).len(), 200);
    }

    #[test]
    fn mixed_bulk_and_dynamic() {
        let mut rng = StdRng::seed_from_u64(32);
        let items: Vec<(Point, ItemId)> = (0..1000)
            .map(|i| {
                (
                    Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)),
                    i as ItemId,
                )
            })
            .collect();
        let mut t = RTree::bulk_load(PageStore::with_config(1024, 4096), &items);
        for i in 1000..1500 {
            t.insert(
                Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)),
                i as ItemId,
            );
        }
        assert_eq!(t.check_invariants(), 1500);
        assert_eq!(t.len(), 1500);
    }

    #[test]
    fn quadratic_split_respects_min_fill() {
        let entries: Vec<LeafEntry> = (0..43)
            .map(|i| LeafEntry::new(Point::new(i as f64, (i * 7 % 13) as f64), i as ItemId))
            .collect();
        let m = min_fill(42);
        let (a, b) = quadratic_split(entries, |e| Rect::from_point(e.point), m);
        assert_eq!(a.len() + b.len(), 43);
        assert!(a.len() >= m, "group a below min fill: {}", a.len());
        assert!(b.len() >= m, "group b below min fill: {}", b.len());
    }
}
