//! Sort-Tile-Recursive (STR) bulk loading with Hilbert page placement.
//!
//! The paper's evaluation indexes a *static* customer set, for which packed
//! bulk loading is the standard construction. STR packs points into fully
//! filled leaves tiled along x then y, then packs each upper level the same
//! way until a single root remains.
//!
//! Page ids are not assigned in STR emission order but in *Hilbert order* of
//! each node's MBR center: nodes that are close in space get close (usually
//! consecutive) page ids. Since the sharded store stripes pages round-robin
//! and spatial queries touch spatially clustered nodes, this spreads a
//! query's faults evenly across shards and keeps sequential leaf scans on
//! sequentially allocated pages. The tree *structure* is identical to plain
//! STR — only the id → node mapping changes.

use cca_geo::{hilbert, Point, Rect};
use cca_storage::{PageId, PageStore};

use crate::entry::{InnerEntry, ItemId, LeafEntry};
use crate::node::Node;
use crate::tree::RTree;

impl RTree {
    /// Bulk loads a tree from `items` using STR packing.
    ///
    /// Duplicate positions are allowed; ids are the caller's identifiers (the
    /// CCA algorithms use the customer's index in `P`).
    pub fn bulk_load(store: PageStore, items: &[(Point, ItemId)]) -> RTree {
        let mut tree = RTree::new(store);
        if items.is_empty() {
            return tree;
        }
        let leaf_cap = tree.leaf_capacity();
        let inner_cap = tree.inner_capacity();

        // --- Leaf level ------------------------------------------------
        let mut sorted: Vec<LeafEntry> = items
            .iter()
            .map(|&(p, id)| {
                assert!(p.is_finite(), "non-finite point in bulk load");
                LeafEntry::new(p, id)
            })
            .collect();
        let leaves = str_tiles(&mut sorted, leaf_cap, |e| e.point);
        let nodes: Vec<(Rect, Node)> = leaves
            .into_iter()
            .map(|chunk| {
                let mbr = chunk.iter().map(|e| e.point).collect();
                (mbr, Node::Leaf(chunk))
            })
            .collect();
        let mut level = write_level_hilbert_ordered(&tree, nodes);
        let mut height = 1u32;

        // --- Upper levels ----------------------------------------------
        while level.len() > 1 {
            let tiles = str_tiles(&mut level, inner_cap, |e| e.mbr.center());
            let nodes: Vec<(Rect, Node)> = tiles
                .into_iter()
                .map(|chunk| {
                    let mbr = chunk.iter().fold(Rect::empty(), |acc, e| acc.union(&e.mbr));
                    (mbr, Node::Inner(chunk))
                })
                .collect();
            level = write_level_hilbert_ordered(&tree, nodes);
            height += 1;
        }

        let root_entry = level.pop().expect("non-empty input yields a root");
        let root: PageId = root_entry.child;
        tree.set_root(root, height);
        tree.set_size(items.len());
        tree
    }
}

/// Writes one level's nodes, assigning page ids in Hilbert order of the
/// nodes' MBR centers (normalised against the level's own bounding box).
///
/// Pages come from the store's sequential allocator, so the r-th node along
/// the curve lands on the r-th freshly allocated page. Returns the level's
/// entries in the *original STR order* — parents are packed from the same
/// tiling regardless of where children were placed, keeping the structure
/// identical to plain STR.
fn write_level_hilbert_ordered(tree: &RTree, nodes: Vec<(Rect, Node)>) -> Vec<InnerEntry> {
    let mut bbox = Rect::empty();
    for (mbr, _) in &nodes {
        let c = mbr.center();
        bbox.expand_point(&c);
    }
    // Hilbert rank of each node; ties (coincident centers) break by STR
    // position so placement stays deterministic.
    let mut order: Vec<(u64, usize)> = nodes
        .iter()
        .enumerate()
        .map(|(i, (mbr, _))| (hilbert::hilbert_in_rect(&mbr.center(), &bbox), i))
        .collect();
    order.sort_unstable();

    let pages: Vec<PageId> = nodes.iter().map(|_| tree.store().alloc_page()).collect();
    let mut assigned: Vec<PageId> = vec![PageId(u32::MAX); nodes.len()];
    for (rank, &(_, i)) in order.iter().enumerate() {
        assigned[i] = pages[rank];
    }
    nodes
        .into_iter()
        .zip(assigned)
        .map(|((mbr, node), page)| {
            tree.write_node(page, &node);
            InnerEntry::new(mbr, page)
        })
        .collect()
}

/// Tiles `entries` into chunks of at most `cap` by the STR rule: sort by x,
/// cut into `s = ceil(sqrt(ceil(n / cap)))` vertical slices, sort each slice
/// by y, and cut into runs of `cap`.
fn str_tiles<E: Clone>(entries: &mut [E], cap: usize, key: impl Fn(&E) -> Point) -> Vec<Vec<E>> {
    let n = entries.len();
    let num_nodes = n.div_ceil(cap);
    let slices = (num_nodes as f64).sqrt().ceil() as usize;
    let slice_size = n.div_ceil(slices);

    entries.sort_by(|a, b| key(a).x.total_cmp(&key(b).x));
    let mut out = Vec::with_capacity(num_nodes);
    for slice in entries.chunks_mut(slice_size.max(1)) {
        slice.sort_by(|a, b| key(a).y.total_cmp(&key(b).y));
        for chunk in slice.chunks(cap) {
            out.push(chunk.to_vec());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_items(n: usize, seed: u64) -> Vec<(Point, ItemId)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)),
                    i as ItemId,
                )
            })
            .collect()
    }

    fn build(n: usize, seed: u64) -> (RTree, Vec<(Point, ItemId)>) {
        let items = random_items(n, seed);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 4096), &items);
        (tree, items)
    }

    #[test]
    fn bulk_load_empty() {
        let tree = RTree::bulk_load(PageStore::with_config(1024, 16), &[]);
        assert!(tree.is_empty());
        assert_eq!(tree.check_invariants(), 0);
    }

    #[test]
    fn bulk_load_single_point() {
        let items = vec![(Point::new(5.0, 5.0), 99)];
        let tree = RTree::bulk_load(PageStore::with_config(1024, 16), &items);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.check_invariants(), 1);
    }

    #[test]
    fn bulk_load_one_full_leaf() {
        let (tree, _) = build(42, 1);
        assert_eq!(tree.height(), 1, "42 points fit in one 1 KB leaf");
        assert_eq!(tree.check_invariants(), 42);
    }

    #[test]
    fn bulk_load_two_levels() {
        let (tree, _) = build(43, 2);
        assert_eq!(tree.height(), 2);
        assert_eq!(tree.check_invariants(), 43);
    }

    #[test]
    fn bulk_load_three_levels() {
        // > 42 * 28 = 1176 points forces height 3.
        let (tree, _) = build(5000, 3);
        assert_eq!(tree.height(), 3);
        assert_eq!(tree.check_invariants(), 5000);
    }

    #[test]
    fn all_points_preserved() {
        let (tree, items) = build(2500, 4);
        let mut got = Vec::new();
        tree.for_each_point(|p, id| got.push((p, id)));
        assert_eq!(got.len(), items.len());
        let mut got_ids: Vec<ItemId> = got.iter().map(|&(_, id)| id).collect();
        got_ids.sort_unstable();
        let expect: Vec<ItemId> = (0..2500).collect();
        assert_eq!(got_ids, expect);
    }

    #[test]
    fn duplicate_positions_allowed() {
        let items: Vec<(Point, ItemId)> = (0..100).map(|i| (Point::new(1.0, 1.0), i)).collect();
        let tree = RTree::bulk_load(PageStore::with_config(1024, 64), &items);
        assert_eq!(tree.check_invariants(), 100);
    }

    #[test]
    fn page_count_is_near_optimal() {
        let (tree, _) = build(4200, 5);
        // 4200 points / 42 per leaf = 100 leaves; inner overhead is small.
        let pages = tree.store().num_pages();
        assert!(pages >= 101, "too few pages: {pages}");
        assert!(pages <= 115, "packing wasted pages: {pages}");
    }

    #[test]
    fn leaf_page_ids_ascend_along_the_hilbert_curve() {
        // Leaves are the first-allocated level; their ids must follow the
        // Hilbert rank of their MBR centers exactly.
        let (tree, _) = build(5000, 9);
        let mut leaves: Vec<(u32, Point)> = Vec::new();
        let mut stack = vec![tree.root()];
        while let Some(page) = stack.pop() {
            match tree.read_node(page) {
                Node::Leaf(entries) => {
                    let mbr: Rect = entries.iter().map(|e| e.point).collect();
                    leaves.push((page.0, mbr.center()));
                }
                Node::Inner(entries) => stack.extend(entries.iter().map(|e| e.child)),
            }
        }
        assert!(leaves.len() > 100, "expected a wide leaf level");
        let mut bbox = Rect::empty();
        for (_, c) in &leaves {
            bbox.expand_point(c);
        }
        let mut ranked: Vec<(u64, u32)> = leaves
            .iter()
            .map(|&(id, c)| (hilbert::hilbert_in_rect(&c, &bbox), id))
            .collect();
        ranked.sort_unstable();
        let ids: Vec<u32> = ranked.iter().map(|&(_, id)| id).collect();
        assert!(
            ids.windows(2).all(|w| w[1] == w[0] + 1),
            "leaf page ids must be consecutive in Hilbert order: {ids:?}"
        );
    }

    #[test]
    fn str_tiles_produces_bounded_chunks() {
        let mut entries: Vec<LeafEntry> = random_items(1000, 7)
            .into_iter()
            .map(|(p, id)| LeafEntry::new(p, id))
            .collect();
        let tiles = str_tiles(&mut entries, 42, |e| e.point);
        assert_eq!(tiles.iter().map(Vec::len).sum::<usize>(), 1000);
        assert!(tiles.iter().all(|t| t.len() <= 42 && !t.is_empty()));
    }
}
