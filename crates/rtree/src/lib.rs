//! A paged R-tree with the search operations the CCA algorithms need.
//!
//! This crate implements the spatial access method the paper assumes for the
//! disk-resident customer set `P` (§2.3, §3):
//!
//! * STR bulk loading ([`RTree::bulk_load`]) and dynamic maintenance with
//!   Guttman quadratic splits and condense-tree deletion ([`RTree::insert`],
//!   [`RTree::delete`]; `_ctx` variants charge a `QueryContext`),
//! * range and annular-range search ([`RTree::range_search`],
//!   [`RTree::annular_range_search`]) driving RIA,
//! * best-first kNN and *incremental* NN cursors ([`RTree::knn`],
//!   [`RTree::inc_nn`]) driving NIA/IDA,
//! * grouped incremental all-NN search ([`RTree::group_ann`], Algorithm 6),
//! * diagonal-bounded partitioning ([`RTree::partition_by_diagonal`]) for the
//!   CA approximation (§4.2).
//!
//! All page accesses go through `cca-storage`'s LRU buffer pool so that page
//! faults — and hence the paper's charged I/O time — are accounted exactly.

pub mod ann;
pub mod bulk;
pub mod delete;
pub mod entry;
pub mod insert;
pub mod knn;
pub mod node;
pub mod partition;
pub mod query;
pub mod tree;

pub use ann::GroupAnn;
pub use entry::{InnerEntry, ItemId, LeafEntry};
pub use knn::IncNn;
pub use node::Node;
pub use partition::CustomerGroup;
pub use tree::RTree;
