//! Diagonal-bounded partition descent for Customer Approximation (§4.2).
//!
//! CA traverses the R-tree from the root and cuts it into entries whose MBR
//! diagonal is at most δ. Oversized leaves are *conceptually* split in half
//! along their longest dimension until each part satisfies δ. The resulting
//! groups carry their member points (needed later by the refinement phase)
//! and expose the representative (MBR centre) and weight (member count) used
//! by the concise matching phase.

use cca_geo::{Point, Rect};
use cca_storage::{Aborted, PageId, QueryContext};

use crate::entry::ItemId;
use crate::node::{self};
use crate::tree::RTree;

/// A group of customers produced by the CA partitioning phase.
#[derive(Clone, Debug)]
pub struct CustomerGroup {
    /// MBR of the group (diagonal ≤ δ by construction).
    pub mbr: Rect,
    /// The actual customers inside the group.
    pub members: Vec<(Point, ItemId)>,
}

impl CustomerGroup {
    /// The group representative: the geometric centroid of the entry
    /// ("a representative point g located at the geometric centroid of e",
    /// §4.2), i.e. the MBR centre — giving the δ/2 bound of Theorem 4.
    pub fn representative(&self) -> Point {
        self.mbr.center()
    }

    /// The representative weight `g.w`: number of points in the subtree.
    pub fn weight(&self) -> usize {
        self.members.len()
    }
}

impl RTree {
    /// Partitions the indexed points into groups of MBR diagonal ≤ `delta`.
    ///
    /// Implements the CA partitioning phase (§4.2) including the conceptual
    /// splitting of oversized leaves. The optional merge step that coalesces
    /// small neighbouring entries into hyper-entries lives in `cca-core`
    /// (it needs Hilbert ordering and is shared with SA grouping).
    ///
    /// Every returned group is non-empty and the groups partition `P`.
    pub fn partition_by_diagonal(&self, delta: f64) -> Vec<CustomerGroup> {
        self.partition_by_diagonal_ctx(delta, None)
            .expect("a context-free descent cannot abort")
    }

    /// [`RTree::partition_by_diagonal`] with the descent's I/O charged to
    /// `ctx`.
    ///
    /// The descent polls the context before every page visit and returns
    /// the typed [`Aborted`] error on cancellation, deadline expiry or an
    /// exhausted I/O budget.
    pub fn partition_by_diagonal_ctx(
        &self,
        delta: f64,
        ctx: Option<&QueryContext>,
    ) -> Result<Vec<CustomerGroup>, Aborted> {
        assert!(delta > 0.0, "delta must be positive");
        let mut out = Vec::new();
        if self.is_empty() {
            return Ok(out);
        }
        self.partition_rec(self.root(), self.height(), delta, ctx, &mut out)?;
        Ok(out)
    }

    fn partition_rec(
        &self,
        page: PageId,
        level_height: u32,
        delta: f64,
        ctx: Option<&QueryContext>,
        out: &mut Vec<CustomerGroup>,
    ) -> Result<(), Aborted> {
        if let Some(ctx) = ctx {
            ctx.check()?;
        }
        if level_height > 1 {
            // Inner node: entries small enough become groups wholesale;
            // larger ones are descended into.
            let entries: Vec<(Rect, PageId)> = self.store().with_page_ctx(page, ctx, |bytes| {
                let mut v = Vec::with_capacity(node::entry_count(bytes));
                node::for_each_inner_entry(bytes, |mbr, child| v.push((mbr, child)));
                v
            });
            for (mbr, child) in entries {
                if mbr.diagonal() <= delta {
                    let mut members = Vec::new();
                    self.for_each_point_under(child, level_height - 1, ctx, &mut |p, id| {
                        members.push((p, id));
                    })?;
                    if !members.is_empty() {
                        out.push(CustomerGroup { mbr, members });
                    }
                } else {
                    self.partition_rec(child, level_height - 1, delta, ctx, out)?;
                }
            }
            return Ok(());
        }

        // Leaf: collect the points, then conceptually split until the
        // δ constraint holds.
        let mut members = Vec::new();
        self.store().with_page_ctx(page, ctx, |bytes| {
            node::for_each_leaf_entry(bytes, |p, id| members.push((p, id)));
        });
        if members.is_empty() {
            return Ok(());
        }
        let mbr: Rect = members.iter().map(|&(p, _)| p).collect();
        split_until_delta(mbr, members, delta, out);
        Ok(())
    }
}

/// Recursively halves `region` along its longest dimension until the diagonal
/// of each part's *population MBR* is ≤ δ, emitting non-empty groups.
fn split_until_delta(
    region: Rect,
    members: Vec<(Point, ItemId)>,
    delta: f64,
    out: &mut Vec<CustomerGroup>,
) {
    // The group MBR reported is the tight MBR of the members: it can only be
    // smaller than the conceptual region, preserving the δ guarantee.
    let tight: Rect = members.iter().map(|&(p, _)| p).collect();
    if tight.diagonal() <= delta {
        out.push(CustomerGroup {
            mbr: tight,
            members,
        });
        return;
    }
    let (a, b) = region.split_longest();
    debug_assert!(
        a.diagonal() < region.diagonal(),
        "split must shrink the region"
    );
    let mut left = Vec::new();
    let mut right = Vec::new();
    for (p, id) in members {
        // Assign border points to the left half deterministically.
        if a.contains_point(&p) {
            left.push((p, id));
        } else {
            right.push((p, id));
        }
    }
    if !left.is_empty() {
        split_until_delta(a, left, delta, out);
    }
    if !right.is_empty() {
        split_until_delta(b, right, delta, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_storage::PageStore;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_items(n: usize, seed: u64) -> Vec<(Point, ItemId)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)),
                    i as ItemId,
                )
            })
            .collect()
    }

    fn check_partition(items: &[(Point, ItemId)], groups: &[CustomerGroup], delta: f64) {
        // Every group satisfies δ, is non-empty, and the groups partition P.
        let mut seen: Vec<ItemId> = Vec::new();
        for g in groups {
            assert!(!g.members.is_empty());
            assert!(
                g.mbr.diagonal() <= delta + 1e-9,
                "diagonal {} > delta {delta}",
                g.mbr.diagonal()
            );
            for &(p, id) in &g.members {
                assert!(g.mbr.contains_point(&p));
                seen.push(id);
            }
            // Representative is within δ/2 of every member (Theorem 4's
            // geometric premise).
            let rep = g.representative();
            for &(p, _) in &g.members {
                assert!(rep.dist(&p) <= delta / 2.0 + 1e-9);
            }
        }
        seen.sort_unstable();
        let mut want: Vec<ItemId> = items.iter().map(|&(_, id)| id).collect();
        want.sort_unstable();
        assert_eq!(seen, want, "groups must partition P exactly");
    }

    #[test]
    fn partition_various_deltas() {
        let items = random_items(3000, 51);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 4096), &items);
        for delta in [10.0, 40.0, 160.0, 2000.0] {
            let groups = tree.partition_by_diagonal(delta);
            check_partition(&items, &groups, delta);
        }
    }

    #[test]
    fn tiny_delta_forces_leaf_splitting() {
        let items = random_items(500, 52);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 1024), &items);
        let groups = tree.partition_by_diagonal(5.0);
        check_partition(&items, &groups, 5.0);
        // With δ=5 on uniform data, most groups are singletons.
        assert!(groups.len() > 300);
    }

    #[test]
    fn huge_delta_gives_few_groups() {
        let items = random_items(2000, 53);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 4096), &items);
        let big = tree.partition_by_diagonal(1e6).len();
        let small = tree.partition_by_diagonal(20.0).len();
        assert!(big < small, "bigger delta must give coarser partition");
        // The descent starts from the root *entries* (§4.2), so the coarsest
        // partition has one group per root entry.
        assert_eq!(big, tree.inner_capacity().min(big));
        assert!(big <= tree.inner_capacity());
    }

    #[test]
    fn weights_sum_to_population() {
        let items = random_items(1234, 54);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 4096), &items);
        let groups = tree.partition_by_diagonal(80.0);
        let total: usize = groups.iter().map(CustomerGroup::weight).sum();
        assert_eq!(total, 1234);
    }

    #[test]
    fn empty_tree_partitions_to_nothing() {
        let tree = RTree::bulk_load(PageStore::with_config(1024, 16), &[]);
        assert!(tree.partition_by_diagonal(10.0).is_empty());
    }

    #[test]
    fn duplicate_heavy_data_terminates() {
        // All points identical: zero-diagonal group regardless of delta.
        let items: Vec<(Point, ItemId)> = (0..200).map(|i| (Point::new(3.0, 3.0), i)).collect();
        let tree = RTree::bulk_load(PageStore::with_config(1024, 256), &items);
        let groups = tree.partition_by_diagonal(0.5);
        check_partition(&items, &groups, 0.5);
        assert_eq!(groups.len(), tree.store().num_pages().min(groups.len()));
    }
}
