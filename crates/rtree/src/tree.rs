//! The paged R-tree.

use cca_geo::Rect;
use cca_storage::{Aborted, IoStats, PageId, PageStore, QueryContext};

use crate::entry::{InnerEntry, ItemId, LeafEntry};
use crate::node::{self, Node};

/// A disk-resident R-tree over 2-D points, the spatial access method the
/// paper assumes for the customer set `P` (§2.3, §3).
///
/// All page accesses go through the [`PageStore`]'s LRU buffer pool, so
/// [`RTree::io_stats`] reports exactly the page faults the paper charges at
/// 10 ms each.
pub struct RTree {
    store: PageStore,
    root: PageId,
    /// Number of levels; 1 means the root is a leaf.
    height: u32,
    /// Number of indexed points.
    size: usize,
    leaf_cap: usize,
    inner_cap: usize,
}

impl RTree {
    /// Creates an empty tree (root = empty leaf) on the given store.
    pub fn new(store: PageStore) -> Self {
        let leaf_cap = node::leaf_capacity(store.page_size());
        let inner_cap = node::inner_capacity(store.page_size());
        assert!(leaf_cap >= 2 && inner_cap >= 2, "page size too small");
        let root = store.alloc_page();
        let empty = node::encode(&Node::Leaf(Vec::new()), store.page_size());
        store.write_page(root, &empty);
        RTree {
            store,
            root,
            height: 1,
            size: 0,
            leaf_cap,
            inner_cap,
        }
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.size
    }

    /// True when no points are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Tree height (1 = the root is a leaf).
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Root page id.
    #[inline]
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Maximum leaf entries per page.
    #[inline]
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_cap
    }

    /// Maximum inner entries per page.
    #[inline]
    pub fn inner_capacity(&self) -> usize {
        self.inner_cap
    }

    /// The underlying page store.
    #[inline]
    pub fn store(&self) -> &PageStore {
        &self.store
    }

    /// MBR of the whole tree (empty rect if the tree is empty).
    pub fn root_mbr(&self) -> Rect {
        self.read_node(self.root).mbr()
    }

    /// I/O statistics accumulated by the buffer pool.
    pub fn io_stats(&self) -> IoStats {
        self.store.io_stats()
    }

    /// Applies the paper's experimental storage settings after construction:
    /// flushes dirty pages, sizes the LRU buffer at `percent` of the tree's
    /// pages (§5.1 uses 1 %), cold-starts the cache and clears statistics so
    /// that only query I/O is charged.
    pub fn finish_build(&self, percent: f64) {
        self.store.flush();
        let pages = self.store.num_pages() as f64;
        let cap = ((pages * percent / 100.0).ceil() as usize).max(1);
        self.store.set_buffer_capacity(cap);
        self.store.clear_cache();
        self.store.reset_stats();
    }

    /// Reads and materialises a node (insert path, partitioning, debugging).
    pub fn read_node(&self, id: PageId) -> Node {
        self.store.with_page(id, node::decode)
    }

    /// Serialises and writes a node.
    pub fn write_node(&self, id: PageId, n: &Node) {
        let bytes = node::encode(n, self.store.page_size());
        self.store.write_page(id, &bytes);
    }

    /// [`RTree::read_node`] with the page access charged to `ctx`.
    ///
    /// Charging never aborts the access itself — maintenance ops stay
    /// atomic; an exhausted budget only surfaces at the next `ctx.check()`.
    pub(crate) fn read_node_ctx(&self, id: PageId, ctx: Option<&QueryContext>) -> Node {
        self.store.with_page_ctx(id, ctx, node::decode)
    }

    /// [`RTree::write_node`] with eviction write-backs charged to `ctx`.
    pub(crate) fn write_node_ctx(&self, id: PageId, ctx: Option<&QueryContext>, n: &Node) {
        let bytes = node::encode(n, self.store.page_size());
        self.store.write_page_ctx(id, ctx, &bytes);
    }

    pub(crate) fn alloc_node_ctx(&self, ctx: Option<&QueryContext>, n: &Node) -> PageId {
        let id = self.store.alloc_page();
        self.write_node_ctx(id, ctx, n);
        id
    }

    pub(crate) fn set_root(&mut self, root: PageId, height: u32) {
        self.root = root;
        self.height = height;
    }

    pub(crate) fn set_size(&mut self, size: usize) {
        self.size = size;
    }

    pub(crate) fn bump_size(&mut self) {
        self.size += 1;
    }

    pub(crate) fn dec_size(&mut self) {
        debug_assert!(self.size > 0, "delete on an empty tree slipped through");
        self.size -= 1;
    }

    /// Streams all points of the tree in depth-first order (test helper and
    /// CA-partition support). Charges the same I/O a real scan would.
    pub fn for_each_point(&self, mut f: impl FnMut(cca_geo::Point, ItemId)) {
        self.for_each_point_under(self.root, self.height, None, &mut f)
            .expect("a context-free scan cannot abort");
    }

    /// [`RTree::for_each_point`] with the scan's I/O charged to `ctx`.
    ///
    /// The scan polls the context before every page visit and returns the
    /// typed [`Aborted`] error on cancellation, deadline expiry or an
    /// exhausted I/O budget instead of reading on.
    pub fn for_each_point_ctx(
        &self,
        ctx: Option<&QueryContext>,
        mut f: impl FnMut(cca_geo::Point, ItemId),
    ) -> Result<(), Aborted> {
        self.for_each_point_under(self.root, self.height, ctx, &mut f)
    }

    /// Streams all points below the given node.
    pub(crate) fn for_each_point_under(
        &self,
        page: PageId,
        level_height: u32,
        ctx: Option<&QueryContext>,
        f: &mut impl FnMut(cca_geo::Point, ItemId),
    ) -> Result<(), Aborted> {
        if let Some(ctx) = ctx {
            ctx.check()?;
        }
        if level_height == 1 {
            self.store.with_page_ctx(page, ctx, |bytes| {
                node::for_each_leaf_entry(bytes, f);
            });
        } else {
            let children: Vec<PageId> = self.store.with_page_ctx(page, ctx, |bytes| {
                let mut v = Vec::with_capacity(node::entry_count(bytes));
                node::for_each_inner_entry(bytes, |_, c| v.push(c));
                v
            });
            for c in children {
                self.for_each_point_under(c, level_height - 1, ctx, f)?;
            }
        }
        Ok(())
    }

    /// Checks structural invariants; used by tests after bulk load and
    /// inserts. Returns the number of points found.
    ///
    /// Verified invariants:
    /// * every inner entry's MBR equals the MBR of its child's contents,
    /// * all leaves sit at the same depth (`height`),
    /// * node occupancy never exceeds capacity.
    pub fn check_invariants(&self) -> usize {
        self.check_node(self.root, self.height, None)
    }

    fn check_node(&self, page: PageId, level_height: u32, expect_mbr: Option<Rect>) -> usize {
        let n = self.read_node(page);
        if let Some(expected) = expect_mbr {
            let actual = n.mbr();
            assert!(
                rect_close(&expected, &actual),
                "stale MBR at {page}: stored {expected:?} vs actual {actual:?}"
            );
        }
        match n {
            Node::Leaf(entries) => {
                assert_eq!(level_height, 1, "leaf at wrong depth");
                assert!(entries.len() <= self.leaf_cap);
                entries.len()
            }
            Node::Inner(entries) => {
                assert!(level_height > 1, "inner node at leaf depth");
                assert!(entries.len() <= self.inner_cap);
                assert!(!entries.is_empty(), "empty inner node");
                entries
                    .iter()
                    .map(|e| self.check_node(e.child, level_height - 1, Some(e.mbr)))
                    .sum()
            }
        }
    }

    /// Root entries as (mbr, child) pairs, or the root's points if it is a
    /// leaf; used by the CA partition descent.
    pub fn root_entries(&self) -> RootEntries {
        match self.read_node(self.root) {
            Node::Leaf(v) => RootEntries::Leaf(v),
            Node::Inner(v) => RootEntries::Inner(v),
        }
    }
}

/// Result of [`RTree::root_entries`].
pub enum RootEntries {
    Leaf(Vec<LeafEntry>),
    Inner(Vec<InnerEntry>),
}

fn rect_close(a: &Rect, b: &Rect) -> bool {
    let eps = 1e-9;
    (a.lo.x - b.lo.x).abs() < eps
        && (a.lo.y - b.lo.y).abs() < eps
        && (a.hi.x - b.hi.x).abs() < eps
        && (a.hi.y - b.hi.y).abs() < eps
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_geo::Point;

    #[test]
    fn empty_tree_properties() {
        let t = RTree::new(PageStore::with_config(1024, 16));
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert_eq!(t.check_invariants(), 0);
        assert!(t.root_mbr().is_empty());
    }

    #[test]
    fn capacities_follow_page_size() {
        let t = RTree::new(PageStore::with_config(1024, 16));
        assert_eq!(t.leaf_capacity(), 42);
        assert_eq!(t.inner_capacity(), 28);
    }

    #[test]
    fn finish_build_applies_one_percent_rule() {
        // shards = 1: multi-shard stores floor the capacity at one page per
        // shard, which would mask the exact 1 % arithmetic checked here.
        let store = PageStore::with_config_sharded(1024, 4096, 1);
        // Allocate ~300 pages by hand to exercise the rule.
        let t = RTree::new(store);
        for _ in 0..299 {
            t.store().alloc_page();
        }
        t.finish_build(1.0);
        assert_eq!(t.store().buffer_capacity(), 3);
        assert_eq!(t.io_stats(), IoStats::default());
    }

    #[test]
    fn for_each_point_on_single_leaf() {
        let mut t = RTree::new(PageStore::with_config(1024, 16));
        let n = Node::Leaf(vec![
            LeafEntry::new(Point::new(1.0, 1.0), 10),
            LeafEntry::new(Point::new(2.0, 2.0), 20),
        ]);
        t.write_node(t.root(), &n);
        t.set_size(2);
        let mut seen = Vec::new();
        t.for_each_point(|p, id| seen.push((p, id)));
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].1, 10);
        assert_eq!(seen[1].1, 20);
    }
}
