//! Grouped incremental all-nearest-neighbour (ANN) search — Algorithm 6.
//!
//! §3.4.2: service providers are grouped by Hilbert order; each group `Gm`
//! shares one heap `Hm` of R-tree entries ordered by
//! `mindist(MBR(Gm), MBR(e))`, and each member `qi` keeps a candidate heap
//! `res_i` of already-encountered customers ordered by `dist(qi, ·)`. The
//! next NN of `qi` is final once the top of `res_i` is at most the top key of
//! `Hm`. Sharing `Hm` means each R-tree page is read once per *group* rather
//! than once per provider, which is exactly the I/O saving the paper claims.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cca_geo::{OrdF64, Point, Rect};
use cca_storage::{AbortReason, PageId, QueryContext};

use crate::entry::ItemId;
use crate::node;
use crate::tree::RTree;

/// Shared-heap entry: a node (by group-mindist) awaiting expansion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct GroupHeapKey {
    dist: OrdF64,
    page: u32,
    level_height: u32,
}

/// One provider's candidate queue entry.
#[derive(Clone, Copy, Debug)]
struct Candidate {
    dist: OrdF64,
    point: Point,
    id: ItemId,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        (self.dist, self.id) == (other.dist, other.id)
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.dist, self.id).cmp(&(other.dist, other.id))
    }
}

/// Incremental ANN search over one Hilbert group of providers (Algorithm 6).
pub struct GroupAnn<'t> {
    tree: &'t RTree,
    /// The group MBR: `mindist(MBR(Gm), MBR(e))` keys `Hm`.
    group_mbr: Rect,
    members: Vec<Point>,
    /// `Hm`: shared min-heap of R-tree entries.
    hm: BinaryHeap<Reverse<GroupHeapKey>>,
    /// `res_i`: per-member candidate heaps.
    res: Vec<BinaryHeap<Reverse<Candidate>>>,
    /// Points already handed to candidate heaps (for accounting/tests).
    points_seen: usize,
    /// Per-query control block for every page this group search reads; the
    /// search stops expanding entries once the context aborts.
    ctx: Option<QueryContext>,
    /// Why the search stopped early, if it did.
    aborted: Option<AbortReason>,
}

impl<'t> GroupAnn<'t> {
    /// Creates the shared search state for a provider group.
    ///
    /// # Panics
    /// Panics on an empty member list — groups come from Hilbert
    /// partitioning which never emits empty groups.
    pub fn new(tree: &'t RTree, members: Vec<Point>) -> Self {
        Self::with_ctx(tree, members, None)
    }

    /// [`GroupAnn::new`] with the search's I/O charged to `ctx`.
    pub fn with_ctx(tree: &'t RTree, members: Vec<Point>, ctx: Option<QueryContext>) -> Self {
        assert!(!members.is_empty(), "ANN group must be non-empty");
        let group_mbr: Rect = members.iter().copied().collect();
        let mut hm = BinaryHeap::new();
        if !tree.is_empty() {
            hm.push(Reverse(GroupHeapKey {
                dist: OrdF64::new(0.0),
                page: tree.root().0,
                level_height: tree.height(),
            }));
        }
        let res = members.iter().map(|_| BinaryHeap::new()).collect();
        GroupAnn {
            tree,
            group_mbr,
            members,
            hm,
            res,
            points_seen: 0,
            ctx,
            aborted: None,
        }
    }

    /// Number of members in the group.
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// Why the shared search aborted (cancellation / deadline / I/O
    /// budget), if it did. After an abort, members only drain candidates
    /// already fetched; `next_nn` then returns `None`.
    pub fn abort_reason(&self) -> Option<AbortReason> {
        self.aborted
    }

    /// Total customers inserted into candidate heaps so far.
    pub fn points_seen(&self) -> usize {
        self.points_seen
    }

    /// Retrieves the next nearest neighbour of member `i` (Algorithm 6).
    ///
    /// Returns `None` once the tree is exhausted for this member.
    pub fn next_nn(&mut self, i: usize) -> Option<(Point, ItemId, f64)> {
        loop {
            let res_top = self.res[i].peek().map(|Reverse(c)| c.dist);
            let hm_top = self.hm.peek().map(|Reverse(k)| k.dist);
            match (res_top, hm_top) {
                // Candidate is final: no unexpanded entry can beat it
                // (candidate key <= group mindist <= member distance of any
                // point below that entry).
                (Some(r), Some(h)) if r <= h => break,
                (Some(_), None) => break,
                (None, None) => return None,
                // Otherwise expand the nearest entry in Hm.
                _ => self.expand_top(),
            }
        }
        let Reverse(c) = self.res[i].pop()?;
        Some((c.point, c.id, c.dist.get()))
    }

    /// Distance of member `i`'s next NN without consuming it.
    pub fn peek_dist(&mut self, i: usize) -> Option<f64> {
        loop {
            let res_top = self.res[i].peek().map(|Reverse(c)| c.dist);
            let hm_top = self.hm.peek().map(|Reverse(k)| k.dist);
            match (res_top, hm_top) {
                (Some(r), Some(h)) if r <= h => return Some(r.get()),
                (Some(r), None) => return Some(r.get()),
                (None, None) => return None,
                _ => self.expand_top(),
            }
        }
    }

    /// De-heaps the top entry of `Hm`; directory entries are expanded, leaf
    /// pages scatter their points into every member's candidate heap.
    fn expand_top(&mut self) {
        if let Some(reason) = self.ctx.as_ref().and_then(|c| c.abort_reason()) {
            // Drop the shared frontier before touching the page: members
            // drain their buffered candidates and then see exhaustion.
            self.aborted = Some(reason);
            self.hm.clear();
            return;
        }
        let Reverse(key) = self.hm.pop().expect("expand_top on empty Hm");
        let page = PageId(key.page);
        let ctx = self.ctx.as_ref();
        if key.level_height == 1 {
            let members = &self.members;
            let res = &mut self.res;
            let mut seen = 0usize;
            self.tree.store().with_page_ctx(page, ctx, |bytes| {
                node::for_each_leaf_entry(bytes, |p, id| {
                    seen += 1;
                    for (m, heap) in members.iter().zip(res.iter_mut()) {
                        heap.push(Reverse(Candidate {
                            dist: OrdF64::new(m.dist(&p)),
                            point: p,
                            id,
                        }));
                    }
                });
            });
            self.points_seen += seen;
        } else {
            let gm = self.group_mbr;
            let hm = &mut self.hm;
            self.tree.store().with_page_ctx(page, ctx, |bytes| {
                node::for_each_inner_entry(bytes, |mbr, child| {
                    hm.push(Reverse(GroupHeapKey {
                        dist: OrdF64::new(gm.mindist_rect(&mbr)),
                        page: child.0,
                        level_height: key.level_height - 1,
                    }));
                });
            });
        }
    }
}

impl RTree {
    /// Opens a grouped incremental ANN search for the given provider
    /// positions (one Hilbert group, §3.4.2).
    pub fn group_ann(&self, members: Vec<Point>) -> GroupAnn<'_> {
        GroupAnn::new(self, members)
    }

    /// [`RTree::group_ann`] with the search's I/O charged to `ctx`; the
    /// shared heap stops expanding entries once the context aborts.
    pub fn group_ann_ctx(&self, members: Vec<Point>, ctx: Option<&QueryContext>) -> GroupAnn<'_> {
        GroupAnn::with_ctx(self, members, ctx.cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_storage::PageStore;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_items(n: usize, seed: u64) -> Vec<(Point, ItemId)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)),
                    i as ItemId,
                )
            })
            .collect()
    }

    #[test]
    fn group_ann_yields_same_sequence_as_individual_cursors() {
        let items = random_items(2000, 41);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 4096), &items);
        let members = vec![
            Point::new(100.0, 100.0),
            Point::new(120.0, 90.0),
            Point::new(95.0, 130.0),
        ];
        let mut ann = tree.group_ann(members.clone());
        for (i, m) in members.iter().enumerate() {
            let mut solo = tree.inc_nn(*m);
            for step in 0..50 {
                let a = ann.next_nn(i).unwrap();
                let s = solo.next().unwrap();
                assert!(
                    (a.2 - s.2).abs() < 1e-12,
                    "member {i} step {step}: grouped {a:?} vs solo {s:?}"
                );
            }
        }
    }

    #[test]
    fn group_ann_exhausts_tree_per_member() {
        let items = random_items(300, 42);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 1024), &items);
        let mut ann = tree.group_ann(vec![Point::new(0.0, 0.0), Point::new(999.0, 999.0)]);
        for i in 0..2 {
            let mut n = 0;
            let mut last = 0.0;
            while let Some((_, _, d)) = ann.next_nn(i) {
                assert!(d >= last - 1e-12);
                last = d;
                n += 1;
            }
            assert_eq!(n, 300);
            assert!(ann.next_nn(i).is_none());
        }
    }

    #[test]
    fn grouped_search_saves_io_versus_individual() {
        let items = random_items(30000, 43);
        // shards = 1: the grouped-vs-solo fault comparison assumes the
        // paper's single global LRU; per-shard capacity floors on many-core
        // hosts would grow the effective buffer and blur the contrast.
        let tree = RTree::bulk_load(PageStore::with_config_sharded(1024, 16384, 1), &items);
        tree.finish_build(1.0);

        // Ten co-located providers each pulling 200 NNs.
        let members: Vec<Point> = (0..10)
            .map(|i| Point::new(500.0 + i as f64, 500.0 - i as f64))
            .collect();

        tree.store().clear_cache();
        tree.store().reset_stats();
        let mut ann = tree.group_ann(members.clone());
        for i in 0..members.len() {
            for _ in 0..200 {
                ann.next_nn(i).unwrap();
            }
        }
        let grouped_faults = tree.io_stats().faults;

        tree.store().clear_cache();
        tree.store().reset_stats();
        for &m in &members {
            let mut cur = tree.inc_nn(m);
            for _ in 0..200 {
                cur.next().unwrap();
            }
        }
        let solo_faults = tree.io_stats().faults;

        assert!(
            grouped_faults < solo_faults,
            "grouped ANN should fault less: grouped={grouped_faults} solo={solo_faults}"
        );
    }

    #[test]
    fn peek_dist_agrees_with_next_nn() {
        let items = random_items(500, 44);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 1024), &items);
        let mut ann = tree.group_ann(vec![Point::new(250.0, 750.0)]);
        for _ in 0..100 {
            let peek = ann.peek_dist(0).unwrap();
            let (_, _, d) = ann.next_nn(0).unwrap();
            assert_eq!(peek, d);
        }
    }

    #[test]
    fn single_member_group_equals_inc_nn() {
        let items = random_items(800, 45);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 1024), &items);
        let q = Point::new(42.0, 17.0);
        let mut ann = tree.group_ann(vec![q]);
        let solo: Vec<f64> = tree.inc_nn(q).map(|(_, _, d)| d).collect();
        for (i, want) in solo.iter().enumerate() {
            let (_, _, d) = ann.next_nn(0).unwrap();
            assert!((d - want).abs() < 1e-12, "step {i}");
        }
    }

    #[test]
    fn empty_tree_gives_no_neighbours() {
        let tree = RTree::bulk_load(PageStore::with_config(1024, 16), &[]);
        let mut ann = tree.group_ann(vec![Point::new(1.0, 1.0)]);
        assert!(ann.next_nn(0).is_none());
        assert!(ann.peek_dist(0).is_none());
    }
}
