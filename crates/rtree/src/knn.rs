//! Best-first (incremental) nearest-neighbour search.
//!
//! Implements the Hjaltason–Samet distance-browsing algorithm the paper cites
//! as "the state-of-the-art KNN processing technique" (§2.3): a single
//! min-heap over R-tree entries and points, visited in ascending distance
//! order. The [`IncNn`] cursor exposes the *incremental* interface NIA and
//! IDA rely on ("computes the next nearest neighbor of qi", §3.2).

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use cca_geo::{kernel, OrdF64, Point};
use cca_storage::{AbortReason, Aborted, PageId, QueryContext};

use crate::entry::ItemId;
use crate::node;
use crate::tree::RTree;

/// Heap item: an R-tree node (to expand) or a point (to yield), keyed by
/// distance from the query. Points win distance ties against nodes so a
/// point at distance `d` is reported before a node at `mindist d` is
/// expanded — both orders are correct, this one terminates earlier.
#[derive(Clone, Copy, Debug)]
struct HeapItem {
    dist: OrdF64,
    kind: ItemKind,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum ItemKind {
    Point(Point, ItemId),
    Node(PageId, u32),
}

impl HeapItem {
    fn rank(&self) -> (OrdF64, u8, u64) {
        match self.kind {
            ItemKind::Point(_, id) => (self.dist, 0, id),
            ItemKind::Node(page, _) => (self.dist, 1, u64::from(page.0)),
        }
    }
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.rank() == other.rank()
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.rank().cmp(&other.rank())
    }
}

/// Reusable struct-of-arrays staging for one node's entries: the page
/// decoder fills the coordinate columns, one batched kernel call computes
/// every leaf distance, and the heap pushes read the results back. Owned by
/// the cursor so expanding N nodes allocates nothing after the first.
///
/// Only leaf (point) scoring is batched. Inner-node MBRs are scored scalar
/// in the decode closure: the rect kernel reads five streams per element
/// against the point kernel's two, and measured at or below the scalar path
/// on the `hot_path` bench (`dist_kernel` rows), so batching them buys
/// nothing — see `cca_geo::kernel::rect_mindist2_batch` for the record.
#[derive(Default)]
struct SoaScratch {
    /// Leaf columns: point coordinates and item ids.
    xs: Vec<f64>,
    ys: Vec<f64>,
    ids: Vec<ItemId>,
    /// Inner-node child page ids.
    children: Vec<u32>,
    /// Squared distances (kernel output for leaves, scalar for inner nodes).
    d2: Vec<f64>,
}

impl SoaScratch {
    fn clear(&mut self) {
        self.xs.clear();
        self.ys.clear();
        self.ids.clear();
        self.children.clear();
        self.d2.clear();
    }
}

/// An incremental nearest-neighbour cursor over the tree.
///
/// Yields the indexed points in ascending distance from the query point, one
/// at a time, reading R-tree pages lazily (each node visit goes through the
/// buffer pool and may fault).
pub struct IncNn<'t> {
    tree: &'t RTree,
    query: Point,
    heap: BinaryHeap<Reverse<HeapItem>>,
    yielded: usize,
    /// Per-query control block; every page this cursor faults or hits is
    /// charged here in addition to the store's shard counters, and the
    /// cursor stops expanding nodes the moment the context aborts.
    ctx: Option<QueryContext>,
    /// Why the cursor stopped early, if it did.
    aborted: Option<AbortReason>,
    /// SoA staging for the batched distance kernels.
    scratch: SoaScratch,
}

impl<'t> IncNn<'t> {
    pub(crate) fn new(tree: &'t RTree, query: Point, ctx: Option<QueryContext>) -> Self {
        let mut heap = BinaryHeap::new();
        if !tree.is_empty() {
            heap.push(Reverse(HeapItem {
                dist: OrdF64::new(0.0),
                kind: ItemKind::Node(tree.root(), tree.height()),
            }));
        }
        IncNn {
            tree,
            query,
            heap,
            yielded: 0,
            ctx,
            aborted: None,
            scratch: SoaScratch::default(),
        }
    }

    /// Number of neighbours yielded so far.
    pub fn yielded(&self) -> usize {
        self.yielded
    }

    /// Why the cursor aborted (context cancelled / deadline / I/O budget),
    /// if it did. An aborted cursor yields `None` from then on; the
    /// neighbours already yielded remain correct.
    pub fn abort_reason(&self) -> Option<AbortReason> {
        self.aborted
    }

    /// Distance of the next neighbour without consuming it, if any.
    pub fn peek_dist(&mut self) -> Option<f64> {
        self.settle_to_point();
        self.heap.peek().map(|Reverse(item)| item.dist.get())
    }

    /// Expands nodes until the heap's top is a point (or the heap empties).
    fn settle_to_point(&mut self) {
        while let Some(Reverse(item)) = self.heap.peek() {
            match item.kind {
                ItemKind::Point(..) => return,
                ItemKind::Node(page, level_height) => {
                    self.heap.pop();
                    self.expand(page, level_height);
                }
            }
        }
    }

    fn expand(&mut self, page: PageId, level_height: u32) {
        if let Some(reason) = self.ctx.as_ref().and_then(|c| c.abort_reason()) {
            // Stop before the page access: drop the frontier so the
            // iterator ends instead of burning further I/O.
            self.aborted = Some(reason);
            self.heap.clear();
            return;
        }
        let q = self.query;
        let heap = &mut self.heap;
        let ctx = self.ctx.as_ref();
        let scratch = &mut self.scratch;
        scratch.clear();
        // Leaves: decode into SoA columns, evaluate every entry's distance
        // in one batched (autovectorized) kernel call, then feed the heap.
        // Inner nodes: score each MBR scalar while decoding (see
        // `SoaScratch`). Either way `dist2.sqrt()` produces bit-identical
        // values to the scalar `q.dist(&p)` / `mbr.mindist(&q)` paths
        // (pinned by cca-geo tests).
        if level_height == 1 {
            self.tree.store().with_page_ctx(page, ctx, |bytes| {
                node::for_each_leaf_entry(bytes, |p, id| {
                    scratch.xs.push(p.x);
                    scratch.ys.push(p.y);
                    scratch.ids.push(id);
                });
            });
            scratch.d2.resize(scratch.xs.len(), 0.0);
            kernel::point_dist2_batch(q.x, q.y, &scratch.xs, &scratch.ys, &mut scratch.d2);
            for i in 0..scratch.ids.len() {
                heap.push(Reverse(HeapItem {
                    dist: OrdF64::new(scratch.d2[i].sqrt()),
                    kind: ItemKind::Point(Point::new(scratch.xs[i], scratch.ys[i]), scratch.ids[i]),
                }));
            }
        } else {
            self.tree.store().with_page_ctx(page, ctx, |bytes| {
                node::for_each_inner_entry(bytes, |mbr, child| {
                    scratch.d2.push(mbr.mindist2(&q));
                    scratch.children.push(child.0);
                });
            });
            for i in 0..scratch.children.len() {
                heap.push(Reverse(HeapItem {
                    dist: OrdF64::new(scratch.d2[i].sqrt()),
                    kind: ItemKind::Node(PageId(scratch.children[i]), level_height - 1),
                }));
            }
        }
    }
}

impl Iterator for IncNn<'_> {
    type Item = (Point, ItemId, f64);

    fn next(&mut self) -> Option<Self::Item> {
        self.settle_to_point();
        let Reverse(item) = self.heap.pop()?;
        match item.kind {
            ItemKind::Point(p, id) => {
                self.yielded += 1;
                Some((p, id, item.dist.get()))
            }
            ItemKind::Node(..) => unreachable!("settle_to_point leaves a point on top"),
        }
    }
}

impl RTree {
    /// Opens an incremental NN cursor at `query`.
    pub fn inc_nn(&self, query: Point) -> IncNn<'_> {
        IncNn::new(self, query, None)
    }

    /// [`RTree::inc_nn`] with the cursor's I/O charged to `ctx`; the cursor
    /// checks the context before every node expansion and stops (recording
    /// [`IncNn::abort_reason`]) on cancellation, deadline or budget.
    pub fn inc_nn_ctx(&self, query: Point, ctx: Option<&QueryContext>) -> IncNn<'_> {
        IncNn::new(self, query, ctx.cloned())
    }

    /// The `k` nearest neighbours of `query` in ascending distance order.
    pub fn knn(&self, query: Point, k: usize) -> Vec<(Point, ItemId, f64)> {
        self.inc_nn(query).take(k).collect()
    }

    /// [`RTree::knn`] under a query context: the search's I/O is charged to
    /// `ctx` and an aborted search returns the typed error instead of a
    /// silently truncated result.
    pub fn knn_ctx(
        &self,
        query: Point,
        k: usize,
        ctx: Option<&QueryContext>,
    ) -> Result<Vec<(Point, ItemId, f64)>, Aborted> {
        let mut cursor = self.inc_nn_ctx(query, ctx);
        let hits: Vec<_> = cursor.by_ref().take(k).collect();
        match cursor.abort_reason() {
            Some(reason) => Err(Aborted { reason }),
            None => Ok(hits),
        }
    }

    /// Bounded-radius kNN: up to `k` nearest neighbours of `query` whose
    /// distance is at most `max_dist`, in ascending order.
    ///
    /// The incremental cursor yields neighbours nearest-first, so the
    /// search stops expanding the moment the head distance exceeds the
    /// radius — a neighbourhood probe (the approximate tier's swap
    /// refinement) pays only for the pages covering the ball it actually
    /// inspects, not for a full kNN frontier. I/O is charged to `ctx` and
    /// aborts surface as the typed error.
    pub fn knn_within_ctx(
        &self,
        query: Point,
        k: usize,
        max_dist: f64,
        ctx: Option<&QueryContext>,
    ) -> Result<Vec<(Point, ItemId, f64)>, Aborted> {
        let mut cursor = self.inc_nn_ctx(query, ctx);
        let mut hits = Vec::new();
        for (p, id, d) in cursor.by_ref() {
            if d > max_dist || hits.len() >= k {
                break;
            }
            hits.push((p, id, d));
        }
        match cursor.abort_reason() {
            Some(reason) => Err(Aborted { reason }),
            None => Ok(hits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_storage::PageStore;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_items(n: usize, seed: u64) -> Vec<(Point, ItemId)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)),
                    i as ItemId,
                )
            })
            .collect()
    }

    fn brute_knn(items: &[(Point, ItemId)], q: Point, k: usize) -> Vec<(ItemId, f64)> {
        let mut v: Vec<(ItemId, f64)> = items.iter().map(|&(p, id)| (id, q.dist(&p))).collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    #[test]
    fn knn_matches_brute_force() {
        let items = random_items(2000, 21);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 4096), &items);
        let q = Point::new(333.0, 666.0);
        let got = tree.knn(q, 25);
        let want = brute_knn(&items, q, 25);
        assert_eq!(got.len(), 25);
        for (g, w) in got.iter().zip(&want) {
            // Distances must agree exactly; ids may differ only under exact
            // distance ties.
            assert!((g.2 - w.1).abs() < 1e-12, "got {g:?}, want {w:?}");
        }
    }

    #[test]
    fn cursor_yields_ascending_distances() {
        let items = random_items(1500, 22);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 4096), &items);
        let q = Point::new(10.0, 10.0);
        let mut last = 0.0;
        let mut count = 0;
        for (_, _, d) in tree.inc_nn(q) {
            assert!(d >= last - 1e-12, "distance regressed: {d} < {last}");
            last = d;
            count += 1;
        }
        assert_eq!(count, 1500, "cursor must exhaust the whole tree");
    }

    #[test]
    fn cursor_is_lazy_in_io() {
        let items = random_items(20000, 23);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 8192), &items);
        tree.finish_build(100.0);
        let mut cur = tree.inc_nn(Point::new(500.0, 500.0));
        let _ = cur.next();
        let after_first = tree.io_stats().faults;
        // Exhausting the cursor costs far more I/O than the first NN.
        for _ in cur {}
        let after_all = tree.io_stats().faults;
        assert!(
            after_first * 20 < after_all,
            "first NN should be much cheaper: {after_first} vs {after_all}"
        );
    }

    #[test]
    fn peek_matches_next() {
        let items = random_items(300, 24);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 1024), &items);
        let mut cur = tree.inc_nn(Point::new(400.0, 100.0));
        for _ in 0..300 {
            let peeked = cur.peek_dist().unwrap();
            let (_, _, d) = cur.next().unwrap();
            assert_eq!(peeked, d);
        }
        assert_eq!(cur.peek_dist(), None);
        assert!(cur.next().is_none());
    }

    #[test]
    fn knn_within_respects_both_bounds() {
        let items = random_items(2000, 26);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 4096), &items);
        let q = Point::new(500.0, 500.0);
        let radius = 40.0;
        let within = tree.knn_within_ctx(q, usize::MAX, radius, None).unwrap();
        let want: Vec<(ItemId, f64)> = brute_knn(&items, q, 2000)
            .into_iter()
            .filter(|&(_, d)| d <= radius)
            .collect();
        assert_eq!(within.len(), want.len());
        assert!(within.iter().all(|&(_, _, d)| d <= radius));
        assert!(within.windows(2).all(|w| w[0].2 <= w[1].2));
        // The k cap truncates the same prefix.
        let capped = tree.knn_within_ctx(q, 3, radius, None).unwrap();
        assert_eq!(capped.len(), 3.min(want.len()));
        for (c, w) in capped.iter().zip(&within) {
            assert_eq!(c.1, w.1);
        }
    }

    #[test]
    fn knn_within_abort_unwinds_typed() {
        let items = random_items(20000, 27);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 8192), &items);
        tree.finish_build(1.0); // cold, tiny buffer: the search must fault

        let ctx = cca_storage::QueryContext::new().with_io_budget(2);
        let err = tree
            .knn_within_ctx(Point::new(500.0, 500.0), usize::MAX, 400.0, Some(&ctx))
            .expect_err("a 2-fault budget cannot cover a 400-radius scan");
        assert_eq!(err.reason, cca_storage::AbortReason::IoBudgetExceeded);
        assert_eq!(
            ctx.abort_reason(),
            Some(cca_storage::AbortReason::IoBudgetExceeded)
        );

        // Cancellation surfaces through the same typed path.
        let ctx = cca_storage::QueryContext::new();
        ctx.cancel();
        let err = tree
            .knn_within_ctx(Point::new(500.0, 500.0), 5, 400.0, Some(&ctx))
            .expect_err("cancelled context must abort the search");
        assert_eq!(err.reason, cca_storage::AbortReason::Cancelled);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_knn_within_matches_brute_force(
            seed in 0u64..1000,
            n in 1usize..400,
            k in 0usize..30,
            radius in 0.0f64..600.0,
            qx in 0.0f64..1000.0,
            qy in 0.0f64..1000.0,
        ) {
            let items = random_items(n, seed);
            let tree = RTree::bulk_load(PageStore::with_config(1024, 4096), &items);
            let q = Point::new(qx, qy);
            let got = tree.knn_within_ctx(q, k, radius, None).unwrap();

            let want: Vec<(ItemId, f64)> = brute_knn(&items, q, n)
                .into_iter()
                .filter(|&(_, d)| d <= radius)
                .take(k)
                .collect();

            prop_assert_eq!(got.len(), want.len());
            // Every result honours the radius and the list is sorted.
            prop_assert!(got.iter().all(|&(_, _, d)| d <= radius));
            prop_assert!(got.windows(2).all(|w| w[0].2 <= w[1].2));
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g.2 - w.1).abs() < 1e-12, "got {:?}, want {:?}", g, w);
            }
        }
    }

    #[test]
    fn knn_on_empty_tree() {
        let tree = RTree::bulk_load(PageStore::with_config(1024, 16), &[]);
        assert!(tree.knn(Point::new(0.0, 0.0), 5).is_empty());
    }

    #[test]
    fn knn_k_larger_than_size() {
        let items = random_items(10, 25);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 64), &items);
        assert_eq!(tree.knn(Point::new(0.0, 0.0), 100).len(), 10);
    }

    #[test]
    fn exact_query_point_distance_zero() {
        let items = vec![(Point::new(5.0, 5.0), 0), (Point::new(6.0, 6.0), 1)];
        let tree = RTree::bulk_load(PageStore::with_config(1024, 16), &items);
        let nn = tree.knn(Point::new(5.0, 5.0), 1);
        assert_eq!(nn[0].1, 0);
        assert_eq!(nn[0].2, 0.0);
    }

    #[test]
    fn context_sees_exactly_the_cursor_traffic() {
        let items = random_items(5000, 27);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 4096), &items);
        tree.finish_build(100.0);
        let ctx = QueryContext::new();
        let before = tree.io_stats();
        let _ = tree
            .knn_ctx(Point::new(500.0, 500.0), 200, Some(&ctx))
            .unwrap();
        let delta = tree.io_stats().since(&before);
        assert!(ctx.stats().faults > 0, "kNN must fault cold pages");
        assert_eq!(ctx.stats(), delta, "context mirrors the global delta");
        // A context-free search on the same tree charges nothing to it.
        let _ = tree.knn(Point::new(100.0, 100.0), 50);
        assert_eq!(ctx.stats(), delta);
    }

    #[test]
    fn budget_exhausted_cursor_aborts_with_exact_faults() {
        let items = random_items(20000, 28);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 8192), &items);
        tree.finish_build(1.0); // tiny buffer: exhausting the cursor faults a lot
        let budget = 5;
        let ctx = QueryContext::new().with_io_budget(budget);
        let mut cursor = tree.inc_nn_ctx(Point::new(500.0, 500.0), Some(&ctx));
        let yielded = cursor.by_ref().count();
        assert_eq!(cursor.abort_reason(), Some(AbortReason::IoBudgetExceeded));
        assert!(yielded < items.len(), "abort must cut the scan short");
        assert_eq!(
            ctx.stats().faults,
            budget,
            "the fault that reaches the budget is the last one charged"
        );
        // The eager wrapper surfaces the same abort as a typed error.
        let ctx2 = QueryContext::new().with_io_budget(budget);
        let err = tree
            .knn_ctx(Point::new(500.0, 500.0), items.len(), Some(&ctx2))
            .unwrap_err();
        assert_eq!(err.reason, AbortReason::IoBudgetExceeded);
    }

    #[test]
    fn cancelled_cursor_stops_immediately() {
        let items = random_items(2000, 29);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 4096), &items);
        let ctx = QueryContext::new();
        let mut cursor = tree.inc_nn_ctx(Point::new(0.0, 0.0), Some(&ctx));
        let first = cursor.next();
        assert!(first.is_some());
        ctx.cancel();
        // The already-buffered frontier may still hold points, but the
        // cursor refuses to expand further nodes and soon ends.
        let rest = cursor.by_ref().count();
        assert!(rest < items.len() - 1);
        assert_eq!(cursor.abort_reason(), Some(AbortReason::Cancelled));
    }

    #[test]
    fn multiple_cursors_coexist() {
        let items = random_items(500, 26);
        let tree = RTree::bulk_load(PageStore::with_config(1024, 1024), &items);
        let mut a = tree.inc_nn(Point::new(0.0, 0.0));
        let mut b = tree.inc_nn(Point::new(1000.0, 1000.0));
        // Interleaved advancement must not interfere.
        let a1 = a.next().unwrap();
        let b1 = b.next().unwrap();
        let a2 = a.next().unwrap();
        let b2 = b.next().unwrap();
        assert!(a1.2 <= a2.2);
        assert!(b1.2 <= b2.2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_knn_distances_match_brute(seed in 0u64..1000, n in 1usize..300,
                                          qx in 0.0..1000.0f64, qy in 0.0..1000.0f64,
                                          k in 1usize..50) {
            let items = random_items(n, seed);
            let tree = RTree::bulk_load(PageStore::with_config(1024, 1024), &items);
            let q = Point::new(qx, qy);
            let got = tree.knn(q, k);
            let want = brute_knn(&items, q, k);
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g.2 - w.1).abs() < 1e-12);
            }
        }
    }
}
