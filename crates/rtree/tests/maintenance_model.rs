//! Model-based test for dynamic R-tree maintenance.
//!
//! A `Vec<(Point, ItemId)>` is the reference model: inserts push, deletes
//! remove, and after every batch the tree must answer kNN and range queries
//! exactly like a linear scan over the model — while `check_invariants`
//! pins the structural side (exact MBRs, uniform leaf depth, occupancy).

use cca_geo::Point;
use cca_rtree::{ItemId, RTree};
use cca_storage::PageStore;
use proptest::prelude::*;

/// One maintenance step decoded from fuzz bytes.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert {
        x: f64,
        y: f64,
    },
    /// Delete the live entry at `pick % live.len()` (no-op when empty).
    Delete {
        pick: usize,
    },
}

fn decode_ops(bytes: &[(u8, u16, u16)]) -> Vec<Op> {
    bytes
        .iter()
        .map(|&(kind, a, b)| {
            // Bias 2:1 towards inserts so the tree actually grows deep
            // enough to exercise splits and condensation together.
            if kind % 3 < 2 {
                Op::Insert {
                    x: f64::from(a) / 65.0,
                    y: f64::from(b) / 65.0,
                }
            } else {
                Op::Delete {
                    pick: usize::from(a) ^ (usize::from(b) << 16),
                }
            }
        })
        .collect()
}

fn brute_knn(model: &[(Point, ItemId)], q: Point, k: usize) -> Vec<f64> {
    let mut d: Vec<f64> = model.iter().map(|(p, _)| q.dist(p)).collect();
    d.sort_by(f64::total_cmp);
    d.truncate(k);
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn prop_maintenance_agrees_with_linear_scan(
        raw in proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 1..400),
        qx in 0.0f64..1000.0,
        qy in 0.0f64..1000.0,
    ) {
        let ops = decode_ops(&raw);
        let mut tree = RTree::new(PageStore::with_config(1024, 4096));
        let mut model: Vec<(Point, ItemId)> = Vec::new();
        let mut next_id: ItemId = 0;

        for op in ops {
            match op {
                Op::Insert { x, y } => {
                    let p = Point::new(x, y);
                    tree.insert(p, next_id);
                    model.push((p, next_id));
                    next_id += 1;
                }
                Op::Delete { pick } => {
                    if model.is_empty() {
                        continue;
                    }
                    let (p, id) = model.swap_remove(pick % model.len());
                    prop_assert!(tree.delete(p, id), "live entry must be deletable");
                }
            }
        }

        prop_assert_eq!(tree.len(), model.len());
        prop_assert_eq!(tree.check_invariants(), model.len());

        // kNN equivalence (distances; ids may swap under exact ties).
        let q = Point::new(qx, qy);
        let got = tree.knn(q, 10);
        let want = brute_knn(&model, q, 10);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g.2 - w).abs() < 1e-12, "knn mismatch: {} vs {}", g.2, w);
        }

        // Range equivalence (exact id sets — radius picks no boundary ties
        // because coordinates live on a lattice of the form n/65).
        let radius = 123.456;
        let mut got_ids: Vec<ItemId> = tree
            .range_search(q, radius)
            .into_iter()
            .map(|(_, id, _)| id)
            .collect();
        got_ids.sort_unstable();
        let mut want_ids: Vec<ItemId> = model
            .iter()
            .filter(|(p, _)| q.dist(p) <= radius)
            .map(|&(_, id)| id)
            .collect();
        want_ids.sort_unstable();
        prop_assert_eq!(got_ids, want_ids);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn prop_delete_all_in_random_order_collapses(
        raw in proptest::collection::vec((any::<u16>(), any::<u16>()), 50..300),
        order_seed in any::<u64>(),
    ) {
        let mut tree = RTree::new(PageStore::with_config(1024, 4096));
        let mut model: Vec<(Point, ItemId)> = Vec::new();
        for (i, &(a, b)) in raw.iter().enumerate() {
            let p = Point::new(f64::from(a) / 65.0, f64::from(b) / 65.0);
            tree.insert(p, i as ItemId);
            model.push((p, i as ItemId));
        }
        // Deterministic pseudo-shuffle of the deletion order.
        let mut order: Vec<usize> = (0..model.len()).collect();
        let n = order.len();
        for i in 0..n {
            let j = (order_seed as usize)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i.wrapping_mul(1442695040888963407))
                % n;
            order.swap(i, j);
        }
        for &i in &order {
            let (p, id) = model[i];
            prop_assert!(tree.delete(p, id));
            tree.check_invariants();
        }
        prop_assert_eq!(tree.len(), 0);
        prop_assert_eq!(tree.height(), 1);
        prop_assert!(tree.root_mbr().is_empty());
    }
}
