//! Workload assembly: Table 2 parameters → concrete CCA instances.

use cca_geo::Point;

use crate::capacity::CapacitySpec;
use crate::network::RoadNetwork;
use crate::spatial::{cluster_centers, generate_points, SpatialDistribution};

/// Parameters of one CCA experiment instance (Table 2 plus distribution
/// axes).
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// |Q| — number of service providers.
    pub num_providers: usize,
    /// |P| — number of customers.
    pub num_customers: usize,
    /// Capacity policy (fixed k or a mixed range).
    pub capacity: CapacitySpec,
    /// Distribution of Q.
    pub q_dist: SpatialDistribution,
    /// Distribution of P.
    pub p_dist: SpatialDistribution,
    /// Master seed; sub-streams are derived deterministically.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The paper's default setting (Table 2): |Q| = 1 K, |P| = 100 K, k = 80,
    /// clustered vs clustered.
    pub fn paper_default() -> Self {
        WorkloadConfig {
            num_providers: 1000,
            num_customers: 100_000,
            capacity: CapacitySpec::Fixed(80),
            q_dist: SpatialDistribution::Clustered,
            p_dist: SpatialDistribution::Clustered,
            seed: 2008,
        }
    }

    /// The paper's defaults shrunk by `factor`, preserving the governing
    /// ratio `k·|Q| / |P|` (both point counts scale by `factor`, capacities
    /// stay). Used by the harness to keep wall-clock reasonable; see
    /// EXPERIMENTS.md.
    pub fn scaled_default(factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0);
        let base = Self::paper_default();
        WorkloadConfig {
            num_providers: ((base.num_providers as f64 * factor).round() as usize).max(1),
            num_customers: ((base.num_customers as f64 * factor).round() as usize).max(1),
            ..base
        }
    }

    /// Generates the instance: providers with capacities, plus customers.
    ///
    /// The network, Q, P and the capacity stream each derive their own seed
    /// from the master seed so they are mutually independent.
    pub fn generate(&self) -> Workload {
        const NET_STREAM: u64 = 0x5eed_0001;
        const Q_STREAM: u64 = 0x5eed_0002;
        const P_STREAM: u64 = 0x5eed_0003;
        const CAP_STREAM: u64 = 0x5eed_0004;
        let net = RoadNetwork::default_map(self.seed ^ NET_STREAM);
        // Dense districts belong to the map: Q and P share them, as on a
        // real road map where providers cluster where customers do.
        let centers = cluster_centers(&net, self.seed ^ NET_STREAM);
        let q_points = generate_points(
            &net,
            &centers,
            self.num_providers,
            self.q_dist,
            self.seed ^ Q_STREAM,
        );
        let p_points = generate_points(
            &net,
            &centers,
            self.num_customers,
            self.p_dist,
            self.seed ^ P_STREAM,
        );
        let caps = self
            .capacity
            .generate(self.num_providers, self.seed ^ CAP_STREAM);
        Workload {
            providers: q_points.into_iter().zip(caps).collect(),
            customers: p_points,
        }
    }

    /// Total provider capacity `Σ q.k` implied by the config (exact for
    /// `Fixed`, expected for `Mixed`).
    pub fn expected_total_capacity(&self) -> f64 {
        self.capacity.mean() * self.num_providers as f64
    }
}

/// A fully generated CCA instance.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Service providers: position + capacity.
    pub providers: Vec<(Point, u32)>,
    /// Customers: positions (ids are their indices).
    pub customers: Vec<Point>,
}

impl Workload {
    /// `γ = min(|P|, Σ q.k)`.
    pub fn gamma(&self) -> u64 {
        let cap: u64 = self.providers.iter().map(|&(_, k)| u64::from(k)).sum();
        cap.min(self.customers.len() as u64)
    }

    /// Customer list as `(point, id)` pairs for R-tree bulk loading.
    pub fn customer_items(&self) -> Vec<(Point, u64)> {
        self.customers
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as u64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> WorkloadConfig {
        WorkloadConfig {
            num_providers: 20,
            num_customers: 500,
            capacity: CapacitySpec::Fixed(10),
            q_dist: SpatialDistribution::Clustered,
            p_dist: SpatialDistribution::Clustered,
            seed: 1,
        }
    }

    #[test]
    fn generate_produces_requested_sizes() {
        let w = small_config().generate();
        assert_eq!(w.providers.len(), 20);
        assert_eq!(w.customers.len(), 500);
        assert!(w.providers.iter().all(|&(_, k)| k == 10));
    }

    #[test]
    fn gamma_takes_the_minimum_side() {
        let w = small_config().generate();
        assert_eq!(w.gamma(), 200, "Σk = 200 < |P| = 500");
        let mut cfg = small_config();
        cfg.num_customers = 100;
        let w = cfg.generate();
        assert_eq!(w.gamma(), 100, "|P| = 100 < Σk = 200");
    }

    #[test]
    fn q_and_p_use_independent_streams() {
        let w = small_config().generate();
        // Provider and customer positions must differ (different sub-seeds).
        assert_ne!(w.providers[0].0, w.customers[0]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small_config().generate();
        let b = small_config().generate();
        assert_eq!(a.providers, b.providers);
        assert_eq!(a.customers, b.customers);
        let mut cfg = small_config();
        cfg.seed = 2;
        let c = cfg.generate();
        assert_ne!(a.customers, c.customers);
    }

    #[test]
    fn scaled_default_preserves_regime() {
        let full = WorkloadConfig::paper_default();
        let fifth = WorkloadConfig::scaled_default(0.2);
        assert_eq!(fifth.num_providers, 200);
        assert_eq!(fifth.num_customers, 20_000);
        let ratio_full = full.expected_total_capacity() / full.num_customers as f64;
        let ratio_fifth = fifth.expected_total_capacity() / fifth.num_customers as f64;
        assert!((ratio_full - ratio_fifth).abs() < 1e-9);
    }

    #[test]
    fn customer_items_enumerate_ids() {
        let w = small_config().generate();
        let items = w.customer_items();
        assert_eq!(items.len(), 500);
        assert_eq!(items[17].1, 17);
        assert_eq!(items[17].0, w.customers[17]);
    }
}
