//! Workload assembly: Table 2 parameters → concrete CCA instances, plus the
//! [`ArrivalProcess`] event-stream generator for dynamic-world benchmarks.

use cca_geo::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::capacity::CapacitySpec;
use crate::network::RoadNetwork;
use crate::spatial::{cluster_centers, generate_points, SpatialDistribution};

/// Parameters of one CCA experiment instance (Table 2 plus distribution
/// axes).
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// |Q| — number of service providers.
    pub num_providers: usize,
    /// |P| — number of customers.
    pub num_customers: usize,
    /// Capacity policy (fixed k or a mixed range).
    pub capacity: CapacitySpec,
    /// Distribution of Q.
    pub q_dist: SpatialDistribution,
    /// Distribution of P.
    pub p_dist: SpatialDistribution,
    /// Master seed; sub-streams are derived deterministically.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The paper's default setting (Table 2): |Q| = 1 K, |P| = 100 K, k = 80,
    /// clustered vs clustered.
    pub fn paper_default() -> Self {
        WorkloadConfig {
            num_providers: 1000,
            num_customers: 100_000,
            capacity: CapacitySpec::Fixed(80),
            q_dist: SpatialDistribution::Clustered,
            p_dist: SpatialDistribution::Clustered,
            seed: 2008,
        }
    }

    /// The paper's defaults shrunk by `factor`, preserving the governing
    /// ratio `k·|Q| / |P|` (both point counts scale by `factor`, capacities
    /// stay). Used by the harness to keep wall-clock reasonable; see
    /// EXPERIMENTS.md.
    pub fn scaled_default(factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0);
        let base = Self::paper_default();
        WorkloadConfig {
            num_providers: ((base.num_providers as f64 * factor).round() as usize).max(1),
            num_customers: ((base.num_customers as f64 * factor).round() as usize).max(1),
            ..base
        }
    }

    /// Generates the instance: providers with capacities, plus customers.
    ///
    /// The network, Q, P and the capacity stream each derive their own seed
    /// from the master seed so they are mutually independent.
    pub fn generate(&self) -> Workload {
        const NET_STREAM: u64 = 0x5eed_0001;
        const Q_STREAM: u64 = 0x5eed_0002;
        const P_STREAM: u64 = 0x5eed_0003;
        const CAP_STREAM: u64 = 0x5eed_0004;
        let net = RoadNetwork::default_map(self.seed ^ NET_STREAM);
        // Dense districts belong to the map: Q and P share them, as on a
        // real road map where providers cluster where customers do.
        let centers = cluster_centers(&net, self.seed ^ NET_STREAM);
        let q_points = generate_points(
            &net,
            &centers,
            self.num_providers,
            self.q_dist,
            self.seed ^ Q_STREAM,
        );
        let p_points = generate_points(
            &net,
            &centers,
            self.num_customers,
            self.p_dist,
            self.seed ^ P_STREAM,
        );
        let caps = self
            .capacity
            .generate(self.num_providers, self.seed ^ CAP_STREAM);
        Workload {
            providers: q_points.into_iter().zip(caps).collect(),
            customers: p_points,
        }
    }

    /// Total provider capacity `Σ q.k` implied by the config (exact for
    /// `Fixed`, expected for `Mixed`).
    pub fn expected_total_capacity(&self) -> f64 {
        self.capacity.mean() * self.num_providers as f64
    }
}

/// A fully generated CCA instance.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Service providers: position + capacity.
    pub providers: Vec<(Point, u32)>,
    /// Customers: positions (ids are their indices).
    pub customers: Vec<Point>,
}

impl Workload {
    /// `γ = min(|P|, Σ q.k)`.
    pub fn gamma(&self) -> u64 {
        let cap: u64 = self.providers.iter().map(|&(_, k)| u64::from(k)).sum();
        cap.min(self.customers.len() as u64)
    }

    /// Customer list as `(point, id)` pairs for R-tree bulk loading.
    pub fn customer_items(&self) -> Vec<(Point, u64)> {
        self.customers
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as u64))
            .collect()
    }
}

/// One event of a dynamic CCA world, in the vocabulary the continuous
/// engine consumes (`cca-core`'s `WorldEvent` mirrors this enum; the two
/// crates stay decoupled because datagen sits below core in the layering).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StreamEvent {
    /// A new customer appears. Ids are sequential and never reused, starting
    /// from the seed workload's `|P|`.
    CustomerArrive { id: u64, pos: Point },
    /// A live customer leaves; `pos` is its position (as needed to delete it
    /// from a spatial index keyed by point + id).
    CustomerDepart { id: u64, pos: Point },
    /// Provider `index` gains or loses capacity. The generator never drives
    /// a provider's capacity below zero.
    ProviderCapacityDelta { index: usize, delta: i32 },
    /// Provider `index` relocates to `to`.
    ProviderMove { index: usize, to: Point },
}

/// Deterministic event-stream generator over a seed [`Workload`].
///
/// The process mirrors the world it narrates — it tracks which customers
/// are alive and what each provider's capacity is — so every emitted event
/// is *valid* by construction: departs name a live customer, capacity cuts
/// never overshoot below zero. Two processes built from the same workload
/// and seed emit identical streams ([`Iterator`], infinite).
#[derive(Clone, Debug)]
pub struct ArrivalProcess {
    rng: StdRng,
    /// Relative odds of arrive / depart / capacity-delta / move.
    weights: [f64; 4],
    /// Live customers, as the engine would see them.
    live: Vec<(u64, Point)>,
    next_id: u64,
    /// Tracked provider capacities (clamping capacity cuts).
    provider_caps: Vec<u32>,
    /// Tracked provider positions (moves step from the current spot).
    provider_pos: Vec<Point>,
    /// Half-width of the uniform step a moving provider takes.
    pub move_sigma: f64,
    /// Largest |delta| a capacity event may carry.
    pub max_capacity_delta: u32,
}

impl ArrivalProcess {
    /// World bounds shared with [`crate::spatial::generate_points`].
    const WORLD: f64 = 1000.0;

    /// A mixed stream over `workload`: arrivals and departures dominate,
    /// with occasional capacity changes and provider moves.
    pub fn new(workload: &Workload, seed: u64) -> Self {
        ArrivalProcess {
            rng: StdRng::seed_from_u64(seed ^ 0x5eed_0005),
            weights: [4.0, 3.0, 1.0, 0.5],
            live: workload
                .customers
                .iter()
                .enumerate()
                .map(|(i, &p)| (i as u64, p))
                .collect(),
            next_id: workload.customers.len() as u64,
            provider_caps: workload.providers.iter().map(|&(_, k)| k).collect(),
            provider_pos: workload.providers.iter().map(|&(p, _)| p).collect(),
            move_sigma: 25.0,
            max_capacity_delta: 3,
        }
    }

    /// A pure single-customer-arrival stream (the acceptance benchmark's
    /// regime: every event dirties exactly one new point).
    pub fn arrivals_only(workload: &Workload, seed: u64) -> Self {
        let mut p = Self::new(workload, seed);
        p.weights = [1.0, 0.0, 0.0, 0.0];
        p
    }

    /// Overrides the event-mix odds (arrive, depart, capacity, move).
    pub fn with_weights(mut self, arrive: f64, depart: f64, capacity: f64, mv: f64) -> Self {
        assert!(
            arrive >= 0.0 && depart >= 0.0 && capacity >= 0.0 && mv >= 0.0,
            "negative weight"
        );
        assert!(arrive + depart + capacity + mv > 0.0, "all weights zero");
        self.weights = [arrive, depart, capacity, mv];
        self
    }

    /// Number of customers currently alive in the narrated world.
    pub fn live_customers(&self) -> usize {
        self.live.len()
    }

    /// Draws the next event, advancing the narrated world.
    pub fn next_event(&mut self) -> StreamEvent {
        let total: f64 = self.weights.iter().sum();
        let mut pick = self.rng.random_range(0.0..total);
        let mut kind = 0usize;
        for (i, &w) in self.weights.iter().enumerate() {
            if pick < w {
                kind = i;
                break;
            }
            pick -= w;
        }
        match kind {
            1 if !self.live.is_empty() => {
                let at = self.rng.random_range(0..self.live.len());
                let (id, pos) = self.live.swap_remove(at);
                StreamEvent::CustomerDepart { id, pos }
            }
            2 if !self.provider_caps.is_empty() => {
                let index = self.rng.random_range(0..self.provider_caps.len());
                let max = i64::from(self.max_capacity_delta);
                let cap = i64::from(self.provider_caps[index]);
                // Uniform over the valid non-zero deltas.
                let lo = (-max).max(-cap);
                let mut delta = self.rng.random_range(lo..=max);
                if delta == 0 {
                    delta = if cap == 0 { 1 } else { -1 };
                }
                self.provider_caps[index] = u32::try_from(cap + delta).expect("clamped above");
                StreamEvent::ProviderCapacityDelta {
                    index,
                    delta: i32::try_from(delta).expect("small delta"),
                }
            }
            3 if !self.provider_caps.is_empty() => {
                let index = self.rng.random_range(0..self.provider_pos.len());
                let s = self.move_sigma;
                let from = self.provider_pos[index];
                let to = Point::new(
                    (from.x + self.rng.random_range(-s..=s)).clamp(0.0, Self::WORLD),
                    (from.y + self.rng.random_range(-s..=s)).clamp(0.0, Self::WORLD),
                );
                self.provider_pos[index] = to;
                StreamEvent::ProviderMove { index, to }
            }
            // Arrival, and the fallback when a depart/maintenance draw finds
            // nothing to act on.
            _ => {
                let pos = Point::new(
                    self.rng.random_range(0.0..Self::WORLD),
                    self.rng.random_range(0.0..Self::WORLD),
                );
                let id = self.next_id;
                self.next_id += 1;
                self.live.push((id, pos));
                StreamEvent::CustomerArrive { id, pos }
            }
        }
    }
}

impl Iterator for ArrivalProcess {
    type Item = StreamEvent;

    fn next(&mut self) -> Option<StreamEvent> {
        Some(self.next_event())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> WorkloadConfig {
        WorkloadConfig {
            num_providers: 20,
            num_customers: 500,
            capacity: CapacitySpec::Fixed(10),
            q_dist: SpatialDistribution::Clustered,
            p_dist: SpatialDistribution::Clustered,
            seed: 1,
        }
    }

    #[test]
    fn generate_produces_requested_sizes() {
        let w = small_config().generate();
        assert_eq!(w.providers.len(), 20);
        assert_eq!(w.customers.len(), 500);
        assert!(w.providers.iter().all(|&(_, k)| k == 10));
    }

    #[test]
    fn gamma_takes_the_minimum_side() {
        let w = small_config().generate();
        assert_eq!(w.gamma(), 200, "Σk = 200 < |P| = 500");
        let mut cfg = small_config();
        cfg.num_customers = 100;
        let w = cfg.generate();
        assert_eq!(w.gamma(), 100, "|P| = 100 < Σk = 200");
    }

    #[test]
    fn q_and_p_use_independent_streams() {
        let w = small_config().generate();
        // Provider and customer positions must differ (different sub-seeds).
        assert_ne!(w.providers[0].0, w.customers[0]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small_config().generate();
        let b = small_config().generate();
        assert_eq!(a.providers, b.providers);
        assert_eq!(a.customers, b.customers);
        let mut cfg = small_config();
        cfg.seed = 2;
        let c = cfg.generate();
        assert_ne!(a.customers, c.customers);
    }

    #[test]
    fn scaled_default_preserves_regime() {
        let full = WorkloadConfig::paper_default();
        let fifth = WorkloadConfig::scaled_default(0.2);
        assert_eq!(fifth.num_providers, 200);
        assert_eq!(fifth.num_customers, 20_000);
        let ratio_full = full.expected_total_capacity() / full.num_customers as f64;
        let ratio_fifth = fifth.expected_total_capacity() / fifth.num_customers as f64;
        assert!((ratio_full - ratio_fifth).abs() < 1e-9);
    }

    #[test]
    fn customer_items_enumerate_ids() {
        let w = small_config().generate();
        let items = w.customer_items();
        assert_eq!(items.len(), 500);
        assert_eq!(items[17].1, 17);
        assert_eq!(items[17].0, w.customers[17]);
    }

    #[test]
    fn arrival_process_is_deterministic_per_seed() {
        let w = small_config().generate();
        let a: Vec<StreamEvent> = ArrivalProcess::new(&w, 42).take(500).collect();
        let b: Vec<StreamEvent> = ArrivalProcess::new(&w, 42).take(500).collect();
        assert_eq!(a, b);
        let c: Vec<StreamEvent> = ArrivalProcess::new(&w, 43).take(500).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn arrival_process_emits_only_valid_events() {
        let w = small_config().generate();
        let mut proc = ArrivalProcess::new(&w, 7);
        let mut live: std::collections::HashMap<u64, Point> = w
            .customers
            .iter()
            .enumerate()
            .map(|(i, &p)| (i as u64, p))
            .collect();
        let mut caps: Vec<i64> = w.providers.iter().map(|&(_, k)| i64::from(k)).collect();
        let mut next_id = w.customers.len() as u64;
        let mut seen = [0usize; 4];
        for _ in 0..5000 {
            match proc.next_event() {
                StreamEvent::CustomerArrive { id, pos } => {
                    assert_eq!(id, next_id, "ids must be sequential, never reused");
                    assert!((0.0..=1000.0).contains(&pos.x) && (0.0..=1000.0).contains(&pos.y));
                    next_id += 1;
                    live.insert(id, pos);
                    seen[0] += 1;
                }
                StreamEvent::CustomerDepart { id, pos } => {
                    let stored = live.remove(&id).expect("depart must name a live customer");
                    assert_eq!(stored, pos);
                    seen[1] += 1;
                }
                StreamEvent::ProviderCapacityDelta { index, delta } => {
                    assert!(delta != 0, "zero-delta events are noise");
                    caps[index] += i64::from(delta);
                    assert!(caps[index] >= 0, "capacity driven below zero");
                    seen[2] += 1;
                }
                StreamEvent::ProviderMove { index, to } => {
                    assert!(index < w.providers.len());
                    assert!((0.0..=1000.0).contains(&to.x) && (0.0..=1000.0).contains(&to.y));
                    seen[3] += 1;
                }
            }
            assert_eq!(proc.live_customers(), live.len());
        }
        assert!(
            seen.iter().all(|&n| n > 0),
            "all event kinds drawn: {seen:?}"
        );
    }

    #[test]
    fn arrivals_only_never_departs_or_mutates_providers() {
        let w = small_config().generate();
        let events: Vec<StreamEvent> = ArrivalProcess::arrivals_only(&w, 9).take(1000).collect();
        assert!(events
            .iter()
            .all(|e| matches!(e, StreamEvent::CustomerArrive { .. })));
        // Sequential fresh ids.
        for (i, e) in events.iter().enumerate() {
            let StreamEvent::CustomerArrive { id, .. } = e else {
                unreachable!()
            };
            assert_eq!(*id, w.customers.len() as u64 + i as u64);
        }
    }
}
