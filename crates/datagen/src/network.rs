//! Synthetic road network.
//!
//! The paper generates both point sets "on the road map of San Francisco"
//! with the Brinkhoff network-based generator (§5.1). Neither the map nor
//! the generator is redistributable here, so we synthesise a road network
//! with the same statistical role: a dense, roughly planar street grid whose
//! edges points can be placed on. The network is a jittered grid with random
//! street dropout — enough irregularity that points do not align on exact
//! rows, while preserving the "points lie on 1-D structures embedded in 2-D"
//! character that distinguishes road data from uniform noise (DESIGN.md §5
//! documents this substitution).

use cca_geo::{Point, WORLD_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A road network: nodes (junctions) and undirected edges (street segments).
#[derive(Clone, Debug)]
pub struct RoadNetwork {
    pub nodes: Vec<Point>,
    /// Indices into `nodes`.
    pub edges: Vec<(u32, u32)>,
}

impl RoadNetwork {
    /// Builds a jittered `grid × grid` street network in `[0, WORLD_SIZE]²`.
    ///
    /// * `grid` — junctions per side (SF-like density at ~64),
    /// * `dropout` — fraction of street segments removed at random,
    /// * `seed` — RNG seed (the generator is fully deterministic).
    pub fn synthetic(grid: usize, dropout: f64, seed: u64) -> Self {
        assert!(grid >= 2, "need at least a 2x2 grid");
        assert!((0.0..1.0).contains(&dropout), "dropout must be in [0,1)");
        let mut rng = StdRng::seed_from_u64(seed);
        let spacing = WORLD_SIZE / (grid as f64 - 1.0).max(1.0);
        let jitter = spacing * 0.35;

        let mut nodes = Vec::with_capacity(grid * grid);
        for gy in 0..grid {
            for gx in 0..grid {
                let base_x = gx as f64 * spacing;
                let base_y = gy as f64 * spacing;
                let dx = rng.random_range(-jitter..jitter);
                let dy = rng.random_range(-jitter..jitter);
                nodes.push(Point::new(
                    (base_x + dx).clamp(0.0, WORLD_SIZE),
                    (base_y + dy).clamp(0.0, WORLD_SIZE),
                ));
            }
        }

        let idx = |gx: usize, gy: usize| (gy * grid + gx) as u32;
        let mut edges = Vec::with_capacity(2 * grid * grid);
        for gy in 0..grid {
            for gx in 0..grid {
                if gx + 1 < grid && rng.random_range(0.0..1.0) >= dropout {
                    edges.push((idx(gx, gy), idx(gx + 1, gy)));
                }
                if gy + 1 < grid && rng.random_range(0.0..1.0) >= dropout {
                    edges.push((idx(gx, gy), idx(gx, gy + 1)));
                }
            }
        }
        assert!(!edges.is_empty(), "dropout removed every street");
        RoadNetwork { nodes, edges }
    }

    /// The default network used by the experiment harness (≈8k segments).
    pub fn default_map(seed: u64) -> Self {
        Self::synthetic(64, 0.1, seed)
    }

    /// Euclidean length of edge `e`.
    pub fn edge_length(&self, e: usize) -> f64 {
        let (a, b) = self.edges[e];
        self.nodes[a as usize].dist(&self.nodes[b as usize])
    }

    /// Endpoints of edge `e` as points.
    pub fn edge_points(&self, e: usize) -> (Point, Point) {
        let (a, b) = self.edges[e];
        (self.nodes[a as usize], self.nodes[b as usize])
    }

    /// A point at parameter `t ∈ [0,1]` along edge `e`.
    pub fn point_on_edge(&self, e: usize, t: f64) -> Point {
        let (a, b) = self.edge_points(e);
        a.lerp(&b, t)
    }

    /// Total street length (for length-weighted sampling).
    pub fn total_length(&self) -> f64 {
        (0..self.edges.len()).map(|e| self.edge_length(e)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_is_deterministic_per_seed() {
        let a = RoadNetwork::synthetic(16, 0.1, 42);
        let b = RoadNetwork::synthetic(16, 0.1, 42);
        assert_eq!(a.nodes.len(), b.nodes.len());
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.nodes[7], b.nodes[7]);
        let c = RoadNetwork::synthetic(16, 0.1, 43);
        assert_ne!(a.nodes[7], c.nodes[7], "different seed, different jitter");
    }

    #[test]
    fn nodes_stay_in_world() {
        let net = RoadNetwork::synthetic(32, 0.2, 1);
        for n in &net.nodes {
            assert!(n.x >= 0.0 && n.x <= WORLD_SIZE);
            assert!(n.y >= 0.0 && n.y <= WORLD_SIZE);
        }
    }

    #[test]
    fn dropout_removes_edges() {
        let dense = RoadNetwork::synthetic(32, 0.0, 5);
        let sparse = RoadNetwork::synthetic(32, 0.3, 5);
        assert!(sparse.edges.len() < dense.edges.len());
        // Full grid has 2*g*(g-1) edges.
        assert_eq!(dense.edges.len(), 2 * 32 * 31);
    }

    #[test]
    fn points_on_edges_interpolate() {
        let net = RoadNetwork::synthetic(8, 0.0, 2);
        let (a, b) = net.edge_points(0);
        assert_eq!(net.point_on_edge(0, 0.0), a);
        assert_eq!(net.point_on_edge(0, 1.0), b);
        let mid = net.point_on_edge(0, 0.5);
        assert!((a.dist(&mid) - b.dist(&mid)).abs() < 1e-9);
    }

    #[test]
    fn total_length_positive_and_additive() {
        let net = RoadNetwork::synthetic(8, 0.0, 3);
        let sum: f64 = (0..net.edges.len()).map(|e| net.edge_length(e)).sum();
        assert!((net.total_length() - sum).abs() < 1e-9);
        assert!(sum > 0.0);
    }
}
