//! Synthetic workload generator reproducing the paper's data protocol.
//!
//! §5.1 generates both point sets on the San Francisco road map with the
//! Brinkhoff network-based generator: points fall on network edges, 80 % in
//! ten dense clusters, 20 % uniform, normalised to `[0, 1000]²`. Neither the
//! map nor the generator binary is available offline, so this crate
//! synthesises an SF-like street network and reproduces the placement
//! protocol exactly (see DESIGN.md §5 for the substitution argument).
//!
//! Everything is deterministic per seed, so experiments are reproducible
//! run-to-run.

pub mod capacity;
pub mod network;
pub mod spatial;
pub mod workload;

pub use capacity::CapacitySpec;
pub use network::RoadNetwork;
pub use spatial::{generate_points, SpatialDistribution};
pub use workload::{ArrivalProcess, StreamEvent, Workload, WorkloadConfig};
