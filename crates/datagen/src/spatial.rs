//! Network-constrained point generation.
//!
//! Reproduces §5.1's protocol: "the points fall on edges of the road
//! network, so that 80% of them are spread among 10 dense clusters, while
//! the remaining 20% are uniformly distributed in the network".

use cca_geo::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::network::RoadNetwork;

/// Spatial distribution of a generated point set (the U/C axes of
/// Figures 13 and 18).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpatialDistribution {
    /// Uniform along the network ("U").
    Uniform,
    /// 80 % in `clusters` dense clusters, 20 % uniform ("C").
    Clustered,
    /// 80 % across `clusters` Zipf-populated clusters ("Z"): the cluster of
    /// rank `r` receives mass ∝ `1/(r+1)`, so a handful of districts hold
    /// most of the customers — the million-customer skew the approximate
    /// tier is benchmarked on. Centres derive from the point seed (not the
    /// map seed), so independently generated sets skew differently.
    ZipfClustered { clusters: u32 },
}

impl SpatialDistribution {
    /// One-letter label used in the paper's figure axes.
    pub fn label(&self) -> &'static str {
        match self {
            SpatialDistribution::Uniform => "U",
            SpatialDistribution::Clustered => "C",
            SpatialDistribution::ZipfClustered { .. } => "Z",
        }
    }
}

/// Number of dense clusters in the clustered distribution (§5.1: "10 dense
/// clusters").
pub const NUM_CLUSTERS: usize = 10;

/// Fraction of points belonging to clusters (§5.1: 80 %).
pub const CLUSTER_FRACTION: f64 = 0.8;

/// Standard deviation of the cluster spread, in world units. Chosen so that
/// a cluster covers a handful of city blocks on the default 64×64 network.
pub const CLUSTER_SIGMA: f64 = 60.0;

/// The dense districts of the map. The paper generates both `Q` and `P` on
/// the same road map, so their dense regions coincide ("some parts of the
/// city are denser than others", §5.1); centres are therefore derived from
/// the *map* seed and shared by all point sets generated on it.
pub fn cluster_centers(net: &RoadNetwork, map_seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(map_seed ^ 0xc105_7e25);
    let sampler = EdgeSampler::new(net);
    (0..NUM_CLUSTERS)
        .map(|_| sampler.sample(net, &mut rng))
        .collect()
}

/// Generates `n` points on the network following `dist`, using the map's
/// shared cluster `centers` for the clustered distribution.
pub fn generate_points(
    net: &RoadNetwork,
    centers: &[Point],
    n: usize,
    dist: SpatialDistribution,
    seed: u64,
) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = EdgeSampler::new(net);
    match dist {
        SpatialDistribution::Uniform => (0..n).map(|_| sampler.sample(net, &mut rng)).collect(),
        SpatialDistribution::Clustered => {
            assert!(!centers.is_empty(), "clustered generation needs centers");
            let snap = SnapIndex::new(net);
            let n_clustered = (n as f64 * CLUSTER_FRACTION).round() as usize;
            let mut pts = Vec::with_capacity(n);
            for _ in 0..n_clustered {
                let c = centers[rng.random_range(0..centers.len())];
                // Gaussian offset around the centre, snapped back onto the
                // nearest street segment so points stay on the network.
                let (dx, dy) = gaussian_pair(&mut rng);
                let raw = Point::new(c.x + dx * CLUSTER_SIGMA, c.y + dy * CLUSTER_SIGMA);
                pts.push(snap.snap(net, raw));
            }
            for _ in n_clustered..n {
                pts.push(sampler.sample(net, &mut rng));
            }
            pts
        }
        SpatialDistribution::ZipfClustered { clusters } => {
            assert!(clusters > 0, "zipf-clustered generation needs clusters");
            // Centres come from the point seed so each generated set has
            // its own skew pattern; ranks are the draw order.
            let mut crng = StdRng::seed_from_u64(seed ^ 0x21bf_c143);
            let centers: Vec<Point> = (0..clusters)
                .map(|_| sampler.sample(net, &mut crng))
                .collect();
            // Cumulative harmonic weights: cluster r gets mass ∝ 1/(r+1).
            let mut acc = 0.0;
            let cum: Vec<f64> = (0..clusters)
                .map(|r| {
                    acc += 1.0 / f64::from(r + 1);
                    acc
                })
                .collect();
            let total = *cum.last().expect("clusters > 0");
            let snap = SnapIndex::new(net);
            let n_clustered = (n as f64 * CLUSTER_FRACTION).round() as usize;
            let mut pts = Vec::with_capacity(n);
            for _ in 0..n_clustered {
                let r = rng.random_range(0.0..total);
                let c = centers[cum.partition_point(|&c| c <= r).min(centers.len() - 1)];
                let (dx, dy) = gaussian_pair(&mut rng);
                let raw = Point::new(c.x + dx * CLUSTER_SIGMA, c.y + dy * CLUSTER_SIGMA);
                pts.push(snap.snap(net, raw));
            }
            for _ in n_clustered..n {
                pts.push(sampler.sample(net, &mut rng));
            }
            pts
        }
    }
}

/// Length-weighted edge sampler: a uniform point *on the network* falls on
/// an edge with probability proportional to its length.
struct EdgeSampler {
    /// Cumulative edge lengths for binary search.
    cumulative: Vec<f64>,
    total: f64,
}

impl EdgeSampler {
    fn new(net: &RoadNetwork) -> Self {
        let mut cumulative = Vec::with_capacity(net.edges.len());
        let mut acc = 0.0;
        for e in 0..net.edges.len() {
            acc += net.edge_length(e);
            cumulative.push(acc);
        }
        EdgeSampler {
            cumulative,
            total: acc,
        }
    }

    fn sample(&self, net: &RoadNetwork, rng: &mut StdRng) -> Point {
        let r = rng.random_range(0.0..self.total);
        let e = self.cumulative.partition_point(|&c| c < r);
        let e = e.min(self.cumulative.len() - 1);
        net.point_on_edge(e, rng.random_range(0.0..1.0))
    }
}

/// Grid bucket index over edges for nearest-segment snapping.
struct SnapIndex {
    cell: f64,
    cols: usize,
    rows: usize,
    buckets: Vec<Vec<u32>>,
}

impl SnapIndex {
    fn new(net: &RoadNetwork) -> Self {
        // Cell size ~ median edge length keeps buckets small.
        let avg = net.total_length() / net.edges.len() as f64;
        let cell = avg.max(1.0);
        let cols = (cca_geo::WORLD_SIZE / cell).ceil() as usize + 1;
        let rows = cols;
        let mut buckets = vec![Vec::new(); cols * rows];
        for (e, _) in net.edges.iter().enumerate() {
            let (a, b) = net.edge_points(e);
            // Insert the edge into every cell its bounding box touches.
            let x0 = ((a.x.min(b.x) / cell) as usize).min(cols - 1);
            let x1 = ((a.x.max(b.x) / cell) as usize).min(cols - 1);
            let y0 = ((a.y.min(b.y) / cell) as usize).min(rows - 1);
            let y1 = ((a.y.max(b.y) / cell) as usize).min(rows - 1);
            for gy in y0..=y1 {
                for gx in x0..=x1 {
                    buckets[gy * cols + gx].push(e as u32);
                }
            }
        }
        SnapIndex {
            cell,
            cols,
            rows,
            buckets,
        }
    }

    /// Projects `p` onto the nearest street segment, searching outward ring
    /// by ring until a hit is guaranteed nearest.
    fn snap(&self, net: &RoadNetwork, p: Point) -> Point {
        let gx = ((p.x / self.cell) as isize).clamp(0, self.cols as isize - 1);
        let gy = ((p.y / self.cell) as isize).clamp(0, self.rows as isize - 1);
        let mut best: Option<(f64, Point)> = None;
        let max_ring = self.cols.max(self.rows) as isize;
        for ring in 0..max_ring {
            // Once we have a hit, finish scanning one extra ring: any closer
            // segment must live within `best_dist / cell + 1` rings.
            if let Some((d, _)) = best {
                if (ring as f64 - 1.0) * self.cell > d {
                    break;
                }
            }
            for (cx, cy) in ring_cells(gx, gy, ring) {
                if cx < 0 || cy < 0 || cx >= self.cols as isize || cy >= self.rows as isize {
                    continue;
                }
                for &e in &self.buckets[cy as usize * self.cols + cx as usize] {
                    let (a, b) = net.edge_points(e as usize);
                    let proj = project_to_segment(p, a, b);
                    let d = p.dist(&proj);
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, proj));
                    }
                }
            }
        }
        best.map(|(_, pt)| pt).unwrap_or(p)
    }
}

/// Cells at Chebyshev distance `ring` from `(gx, gy)`.
fn ring_cells(gx: isize, gy: isize, ring: isize) -> Vec<(isize, isize)> {
    if ring == 0 {
        return vec![(gx, gy)];
    }
    let mut v = Vec::with_capacity((8 * ring) as usize);
    for dx in -ring..=ring {
        v.push((gx + dx, gy - ring));
        v.push((gx + dx, gy + ring));
    }
    for dy in (-ring + 1)..ring {
        v.push((gx - ring, gy + dy));
        v.push((gx + ring, gy + dy));
    }
    v
}

/// Orthogonal projection of `p` onto segment `ab`, clamped to the segment.
fn project_to_segment(p: Point, a: Point, b: Point) -> Point {
    let abx = b.x - a.x;
    let aby = b.y - a.y;
    let len2 = abx * abx + aby * aby;
    if len2 == 0.0 {
        return a;
    }
    let t = (((p.x - a.x) * abx + (p.y - a.y) * aby) / len2).clamp(0.0, 1.0);
    a.lerp(&b, t)
}

/// One standard-normal pair via Box–Muller (keeps `rand` the only dependency).
fn gaussian_pair(rng: &mut StdRng) -> (f64, f64) {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> RoadNetwork {
        RoadNetwork::synthetic(32, 0.1, 7)
    }

    fn dist_to_network(net: &RoadNetwork, p: Point) -> f64 {
        (0..net.edges.len())
            .map(|e| {
                let (a, b) = net.edge_points(e);
                p.dist(&project_to_segment(p, a, b))
            })
            .fold(f64::INFINITY, f64::min)
    }

    fn centers_for(net: &RoadNetwork) -> Vec<Point> {
        cluster_centers(net, 7)
    }

    #[test]
    fn uniform_points_lie_on_network() {
        let net = net();
        let pts = generate_points(&net, &[], 200, SpatialDistribution::Uniform, 11);
        assert_eq!(pts.len(), 200);
        for p in &pts {
            assert!(
                dist_to_network(&net, *p) < 1e-9,
                "point {p} not on any street"
            );
        }
    }

    #[test]
    fn clustered_points_lie_on_network() {
        let net = net();
        let pts = generate_points(
            &net,
            &centers_for(&net),
            300,
            SpatialDistribution::Clustered,
            12,
        );
        for p in &pts {
            assert!(
                dist_to_network(&net, *p) < 1e-6,
                "snapped point {p} not on any street"
            );
        }
    }

    #[test]
    fn clustered_is_denser_than_uniform() {
        // Measure spatial skew via cell occupancy entropy on a coarse grid:
        // clustered data concentrates mass in fewer cells.
        let net = net();
        let occupied = |pts: &[Point]| {
            let mut cells = std::collections::HashSet::new();
            for p in pts {
                cells.insert(((p.x / 50.0) as i32, (p.y / 50.0) as i32));
            }
            cells.len()
        };
        let u = generate_points(&net, &[], 2000, SpatialDistribution::Uniform, 13);
        let c = generate_points(
            &net,
            &centers_for(&net),
            2000,
            SpatialDistribution::Clustered,
            13,
        );
        assert!(
            occupied(&c) < occupied(&u),
            "clustered {} cells vs uniform {} cells",
            occupied(&c),
            occupied(&u)
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let net = net();
        let ctrs = centers_for(&net);
        let a = generate_points(&net, &ctrs, 50, SpatialDistribution::Clustered, 99);
        let b = generate_points(&net, &ctrs, 50, SpatialDistribution::Clustered, 99);
        assert_eq!(a, b);
        let c = generate_points(&net, &ctrs, 50, SpatialDistribution::Clustered, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_clustered_points_are_deterministic_skewed_and_on_network() {
        let net = net();
        let dist = SpatialDistribution::ZipfClustered { clusters: 12 };
        let a = generate_points(&net, &[], 1500, dist, 41);
        assert_eq!(a.len(), 1500);
        for p in &a {
            assert!(
                dist_to_network(&net, *p) < 1e-6,
                "zipf point {p} not on any street"
            );
        }
        assert_eq!(a, generate_points(&net, &[], 1500, dist, 41));
        assert_ne!(a, generate_points(&net, &[], 1500, dist, 42));
        // More skewed than plain clustered: fewer occupied coarse cells.
        let occupied = |pts: &[Point]| {
            let mut cells = std::collections::HashSet::new();
            for p in pts {
                cells.insert(((p.x / 50.0) as i32, (p.y / 50.0) as i32));
            }
            cells.len()
        };
        let u = generate_points(&net, &[], 1500, SpatialDistribution::Uniform, 41);
        assert!(
            occupied(&a) < occupied(&u),
            "zipf {} cells vs uniform {} cells",
            occupied(&a),
            occupied(&u)
        );
        assert_eq!(dist.label(), "Z");
    }

    #[test]
    fn snap_returns_nearest_segment_point() {
        let net = net();
        let idx = SnapIndex::new(&net);
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0));
            let snapped = idx.snap(&net, p);
            let d_snap = p.dist(&snapped);
            let d_true = dist_to_network(&net, p);
            assert!(
                (d_snap - d_true).abs() < 1e-6,
                "seed {seed}: snapped at {d_snap}, true nearest {d_true}"
            );
        }
    }

    #[test]
    fn projection_clamps_to_endpoints() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        assert_eq!(project_to_segment(Point::new(-5.0, 3.0), a, b), a);
        assert_eq!(project_to_segment(Point::new(15.0, 3.0), a, b), b);
        assert_eq!(
            project_to_segment(Point::new(5.0, 3.0), a, b),
            Point::new(5.0, 0.0)
        );
    }

    #[test]
    fn labels_match_paper_axes() {
        assert_eq!(SpatialDistribution::Uniform.label(), "U");
        assert_eq!(SpatialDistribution::Clustered.label(), "C");
    }
}
