//! Provider capacity generation.
//!
//! The paper's defaults give every provider `k = 80`; Figure 12 additionally
//! evaluates *mixed* capacities "taken randomly from the ranges shown as
//! labels on the horizontal axis" (e.g. 40–120).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Capacity assignment policy for service providers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CapacitySpec {
    /// All providers share one capacity (Table 2 default: 80).
    Fixed(u32),
    /// Capacities drawn uniformly from `[lo, hi]` (Figure 12).
    Mixed { lo: u32, hi: u32 },
}

impl CapacitySpec {
    /// Generates capacities for `n` providers.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<u32> {
        match *self {
            CapacitySpec::Fixed(k) => {
                assert!(k > 0, "capacity must be positive");
                vec![k; n]
            }
            CapacitySpec::Mixed { lo, hi } => {
                assert!(lo > 0 && lo <= hi, "invalid capacity range {lo}..={hi}");
                let mut rng = StdRng::seed_from_u64(seed);
                (0..n).map(|_| rng.random_range(lo..=hi)).collect()
            }
        }
    }

    /// Expected per-provider capacity (used to scale experiment axes).
    pub fn mean(&self) -> f64 {
        match *self {
            CapacitySpec::Fixed(k) => f64::from(k),
            CapacitySpec::Mixed { lo, hi } => (f64::from(lo) + f64::from(hi)) / 2.0,
        }
    }

    /// Axis label, matching the paper's figures ("80" or "40~120").
    pub fn label(&self) -> String {
        match *self {
            CapacitySpec::Fixed(k) => k.to_string(),
            CapacitySpec::Mixed { lo, hi } => format!("{lo}~{hi}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_capacities_are_uniform() {
        let caps = CapacitySpec::Fixed(80).generate(5, 0);
        assert_eq!(caps, vec![80; 5]);
        assert_eq!(CapacitySpec::Fixed(80).mean(), 80.0);
        assert_eq!(CapacitySpec::Fixed(80).label(), "80");
    }

    #[test]
    fn mixed_capacities_stay_in_range() {
        let spec = CapacitySpec::Mixed { lo: 40, hi: 120 };
        let caps = spec.generate(1000, 5);
        assert!(caps.iter().all(|&k| (40..=120).contains(&k)));
        // With 1000 draws both extremes should appear.
        assert!(caps.iter().any(|&k| k < 60));
        assert!(caps.iter().any(|&k| k > 100));
        assert_eq!(spec.label(), "40~120");
    }

    #[test]
    fn mixed_generation_is_deterministic() {
        let spec = CapacitySpec::Mixed { lo: 10, hi: 30 };
        assert_eq!(spec.generate(20, 7), spec.generate(20, 7));
        assert_ne!(spec.generate(20, 7), spec.generate(20, 8));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_fixed_capacity_rejected() {
        CapacitySpec::Fixed(0).generate(1, 0);
    }

    #[test]
    fn paper_figure12_ranges() {
        // The five ranges of Figure 12.
        for (lo, hi) in [(10, 30), (20, 60), (40, 120), (80, 240), (160, 480)] {
            let spec = CapacitySpec::Mixed { lo, hi };
            let caps = spec.generate(100, 1);
            assert!(caps.iter().all(|&k| (lo..=hi).contains(&k)));
        }
    }
}
