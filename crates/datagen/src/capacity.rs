//! Provider capacity generation.
//!
//! The paper's defaults give every provider `k = 80`; Figure 12 additionally
//! evaluates *mixed* capacities "taken randomly from the ranges shown as
//! labels on the horizontal axis" (e.g. 40–120).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Capacity assignment policy for service providers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CapacitySpec {
    /// All providers share one capacity (Table 2 default: 80).
    Fixed(u32),
    /// Capacities drawn uniformly from `[lo, hi]` (Figure 12).
    Mixed { lo: u32, hi: u32 },
    /// Capacities Zipf-skewed across `[lo, hi]`: value `v` is drawn with
    /// probability ∝ `1 / (v − lo + 1)`, so most providers are small and a
    /// few are large — the heavy-tailed fleets of the approximate-tier
    /// workloads.
    Zipf { lo: u32, hi: u32 },
}

impl CapacitySpec {
    /// Generates capacities for `n` providers.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<u32> {
        match *self {
            CapacitySpec::Fixed(k) => {
                assert!(k > 0, "capacity must be positive");
                vec![k; n]
            }
            CapacitySpec::Mixed { lo, hi } => {
                assert!(lo > 0 && lo <= hi, "invalid capacity range {lo}..={hi}");
                let mut rng = StdRng::seed_from_u64(seed);
                (0..n).map(|_| rng.random_range(lo..=hi)).collect()
            }
            CapacitySpec::Zipf { lo, hi } => {
                assert!(lo > 0 && lo <= hi, "invalid capacity range {lo}..={hi}");
                let cum = zipf_cumulative(lo, hi);
                let total = *cum.last().expect("non-empty range");
                let mut rng = StdRng::seed_from_u64(seed);
                (0..n)
                    .map(|_| {
                        // Inverse-CDF draw over the harmonic weights.
                        let r = rng.random_range(0.0..total);
                        let i = cum.partition_point(|&c| c <= r).min(cum.len() - 1);
                        lo + i as u32
                    })
                    .collect()
            }
        }
    }

    /// Expected per-provider capacity (used to scale experiment axes).
    pub fn mean(&self) -> f64 {
        match *self {
            CapacitySpec::Fixed(k) => f64::from(k),
            CapacitySpec::Mixed { lo, hi } => (f64::from(lo) + f64::from(hi)) / 2.0,
            CapacitySpec::Zipf { lo, hi } => {
                // Exact expectation over the harmonic weights: E[v] =
                // Σ v/(v−lo+1) / H(hi−lo+1).
                let mut num = 0.0;
                let mut den = 0.0;
                for v in lo..=hi {
                    let w = 1.0 / f64::from(v - lo + 1);
                    num += f64::from(v) * w;
                    den += w;
                }
                num / den
            }
        }
    }

    /// Axis label, matching the paper's figures ("80" or "40~120").
    pub fn label(&self) -> String {
        match *self {
            CapacitySpec::Fixed(k) => k.to_string(),
            CapacitySpec::Mixed { lo, hi } => format!("{lo}~{hi}"),
            CapacitySpec::Zipf { lo, hi } => format!("zipf{lo}~{hi}"),
        }
    }
}

/// Cumulative harmonic weights for `Zipf`: entry `i` is `Σ_{j≤i} 1/(j+1)`.
fn zipf_cumulative(lo: u32, hi: u32) -> Vec<f64> {
    let mut acc = 0.0;
    (0..=(hi - lo))
        .map(|i| {
            acc += 1.0 / f64::from(i + 1);
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_capacities_are_uniform() {
        let caps = CapacitySpec::Fixed(80).generate(5, 0);
        assert_eq!(caps, vec![80; 5]);
        assert_eq!(CapacitySpec::Fixed(80).mean(), 80.0);
        assert_eq!(CapacitySpec::Fixed(80).label(), "80");
    }

    #[test]
    fn mixed_capacities_stay_in_range() {
        let spec = CapacitySpec::Mixed { lo: 40, hi: 120 };
        let caps = spec.generate(1000, 5);
        assert!(caps.iter().all(|&k| (40..=120).contains(&k)));
        // With 1000 draws both extremes should appear.
        assert!(caps.iter().any(|&k| k < 60));
        assert!(caps.iter().any(|&k| k > 100));
        assert_eq!(spec.label(), "40~120");
    }

    #[test]
    fn mixed_generation_is_deterministic() {
        let spec = CapacitySpec::Mixed { lo: 10, hi: 30 };
        assert_eq!(spec.generate(20, 7), spec.generate(20, 7));
        assert_ne!(spec.generate(20, 7), spec.generate(20, 8));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_fixed_capacity_rejected() {
        CapacitySpec::Fixed(0).generate(1, 0);
    }

    #[test]
    fn zipf_capacities_are_skewed_deterministic_and_in_range() {
        let spec = CapacitySpec::Zipf { lo: 1, hi: 64 };
        let caps = spec.generate(4000, 21);
        assert!(caps.iter().all(|&k| (1..=64).contains(&k)));
        // Heavy head: the smallest value alone should outnumber the whole
        // top half of the range (1/1 vs Σ 1/33..1/64 of the mass).
        let small = caps.iter().filter(|&&k| k == 1).count();
        let large = caps.iter().filter(|&&k| k > 32).count();
        assert!(small > large, "head {small} vs tail {large}");
        // Exact mean ≈ (range/H) for this weighting; check against the
        // empirical average.
        let emp = caps.iter().map(|&k| f64::from(k)).sum::<f64>() / caps.len() as f64;
        assert!(
            (emp - spec.mean()).abs() / spec.mean() < 0.1,
            "empirical {emp} vs exact {}",
            spec.mean()
        );
        assert_eq!(caps, spec.generate(4000, 21), "same seed, same fleet");
        assert_ne!(caps, spec.generate(4000, 22), "seed changes the fleet");
        assert_eq!(spec.label(), "zipf1~64");
    }

    #[test]
    fn paper_figure12_ranges() {
        // The five ranges of Figure 12.
        for (lo, hi) in [(10, 30), (20, 60), (40, 120), (80, 240), (160, 480)] {
            let spec = CapacitySpec::Mixed { lo, hi };
            let caps = spec.generate(100, 1);
            assert!(caps.iter().all(|&k| (lo..=hi).contains(&k)));
        }
    }
}
