//! End-to-end tests of the continuous-assignment engine over
//! `cca-datagen` event streams: feasibility after every event of a
//! 1 000-event stream (including mid-repair aborts), and cost staying close
//! to a from-scratch solve.

use std::time::Duration;

use cca_core::{ContinuousAssignment, ContinuousConfig, RepairKind, WorldEvent};
use cca_datagen::{ArrivalProcess, CapacitySpec, StreamEvent, WorkloadConfig};
use cca_storage::QueryContext;
use cca_testutil::optimal_cost;
use proptest::prelude::*;

/// The datagen vocabulary maps one-to-one onto the engine's (datagen sits
/// below core in the crate layering, so the conversion lives with callers).
fn world(ev: StreamEvent) -> WorldEvent {
    match ev {
        StreamEvent::CustomerArrive { id, pos } => WorldEvent::CustomerArrive { id, pos },
        StreamEvent::CustomerDepart { id, .. } => WorldEvent::CustomerDepart { id },
        StreamEvent::ProviderCapacityDelta { index, delta } => {
            WorldEvent::ProviderCapacityDelta { index, delta }
        }
        StreamEvent::ProviderMove { index, to } => WorldEvent::ProviderMove { index, to },
    }
}

fn small_world(seed: u64, num_providers: usize, num_customers: usize, k: u32) -> WorkloadConfig {
    WorkloadConfig {
        num_providers,
        num_customers,
        capacity: CapacitySpec::Fixed(k),
        seed,
        ..WorkloadConfig::paper_default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// The acceptance stream: 1 000 mixed events, a hostile context every
    /// 37th event, and the matching must validate after every single one.
    #[test]
    fn prop_thousand_event_stream_stays_feasible(seed in 0u64..1_000) {
        let spec = small_world(seed, 10, 120, 20);
        let workload = spec.generate();
        let mut stream = ArrivalProcess::new(&workload, seed);
        let mut engine = ContinuousAssignment::build(
            workload.providers.clone(),
            workload.customers.clone(),
            ContinuousConfig::default(),
        );
        let mut aborted_events = 0u32;
        for i in 0..1_000u64 {
            let event = world(stream.next_event());
            let report = if i % 37 == 36 {
                // Alternate abort flavours mid-repair: a cancelled context,
                // an exhausted I/O budget, an expired deadline.
                let ctx = match (i / 37) % 3 {
                    0 => {
                        let c = QueryContext::new();
                        c.cancel();
                        c
                    }
                    1 => QueryContext::new().with_io_budget(1),
                    _ => QueryContext::new().with_timeout(Duration::ZERO),
                };
                let report = engine.apply(event, Some(&ctx));
                if report.aborted.is_some() {
                    aborted_events += 1;
                }
                report
            } else {
                engine.apply(event, None)
            };
            // Feasibility holds unconditionally — aborts unwind to the
            // last committed matching.
            engine.check_feasible().unwrap_or_else(|e| {
                panic!("event {i} ({event:?}, aborted={:?}): {e}", report.aborted)
            });
            prop_assert_eq!(engine.alive_customers().len(), stream.live_customers());
        }
        // The hostile contexts really did interrupt repairs mid-flight...
        prop_assert!(aborted_events > 0, "no abort ever fired: {:?}", engine.stats());
        prop_assert_eq!(u64::from(aborted_events), engine.stats().aborted_repairs);
        // ...and one clean repair pass recovers maximality.
        engine.repair(None).unwrap();
        prop_assert_eq!(engine.deficit(), 0);
        engine.check_feasible().unwrap();
    }
}

/// Incremental repair tracks the from-scratch optimum on a mixed stream.
#[test]
fn mixed_stream_cost_stays_near_scratch() {
    let spec = small_world(42, 12, 150, 16);
    let workload = spec.generate();
    let mut stream = ArrivalProcess::new(&workload, 42);
    let mut engine = ContinuousAssignment::build(
        workload.providers.clone(),
        workload.customers.clone(),
        ContinuousConfig::default(),
    );
    for _ in 0..600 {
        let report = engine.apply(world(stream.next_event()), None);
        assert!(report.aborted.is_none());
        assert_eq!(report.deficit, 0);
    }
    engine.check_feasible().unwrap();
    let scratch = optimal_cost(engine.providers(), engine.alive_customers());
    let ratio = engine.cost() / scratch.max(1e-9);
    assert!(
        ratio <= 1.02,
        "engine drifted {ratio:.4}× from the from-scratch optimum \
         (engine {}, scratch {scratch})",
        engine.cost()
    );
    let stats = engine.stats();
    assert!(stats.local_repairs > 0, "{stats:?}");
    assert!(
        stats.full_resolves > 1,
        "dirty threshold never fired: {stats:?}"
    );
}

/// Arrivals-only (the benchmark's regime): cost within 1% of from-scratch.
#[test]
fn arrival_stream_cost_within_one_percent() {
    let spec = small_world(7, 10, 200, 30);
    let workload = spec.generate();
    let mut stream = ArrivalProcess::arrivals_only(&workload, 7);
    let mut engine = ContinuousAssignment::build(
        workload.providers.clone(),
        workload.customers.clone(),
        ContinuousConfig::default(),
    );
    for _ in 0..400 {
        let report = engine.apply(world(stream.next_event()), None);
        assert!(report.aborted.is_none());
    }
    engine.check_feasible().unwrap();
    let scratch = optimal_cost(engine.providers(), engine.alive_customers());
    let ratio = engine.cost() / scratch.max(1e-9);
    assert!(
        ratio <= 1.01,
        "arrivals-only drift {ratio:.4}× (engine {}, scratch {scratch})",
        engine.cost()
    );
}

/// A tiny `sspa_edge_limit` forces the cacheless IDA full-resolve path; the
/// engine must still work (and stay feasible) without the warm cache.
#[test]
fn ida_fallback_path_without_cache() {
    let spec = small_world(9, 6, 80, 10);
    let workload = spec.generate();
    let mut stream = ArrivalProcess::new(&workload, 9);
    let cfg = ContinuousConfig {
        sspa_edge_limit: 1, // nothing fits: full re-solves run IDA, cold
        dirty_threshold: 0.05,
        ..ContinuousConfig::default()
    };
    let mut engine =
        ContinuousAssignment::build(workload.providers.clone(), workload.customers.clone(), cfg);
    let mut fulls = 0u32;
    for _ in 0..60 {
        let report = engine.apply(world(stream.next_event()), None);
        assert!(report.aborted.is_none());
        if report.repair == RepairKind::Full {
            fulls += 1;
        }
        engine.check_feasible().unwrap();
    }
    assert!(fulls > 0, "low dirty threshold must trigger full re-solves");
    let stats = engine.stats();
    assert_eq!(
        stats.warm_full_resolves, 0,
        "cache is inactive above the edge limit: {stats:?}"
    );
}
