//! Adversarial and degenerate-geometry tests for the exact algorithms:
//! ties, duplicates, zero distances and skewed layouts are where
//! floating-point pruning bounds and heap orderings typically break.

use cca_core::exact::{ida, nia, ria, IdaConfig, MemorySource, NiaConfig, RiaConfig, RtreeSource};
use cca_geo::Point;
use cca_testutil::{build_tree as tree_of, optimal_cost as oracle};

fn check_all(providers: &[(Point, u32)], customers: &[Point], label: &str) {
    let want = oracle(providers, customers);
    let tree = tree_of(customers);
    let qpos: Vec<Point> = providers.iter().map(|&(p, _)| p).collect();

    let mut src = RtreeSource::new(&tree, qpos.clone());
    let (m, _) = ida(providers, &mut src, &IdaConfig::default());
    m.validate_unit(providers, customers)
        .unwrap_or_else(|e| panic!("{label}/IDA: {e}"));
    assert!(
        (m.cost() - want).abs() < 1e-6,
        "{label}/IDA: {} vs {want}",
        m.cost()
    );

    let mut src = RtreeSource::new(&tree, qpos.clone());
    let (m, _) = nia(providers, &mut src, &NiaConfig::default());
    assert!(
        (m.cost() - want).abs() < 1e-6,
        "{label}/NIA: {} vs {want}",
        m.cost()
    );

    let mut src = RtreeSource::new(&tree, qpos.clone());
    let (m, _) = ria(providers, &mut src, &RiaConfig { theta: 7.0 });
    assert!(
        (m.cost() - want).abs() < 1e-6,
        "{label}/RIA: {} vs {want}",
        m.cost()
    );
}

#[test]
fn all_points_identical() {
    // Every distance is zero; any maximal matching is optimal, but sizes
    // and capacities must still be exact.
    let providers = vec![(Point::new(5.0, 5.0), 3), (Point::new(5.0, 5.0), 2)];
    let customers = vec![Point::new(5.0, 5.0); 8];
    check_all(&providers, &customers, "identical");
}

#[test]
fn providers_on_top_of_customers() {
    let customers: Vec<Point> = (0..10).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
    let providers: Vec<(Point, u32)> = customers.iter().take(3).map(|&p| (p, 2)).collect();
    check_all(&providers, &customers, "on-top");
}

#[test]
fn collinear_equidistant_ties() {
    // Customers symmetric around each provider: massive distance ties.
    let providers = vec![(Point::new(100.0, 0.0), 2), (Point::new(200.0, 0.0), 2)];
    let customers = vec![
        Point::new(90.0, 0.0),
        Point::new(110.0, 0.0),
        Point::new(190.0, 0.0),
        Point::new(210.0, 0.0),
        Point::new(150.0, 0.0), // exactly between the providers
    ];
    check_all(&providers, &customers, "ties");
}

#[test]
fn grid_with_exact_ties_everywhere() {
    let mut customers = Vec::new();
    for x in 0..6 {
        for y in 0..6 {
            customers.push(Point::new(x as f64 * 10.0, y as f64 * 10.0));
        }
    }
    let providers = vec![(Point::new(15.0, 15.0), 10), (Point::new(35.0, 35.0), 10)];
    check_all(&providers, &customers, "grid");
}

#[test]
fn single_customer_many_providers() {
    let providers: Vec<(Point, u32)> = (0..6)
        .map(|i| (Point::new(i as f64 * 50.0, 10.0), 4))
        .collect();
    let customers = vec![Point::new(130.0, 10.0)];
    check_all(&providers, &customers, "single-customer");
}

#[test]
fn unit_capacity_assignment_problem() {
    // Classic one-to-one assignment with distractors.
    let providers: Vec<(Point, u32)> = (0..8)
        .map(|i| (Point::new(i as f64 * 13.0, (i % 3) as f64 * 7.0), 1))
        .collect();
    let customers: Vec<Point> = (0..8)
        .map(|i| Point::new(i as f64 * 11.0 + 3.0, ((i + 1) % 4) as f64 * 5.0))
        .collect();
    check_all(&providers, &customers, "one-to-one");
}

#[test]
fn extreme_capacity_skew() {
    // One mega-provider and several tiny ones.
    let providers = vec![
        (Point::new(500.0, 500.0), 50),
        (Point::new(100.0, 100.0), 1),
        (Point::new(900.0, 900.0), 1),
    ];
    let customers: Vec<Point> = (0..40)
        .map(|i| Point::new((i % 8) as f64 * 120.0 + 20.0, (i / 8) as f64 * 180.0 + 30.0))
        .collect();
    check_all(&providers, &customers, "skew");
}

#[test]
fn duplicate_customer_blocks() {
    // Blocks of identical customers larger than any single capacity.
    let mut customers = Vec::new();
    for _ in 0..12 {
        customers.push(Point::new(10.0, 10.0));
    }
    for _ in 0..12 {
        customers.push(Point::new(400.0, 400.0));
    }
    let providers = vec![(Point::new(0.0, 0.0), 8), (Point::new(410.0, 410.0), 8)];
    check_all(&providers, &customers, "dup-blocks");
}

#[test]
fn far_corner_provider_must_reach_across_world() {
    // A provider in a far corner with large capacity must win distant
    // customers; exercises long shortest paths and large τmax.
    let mut customers: Vec<Point> = (0..30)
        .map(|i| Point::new(50.0 + (i % 6) as f64 * 8.0, 50.0 + (i / 6) as f64 * 8.0))
        .collect();
    customers.push(Point::new(990.0, 990.0));
    let providers = vec![
        (Point::new(60.0, 60.0), 5),
        (Point::new(1000.0, 1000.0), 26),
    ];
    check_all(&providers, &customers, "far-corner");
}

#[test]
fn memory_source_agrees_with_rtree_source_on_ties() {
    let providers = vec![(Point::new(50.0, 50.0), 3), (Point::new(60.0, 50.0), 3)];
    let customers = vec![
        Point::new(55.0, 50.0),
        Point::new(55.0, 50.0),
        Point::new(55.0, 50.0),
        Point::new(45.0, 50.0),
        Point::new(65.0, 50.0),
    ];
    let want = oracle(&providers, &customers);
    let tree = tree_of(&customers);
    let qpos: Vec<Point> = providers.iter().map(|&(p, _)| p).collect();
    let mut rt = RtreeSource::new(&tree, qpos.clone());
    let (m1, _) = ida(&providers, &mut rt, &IdaConfig::default());
    let mut mem = MemorySource::new(qpos, customers.iter().map(|&p| (p, 1)).collect());
    let (m2, _) = ida(&providers, &mut mem, &IdaConfig::default());
    assert!((m1.cost() - want).abs() < 1e-6);
    assert!((m2.cost() - want).abs() < 1e-6);
}

#[test]
fn ida_never_explores_more_than_nia() {
    // Library-level shape invariant behind Figure 9.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(33);
    for trial in 0..5 {
        let providers: Vec<(Point, u32)> = (0..10)
            .map(|_| {
                (
                    Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)),
                    rng.random_range(2..8),
                )
            })
            .collect();
        let customers: Vec<Point> = (0..300)
            .map(|_| Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)))
            .collect();
        let tree = tree_of(&customers);
        let qpos: Vec<Point> = providers.iter().map(|&(p, _)| p).collect();
        let mut s1 = RtreeSource::new(&tree, qpos.clone());
        let (_, ida_stats) = ida(&providers, &mut s1, &IdaConfig::default());
        let mut s2 = RtreeSource::new(&tree, qpos.clone());
        let (_, nia_stats) = nia(&providers, &mut s2, &NiaConfig::default());
        assert!(
            ida_stats.esub_edges <= nia_stats.esub_edges,
            "trial {trial}: IDA {} > NIA {}",
            ida_stats.esub_edges,
            nia_stats.esub_edges
        );
    }
}
