//! Approximate CCA: the paper's SA and CA (§4) with NN-based and
//! exclusive-NN refinement and the error bounds of Theorems 3–4, plus the
//! scale-out tier — capacity-aware coresets ([`coreset()`]) and
//! deterministic annealing ([`da()`]) for instances where even CA's full
//! partition descent is too slow.

pub mod bounds;
pub mod ca;
pub mod coreset;
pub mod da;
pub mod grouping;
mod pgrid;
pub mod refine;
pub mod sa;

pub use bounds::{ca_error_bound, sa_error_bound};
pub use ca::{ca, ca_ctx, CaConfig};
pub use coreset::{coreset, coreset_ctx, coreset_points, CoresetConfig};
pub use da::{da, da_ctx, da_points, DaConfig};
pub use grouping::{greedy_hilbert_groups, partition_providers, ProviderGroup};
pub use refine::{RefineMethod, RefineProvider};
pub use sa::{sa, sa_ctx, SaConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use cca_geo::Point;
    use cca_testutil::{build_tree, gamma, optimal_cost, random_instance};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sa_produces_valid_matchings_within_bound() {
        for seed in [10, 11, 12, 13] {
            let (providers, customers) = random_instance(seed, 12, 80, 6);
            let tree = build_tree(&customers);
            let opt = optimal_cost(&providers, &customers);
            let g = gamma(&providers, &customers);
            for method in [RefineMethod::NnBased, RefineMethod::ExclusiveNn] {
                for delta in [20.0, 80.0] {
                    let (m, _) = sa(
                        &providers,
                        &tree,
                        &SaConfig {
                            delta,
                            refine: method,
                        },
                    );
                    m.validate_unit(&providers, &customers).unwrap();
                    let err = m.cost() - opt;
                    assert!(err >= -1e-6, "approximation cannot beat the optimum");
                    assert!(
                        err <= sa_error_bound(g, delta) + 1e-6,
                        "seed {seed} δ={delta}: err {err} > bound {}",
                        sa_error_bound(g, delta)
                    );
                }
            }
        }
    }

    #[test]
    fn ca_produces_valid_matchings_within_bound() {
        for seed in [20, 21, 22, 23] {
            let (providers, customers) = random_instance(seed, 10, 120, 8);
            let tree = build_tree(&customers);
            let opt = optimal_cost(&providers, &customers);
            let g = gamma(&providers, &customers);
            for method in [RefineMethod::NnBased, RefineMethod::ExclusiveNn] {
                for delta in [15.0, 60.0] {
                    let (m, _) = ca(
                        &providers,
                        &tree,
                        &CaConfig {
                            delta,
                            refine: method,
                        },
                    );
                    m.validate_unit(&providers, &customers).unwrap();
                    let err = m.cost() - opt;
                    assert!(err >= -1e-6);
                    assert!(
                        err <= ca_error_bound(g, delta) + 1e-6,
                        "seed {seed} δ={delta}: err {err} > bound {}",
                        ca_error_bound(g, delta)
                    );
                }
            }
        }
    }

    #[test]
    fn tiny_delta_approaches_the_optimum() {
        let (providers, customers) = random_instance(30, 8, 60, 5);
        let tree = build_tree(&customers);
        let opt = optimal_cost(&providers, &customers);
        // δ → 0 makes every group a singleton: SA degenerates to exact CCA.
        let (m, _) = sa(
            &providers,
            &tree,
            &SaConfig {
                delta: 1e-9,
                refine: RefineMethod::NnBased,
            },
        );
        assert!(
            (m.cost() - opt).abs() < 1e-6,
            "singleton SA {} vs optimal {opt}",
            m.cost()
        );
        // CA with tiny δ: groups may still contain exactly coincident
        // points; quality must be essentially optimal on generic data.
        let (m, _) = ca(
            &providers,
            &tree,
            &CaConfig {
                delta: 1e-9,
                refine: RefineMethod::NnBased,
            },
        );
        assert!(
            (m.cost() - opt).abs() < 1e-6,
            "singleton CA {} vs {opt}",
            m.cost()
        );
    }

    #[test]
    fn quality_degrades_monotonically_on_average() {
        // Not a per-instance theorem, but across a batch the mean quality
        // ratio at δ=150 must not beat the mean ratio at δ=15.
        let mut small_sum = 0.0;
        let mut large_sum = 0.0;
        for seed in 40..45 {
            let (providers, customers) = random_instance(seed, 10, 100, 6);
            let tree = build_tree(&customers);
            let opt = optimal_cost(&providers, &customers);
            let (m_small, _) = ca(
                &providers,
                &tree,
                &CaConfig {
                    delta: 15.0,
                    refine: RefineMethod::NnBased,
                },
            );
            let (m_large, _) = ca(
                &providers,
                &tree,
                &CaConfig {
                    delta: 150.0,
                    refine: RefineMethod::NnBased,
                },
            );
            small_sum += m_small.cost() / opt;
            large_sum += m_large.cost() / opt;
        }
        assert!(
            small_sum <= large_sum + 1e-9,
            "mean quality: δ=15 {small_sum} vs δ=150 {large_sum}"
        );
    }

    #[test]
    fn surplus_capacity_and_surplus_customers() {
        // Σk > |P| and Σk < |P| both produce full-size valid matchings.
        for (nq, np, cap) in [(20, 30, 5), (3, 90, 4)] {
            let (providers, customers) = random_instance(50, nq, np, cap);
            let tree = build_tree(&customers);
            for method in [RefineMethod::NnBased, RefineMethod::ExclusiveNn] {
                let (m, _) = sa(
                    &providers,
                    &tree,
                    &SaConfig {
                        delta: 50.0,
                        refine: method,
                    },
                );
                m.validate_unit(&providers, &customers).unwrap();
                let (m, _) = ca(
                    &providers,
                    &tree,
                    &CaConfig {
                        delta: 25.0,
                        refine: method,
                    },
                );
                m.validate_unit(&providers, &customers).unwrap();
            }
        }
    }

    #[test]
    fn clustered_data_respects_bounds_too() {
        // Clustered (duplicate-heavy) data stresses the grouping phases.
        let mut rng = StdRng::seed_from_u64(60);
        let mut customers = Vec::new();
        for _ in 0..5 {
            let cx = rng.random_range(100.0..900.0);
            let cy = rng.random_range(100.0..900.0);
            for _ in 0..30 {
                customers.push(Point::new(
                    cx + rng.random_range(-5.0..5.0),
                    cy + rng.random_range(-5.0..5.0),
                ));
            }
        }
        let providers: Vec<(Point, u32)> = (0..8)
            .map(|_| {
                (
                    Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)),
                    20,
                )
            })
            .collect();
        let tree = build_tree(&customers);
        let opt = optimal_cost(&providers, &customers);
        let g = gamma(&providers, &customers);
        let (m, _) = ca(
            &providers,
            &tree,
            &CaConfig {
                delta: 12.0,
                refine: RefineMethod::ExclusiveNn,
            },
        );
        m.validate_unit(&providers, &customers).unwrap();
        assert!(m.cost() - opt <= ca_error_bound(g, 12.0) + 1e-6);
    }
}
