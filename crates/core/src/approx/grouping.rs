//! Hilbert-ordered greedy grouping under a diagonal budget.
//!
//! SA partitions the providers this way (§4.1: "points q ∈ Q are sorted
//! according to their Hilbert values... each point q, in turn, is inserted
//! into an existing group Gm so that the diagonal of Gm's MBR does not
//! exceed δ; if no such group is found, a new group is formed"), and CA's
//! merge step coalesces partition entries "into conceptual hyper-entries
//! whose diagonal does not exceed δ" with the same procedure (§4.2).

use cca_geo::{hilbert, Point, Rect, WORLD_SIZE};

/// Greedily groups items (by their representative point, Hilbert-ordered)
/// such that each group's combined MBR keeps its diagonal ≤ `delta`.
///
/// `rect_of` gives each item's extent (a degenerate rect for points).
/// Returns groups as lists of item indices; every item lands in exactly one
/// group and groups are non-empty.
/// How many of the most recent groups the greedy insertion scan considers.
///
/// Hilbert order keeps spatial neighbours adjacent, so an item that fits any
/// group at all almost always fits one opened recently; groups further back
/// are spatially distant and merging into them would exceed δ anyway. The
/// bounded window turns the insertion scan from O(n·groups) — quadratic when
/// δ is small and most items open their own group — into O(n), at the cost
/// of occasionally opening a group that an unbounded scan would have merged.
/// Every group still satisfies the diagonal budget.
const GROUP_SCAN_WINDOW: usize = 32;

pub fn greedy_hilbert_groups<T>(
    items: &[T],
    point_of: impl Fn(&T) -> Point,
    rect_of: impl Fn(&T) -> Rect,
    delta: f64,
) -> Vec<Vec<usize>> {
    assert!(delta >= 0.0, "delta must be non-negative");
    let points: Vec<Point> = items.iter().map(&point_of).collect();
    let order = hilbert::sort_by_hilbert(&points, WORLD_SIZE);

    let mut groups: Vec<(Rect, Vec<usize>)> = Vec::new();
    for &i in &order {
        let r = rect_of(&items[i]);
        let mut placed = false;
        for (mbr, members) in groups.iter_mut().rev().take(GROUP_SCAN_WINDOW) {
            let merged = mbr.union(&r);
            if merged.diagonal() <= delta {
                *mbr = merged;
                members.push(i);
                placed = true;
                break;
            }
        }
        if !placed {
            groups.push((r, vec![i]));
        }
    }
    groups.into_iter().map(|(_, members)| members).collect()
}

/// A provider group produced by SA partitioning.
#[derive(Clone, Debug)]
pub struct ProviderGroup {
    /// Member indices into the original provider list.
    pub members: Vec<usize>,
    /// Representative position: the capacity-weighted centroid (§4.1).
    pub rep: Point,
    /// Representative capacity: `Σ q.k` over members.
    pub cap: u32,
}

/// Partitions providers for SA (§4.1) and derives the representatives.
pub fn partition_providers(providers: &[(Point, u32)], delta: f64) -> Vec<ProviderGroup> {
    let groups =
        greedy_hilbert_groups(providers, |&(p, _)| p, |&(p, _)| Rect::from_point(p), delta);
    groups
        .into_iter()
        .map(|members| {
            let cap: u32 = members.iter().map(|&i| providers[i].1).sum();
            let total = f64::from(cap.max(1));
            let mut x = 0.0;
            let mut y = 0.0;
            for &i in &members {
                let (p, k) = providers[i];
                x += p.x * f64::from(k);
                y += p.y * f64::from(k);
            }
            // Zero-capacity groups fall back to the plain centroid.
            let rep = if cap > 0 {
                Point::new(x / total, y / total)
            } else {
                let n = members.len() as f64;
                let (sx, sy) = members.iter().fold((0.0, 0.0), |(ax, ay), &i| {
                    (ax + providers[i].0.x, ay + providers[i].0.y)
                });
                Point::new(sx / n, sy / n)
            };
            ProviderGroup { members, rep, cap }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_providers(n: usize, seed: u64) -> Vec<(Point, u32)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                (
                    Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)),
                    rng.random_range(1..10),
                )
            })
            .collect()
    }

    #[test]
    fn groups_partition_the_input() {
        let providers = random_providers(200, 61);
        let groups = partition_providers(&providers, 80.0);
        let mut seen: Vec<usize> = groups.iter().flat_map(|g| g.members.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn group_diagonals_respect_delta() {
        let providers = random_providers(300, 62);
        for delta in [20.0, 40.0, 160.0] {
            let groups = partition_providers(&providers, delta);
            for g in &groups {
                let mbr: Rect = g.members.iter().map(|&i| providers[i].0).collect();
                assert!(
                    mbr.diagonal() <= delta + 1e-9,
                    "diag {} > {delta}",
                    mbr.diagonal()
                );
            }
        }
    }

    #[test]
    fn smaller_delta_more_groups() {
        let providers = random_providers(300, 63);
        let few = partition_providers(&providers, 200.0).len();
        let many = partition_providers(&providers, 10.0).len();
        assert!(few < many);
    }

    #[test]
    fn zero_delta_gives_singletons_for_distinct_points() {
        let providers = random_providers(50, 64);
        let groups = partition_providers(&providers, 0.0);
        assert_eq!(groups.len(), 50);
    }

    #[test]
    fn capacities_sum_and_centroid_is_weighted() {
        let providers = vec![(Point::new(0.0, 0.0), 1), (Point::new(10.0, 0.0), 3)];
        let groups = partition_providers(&providers, 100.0);
        assert_eq!(groups.len(), 1);
        let g = &groups[0];
        assert_eq!(g.cap, 4);
        // Weighted centroid: (0*1 + 10*3) / 4 = 7.5.
        assert!((g.rep.x - 7.5).abs() < 1e-12);
        assert_eq!(g.rep.y, 0.0);
    }

    #[test]
    fn rep_within_delta_of_every_member() {
        // The geometric premise of Theorem 3: the weighted centroid is at
        // most δ away from each member (both lie in an MBR of diagonal ≤ δ).
        let providers = random_providers(400, 65);
        let delta = 60.0;
        for g in partition_providers(&providers, delta) {
            for &i in &g.members {
                assert!(g.rep.dist(&providers[i].0) <= delta + 1e-9);
            }
        }
    }
}
