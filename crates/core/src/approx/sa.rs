//! SA — Service Provider Approximation (§4.1).
//!
//! Three phases: (1) partition `Q` into Hilbert-ordered groups of MBR
//! diagonal ≤ δ; (2) *concise matching* — solve exact CCA (with IDA, "the
//! most efficient among the exact methods") between the group
//! representatives `Q'` and the full customer set `P`; (3) refine each
//! group's customer share among its members with a §4.3 heuristic.
//! Theorem 3 bounds the extra cost by `2·γ·δ`.

use std::time::Instant;

use cca_geo::Point;
use cca_rtree::RTree;
use cca_storage::QueryContext;

use crate::approx::grouping::partition_providers;
use crate::approx::refine::{refine, RefineMethod, RefineProvider};
use crate::exact::{ida, IdaConfig, RtreeSource};
use crate::matching::{MatchPair, Matching};
use crate::stats::AlgoStats;

/// SA tuning.
#[derive(Clone, Copy, Debug)]
pub struct SaConfig {
    /// Group-MBR diagonal budget δ (paper default for SA: 40).
    pub delta: f64,
    /// Refinement heuristic ("N" → SAN, "E" → SAE).
    pub refine: RefineMethod,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            delta: 40.0,
            refine: RefineMethod::NnBased,
        }
    }
}

/// Runs SA over providers and the R-tree-indexed customers.
pub fn sa(providers: &[(Point, u32)], tree: &RTree, cfg: &SaConfig) -> (Matching, AlgoStats) {
    sa_ctx(providers, tree, cfg, None)
}

/// [`sa`] under a query context: the concise-matching phase's R-tree I/O is
/// charged to `ctx`, and an abort (cancellation / deadline / I/O budget)
/// makes the phase return early with a partial matching — the caller reads
/// the abort state off the context.
pub fn sa_ctx(
    providers: &[(Point, u32)],
    tree: &RTree,
    cfg: &SaConfig,
    ctx: Option<&QueryContext>,
) -> (Matching, AlgoStats) {
    let start = Instant::now();

    // Phase 1: partitioning (§4.1).
    let groups = partition_providers(providers, cfg.delta);
    let reps: Vec<(Point, u32)> = groups.iter().map(|g| (g.rep, g.cap)).collect();

    // Phase 2: concise matching — exact CCA between Q' and P via IDA.
    let rep_positions: Vec<Point> = reps.iter().map(|&(p, _)| p).collect();
    let mut source = RtreeSource::new_ctx(tree, rep_positions, ctx);
    let (concise, concise_stats) = ida(&reps, &mut source, &IdaConfig::default());

    // Phase 3: per-group refinement (§4.3). Each group's customer share is
    // split among its members, whose quotas are their own capacities.
    let mut share: Vec<Vec<(Point, u64)>> = vec![Vec::new(); groups.len()];
    for pair in &concise.pairs {
        debug_assert_eq!(pair.units, 1, "P-side customers are unit weight");
        share[pair.provider].push((pair.customer_pos, pair.customer));
    }
    let mut pairs = Vec::with_capacity(concise.pairs.len());
    for (g, customers) in groups.iter().zip(&share) {
        if customers.is_empty() {
            continue;
        }
        let refine_providers: Vec<RefineProvider> = g
            .members
            .iter()
            .map(|&i| RefineProvider {
                original: i,
                pos: providers[i].0,
                quota: providers[i].1,
            })
            .collect();
        for (original, customer, dist, customer_pos) in
            refine(cfg.refine, &refine_providers, customers)
        {
            pairs.push(MatchPair {
                provider: original,
                customer,
                units: 1,
                dist,
                customer_pos,
            });
        }
    }

    let mut stats = concise_stats;
    stats.cpu_time = start.elapsed();
    (Matching { pairs }, stats)
}
