//! Quality guarantees of the approximate methods (§4.4).

/// Theorem 3: the assignment error of SA is at most `2·γ·δ`.
///
/// Sketch: replacing every provider of the optimal matching by its group
/// representative changes each pair by at most δ (the weighted centroid lies
/// within the group MBR of diagonal ≤ δ), and the refinement re-introduces
/// at most δ per pair again.
pub fn sa_error_bound(gamma: u64, delta: f64) -> f64 {
    2.0 * gamma as f64 * delta
}

/// Theorem 4: the assignment error of CA is at most `γ·δ`.
///
/// The representative is the geometric centroid of the group MBR, so each
/// replacement moves a pair by at most δ/2, twice.
pub fn ca_error_bound(gamma: u64, delta: f64) -> f64 {
    gamma as f64 * delta
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_scale_linearly() {
        assert_eq!(sa_error_bound(10, 4.0), 80.0);
        assert_eq!(ca_error_bound(10, 4.0), 40.0);
        assert_eq!(sa_error_bound(0, 4.0), 0.0);
        // CA's bound is exactly half of SA's at the same δ.
        assert_eq!(ca_error_bound(7, 3.0) * 2.0, sa_error_bound(7, 3.0));
    }
}
