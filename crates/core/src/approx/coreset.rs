//! Coreset-based approximate CCA — the million-customer tier.
//!
//! The exact algorithms route flow over the *full* instance, so their
//! per-query latency grows super-linearly with `|P|`. This module instead
//! (1) samples customers into a small weighted *coreset* by importance
//! (sensitivity ∝ distance to the nearest provider, the classic
//! capacitated-clustering coreset construction), (2) clusters every
//! customer to its nearest representative so representative weights are
//! exact member counts, (3) rounds weights capacity-awarely (no
//! representative may outweigh the largest single provider capacity — it is
//! split into co-located slots instead, so the concise instance is always
//! feasible), (4) solves the concise weighted instance *exactly* — via
//! bulk-augmenting SSPA from `cca-flow` when the bipartite graph is small,
//! via the incremental IDA engine otherwise, (5) lifts the concise quotas
//! back over each representative's actual members with the §4.3 refinement
//! heuristics, and (6) runs bounded swap passes inside R-tree
//! neighbourhoods to repair locally bad lifts.
//!
//! Feasibility is never approximate: every phase preserves "each customer
//! assigned at most once, no provider over capacity, matching size = γ";
//! only the *cost* is. Aborts (deadline / budget / cancel) unwind to the
//! best feasible state reached so far, exactly like SA/CA.

use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::time::Instant;

use cca_flow::sspa::{solve_complete_bipartite_bulk_ctx, FlowCustomer, FlowProvider};
use cca_geo::{OrdF64, Point};
use cca_rtree::RTree;
use cca_storage::QueryContext;

use crate::approx::pgrid::PointGrid;
use crate::approx::refine::{refine, RefineMethod, RefineProvider};
use crate::exact::{ida, IdaConfig, MemorySource};
use crate::matching::{MatchPair, Matching};
use crate::stats::AlgoStats;

/// Above this edge count (`slots × providers`) the concise solve switches
/// from materialised bulk SSPA to the incremental IDA engine, which never
/// builds the complete bipartite graph.
const BULK_EDGE_LIMIT: usize = 65_536;

/// How often the CPU-bound phases poll the query context.
const POLL_STRIDE: u32 = 4_096;

/// Coreset tuning.
#[derive(Clone, Copy, Debug)]
pub struct CoresetConfig {
    /// Target coreset size `m` (0 = auto: `64·√n`, at least 256, at most
    /// `n`). `m ≥ n` degenerates to an exact solve.
    pub size: usize,
    /// Sampling seed. Cost varies with it; feasibility never does.
    pub seed: u64,
    /// Bounded local-refinement passes over R-tree neighbourhoods after the
    /// lift (0 disables; ignored for memory-only instances).
    pub swap_passes: usize,
    /// Heuristic used to fill concise quotas with member customers.
    pub refine: RefineMethod,
}

impl Default for CoresetConfig {
    fn default() -> Self {
        CoresetConfig {
            size: 0,
            seed: 0xc0_5e7,
            swap_passes: 2,
            refine: RefineMethod::NnBased,
        }
    }
}

fn empty(start: Instant) -> (Matching, AlgoStats) {
    (
        Matching::default(),
        AlgoStats {
            cpu_time: start.elapsed(),
            ..Default::default()
        },
    )
}

/// SplitMix64 step mapped to a uniform f64 in `[0, 1)` — the sampler's
/// only randomness. Self-contained so the deterministic sampling contract
/// (same seed → same coreset) depends on nothing but this file.
fn splitmix_unit(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

fn poll(ctx: Option<&QueryContext>, counter: &mut u32) -> bool {
    *counter += 1;
    if *counter >= POLL_STRIDE {
        *counter = 0;
        if let Some(c) = ctx {
            return c.check().is_err();
        }
    }
    false
}

/// Runs the coreset solver over R-tree-indexed customers.
pub fn coreset(
    providers: &[(Point, u32)],
    tree: &RTree,
    cfg: &CoresetConfig,
) -> (Matching, AlgoStats) {
    coreset_ctx(providers, tree, cfg, None)
}

/// [`coreset`] under a query context: the single full-tree sweep that
/// collects customer positions (the only unavoidable I/O) and the swap
/// passes charge their page faults to `ctx`; every CPU-bound phase polls
/// it. An abort during collection returns an empty partial matching; later
/// aborts return the best feasible matching built so far.
pub fn coreset_ctx(
    providers: &[(Point, u32)],
    tree: &RTree,
    cfg: &CoresetConfig,
    ctx: Option<&QueryContext>,
) -> (Matching, AlgoStats) {
    let start = Instant::now();
    let mut items = Vec::new();
    if tree
        .for_each_point_ctx(ctx, |pos, id| items.push((pos, id)))
        .is_err()
    {
        return empty(start);
    }
    coreset_points(providers, &items, Some(tree), cfg, ctx)
}

/// The coreset pipeline over an explicit `(position, id)` customer slice.
/// `tree` (when present) is used only by the swap-refinement passes; pass
/// `None` for memory-only instances.
pub fn coreset_points(
    providers: &[(Point, u32)],
    items: &[(Point, u64)],
    tree: Option<&RTree>,
    cfg: &CoresetConfig,
    ctx: Option<&QueryContext>,
) -> (Matching, AlgoStats) {
    let start = Instant::now();
    let n = items.len();
    let total_cap: u64 = providers.iter().map(|&(_, c)| u64::from(c)).sum();
    if n == 0 || total_cap == 0 {
        return empty(start);
    }
    let m = if cfg.size > 0 {
        cfg.size.min(n)
    } else {
        ((64.0 * (n as f64).sqrt()) as usize).max(256).min(n)
    };

    // Group assignment: groups[g] = representative position, member lists
    // in CSR form (member_starts / member_order over item indices).
    let mut counter = 0u32;
    let (rep_pos, group_of) = if m >= n {
        // Degenerate: every customer is its own weight-1 representative and
        // the concise solve below is an *exact* solve of the instance.
        (
            items.iter().map(|&(p, _)| p).collect::<Vec<Point>>(),
            (0..n as u32).collect::<Vec<u32>>(),
        )
    } else {
        // Sensitivity σ_i = d(c_i, NN provider) + mean distance: far
        // customers are the expensive ones an optimal assignment must get
        // right, the mean term keeps dense near clusters represented.
        let qgrid = PointGrid::new(providers.iter().map(|&(p, _)| p).collect());
        let mut sens = Vec::with_capacity(n);
        let mut sum = 0.0f64;
        for &(pos, _) in items {
            if poll(ctx, &mut counter) {
                return empty(start);
            }
            let d = qgrid.nearest(pos).map_or(0.0, |(_, d)| d);
            sens.push(d);
            sum += d;
        }
        let mean = sum / n as f64;
        // Weighted sampling without replacement via exponential keys
        // (A-ExpJ): keep the m smallest `-ln(u)/σ`.
        let mut rng_state = cfg.seed;
        let mut heap: BinaryHeap<(OrdF64, u32)> = BinaryHeap::with_capacity(m + 1);
        for (i, &d) in sens.iter().enumerate() {
            let sigma = if d + mean > 0.0 { d + mean } else { 1.0 };
            let u = splitmix_unit(&mut rng_state).max(1e-18);
            let key = -u.ln() / sigma;
            if heap.len() < m {
                heap.push((OrdF64::new(key), i as u32));
            } else if key < heap.peek().expect("non-empty").0.get() {
                heap.pop();
                heap.push((OrdF64::new(key), i as u32));
            }
        }
        let rep_pos: Vec<Point> = heap.into_iter().map(|(_, i)| items[i as usize].0).collect();
        // Cluster every customer to its nearest representative; the
        // representative's weight is its exact member count, so lifted
        // assignments conserve units exactly.
        let rgrid = PointGrid::new(rep_pos.clone());
        let mut group_of = Vec::with_capacity(n);
        for &(pos, _) in items {
            if poll(ctx, &mut counter) {
                return empty(start);
            }
            let (g, _) = rgrid.nearest(pos).expect("m ≥ 1 representative");
            group_of.push(g as u32);
        }
        (rep_pos, group_of)
    };

    let num_groups = rep_pos.len();
    let mut weight = vec![0u32; num_groups];
    for &g in &group_of {
        weight[g as usize] += 1;
    }

    // Capacity-aware weight rounding: a representative heavier than the
    // largest single capacity is split into balanced co-located slots so
    // the concise instance never needs to overfill a provider.
    let cap_max = providers.iter().map(|&(_, c)| c).max().unwrap_or(0).max(1);
    let mut slots: Vec<(Point, u32)> = Vec::with_capacity(num_groups);
    let mut slot_group: Vec<u32> = Vec::with_capacity(num_groups);
    for (g, &w) in weight.iter().enumerate() {
        if w == 0 {
            continue;
        }
        let parts = w.div_ceil(cap_max);
        let base = w / parts;
        let extra = w % parts;
        for s in 0..parts {
            let part = base + u32::from(s < extra);
            slots.push((rep_pos[g], part));
            slot_group.push(g as u32);
        }
    }

    // Exact solve of the concise weighted instance: bulk-augmenting SSPA
    // when the materialised graph is small, the incremental IDA engine
    // otherwise. Both poll the context; an abort leaves a feasible partial
    // concise matching that lifts to a feasible partial answer.
    let edges = slots.len().saturating_mul(providers.len());
    let mut stats;
    let concise: Vec<(usize, usize, u32)> = if edges <= BULK_EDGE_LIMIT {
        let fps: Vec<FlowProvider> = providers
            .iter()
            .map(|&(pos, cap)| FlowProvider { pos, cap })
            .collect();
        let fcs: Vec<FlowCustomer> = slots
            .iter()
            .map(|&(pos, weight)| FlowCustomer { pos, weight })
            .collect();
        let (asg, sspa_stats) = match solve_complete_bipartite_bulk_ctx(&fps, &fcs, ctx) {
            Ok(complete) => complete,
            Err(aborted) => (aborted.partial, aborted.stats),
        };
        stats = AlgoStats {
            esub_edges: sspa_stats.edges,
            iterations: sspa_stats.iterations,
            settled: sspa_stats.settled,
            ..Default::default()
        };
        asg.pairs
    } else {
        let q_positions: Vec<Point> = providers.iter().map(|&(p, _)| p).collect();
        let mut source = MemorySource::new(q_positions, slots.clone()).with_context(ctx);
        let (concise, concise_stats) = ida(providers, &mut source, &IdaConfig::default());
        stats = concise_stats;
        concise
            .pairs
            .iter()
            .map(|p| (p.provider, p.customer as usize, p.units))
            .collect()
    };

    // Lift: concise quotas per representative group, filled with the
    // group's actual members by the §4.3 refinement heuristics.
    let mut quotas: Vec<Vec<RefineProvider>> = vec![Vec::new(); num_groups];
    for &(qi, slot, units) in &concise {
        quotas[slot_group[slot] as usize].push(RefineProvider {
            original: qi,
            pos: providers[qi].0,
            quota: units,
        });
    }
    // CSR member lists, built only now so aborted solves skip the work.
    let mut member_starts = vec![0u32; num_groups + 1];
    for &g in &group_of {
        member_starts[g as usize + 1] += 1;
    }
    for g in 0..num_groups {
        member_starts[g + 1] += member_starts[g];
    }
    let mut cursor = member_starts.clone();
    let mut member_order = vec![0u32; n];
    for (i, &g) in group_of.iter().enumerate() {
        member_order[cursor[g as usize] as usize] = i as u32;
        cursor[g as usize] += 1;
    }
    let mut pairs = Vec::new();
    for (g, refine_providers) in quotas.iter().enumerate() {
        if refine_providers.is_empty() {
            continue;
        }
        let members: Vec<(Point, u64)> = member_order
            [member_starts[g] as usize..member_starts[g + 1] as usize]
            .iter()
            .map(|&i| items[i as usize])
            .collect();
        for (original, customer, dist, customer_pos) in
            refine(cfg.refine, refine_providers, &members)
        {
            pairs.push(MatchPair {
                provider: original,
                customer,
                units: 1,
                dist,
                customer_pos,
            });
        }
    }

    // Local repair: bounded swap passes within R-tree neighbourhoods. Every
    // accepted move preserves per-provider loads and per-customer
    // uniqueness, so the matching stays feasible whether the passes finish
    // or abort mid-way.
    if let Some(tree) = tree {
        if cfg.swap_passes > 0 && !pairs.is_empty() {
            swap_refine(providers, tree, &mut pairs, cfg.swap_passes, ctx);
        }
    }

    stats.cpu_time = start.elapsed();
    (Matching { pairs }, stats)
}

/// In-place local refinement: for each provider, probe its R-tree
/// neighbourhood (bounded by its current worst assignment distance) and
/// greedily accept cost-reducing *replace* moves (swap in a nearer
/// unmatched customer) and *exchange* moves (trade customers with another
/// provider). Load-preserving by construction. Stops after `passes`
/// passes, at the first pass without an accepted move, or at a context
/// abort — whichever comes first.
fn swap_refine(
    providers: &[(Point, u32)],
    tree: &RTree,
    pairs: &mut [MatchPair],
    passes: usize,
    ctx: Option<&QueryContext>,
) {
    let mut assign: HashMap<u64, usize> = HashMap::with_capacity(pairs.len());
    let mut by_provider: Vec<Vec<usize>> = vec![Vec::new(); providers.len()];
    for (pi, p) in pairs.iter().enumerate() {
        assign.insert(p.customer, pi);
        by_provider[p.provider].push(pi);
    }
    let remove = |list: &mut Vec<usize>, v: usize| {
        let at = list.iter().position(|&x| x == v).expect("tracked index");
        list.swap_remove(at);
    };
    for _ in 0..passes {
        let mut improved = false;
        for qi in 0..providers.len() {
            if by_provider[qi].is_empty() {
                continue;
            }
            let qpos = providers[qi].0;
            let worst_of = |pairs: &[MatchPair], list: &[usize]| -> (usize, f64) {
                list.iter()
                    .map(|&pi| (pi, pairs[pi].dist))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("non-empty provider list")
            };
            let (_, radius) = worst_of(pairs, &by_provider[qi]);
            let k = (2 * by_provider[qi].len()).clamp(4, 64);
            let hits = match tree.knn_within_ctx(qpos, k, radius, ctx) {
                Ok(hits) => hits,
                Err(_) => return, // abort: the current matching stands
            };
            for (pos, id, d) in hits {
                let (wi, wd) = worst_of(pairs, &by_provider[qi]);
                if d + 1e-9 >= wd {
                    break; // ascending distances: no further move can help
                }
                match assign.get(&id).copied() {
                    Some(pi) if pairs[pi].provider == qi => {}
                    Some(pi) => {
                        // Exchange: c (at q2) moves here, our worst c2 goes
                        // to q2. Accept iff the summed cost drops.
                        let q2 = pairs[pi].provider;
                        let d_c_q2 = pairs[pi].dist;
                        let d_c2_q2 = providers[q2].0.dist(&pairs[wi].customer_pos);
                        if d + d_c2_q2 + 1e-9 < d_c_q2 + wd {
                            pairs[pi].provider = qi;
                            pairs[pi].dist = d;
                            pairs[wi].provider = q2;
                            pairs[wi].dist = d_c2_q2;
                            remove(&mut by_provider[q2], pi);
                            by_provider[qi].push(pi);
                            remove(&mut by_provider[qi], wi);
                            by_provider[q2].push(wi);
                            improved = true;
                        }
                    }
                    None => {
                        // Replace: an unmatched nearer customer takes the
                        // worst slot; the displaced one becomes unmatched.
                        assign.remove(&pairs[wi].customer);
                        assign.insert(id, wi);
                        pairs[wi].customer = id;
                        pairs[wi].customer_pos = pos;
                        pairs[wi].dist = d;
                        improved = true;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_testutil::{build_tree, gamma, optimal_cost, random_instance};

    #[test]
    fn degenerate_full_coreset_is_exact() {
        for seed in [80, 81, 82] {
            let (providers, customers) = random_instance(seed, 6, 50, 4);
            let tree = build_tree(&customers);
            let opt = optimal_cost(&providers, &customers);
            let (m, stats) = coreset(&providers, &tree, &CoresetConfig::default());
            m.validate_unit(&providers, &customers).unwrap();
            assert!(
                (m.cost() - opt).abs() < 1e-6,
                "seed {seed}: m ≥ n must be exact: {} vs {opt}",
                m.cost()
            );
            assert!(stats.iterations > 0);
        }
    }

    #[test]
    fn subsampled_coreset_is_feasible_and_reasonable() {
        let (providers, customers) = random_instance(90, 10, 400, 8);
        let tree = build_tree(&customers);
        let opt = optimal_cost(&providers, &customers);
        let cfg = CoresetConfig {
            size: 60,
            ..CoresetConfig::default()
        };
        let (m, _) = coreset(&providers, &tree, &cfg);
        m.validate_unit(&providers, &customers).unwrap();
        assert_eq!(m.size(), gamma(&providers, &customers));
        assert!(
            m.cost() < 3.0 * opt + 1e-6,
            "60-rep coreset on 400 customers is wildly off: {} vs {opt}",
            m.cost()
        );
    }

    #[test]
    fn swap_passes_only_improve_cost() {
        let (providers, customers) = random_instance(91, 8, 300, 6);
        let tree = build_tree(&customers);
        let base = CoresetConfig {
            size: 40,
            swap_passes: 0,
            ..CoresetConfig::default()
        };
        let (m0, _) = coreset(&providers, &tree, &base);
        let (m2, _) = coreset(
            &providers,
            &tree,
            &CoresetConfig {
                swap_passes: 3,
                ..base
            },
        );
        m2.validate_unit(&providers, &customers).unwrap();
        assert!(
            m2.cost() <= m0.cost() + 1e-9,
            "swaps must not raise cost: {} vs {}",
            m2.cost(),
            m0.cost()
        );
    }

    #[test]
    fn heavy_representatives_split_to_fit_capacities() {
        // 200 coincident customers, largest capacity 3: every concise slot
        // must fit a single provider, and the lift stays feasible.
        let customers: Vec<Point> = (0..200)
            .map(|i| Point::new(5.0 + (i % 3) as f64 * 1e-9, 5.0))
            .collect();
        let providers: Vec<(Point, u32)> =
            (0..40).map(|i| (Point::new(i as f64, 0.0), 3u32)).collect();
        let tree = build_tree(&customers);
        let cfg = CoresetConfig {
            size: 2,
            ..CoresetConfig::default()
        };
        let (m, _) = coreset(&providers, &tree, &cfg);
        m.validate_unit(&providers, &customers).unwrap();
        assert_eq!(m.size(), 120, "γ = Σcap = 120 units all placed");
    }

    #[test]
    fn aborted_collection_returns_empty_partial() {
        use std::time::{Duration, Instant};
        let (providers, customers) = random_instance(92, 4, 100, 3);
        let tree = build_tree(&customers);
        let ctx = QueryContext::new().with_deadline(Instant::now() - Duration::from_millis(1));
        let (m, _) = coreset_ctx(&providers, &tree, &CoresetConfig::default(), Some(&ctx));
        assert_eq!(m.size(), 0);
        assert!(ctx.check().is_err());
    }

    #[test]
    fn memory_only_instances_skip_swap_refinement() {
        let (providers, customers) = random_instance(93, 5, 80, 4);
        let items: Vec<(Point, u64)> = customers
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as u64))
            .collect();
        let (m, _) = coreset_points(&providers, &items, None, &CoresetConfig::default(), None);
        m.validate_unit(&providers, &customers).unwrap();
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]
        /// The acceptance property: the lifted (and swap-refined) coreset
        /// assignment is always *feasible* — every customer assigned at
        /// most once, unit pairs, no provider over capacity, full size γ —
        /// for every sampling seed and coreset size. Only cost may vary.
        #[test]
        fn prop_lift_is_feasible_for_all_seeds(
            seed in 0u64..2_000,
            sample_seed in 0u64..u64::MAX,
            nq in 1usize..8,
            np in 1usize..150,
            max_cap in 1u32..7,
            size in 1usize..50,
            passes in 0usize..3,
        ) {
            let (providers, customers) = random_instance(seed, nq, np, max_cap);
            let tree = build_tree(&customers);
            let cfg = CoresetConfig {
                size,
                seed: sample_seed,
                swap_passes: passes,
                ..CoresetConfig::default()
            };
            let (m, _) = coreset(&providers, &tree, &cfg);
            let valid = m.validate_unit(&providers, &customers);
            proptest::prop_assert!(valid.is_ok(), "infeasible: {:?}", valid.err());
        }
    }
}
