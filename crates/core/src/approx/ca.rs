//! CA — Customer Approximation (§4.2).
//!
//! Three phases: (1) partition `P` by descending the R-tree until every
//! entry's MBR diagonal is ≤ δ (conceptually halving oversized leaves),
//! then merge entries into hyper-entries under the same δ; (2) *concise
//! matching* — exact CCA (IDA) between `Q` and the weighted customer
//! representatives `P'`, solved in main memory; (3) refine each
//! representative's provider quotas over its actual member customers.
//! Theorem 4 bounds the extra cost by `γ·δ`.

use std::time::Instant;

use cca_geo::{Point, Rect};
use cca_rtree::{CustomerGroup, RTree};
use cca_storage::QueryContext;

use crate::approx::grouping::greedy_hilbert_groups;
use crate::approx::refine::{refine, RefineMethod, RefineProvider};
use crate::exact::{ida, IdaConfig, MemorySource};
use crate::matching::{MatchPair, Matching};
use crate::stats::AlgoStats;

/// CA tuning.
#[derive(Clone, Copy, Debug)]
pub struct CaConfig {
    /// Group-MBR diagonal budget δ (paper default for CA: 10).
    pub delta: f64,
    /// Refinement heuristic ("N" → CAN, "E" → CAE).
    pub refine: RefineMethod,
}

impl Default for CaConfig {
    fn default() -> Self {
        CaConfig {
            delta: 10.0,
            refine: RefineMethod::NnBased,
        }
    }
}

/// A merged customer group (hyper-entry) with its representative.
struct MergedGroup {
    mbr: Rect,
    members: Vec<(Point, u64)>,
}

/// Runs CA over providers and the R-tree-indexed customers.
pub fn ca(providers: &[(Point, u32)], tree: &RTree, cfg: &CaConfig) -> (Matching, AlgoStats) {
    ca_ctx(providers, tree, cfg, None)
}

/// [`ca`] under a query context: the partition descent's R-tree I/O is
/// charged to `ctx`. If the descent aborts (cancellation / deadline / I/O
/// budget) CA returns an empty partial matching immediately — the
/// representatives cannot be formed from a truncated partition — and the
/// caller reads the abort state off the context.
pub fn ca_ctx(
    providers: &[(Point, u32)],
    tree: &RTree,
    cfg: &CaConfig,
    ctx: Option<&QueryContext>,
) -> (Matching, AlgoStats) {
    let start = Instant::now();

    // Phase 1a: diagonal-bounded partition descent (§4.2).
    let base: Vec<CustomerGroup> = match tree.partition_by_diagonal_ctx(cfg.delta, ctx) {
        Ok(groups) => groups,
        Err(_) => {
            return (
                Matching::default(),
                AlgoStats {
                    cpu_time: start.elapsed(),
                    ..Default::default()
                },
            )
        }
    };

    // Phase 1b: merge entries into hyper-entries still satisfying δ.
    let merge = greedy_hilbert_groups(&base, |g| g.mbr.center(), |g| g.mbr, cfg.delta);
    let merged: Vec<MergedGroup> = merge
        .into_iter()
        .map(|idxs| {
            let mbr = idxs
                .iter()
                .fold(Rect::empty(), |acc, &i| acc.union(&base[i].mbr));
            let members = idxs
                .iter()
                .flat_map(|&i| base[i].members.iter().copied())
                .collect();
            MergedGroup { mbr, members }
        })
        .collect();

    // Representatives: geometric centroid of the hyper-entry, weight = the
    // number of points beneath it (§4.2) — giving Theorem 4's δ/2 bound.
    let reps: Vec<(Point, u32)> = merged
        .iter()
        .map(|g| {
            (
                g.mbr.center(),
                u32::try_from(g.members.len()).expect("group size fits u32"),
            )
        })
        .collect();

    // Phase 2: concise matching in main memory between Q and P' (weighted).
    // The source carries the query context even though this phase does no
    // I/O: the IDA driver and engine poll it, so a deadline expiring during
    // the CPU-bound concise matching aborts here (with the partial concise
    // matching refined below) instead of overshooting until the run ends.
    let q_positions: Vec<Point> = providers.iter().map(|&(p, _)| p).collect();
    let mut source = MemorySource::new(q_positions, reps).with_context(ctx);
    let (concise, concise_stats) = ida(providers, &mut source, &IdaConfig::default());

    // Phase 3: per-representative refinement. The concise matching fixes
    // how many instances of rep g go to each provider; those quotas are now
    // filled with g's actual member customers.
    let mut quotas: Vec<Vec<RefineProvider>> = vec![Vec::new(); merged.len()];
    for pair in &concise.pairs {
        let rep = usize::try_from(pair.customer).expect("rep id fits usize");
        quotas[rep].push(RefineProvider {
            original: pair.provider,
            pos: providers[pair.provider].0,
            quota: pair.units,
        });
    }
    let mut pairs = Vec::new();
    for (group, refine_providers) in merged.iter().zip(&quotas) {
        if refine_providers.is_empty() {
            continue;
        }
        for (original, customer, dist, customer_pos) in
            refine(cfg.refine, refine_providers, &group.members)
        {
            pairs.push(MatchPair {
                provider: original,
                customer,
                units: 1,
                dist,
                customer_pos,
            });
        }
    }

    let mut stats = concise_stats;
    stats.cpu_time = start.elapsed();
    (Matching { pairs }, stats)
}
