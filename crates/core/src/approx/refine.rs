//! Refinement heuristics (§4.3).
//!
//! Both SA and CA end with many small subproblems: assign customers `P″` to
//! providers `Q″` where each provider's quota is fixed by the concise
//! matching. Running an exact solver per subproblem would be expensive; the
//! paper proposes two heuristics, both implemented here.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cca_geo::{OrdF64, Point};

/// Which §4.3 heuristic to use. Chart labels in the paper append "N" or "E"
/// (e.g. SAN / SAE / CAN / CAE).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RefineMethod {
    /// Round-robin incremental NN per provider.
    #[default]
    NnBased,
    /// Globally closest (customer, available provider) pair first.
    ExclusiveNn,
}

impl RefineMethod {
    /// One-letter suffix used by the paper's chart labels.
    pub fn suffix(&self) -> &'static str {
        match self {
            RefineMethod::NnBased => "N",
            RefineMethod::ExclusiveNn => "E",
        }
    }
}

/// A provider in a refinement subproblem.
#[derive(Clone, Copy, Debug)]
pub struct RefineProvider {
    /// Index into the *original* provider list (carried through to pairs).
    pub original: usize,
    pub pos: Point,
    /// Units this provider must receive, fixed by concise matching.
    pub quota: u32,
}

/// Output pair: original provider index, customer id, distance, customer
/// position.
pub type RefinePair = (usize, u64, f64, Point);

/// NN-based refinement: "computes the (next) NN of each q ∈ Q″ in a
/// round-robin fashion in set P″; when discovering the NN p of q, include
/// (q, p) in M and remove p from P″" (§4.3).
pub fn nn_based(providers: &[RefineProvider], customers: &[(Point, u64)]) -> Vec<RefinePair> {
    // Per-provider distance-sorted candidate lists with lazy deletion.
    let mut order: Vec<Vec<u32>> = providers
        .iter()
        .map(|q| {
            let mut ids: Vec<u32> = (0..customers.len() as u32).collect();
            ids.sort_by(|&a, &b| {
                q.pos
                    .dist(&customers[a as usize].0)
                    .total_cmp(&q.pos.dist(&customers[b as usize].0))
            });
            ids.reverse(); // pop() from the back yields nearest-first
            ids
        })
        .collect();
    let mut taken = vec![false; customers.len()];
    let mut remaining: Vec<u32> = providers.iter().map(|q| q.quota).collect();
    let mut out = Vec::new();
    let mut active: Vec<usize> = (0..providers.len()).filter(|&i| remaining[i] > 0).collect();

    while !active.is_empty() {
        let mut next_active = Vec::with_capacity(active.len());
        for &qi in &active {
            // Next not-yet-taken NN of qi.
            let nn = loop {
                match order[qi].pop() {
                    Some(c) if taken[c as usize] => continue,
                    other => break other,
                }
            };
            let Some(c) = nn else {
                continue; // P″ exhausted for this provider
            };
            taken[c as usize] = true;
            remaining[qi] -= 1;
            let (pos, id) = customers[c as usize];
            out.push((
                providers[qi].original,
                id,
                providers[qi].pos.dist(&pos),
                pos,
            ));
            if remaining[qi] > 0 {
                next_active.push(qi);
            }
        }
        if next_active.len() == active.len() && out.is_empty() {
            break; // defensive: no progress possible
        }
        active = next_active;
    }
    out
}

/// Exclusive NN refinement: repeatedly "identify the p ∈ P″ with the minimum
/// distance from any q ∈ Q″ that has not reached its number of instances"
/// and assign that globally closest pair (§4.3).
pub fn exclusive_nn(providers: &[RefineProvider], customers: &[(Point, u64)]) -> Vec<RefinePair> {
    let best_available = |c: usize, remaining: &[u32]| -> Option<(f64, usize)> {
        let pos = customers[c].0;
        let mut best: Option<(f64, usize)> = None;
        for (qi, q) in providers.iter().enumerate() {
            if remaining[qi] == 0 {
                continue;
            }
            let d = q.pos.dist(&pos);
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, qi));
            }
        }
        best
    };

    let mut remaining: Vec<u32> = providers.iter().map(|q| q.quota).collect();
    let mut taken = vec![false; customers.len()];
    let mut out = Vec::new();
    // Heap of each customer's current best available provider.
    let mut heap: BinaryHeap<Reverse<(OrdF64, u32, u32)>> = BinaryHeap::new();
    for c in 0..customers.len() {
        if let Some((d, qi)) = best_available(c, &remaining) {
            heap.push(Reverse((OrdF64::new(d), c as u32, qi as u32)));
        }
    }
    while let Some(Reverse((d, c, qi))) = heap.pop() {
        let (c, qi) = (c as usize, qi as usize);
        if taken[c] {
            continue;
        }
        if remaining[qi] == 0 {
            // Stale: re-aim this customer at its best remaining provider.
            if let Some((nd, nqi)) = best_available(c, &remaining) {
                heap.push(Reverse((OrdF64::new(nd), c as u32, nqi as u32)));
            }
            continue;
        }
        taken[c] = true;
        remaining[qi] -= 1;
        out.push((
            providers[qi].original,
            customers[c].1,
            d.get(),
            customers[c].0,
        ));
    }
    out
}

/// Dispatches on the method.
pub fn refine(
    method: RefineMethod,
    providers: &[RefineProvider],
    customers: &[(Point, u64)],
) -> Vec<RefinePair> {
    match method {
        RefineMethod::NnBased => nn_based(providers, customers),
        RefineMethod::ExclusiveNn => exclusive_nn(providers, customers),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn q(original: usize, x: f64, y: f64, quota: u32) -> RefineProvider {
        RefineProvider {
            original,
            pos: Point::new(x, y),
            quota,
        }
    }

    fn check_valid(providers: &[RefineProvider], customers: &[(Point, u64)], pairs: &[RefinePair]) {
        // Quotas respected; customers unique; expected total size.
        let mut per_q = std::collections::HashMap::new();
        let mut seen = std::collections::HashSet::new();
        for &(orig, id, d, _pos) in pairs {
            *per_q.entry(orig).or_insert(0u32) += 1;
            assert!(seen.insert(id), "customer {id} assigned twice");
            assert!(d >= 0.0);
        }
        for p in providers {
            assert!(per_q.get(&p.original).copied().unwrap_or(0) <= p.quota);
        }
        let total_quota: u32 = providers.iter().map(|p| p.quota).sum();
        let expect = (total_quota as usize).min(customers.len());
        assert_eq!(pairs.len(), expect, "refinement must exhaust quotas or P″");
    }

    #[test]
    fn both_methods_fill_quotas_exactly() {
        let mut rng = StdRng::seed_from_u64(71);
        for trial in 0..30 {
            let nq = rng.random_range(1..5);
            let providers: Vec<RefineProvider> = (0..nq)
                .map(|i| {
                    q(
                        i,
                        rng.random_range(0.0..100.0),
                        rng.random_range(0.0..100.0),
                        rng.random_range(1..5),
                    )
                })
                .collect();
            let total: u32 = providers.iter().map(|p| p.quota).sum();
            // Sometimes more customers than quota, sometimes fewer.
            let nc = rng.random_range(1..=(total as usize + 4));
            let customers: Vec<(Point, u64)> = (0..nc)
                .map(|i| {
                    (
                        Point::new(rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)),
                        i as u64,
                    )
                })
                .collect();
            for method in [RefineMethod::NnBased, RefineMethod::ExclusiveNn] {
                let pairs = refine(method, &providers, &customers);
                check_valid(&providers, &customers, &pairs);
                let _ = trial;
            }
        }
    }

    #[test]
    fn exclusive_nn_picks_globally_closest_first() {
        // Two providers with quota 1 each; customer 0 is very close to q0,
        // customer 1 equidistant-ish. Exclusive must give (q0, c0).
        let providers = [q(0, 0.0, 0.0, 1), q(1, 10.0, 0.0, 1)];
        let customers = [(Point::new(0.5, 0.0), 0u64), (Point::new(5.0, 0.0), 1)];
        let pairs = exclusive_nn(&providers, &customers);
        assert_eq!(pairs.len(), 2);
        assert_eq!((pairs[0].0, pairs[0].1, pairs[0].2), (0, 0, 0.5));
        // Customer 1 goes to q1 (dist 5) since q0 is exhausted.
        assert_eq!(pairs[1].0, 1);
        assert_eq!(pairs[1].1, 1);
    }

    #[test]
    fn nn_based_round_robin_alternates_providers() {
        // q0 and q1 both have quota 2 and four customers on a line; the
        // round-robin gives each provider its nearest in turn.
        let providers = [q(0, 0.0, 0.0, 2), q(1, 30.0, 0.0, 2)];
        let customers = [
            (Point::new(1.0, 0.0), 0u64),
            (Point::new(2.0, 0.0), 1),
            (Point::new(29.0, 0.0), 2),
            (Point::new(28.0, 0.0), 3),
        ];
        let pairs = nn_based(&providers, &customers);
        check_valid(&providers, &customers, &pairs);
        // q0 must get {0, 1}, q1 must get {2, 3}.
        let q0: Vec<u64> = pairs.iter().filter(|p| p.0 == 0).map(|p| p.1).collect();
        assert_eq!(q0, vec![0, 1]);
    }

    #[test]
    fn surplus_customers_left_unassigned() {
        let providers = [q(0, 0.0, 0.0, 1)];
        let customers = [
            (Point::new(5.0, 0.0), 10u64),
            (Point::new(1.0, 0.0), 11),
            (Point::new(9.0, 0.0), 12),
        ];
        for method in [RefineMethod::NnBased, RefineMethod::ExclusiveNn] {
            let pairs = refine(method, &providers, &customers);
            assert_eq!(pairs.len(), 1);
            assert_eq!(pairs[0].1, 11, "nearest customer wins the only slot");
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(nn_based(&[], &[]).is_empty());
        assert!(exclusive_nn(&[], &[(Point::new(0.0, 0.0), 0)]).is_empty());
        assert!(nn_based(&[q(0, 0.0, 0.0, 3)], &[]).is_empty());
    }

    #[test]
    fn method_suffixes_match_paper_labels() {
        assert_eq!(RefineMethod::NnBased.suffix(), "N");
        assert_eq!(RefineMethod::ExclusiveNn.suffix(), "E");
    }
}
