//! A flat uniform hash grid over a static point set.
//!
//! The approximate tier needs millions of cheap nearest-point queries
//! against small-to-medium point sets (providers, coreset representatives)
//! where building per-query R-tree cursors would dominate the runtime.
//! This grid answers `nearest` / `k_nearest` by scanning Chebyshev rings of
//! cells outward from the query until the ring's minimum possible distance
//! exceeds the best candidate found — exact, allocation-free per query, and
//! `O(1)` amortised on data whose density matches the grid resolution.
//!
//! Purely in-memory and CPU-bound: grid queries never touch the page store,
//! so they charge nothing to a [`cca_storage::QueryContext`]'s I/O budget —
//! exactly right for the sampling/annealing phases, whose attributed I/O
//! must reflect only real page faults.

use cca_geo::Point;

/// A uniform grid over a fixed point set, sized at roughly one point per
/// cell on uniform data.
#[derive(Debug)]
pub struct PointGrid {
    pts: Vec<Point>,
    /// Bucket start offsets (CSR layout): bucket `b` holds
    /// `order[starts[b]..starts[b + 1]]`.
    starts: Vec<u32>,
    order: Vec<u32>,
    ox: f64,
    oy: f64,
    cell: f64,
    cols: usize,
    rows: usize,
}

impl PointGrid {
    /// Builds a grid over `pts`. Degenerate inputs (empty set, coincident
    /// points) collapse to a single cell.
    pub fn new(pts: Vec<Point>) -> Self {
        let n = pts.len();
        let (mut lo_x, mut lo_y) = (f64::INFINITY, f64::INFINITY);
        let (mut hi_x, mut hi_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in &pts {
            lo_x = lo_x.min(p.x);
            lo_y = lo_y.min(p.y);
            hi_x = hi_x.max(p.x);
            hi_y = hi_y.max(p.y);
        }
        if n == 0 {
            return PointGrid {
                pts,
                starts: vec![0, 0],
                order: Vec::new(),
                ox: 0.0,
                oy: 0.0,
                cell: 1.0,
                cols: 1,
                rows: 1,
            };
        }
        let span = (hi_x - lo_x).max(hi_y - lo_y);
        let side = (n as f64).sqrt().ceil().max(1.0);
        let cell = if span > 0.0 { span / side } else { 1.0 };
        let cols = (((hi_x - lo_x) / cell).floor() as usize + 1).max(1);
        let rows = (((hi_y - lo_y) / cell).floor() as usize + 1).max(1);
        let bucket = |p: &Point| -> usize {
            let gx = (((p.x - lo_x) / cell) as usize).min(cols - 1);
            let gy = (((p.y - lo_y) / cell) as usize).min(rows - 1);
            gy * cols + gx
        };
        // Counting sort into CSR buckets: one pass to size, one to place.
        let mut starts = vec![0u32; cols * rows + 1];
        for p in &pts {
            starts[bucket(p) + 1] += 1;
        }
        for b in 0..cols * rows {
            starts[b + 1] += starts[b];
        }
        let mut cursor = starts.clone();
        let mut order = vec![0u32; n];
        for (i, p) in pts.iter().enumerate() {
            let b = bucket(p);
            order[cursor[b] as usize] = i as u32;
            cursor[b] += 1;
        }
        PointGrid {
            pts,
            starts,
            order,
            ox: lo_x,
            oy: lo_y,
            cell,
            cols,
            rows,
        }
    }

    fn clamp_cell(&self, q: Point) -> (usize, usize) {
        let gx = ((q.x - self.ox) / self.cell).floor().max(0.0) as usize;
        let gy = ((q.y - self.oy) / self.cell).floor().max(0.0) as usize;
        (gx.min(self.cols - 1), gy.min(self.rows - 1))
    }

    /// Distance from `q` to its clamped grid cell — the slack the ring
    /// lower bound must absorb for queries outside the indexed bounding
    /// box (triangle inequality).
    fn outside_slack(&self, q: Point, gx: usize, gy: usize) -> f64 {
        let cx = self.ox + (gx as f64 + 0.5) * self.cell;
        let cy = self.oy + (gy as f64 + 0.5) * self.cell;
        let inside = q.x >= self.ox
            && q.y >= self.oy
            && q.x <= self.ox + self.cols as f64 * self.cell
            && q.y <= self.oy + self.rows as f64 * self.cell;
        if inside {
            0.0
        } else {
            q.dist(&Point::new(cx, cy))
        }
    }

    fn for_ring(&self, gx: usize, gy: usize, r: usize, mut f: impl FnMut(u32)) {
        // Border membership is decided on the *unclamped* ring so each cell
        // belongs to exactly one ring (its Chebyshev distance); clamping the
        // border first would re-visit edge cells on every larger ring.
        let (gx, gy, r) = (gx as isize, gy as isize, r as isize);
        let (x0, x1) = (gx - r, gx + r);
        let (y0, y1) = (gy - r, gy + r);
        for y in y0.max(0)..=y1.min(self.rows as isize - 1) {
            for x in x0.max(0)..=x1.min(self.cols as isize - 1) {
                // Only the ring's border cells; the interior was visited by
                // smaller rings.
                if r > 0 && x != x0 && x != x1 && y != y0 && y != y1 {
                    continue;
                }
                let b = y as usize * self.cols + x as usize;
                for &i in &self.order[self.starts[b] as usize..self.starts[b + 1] as usize] {
                    f(i);
                }
            }
        }
    }

    /// Nearest indexed point to `q` among those satisfying `keep`, as
    /// `(index, distance)`. `None` when no point qualifies.
    pub fn nearest_filtered(
        &self,
        q: Point,
        mut keep: impl FnMut(usize) -> bool,
    ) -> Option<(usize, f64)> {
        if self.pts.is_empty() {
            return None;
        }
        let (gx, gy) = self.clamp_cell(q);
        let slack = self.outside_slack(q, gx, gy);
        let max_ring = self.cols.max(self.rows);
        let mut best: Option<(usize, f64)> = None;
        for r in 0..=max_ring {
            if let Some((_, bd)) = best {
                // Any point in ring r is at least (r-1)·cell − slack away.
                if (r as f64 - 1.0) * self.cell - slack > bd {
                    break;
                }
            }
            self.for_ring(gx, gy, r, |i| {
                if keep(i as usize) {
                    let d = q.dist(&self.pts[i as usize]);
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((i as usize, d));
                    }
                }
            });
        }
        best
    }

    /// Nearest indexed point to `q` (no filter).
    pub fn nearest(&self, q: Point) -> Option<(usize, f64)> {
        self.nearest_filtered(q, |_| true)
    }

    /// The `k` nearest indexed points to `q`, sorted by ascending distance
    /// as `(index, distance)` pairs. Returns fewer than `k` only when the
    /// grid holds fewer points.
    pub fn k_nearest(&self, q: Point, k: usize) -> Vec<(usize, f64)> {
        if self.pts.is_empty() || k == 0 {
            return Vec::new();
        }
        let k = k.min(self.pts.len());
        let (gx, gy) = self.clamp_cell(q);
        let slack = self.outside_slack(q, gx, gy);
        let max_ring = self.cols.max(self.rows);
        // Tiny k: a sorted candidate vector beats a heap.
        let mut best: Vec<(usize, f64)> = Vec::with_capacity(k + 1);
        for r in 0..=max_ring {
            if best.len() == k {
                let worst = best[k - 1].1;
                if (r as f64 - 1.0) * self.cell - slack > worst {
                    break;
                }
            }
            self.for_ring(gx, gy, r, |i| {
                let d = q.dist(&self.pts[i as usize]);
                if best.len() < k || d < best[best.len() - 1].1 {
                    let at = best.partition_point(|&(_, bd)| bd <= d);
                    best.insert(at, (i as usize, d));
                    best.truncate(k);
                }
            });
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_nearest(pts: &[Point], q: Point) -> Option<(usize, f64)> {
        pts.iter()
            .enumerate()
            .map(|(i, p)| (i, q.dist(p)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    #[test]
    fn empty_and_singleton() {
        let g = PointGrid::new(Vec::new());
        assert!(g.nearest(Point::origin()).is_none());
        assert!(g.k_nearest(Point::origin(), 3).is_empty());
        let g = PointGrid::new(vec![Point::new(2.0, 3.0)]);
        let (i, d) = g.nearest(Point::origin()).unwrap();
        assert_eq!(i, 0);
        assert!((d - 13.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn coincident_points_collapse_to_one_cell() {
        let pts = vec![Point::new(5.0, 5.0); 17];
        let g = PointGrid::new(pts);
        assert_eq!(g.k_nearest(Point::new(4.0, 5.0), 17).len(), 17);
    }

    #[test]
    fn nearest_matches_brute_force_including_outside_queries() {
        let mut rng = StdRng::seed_from_u64(11);
        let pts: Vec<Point> = (0..500)
            .map(|_| Point::new(rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)))
            .collect();
        let g = PointGrid::new(pts.clone());
        for _ in 0..300 {
            // Queries inside, near and far outside the indexed bbox.
            let q = Point::new(
                rng.random_range(-150.0..250.0),
                rng.random_range(-150.0..250.0),
            );
            let want = brute_nearest(&pts, q).unwrap();
            let got = g.nearest(q).unwrap();
            assert!(
                (got.1 - want.1).abs() < 1e-9,
                "q={q:?}: got {got:?} want {want:?}"
            );
        }
    }

    #[test]
    fn k_nearest_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(12);
        let pts: Vec<Point> = (0..300)
            .map(|_| Point::new(rng.random_range(0.0..50.0), rng.random_range(0.0..50.0)))
            .collect();
        let g = PointGrid::new(pts.clone());
        for _ in 0..100 {
            let q = Point::new(rng.random_range(-10.0..60.0), rng.random_range(-10.0..60.0));
            let k = rng.random_range(1..12);
            let got = g.k_nearest(q, k);
            let mut want: Vec<(usize, f64)> = pts
                .iter()
                .enumerate()
                .map(|(i, p)| (i, q.dist(p)))
                .collect();
            want.sort_by(|a, b| a.1.total_cmp(&b.1));
            assert_eq!(got.len(), k);
            for (g, w) in got.iter().zip(&want) {
                assert!((g.1 - w.1).abs() < 1e-9, "k={k} got {got:?}");
            }
            assert!(got.windows(2).all(|w| w[0].1 <= w[1].1), "sorted ascending");
        }
    }

    #[test]
    fn nearest_filtered_skips_excluded_indices() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ];
        let g = PointGrid::new(pts);
        let (i, _) = g.nearest_filtered(Point::origin(), |i| i != 0).unwrap();
        assert_eq!(i, 1);
        assert!(g.nearest_filtered(Point::origin(), |_| false).is_none());
    }
}
