//! Deterministic-annealing capacitated allocation — an independent
//! approximate baseline for the coreset tier.
//!
//! Instead of sampling, DA keeps *every* customer and relaxes the
//! assignment itself: each customer holds a Gibbs distribution over its K
//! nearest providers, `p(q|c) ∝ exp(−(d(c,q) + λ_q)/T)`, where the dual
//! prices `λ_q ≥ 0` are raised on overloaded providers (a Sinkhorn-style
//! multiplicative update on the loads). The temperature `T` follows a
//! geometric cooling schedule; as `T → 0` the soft assignment hardens
//! toward a capacity-priced nearest-provider rule. A final
//! capacity-respecting greedy hardening turns the soft state into a
//! feasible unit matching of exactly `γ` pairs (a grid fallback reroutes
//! customers whose candidate providers filled up), so feasibility is exact
//! and only cost is approximate — the same contract as SA/CA/coreset.
//!
//! Entirely CPU-bound after the customer sweep: annealing touches no
//! pages, so attributed I/O is exactly the collection sweep's faults.

use std::time::Instant;

use cca_geo::Point;
use cca_rtree::RTree;
use cca_storage::QueryContext;

use crate::approx::pgrid::PointGrid;
use crate::matching::{MatchPair, Matching};
use crate::stats::AlgoStats;

/// Deterministic-annealing tuning.
#[derive(Clone, Copy, Debug)]
pub struct DaConfig {
    /// Candidate providers per customer (K nearest).
    pub candidates: usize,
    /// Temperature steps in the cooling schedule.
    pub temps: usize,
    /// Dual (λ) sweeps per temperature.
    pub sweeps: usize,
    /// Geometric cooling factor in `(0, 1)`.
    pub cooling: f64,
}

impl Default for DaConfig {
    fn default() -> Self {
        DaConfig {
            candidates: 6,
            temps: 8,
            sweeps: 2,
            cooling: 0.6,
        }
    }
}

/// Runs DA over R-tree-indexed customers.
pub fn da(providers: &[(Point, u32)], tree: &RTree, cfg: &DaConfig) -> (Matching, AlgoStats) {
    da_ctx(providers, tree, cfg, None)
}

/// [`da`] under a query context: the collection sweep charges its faults to
/// `ctx`; the annealing loop polls it between temperature steps, and an
/// abort skips straight to hardening so the caller still receives a
/// feasible (just less annealed) partial matching.
pub fn da_ctx(
    providers: &[(Point, u32)],
    tree: &RTree,
    cfg: &DaConfig,
    ctx: Option<&QueryContext>,
) -> (Matching, AlgoStats) {
    let start = Instant::now();
    let mut items = Vec::new();
    if tree
        .for_each_point_ctx(ctx, |pos, id| items.push((pos, id)))
        .is_err()
    {
        return (
            Matching::default(),
            AlgoStats {
                cpu_time: start.elapsed(),
                ..Default::default()
            },
        );
    }
    da_points(providers, &items, cfg, ctx)
}

/// The DA pipeline over an explicit `(position, id)` customer slice.
pub fn da_points(
    providers: &[(Point, u32)],
    items: &[(Point, u64)],
    cfg: &DaConfig,
    ctx: Option<&QueryContext>,
) -> (Matching, AlgoStats) {
    let start = Instant::now();
    let n = items.len();
    let total_cap: u64 = providers.iter().map(|&(_, c)| u64::from(c)).sum();
    let gamma = total_cap.min(n as u64);
    if gamma == 0 {
        return (
            Matching::default(),
            AlgoStats {
                cpu_time: start.elapsed(),
                ..Default::default()
            },
        );
    }

    // Candidate lists: K nearest providers per customer, flat layout.
    let qgrid = PointGrid::new(providers.iter().map(|&(p, _)| p).collect());
    // The per-customer softmax uses a fixed stack buffer; 32 candidates is
    // already far past the point of diminishing returns.
    let k = cfg.candidates.clamp(1, providers.len()).min(32);
    let mut cand = Vec::with_capacity(n * k);
    let mut cand_starts = Vec::with_capacity(n + 1);
    cand_starts.push(0u32);
    let mut dist_sum = 0.0f64;
    let mut dist_cnt = 0u64;
    for &(pos, _) in items {
        for (qi, d) in qgrid.k_nearest(pos, k) {
            cand.push((qi as u32, d));
            dist_sum += d;
            dist_cnt += 1;
        }
        cand_starts.push(cand.len() as u32);
    }

    // In the scarce regime (Σcap < |P|) total soft demand n would exceed
    // capacity at any price and the duals would diverge. A *reject option*
    // fixes that: each customer may also "choose" to stay unmatched at
    // constant effective cost ρ — the γ-th smallest nearest-provider
    // distance, i.e. the marginal distance a nearest-greedy matching would
    // still accept. Far customers then shed their demand onto the reject
    // option and the prices λ equilibrate around real capacity.
    let scarce = total_cap < n as u64;
    let rho = if scarce {
        let mut best: Vec<f64> = (0..n).map(|c| cand[cand_starts[c] as usize].1).collect();
        best.sort_by(f64::total_cmp);
        best[(gamma as usize).min(n) - 1]
    } else {
        f64::INFINITY
    };

    // Annealing: cool T geometrically; at each temperature run a few
    // Sinkhorn-style dual sweeps that raise λ on overloaded providers and
    // decay it on idle ones. Aborts break to hardening with the λ reached.
    let mut lambda = vec![0.0f64; providers.len()];
    let t0 = 2.0 * dist_sum / dist_cnt.max(1) as f64;
    let mut steps_run = 0u64;
    if t0 > 0.0 {
        let mut t = t0;
        'anneal: for _ in 0..cfg.temps {
            for _ in 0..cfg.sweeps.max(1) {
                if ctx.is_some_and(|c| c.check().is_err()) {
                    break 'anneal;
                }
                let mut load = vec![0.0f64; providers.len()];
                for c in 0..n {
                    let span = &cand[cand_starts[c] as usize..cand_starts[c + 1] as usize];
                    let min_eff = span
                        .iter()
                        .map(|&(qi, d)| d + lambda[qi as usize])
                        .fold(rho, f64::min);
                    let mut norm = if scarce {
                        (-(rho - min_eff) / t).exp()
                    } else {
                        0.0
                    };
                    let mut w = [0.0f64; 32];
                    for (s, &(qi, d)) in span.iter().enumerate() {
                        let e = (-(d + lambda[qi as usize] - min_eff) / t).exp();
                        w[s] = e;
                        norm += e;
                    }
                    for (s, &(qi, _)) in span.iter().enumerate() {
                        load[qi as usize] += w[s] / norm;
                    }
                }
                for (qi, l) in load.iter().enumerate() {
                    let cap = f64::from(providers[qi].1).max(1e-9);
                    if *l > 1e-12 {
                        lambda[qi] = (lambda[qi] + t * (l / cap).ln()).max(0.0);
                    } else {
                        lambda[qi] *= 0.5;
                    }
                }
                steps_run += 1;
            }
            t *= cfg.cooling.clamp(0.05, 0.99);
        }
    }

    // Hardening: greedy capacity-respecting rounding of the priced soft
    // state. In the scarce regime (Σcap < n) customers with the cheapest
    // priced cost go first — the exact solver would keep them too; with
    // surplus capacity the order maximises regret (customers with the most
    // to lose from missing their best candidate commit first). A grid
    // fallback guarantees exactly γ units even when whole candidate lists
    // fill up.
    let mut order: Vec<(f64, u32)> = (0..n)
        .map(|c| {
            let span = &cand[cand_starts[c] as usize..cand_starts[c + 1] as usize];
            let mut best = f64::INFINITY;
            let mut second = f64::INFINITY;
            for &(qi, d) in span {
                let eff = d + lambda[qi as usize];
                if eff < best {
                    second = best;
                    best = eff;
                } else if eff < second {
                    second = eff;
                }
            }
            let key = if scarce {
                best
            } else {
                -(second - best) // descending regret
            };
            (key, c as u32)
        })
        .collect();
    order.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut residual: Vec<u32> = providers.iter().map(|&(_, c)| c).collect();
    let mut pairs = Vec::with_capacity(gamma as usize);
    for &(_, c) in &order {
        if pairs.len() as u64 == gamma {
            break;
        }
        let c = c as usize;
        let (pos, id) = items[c];
        let span = &cand[cand_starts[c] as usize..cand_starts[c + 1] as usize];
        let mut chosen: Option<(usize, f64)> = None;
        let mut best_eff = f64::INFINITY;
        for &(qi, d) in span {
            let eff = d + lambda[qi as usize];
            if residual[qi as usize] > 0 && eff < best_eff {
                best_eff = eff;
                chosen = Some((qi as usize, d));
            }
        }
        let chosen = chosen.or_else(|| {
            // All candidates saturated: nearest provider with residual
            // capacity anywhere (one exists while pairs.len() < Σcap).
            qgrid.nearest_filtered(pos, |qi| residual[qi] > 0)
        });
        if let Some((qi, d)) = chosen {
            residual[qi] -= 1;
            pairs.push(MatchPair {
                provider: qi,
                customer: id,
                units: 1,
                dist: d,
                customer_pos: pos,
            });
        }
    }

    let stats = AlgoStats {
        iterations: steps_run.max(1),
        esub_edges: cand.len() as u64,
        cpu_time: start.elapsed(),
        ..Default::default()
    };
    (Matching { pairs }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_testutil::{build_tree, gamma, optimal_cost, random_instance};

    #[test]
    fn da_is_feasible_and_full_size() {
        for seed in [70, 71, 72, 73] {
            let (providers, customers) = random_instance(seed, 10, 200, 6);
            let tree = build_tree(&customers);
            let (m, stats) = da(&providers, &tree, &DaConfig::default());
            m.validate_unit(&providers, &customers).unwrap();
            assert_eq!(m.size(), gamma(&providers, &customers));
            assert!(stats.iterations > 0);
        }
    }

    #[test]
    fn da_quality_is_in_the_approximate_ballpark() {
        // No theorem backs DA; pin a generous empirical envelope so gross
        // regressions (e.g. a broken dual update) fail loudly.
        let mut ratio_sum = 0.0;
        let seeds = [75, 76, 77, 78, 79];
        for &seed in &seeds {
            let (providers, customers) = random_instance(seed, 8, 250, 6);
            let tree = build_tree(&customers);
            let opt = optimal_cost(&providers, &customers);
            let (m, _) = da(&providers, &tree, &DaConfig::default());
            m.validate_unit(&providers, &customers).unwrap();
            ratio_sum += m.cost() / opt;
        }
        let mean = ratio_sum / seeds.len() as f64;
        assert!(mean < 2.0, "mean DA cost ratio degraded to {mean}");
    }

    #[test]
    fn surplus_capacity_assigns_every_customer() {
        let (providers, customers) = random_instance(85, 12, 60, 10);
        let tree = build_tree(&customers);
        let (m, _) = da(&providers, &tree, &DaConfig::default());
        m.validate_unit(&providers, &customers).unwrap();
    }

    #[test]
    fn single_provider_degenerates_to_nearest_fill() {
        let providers = vec![(cca_geo::Point::new(0.0, 0.0), 2u32)];
        let customers = vec![
            cca_geo::Point::new(1.0, 0.0),
            cca_geo::Point::new(5.0, 0.0),
            cca_geo::Point::new(2.0, 0.0),
        ];
        let tree = build_tree(&customers);
        let (m, _) = da(&providers, &tree, &DaConfig::default());
        m.validate_unit(&providers, &customers).unwrap();
        assert_eq!(m.size(), 2);
        assert!((m.cost() - 3.0).abs() < 1e-9, "nearest two chosen");
    }

    #[test]
    fn aborted_annealing_still_hardens_to_a_feasible_matching() {
        use std::time::{Duration, Instant};
        let (providers, customers) = random_instance(86, 6, 150, 4);
        let tree = build_tree(&customers);
        // Deadline expires after collection begins: the traversal may abort
        // (empty partial) or the annealing poll catches it and hardening
        // still runs. Either way the result must be feasible.
        let ctx = QueryContext::new().with_deadline(Instant::now() + Duration::from_micros(50));
        let (m, _) = da_ctx(&providers, &tree, &DaConfig::default(), Some(&ctx));
        if m.size() > 0 {
            m.validate_unit(&providers, &customers).unwrap();
        }
    }
}
