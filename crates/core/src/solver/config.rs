//! [`SolverConfig`] — a solver selection as plain data (name + parameters).

use crate::approx::RefineMethod;
use crate::exact::IdaKeyMode;

/// Data-driven solver selection: a registry name plus every tuning knob any
/// of the seven algorithms understands. Irrelevant knobs are simply ignored
/// by the chosen solver, so configs can be stored, compared and shipped
/// around uniformly (benches, examples and the batch runner all construct
/// solvers from these).
///
/// ```
/// # use cca_core::solver::SolverConfig;
/// let cfg = SolverConfig::new("ca").delta(10.0);
/// assert_eq!(cfg.name(), "ca");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SolverConfig {
    name: String,
    /// RIA range increment θ (§3.1; the paper tunes 0.8 for its default
    /// workload).
    pub theta: f64,
    /// SA/CA group-diagonal budget δ (§4; paper defaults 40 for SA, 10 for
    /// CA).
    pub delta: f64,
    /// SA/CA refinement heuristic (§4.3).
    pub refine: RefineMethod,
    /// Grouped-ANN group size (§3.4.2) for `ida-grouped`.
    pub group_size: usize,
    /// IDA heap-key mode (Paper vs Safe).
    pub key_mode: IdaKeyMode,
    /// Ablation: disable IDA's Theorem-2 fast phase.
    pub disable_fast_phase: bool,
    /// Ablation: disable PUA reuse (§3.4.1) in NIA/IDA.
    pub disable_pua: bool,
    /// Coreset target size `m` for `coreset` (0 = auto `64·√n`).
    pub coreset_size: usize,
    /// Sampling seed for `coreset` (cost may vary with it; feasibility
    /// never does).
    pub sample_seed: u64,
    /// Bounded local-refinement passes for `coreset` after the lift.
    pub swap_passes: usize,
    /// Temperature steps in `da`'s cooling schedule.
    pub anneal_steps: usize,
}

impl SolverConfig {
    /// A config for the solver registered under `name`, with the paper's
    /// default parameters (δ picks the SA or CA default by name).
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        let delta = if name == "ca" { 10.0 } else { 40.0 };
        SolverConfig {
            name,
            theta: 0.8,
            delta,
            refine: RefineMethod::default(),
            group_size: 8,
            key_mode: IdaKeyMode::default(),
            disable_fast_phase: false,
            disable_pua: false,
            coreset_size: 0,
            sample_seed: 0xc0_5e7,
            swap_passes: 2,
            anneal_steps: 8,
        }
    }

    /// The registry name this config selects.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets RIA's range increment θ.
    pub fn theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Sets SA/CA's group-diagonal budget δ.
    pub fn delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Sets the SA/CA refinement heuristic.
    pub fn refine(mut self, refine: RefineMethod) -> Self {
        self.refine = refine;
        self
    }

    /// Sets the grouped-ANN group size.
    pub fn group_size(mut self, group_size: usize) -> Self {
        assert!(group_size >= 1, "group size must be positive");
        self.group_size = group_size;
        self
    }

    /// Sets IDA's heap-key mode.
    pub fn key_mode(mut self, key_mode: IdaKeyMode) -> Self {
        self.key_mode = key_mode;
        self
    }

    /// Ablation toggle: disable IDA's fast phase.
    pub fn disable_fast_phase(mut self, disable: bool) -> Self {
        self.disable_fast_phase = disable;
        self
    }

    /// Ablation toggle: disable PUA reuse.
    pub fn disable_pua(mut self, disable: bool) -> Self {
        self.disable_pua = disable;
        self
    }

    /// Sets the coreset target size (0 = auto).
    pub fn coreset_size(mut self, size: usize) -> Self {
        self.coreset_size = size;
        self
    }

    /// Sets the coreset sampling seed.
    pub fn sample_seed(mut self, seed: u64) -> Self {
        self.sample_seed = seed;
        self
    }

    /// Sets the coreset swap-refinement pass budget.
    pub fn swap_passes(mut self, passes: usize) -> Self {
        self.swap_passes = passes;
        self
    }

    /// Sets DA's temperature-step count.
    pub fn anneal_steps(mut self, steps: usize) -> Self {
        self.anneal_steps = steps;
        self
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    use super::SolverConfig;
    use crate::approx::RefineMethod;
    use crate::exact::IdaKeyMode;
    use serde::{Deserialize, Error, Serialize, Value};

    impl Serialize for SolverConfig {
        fn to_value(&self) -> Value {
            Value::map([
                ("name", Value::Str(self.name.clone())),
                ("theta", self.theta.to_value()),
                ("delta", self.delta.to_value()),
                (
                    "refine",
                    Value::Str(
                        match self.refine {
                            RefineMethod::NnBased => "nn-based",
                            RefineMethod::ExclusiveNn => "exclusive-nn",
                        }
                        .into(),
                    ),
                ),
                ("group_size", self.group_size.to_value()),
                (
                    "key_mode",
                    Value::Str(
                        match self.key_mode {
                            IdaKeyMode::Paper => "paper",
                            IdaKeyMode::Safe => "safe",
                        }
                        .into(),
                    ),
                ),
                ("disable_fast_phase", self.disable_fast_phase.to_value()),
                ("disable_pua", self.disable_pua.to_value()),
                ("coreset_size", self.coreset_size.to_value()),
                ("sample_seed", self.sample_seed.to_value()),
                ("swap_passes", self.swap_passes.to_value()),
                ("anneal_steps", self.anneal_steps.to_value()),
            ])
        }
    }

    impl Deserialize for SolverConfig {
        fn from_value(v: &Value) -> Result<Self, Error> {
            let refine = match String::from_value(v.get("refine")?)?.as_str() {
                "nn-based" => RefineMethod::NnBased,
                "exclusive-nn" => RefineMethod::ExclusiveNn,
                other => return Err(Error(format!("unknown refine method `{other}`"))),
            };
            let key_mode = match String::from_value(v.get("key_mode")?)?.as_str() {
                "paper" => IdaKeyMode::Paper,
                "safe" => IdaKeyMode::Safe,
                other => return Err(Error(format!("unknown key mode `{other}`"))),
            };
            Ok(SolverConfig {
                name: String::from_value(v.get("name")?)?,
                theta: f64::from_value(v.get("theta")?)?,
                delta: f64::from_value(v.get("delta")?)?,
                refine,
                group_size: usize::from_value(v.get("group_size")?)?,
                key_mode,
                disable_fast_phase: bool::from_value(v.get("disable_fast_phase")?)?,
                disable_pua: bool::from_value(v.get("disable_pua")?)?,
                coreset_size: usize::from_value(v.get("coreset_size")?)?,
                sample_seed: u64::from_value(v.get("sample_seed")?)?,
                swap_passes: usize::from_value(v.get("swap_passes")?)?,
                anneal_steps: usize::from_value(v.get("anneal_steps")?)?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_and_defaults() {
        let cfg = SolverConfig::new("ria").theta(2.5);
        assert_eq!(cfg.name(), "ria");
        assert_eq!(cfg.theta, 2.5);
        assert_eq!(cfg.delta, 40.0, "non-CA default δ");
        assert_eq!(SolverConfig::new("ca").delta, 10.0, "CA default δ");
        let cfg = SolverConfig::new("ida")
            .key_mode(IdaKeyMode::Safe)
            .disable_pua(true);
        assert_eq!(cfg.key_mode, IdaKeyMode::Safe);
        assert!(cfg.disable_pua);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn config_json_roundtrip() {
        let cfg = SolverConfig::new("sa")
            .delta(25.0)
            .refine(RefineMethod::ExclusiveNn)
            .group_size(4);
        let json = serde::json::to_string(&cfg);
        let back: SolverConfig = serde::json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
        // The approximate-tier knobs survive the round trip too.
        let cfg = SolverConfig::new("coreset")
            .coreset_size(4096)
            .sample_seed(0xfeed)
            .swap_passes(3)
            .anneal_steps(12);
        let json = serde::json::to_string(&cfg);
        let back: SolverConfig = serde::json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
