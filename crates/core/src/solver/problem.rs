//! [`Problem`] — one CCA query: providers plus access to the customer set.

use cca_flow::SspaCache;
use cca_geo::Point;
use cca_rtree::RTree;
use cca_storage::{QueryContext, TenantId};

use crate::exact::{CustomerSource, MemorySource, RtreeSource};

/// A capacity-constrained assignment query, built builder-style:
///
/// ```
/// # use cca_core::solver::Problem;
/// # use cca_geo::Point;
/// let providers = vec![(Point::new(0.0, 0.0), 2)];
/// let customers = vec![Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
/// let problem = Problem::new(&providers).with_customers(&customers);
/// assert_eq!(problem.gamma(), 2);
/// ```
///
/// Customer access comes in two flavours, mirroring the paper's settings:
/// a disk-resident R-tree ([`Problem::with_tree`], the primary setting of
/// §3) or a plain in-memory slice ([`Problem::with_customers`], the
/// small-set setting the approximation phases use). Solvers obtain a
/// [`CustomerSource`] over whichever is attached via [`Problem::source`].
#[derive(Clone, Copy)]
pub struct Problem<'a> {
    providers: &'a [(Point, u32)],
    tree: Option<&'a RTree>,
    customers: Option<&'a [Point]>,
    context: Option<&'a QueryContext>,
    sspa_cache: Option<&'a SspaCache>,
}

impl<'a> Problem<'a> {
    /// Starts a problem over `providers` (position, capacity).
    pub fn new(providers: &'a [(Point, u32)]) -> Self {
        Problem {
            providers,
            tree: None,
            customers: None,
            context: None,
            sspa_cache: None,
        }
    }

    /// Attaches the disk-resident, R-tree-indexed customer set.
    pub fn with_tree(mut self, tree: &'a RTree) -> Self {
        self.tree = Some(tree);
        self
    }

    /// Attaches an in-memory customer set (ids are slice indices).
    pub fn with_customers(mut self, customers: &'a [Point]) -> Self {
        self.customers = Some(customers);
        self
    }

    /// Attaches a per-query [`QueryContext`]: every page the query touches
    /// (via its sources or direct tree descents) is charged there,
    /// [`crate::solver::Solver::run`] copies the context's traffic into the
    /// returned [`crate::stats::AlgoStats::io`], and the context's limits
    /// (deadline / I/O budget / cancellation) govern the run — an aborted
    /// context makes `run` return [`crate::solver::Outcome::Aborted`] with
    /// the partial result.
    pub fn with_context(mut self, context: &'a QueryContext) -> Self {
        self.context = Some(context);
        self
    }

    /// The attached query context, if any.
    pub fn context(&self) -> Option<&'a QueryContext> {
        self.context
    }

    /// Attaches a shared [`SspaCache`] so SSPA solves over this problem can
    /// warm-start from (and publish to) the final state of previous
    /// same-shaped solves. Batch runners attach one cache per batch; the
    /// cache is purely an accelerator — results are bit-identical to cold
    /// solves for repeated queries and fall back to cold for foreign ones.
    pub fn with_sspa_cache(mut self, cache: &'a SspaCache) -> Self {
        self.sspa_cache = Some(cache);
        self
    }

    /// The attached SSPA warm-start cache, if any.
    pub fn sspa_cache(&self) -> Option<&'a SspaCache> {
        self.sspa_cache
    }

    /// The tenant this query runs on behalf of ([`TenantId::DEFAULT`] when
    /// no context is attached — context-less runs are unmetered).
    pub fn tenant(&self) -> TenantId {
        self.context.map(|c| c.tenant()).unwrap_or_default()
    }

    /// Providers (position, capacity).
    pub fn providers(&self) -> &'a [(Point, u32)] {
        self.providers
    }

    /// Provider positions in index order.
    pub fn provider_positions(&self) -> Vec<Point> {
        self.providers.iter().map(|&(p, _)| p).collect()
    }

    /// The R-tree, when the problem is disk-resident.
    pub fn tree(&self) -> Option<&'a RTree> {
        self.tree
    }

    /// The in-memory customer slice, when attached.
    pub fn customers(&self) -> Option<&'a [Point]> {
        self.customers
    }

    /// Number of customers behind whichever access path is attached.
    pub fn num_customers(&self) -> usize {
        match (self.tree, self.customers) {
            (Some(tree), _) => tree.len(),
            (None, Some(customers)) => customers.len(),
            (None, None) => 0,
        }
    }

    /// `γ = min(|P|, Σ q.k)` — the size every maximal matching must reach.
    pub fn gamma(&self) -> u64 {
        let cap: u64 = self.providers.iter().map(|&(_, k)| u64::from(k)).sum();
        cap.min(self.num_customers() as u64)
    }

    /// A fresh per-provider NN/range source over the attached customer set.
    ///
    /// # Panics
    ///
    /// If neither a tree nor a customer slice is attached.
    pub fn source(&self) -> Box<dyn CustomerSource + 'a> {
        match (self.tree, self.customers) {
            (Some(tree), _) => Box::new(RtreeSource::new_ctx(
                tree,
                self.provider_positions(),
                self.context,
            )),
            // The context rides the memory source too: no I/O happens, but
            // the drivers and the flow engine poll it, so deadlines and
            // cancellation govern all-in-memory solves as well.
            (None, Some(customers)) => Box::new(
                MemorySource::new(
                    self.provider_positions(),
                    customers.iter().map(|&p| (p, 1)).collect(),
                )
                .with_context(self.context),
            ),
            (None, None) => panic!("Problem has no customer access: attach a tree or a slice"),
        }
    }

    /// Like [`Problem::source`], but with the grouped incremental-ANN
    /// cursors of §3.4.2 (providers Hilbert-sorted into groups of
    /// `group_size` sharing R-tree reads). Falls back to the plain source
    /// when the problem is memory-resident.
    pub fn grouped_source(&self, group_size: usize) -> Box<dyn CustomerSource + 'a> {
        match self.tree {
            Some(tree) => Box::new(RtreeSource::with_ann_groups_ctx(
                tree,
                self.provider_positions(),
                group_size,
                self.context,
            )),
            None => self.source(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_problem_builds_unit_source() {
        let providers = vec![(Point::new(0.0, 0.0), 3)];
        let customers = vec![Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
        let problem = Problem::new(&providers).with_customers(&customers);
        assert_eq!(problem.num_customers(), 2);
        assert_eq!(problem.gamma(), 2);
        let mut src = problem.source();
        let first = src.next_nn(0).unwrap();
        assert_eq!(first.id, 0);
        assert_eq!(first.weight, 1);
        assert!((first.dist - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no customer access")]
    fn sourceless_problem_panics() {
        let providers = vec![(Point::new(0.0, 0.0), 1)];
        let _ = Problem::new(&providers).source();
    }
}
