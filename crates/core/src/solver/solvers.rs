//! The nine [`Solver`] implementations wrapping the algorithm entry
//! points of [`crate::exact`], [`crate::approx`] and the SSPA baseline.

use std::time::Instant;

use cca_flow::sspa::{solve_complete_bipartite_warm_ctx, FlowCustomer, FlowProvider};
use cca_geo::Point;

use crate::approx::{
    ca_ctx, coreset_points, da_points, sa_ctx, CaConfig, CoresetConfig, DaConfig, SaConfig,
};
use crate::exact::{ida, nia, ria, CustomerSource, IdaConfig, NiaConfig, RiaConfig};
use crate::matching::{MatchPair, Matching};
use crate::solver::{Problem, Solver};
use crate::stats::AlgoStats;

/// Collects the instance's customers as `(position, id)` items: directly
/// from an attached in-memory slice, or by one context-charged full-tree
/// sweep (the approximate tier's only unavoidable I/O). `None` when the
/// sweep aborts.
fn collect_items(problem: &Problem<'_>) -> Option<Vec<(Point, u64)>> {
    match problem.customers() {
        Some(slice) => Some(
            slice
                .iter()
                .enumerate()
                .map(|(i, &pos)| (pos, i as u64))
                .collect(),
        ),
        None => {
            let tree = problem.tree().expect("problems are tree- or slice-backed");
            let mut items = Vec::new();
            tree.for_each_point_ctx(problem.context(), |pos, id| items.push((pos, id)))
                .ok()?;
            Some(items)
        }
    }
}

/// A source for solvers that never consult one (SA/CA descend the R-tree
/// directly; SSPA reads the customer slice when present). Avoids paying
/// for per-provider NN cursors that would go unused.
struct NoSource;

impl CustomerSource for NoSource {
    fn num_customers(&self) -> usize {
        0
    }

    fn total_weight(&self) -> u64 {
        0
    }

    fn next_nn(&mut self, _qi: usize) -> Option<crate::exact::SourcedCustomer> {
        None
    }

    fn range(
        &mut self,
        _qi: usize,
        _lo: f64,
        _hi: f64,
        _include_lo: bool,
    ) -> Vec<crate::exact::SourcedCustomer> {
        Vec::new()
    }
}

/// Full-graph SSPA baseline (§2.2): materialises the complete bipartite
/// graph between `Q` and `P` and runs successive shortest paths. Exact,
/// memory-hungry, slow — the yardstick of Figure 8.
#[derive(Clone, Copy, Debug, Default)]
pub struct SspaSolver;

impl Solver for SspaSolver {
    fn name(&self) -> &'static str {
        "sspa"
    }

    fn make_source<'a>(&self, problem: &Problem<'a>) -> Box<dyn CustomerSource + 'a> {
        // With an in-memory slice attached, solve() reads it directly.
        if problem.customers().is_some() {
            Box::new(NoSource)
        } else {
            problem.source()
        }
    }

    fn solve(
        &self,
        problem: &Problem<'_>,
        source: &mut dyn CustomerSource,
    ) -> (Matching, AlgoStats) {
        let start = Instant::now();
        let providers = problem.providers();
        if providers.is_empty() {
            return (
                Matching::default(),
                AlgoStats {
                    cpu_time: start.elapsed(),
                    ..Default::default()
                },
            );
        }
        // The baseline builds the complete bipartite graph over the whole
        // customer set. A memory-resident slice (the paper's Figure-8
        // setting) is used directly; otherwise the first provider's NN
        // stream is drained, which visits every customer exactly once and
        // works uniformly for tree- and memory-backed sources.
        let customers: Vec<(u64, cca_geo::Point, u32)> = match problem.customers() {
            Some(slice) => slice
                .iter()
                .enumerate()
                .map(|(i, &pos)| (i as u64, pos, 1))
                .collect(),
            None => {
                let mut drained = Vec::with_capacity(source.num_customers());
                while let Some(c) = source.next_nn(0) {
                    drained.push((c.id, c.pos, c.weight));
                }
                drained
            }
        };
        let fps: Vec<FlowProvider> = providers
            .iter()
            .map(|&(pos, cap)| FlowProvider { pos, cap })
            .collect();
        let fcs: Vec<FlowCustomer> = customers
            .iter()
            .map(|&(_, pos, weight)| FlowCustomer { pos, weight })
            .collect();
        // The context-aware solve polls deadline/cancellation from inside
        // the γ-iteration and Dijkstra loops, so an expired deadline aborts
        // the CPU-bound flow phase without a single page access; the
        // committed partial assignment is returned and `Solver::run`
        // classifies the outcome off the context's sticky abort state. A
        // problem-attached warm-start cache (one per batch) lets repeated
        // queries resume from the previous solve's verified final state.
        let (asg, sspa_stats) = match solve_complete_bipartite_warm_ctx(
            &fps,
            &fcs,
            problem.context(),
            problem.sspa_cache(),
        ) {
            Ok(complete) => complete,
            Err(aborted) => (aborted.partial, aborted.stats),
        };
        let pairs = asg
            .pairs
            .iter()
            .map(|&(qi, cj, units)| MatchPair {
                provider: qi,
                customer: customers[cj].0,
                units,
                dist: providers[qi].0.dist(&customers[cj].1),
                customer_pos: customers[cj].1,
            })
            .collect();
        let stats = AlgoStats {
            esub_edges: sspa_stats.edges,
            iterations: sspa_stats.iterations,
            cpu_time: start.elapsed(),
            ..Default::default()
        };
        (Matching { pairs }, stats)
    }
}

/// Range Incremental Algorithm (§3.1) — exact.
#[derive(Clone, Copy, Debug, Default)]
pub struct RiaSolver {
    pub cfg: RiaConfig,
}

impl Solver for RiaSolver {
    fn name(&self) -> &'static str {
        "ria"
    }

    fn solve(
        &self,
        problem: &Problem<'_>,
        mut source: &mut dyn CustomerSource,
    ) -> (Matching, AlgoStats) {
        ria(problem.providers(), &mut source, &self.cfg)
    }
}

/// Nearest Neighbor Incremental Algorithm (§3.2) — exact.
#[derive(Clone, Copy, Debug, Default)]
pub struct NiaSolver {
    pub cfg: NiaConfig,
}

impl Solver for NiaSolver {
    fn name(&self) -> &'static str {
        "nia"
    }

    fn solve(
        &self,
        problem: &Problem<'_>,
        mut source: &mut dyn CustomerSource,
    ) -> (Matching, AlgoStats) {
        nia(problem.providers(), &mut source, &self.cfg)
    }
}

/// Incremental On-demand Algorithm (§3.3) — exact; the paper's best.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdaSolver {
    pub cfg: IdaConfig,
}

impl Solver for IdaSolver {
    fn name(&self) -> &'static str {
        "ida"
    }

    fn solve(
        &self,
        problem: &Problem<'_>,
        mut source: &mut dyn CustomerSource,
    ) -> (Matching, AlgoStats) {
        ida(problem.providers(), &mut source, &self.cfg)
    }
}

/// IDA over the grouped-ANN source (§3.4.2): identical matching, fewer
/// page faults. The grouping lives in [`Solver::make_source`].
#[derive(Clone, Copy, Debug)]
pub struct IdaGroupedSolver {
    pub cfg: IdaConfig,
    pub group_size: usize,
}

impl Default for IdaGroupedSolver {
    fn default() -> Self {
        IdaGroupedSolver {
            cfg: IdaConfig::default(),
            group_size: 8,
        }
    }
}

impl Solver for IdaGroupedSolver {
    fn name(&self) -> &'static str {
        "ida-grouped"
    }

    fn label(&self) -> String {
        "IDA".into()
    }

    fn make_source<'a>(&self, problem: &Problem<'a>) -> Box<dyn CustomerSource + 'a> {
        problem.grouped_source(self.group_size)
    }

    fn solve(
        &self,
        problem: &Problem<'_>,
        mut source: &mut dyn CustomerSource,
    ) -> (Matching, AlgoStats) {
        ida(problem.providers(), &mut source, &self.cfg)
    }
}

/// Service-provider approximation (§4.1), error ≤ 2γδ.
///
/// Requires a tree-backed problem: the partitioning phase descends the
/// R-tree directly, so [`Solver::solve`] panics on memory-only problems.
#[derive(Clone, Copy, Debug, Default)]
pub struct SaSolver {
    pub cfg: SaConfig,
}

impl Solver for SaSolver {
    fn name(&self) -> &'static str {
        "sa"
    }

    fn label(&self) -> String {
        format!("SA{}", self.cfg.refine.suffix())
    }

    fn make_source<'a>(&self, _problem: &Problem<'a>) -> Box<dyn CustomerSource + 'a> {
        Box::new(NoSource)
    }

    fn solve(
        &self,
        problem: &Problem<'_>,
        _source: &mut dyn CustomerSource,
    ) -> (Matching, AlgoStats) {
        let tree = problem
            .tree()
            .expect("sa requires an R-tree-backed problem");
        sa_ctx(problem.providers(), tree, &self.cfg, problem.context())
    }
}

/// Customer approximation (§4.2), error ≤ γδ; the paper's recommended
/// approximate method.
///
/// Requires a tree-backed problem, like [`SaSolver`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CaSolver {
    pub cfg: CaConfig,
}

impl Solver for CaSolver {
    fn name(&self) -> &'static str {
        "ca"
    }

    fn label(&self) -> String {
        format!("CA{}", self.cfg.refine.suffix())
    }

    fn make_source<'a>(&self, _problem: &Problem<'a>) -> Box<dyn CustomerSource + 'a> {
        Box::new(NoSource)
    }

    fn solve(
        &self,
        problem: &Problem<'_>,
        _source: &mut dyn CustomerSource,
    ) -> (Matching, AlgoStats) {
        let tree = problem
            .tree()
            .expect("ca requires an R-tree-backed problem");
        ca_ctx(problem.providers(), tree, &self.cfg, problem.context())
    }
}

/// Capacity-aware coreset solver — the approximate scale-out tier. Samples
/// customers into a small weighted set, solves it exactly through the
/// `cca-flow` weighted SSPA / IDA path, lifts back and swap-refines inside
/// R-tree neighbourhoods. Works on both tree- and slice-backed problems
/// (the swap passes need a tree and are skipped otherwise).
#[derive(Clone, Copy, Debug, Default)]
pub struct CoresetSolver {
    pub cfg: CoresetConfig,
}

impl Solver for CoresetSolver {
    fn name(&self) -> &'static str {
        "coreset"
    }

    fn make_source<'a>(&self, _problem: &Problem<'a>) -> Box<dyn CustomerSource + 'a> {
        Box::new(NoSource)
    }

    fn solve(
        &self,
        problem: &Problem<'_>,
        _source: &mut dyn CustomerSource,
    ) -> (Matching, AlgoStats) {
        let start = Instant::now();
        let Some(items) = collect_items(problem) else {
            return (
                Matching::default(),
                AlgoStats {
                    cpu_time: start.elapsed(),
                    ..Default::default()
                },
            );
        };
        coreset_points(
            problem.providers(),
            &items,
            problem.tree(),
            &self.cfg,
            problem.context(),
        )
    }
}

/// Deterministic-annealing solver — the approximate tier's independent
/// baseline. Anneals a capacity-priced soft assignment over each customer's
/// K nearest providers, then hardens it into a feasible γ-unit matching.
/// Works on both tree- and slice-backed problems.
#[derive(Clone, Copy, Debug, Default)]
pub struct DaSolver {
    pub cfg: DaConfig,
}

impl Solver for DaSolver {
    fn name(&self) -> &'static str {
        "da"
    }

    fn make_source<'a>(&self, _problem: &Problem<'a>) -> Box<dyn CustomerSource + 'a> {
        Box::new(NoSource)
    }

    fn solve(
        &self,
        problem: &Problem<'_>,
        _source: &mut dyn CustomerSource,
    ) -> (Matching, AlgoStats) {
        let start = Instant::now();
        let Some(items) = collect_items(problem) else {
            return (
                Matching::default(),
                AlgoStats {
                    cpu_time: start.elapsed(),
                    ..Default::default()
                },
            );
        };
        da_points(problem.providers(), &items, &self.cfg, problem.context())
    }
}
