//! The trait-based solver pipeline: every CCA algorithm behind one
//! interface, constructible from data.
//!
//! * [`Problem`] — one query: providers plus customer access (R-tree or
//!   in-memory slice), built builder-style, optionally carrying a
//!   [`cca_storage::QueryContext`] (deadline / I/O budget / cancellation).
//! * [`Solver`] — the algorithm interface: `name()`, `label()`, source
//!   construction and `solve`.
//! * [`Outcome`] — what a run produced: a complete result, or a partial
//!   one with the [`AbortReason`].
//! * [`SolverConfig`] — a solver selection as plain data (name + params).
//! * [`SolverRegistry`] — name → factory, so benches, examples and the
//!   serving layer enumerate and select algorithms uniformly.
//!
//! ```
//! use cca_core::solver::{Problem, SolverConfig, SolverRegistry};
//! use cca_geo::Point;
//!
//! let providers = vec![(Point::new(0.0, 0.0), 1), (Point::new(9.0, 0.0), 1)];
//! let customers = vec![Point::new(1.0, 0.0), Point::new(8.0, 0.0)];
//! let problem = Problem::new(&providers).with_customers(&customers);
//!
//! let registry = SolverRegistry::with_defaults();
//! let solver = registry.build(&SolverConfig::new("ida")).unwrap();
//! let (matching, _stats) = solver.run(&problem).expect_complete();
//! assert_eq!(matching.size(), 2);
//! ```

pub mod config;
pub mod problem;
pub mod registry;
pub mod solvers;

pub use config::SolverConfig;
pub use problem::Problem;
pub use registry::{SolverFactory, SolverRegistry, UnknownSolver};
pub use solvers::{
    CaSolver, CoresetSolver, DaSolver, IdaGroupedSolver, IdaSolver, NiaSolver, RiaSolver, SaSolver,
    SspaSolver,
};

use cca_storage::AbortReason;

use crate::exact::CustomerSource;
use crate::matching::Matching;
use crate::stats::AlgoStats;

/// The result of one [`Solver::run`]: either the algorithm ran to the
/// optimal (or bounded-approximate) matching, or the query's
/// [`cca_storage::QueryContext`] aborted it — cancellation, deadline or I/O
/// budget — and the run unwound with whatever it had.
///
/// Aborted runs still carry exact partial I/O attribution: `partial_stats.io`
/// is precisely the traffic the query charged before stopping (for a fault
/// budget, `io.faults` equals the budget).
#[derive(Clone, Debug)]
pub enum Outcome {
    /// The algorithm ran to completion.
    Complete {
        matching: Matching,
        stats: AlgoStats,
    },
    /// The query aborted; `partial` is the (possibly empty) matching built
    /// so far and `partial_stats` the measurements up to the abort.
    Aborted {
        partial: Matching,
        partial_stats: AlgoStats,
        reason: AbortReason,
    },
}

impl Outcome {
    /// The matching — complete or partial.
    pub fn matching(&self) -> &Matching {
        match self {
            Outcome::Complete { matching, .. } => matching,
            Outcome::Aborted { partial, .. } => partial,
        }
    }

    /// The run's measurements — complete or partial.
    pub fn stats(&self) -> &AlgoStats {
        match self {
            Outcome::Complete { stats, .. } => stats,
            Outcome::Aborted { partial_stats, .. } => partial_stats,
        }
    }

    /// Why the run aborted, or `None` when it completed.
    pub fn abort_reason(&self) -> Option<AbortReason> {
        match self {
            Outcome::Complete { .. } => None,
            Outcome::Aborted { reason, .. } => Some(*reason),
        }
    }

    /// True when the run finished without aborting.
    pub fn is_complete(&self) -> bool {
        matches!(self, Outcome::Complete { .. })
    }

    /// Unwraps matching and stats regardless of completeness (serving
    /// paths that want the partial result keep the reason via
    /// [`Outcome::abort_reason`] first).
    pub fn into_parts(self) -> (Matching, AlgoStats) {
        match self {
            Outcome::Complete { matching, stats } => (matching, stats),
            Outcome::Aborted {
                partial,
                partial_stats,
                ..
            } => (partial, partial_stats),
        }
    }

    /// Unwraps a completed run.
    ///
    /// # Panics
    /// Panics if the run aborted.
    pub fn expect_complete(self) -> (Matching, AlgoStats) {
        match self {
            Outcome::Complete { matching, stats } => (matching, stats),
            Outcome::Aborted { reason, .. } => {
                panic!("query aborted ({reason}) where completion was required")
            }
        }
    }
}

/// A CCA algorithm behind a uniform interface.
///
/// Implementations are cheap, immutable descriptions (algorithm + tuning);
/// all per-query state lives in the [`Problem`] and the [`CustomerSource`],
/// so one solver value can serve many queries — including concurrently,
/// which the batch runner relies on (`Send + Sync`).
pub trait Solver: Send + Sync {
    /// Registry name (`"ida"`, `"ca"`, …).
    fn name(&self) -> &'static str;

    /// Chart label matching the paper's figures (`"IDA"`, `"CAN"`, …).
    fn label(&self) -> String {
        self.name().to_uppercase()
    }

    /// Builds the customer source this solver wants for `problem`; the
    /// default is the problem's plain per-provider NN/range source.
    fn make_source<'a>(&self, problem: &Problem<'a>) -> Box<dyn CustomerSource + 'a> {
        problem.source()
    }

    /// Solves `problem` over `source`, returning the matching and the
    /// paper's per-run measurements. Implementations leave
    /// [`AlgoStats::io`] untouched — [`Solver::run`] fills it from the
    /// problem's [`cca_storage::QueryContext`] when one is attached. An
    /// aborting context makes the source dry up; implementations return
    /// their partial matching and `run` wraps it as [`Outcome::Aborted`].
    fn solve(
        &self,
        problem: &Problem<'_>,
        source: &mut dyn CustomerSource,
    ) -> (Matching, AlgoStats);

    /// Convenience: build the preferred source, solve, classify.
    ///
    /// When the problem carries a [`cca_storage::QueryContext`], the
    /// context traffic accrued during this run (source construction
    /// included — grouped-ANN sources may touch the tree eagerly) is copied
    /// into the returned [`AlgoStats::io`], giving per-query I/O even when
    /// many runs share one buffer pool concurrently; and if the context
    /// aborted (cancellation, deadline, I/O budget) the result is
    /// [`Outcome::Aborted`] carrying the partial matching and its exact
    /// partial attribution.
    ///
    /// Classification is by the context's state *when the run finishes*:
    /// a run whose deadline expires (or that is cancelled) during its
    /// final CPU-only phase is reported `Aborted` even though its matching
    /// is in fact complete — in serving terms the SLA was missed and the
    /// result is treated as late, the deliberate, conservative reading.
    /// Callers that prefer the opposite reading can still use the carried
    /// matching: `Aborted { partial, .. }` always holds everything the
    /// algorithm produced.
    fn run(&self, problem: &Problem<'_>) -> Outcome {
        let ctx = problem.context();
        let io_before = ctx.map(|c| c.stats());
        let mut source = self.make_source(problem);
        let (matching, mut stats) = self.solve(problem, &mut *source);
        if let (Some(ctx), Some(before)) = (ctx, io_before) {
            stats.io = ctx.stats().since(&before);
        }
        match ctx.and_then(|c| c.abort_reason()) {
            Some(reason) => Outcome::Aborted {
                partial: matching,
                partial_stats: stats,
                reason,
            },
            None => Outcome::Complete { matching, stats },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_testutil::{build_tree, gamma, optimal_cost, random_instance};

    /// Every registered solver must solve a small tree-backed instance; the
    /// exact ones to the optimum, the approximate ones within their bound
    /// (δ is driven to ~0 so SA/CA are near-exact; `coreset`'s auto size
    /// exceeds n here so its coreset is the full set and it is exact too).
    /// `da` is a stochastic heuristic with no instance-wise optimality
    /// guarantee, so it only has to be feasible and within a loose cost
    /// envelope of the optimum.
    #[test]
    fn all_registered_solvers_solve_through_the_trait() {
        let (providers, customers) = random_instance(77, 4, 40, 4);
        let want = optimal_cost(&providers, &customers);
        let tree = build_tree(&customers);
        let problem = Problem::new(&providers).with_tree(&tree);
        assert_eq!(problem.gamma(), gamma(&providers, &customers));

        let registry = SolverRegistry::with_defaults();
        for name in registry.names() {
            let solver = registry
                .build(&SolverConfig::new(name).theta(25.0).delta(1e-9))
                .unwrap();
            let outcome = solver.run(&problem);
            assert!(outcome.is_complete(), "{name}: no context, no abort");
            let (matching, stats) = outcome.expect_complete();
            matching
                .validate_unit(&providers, &customers)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            if name == "da" {
                assert!(
                    matching.cost() < 3.0 * want,
                    "da: {} vs optimal {want}",
                    matching.cost()
                );
            } else {
                assert!(
                    (matching.cost() - want).abs() < 1e-6,
                    "{name}: {} vs optimal {want}",
                    matching.cost()
                );
            }
            assert!(
                stats.iterations > 0 || stats.fast_phase_matches > 0,
                "{name}"
            );
        }
    }

    #[test]
    fn memory_backed_problem_serves_exact_solvers() {
        let (providers, customers) = random_instance(78, 3, 25, 3);
        let want = optimal_cost(&providers, &customers);
        let problem = Problem::new(&providers).with_customers(&customers);
        for name in ["sspa", "ria", "nia", "ida", "ida-grouped"] {
            let solver = SolverRegistry::with_defaults()
                .build(&SolverConfig::new(name).theta(25.0))
                .unwrap();
            let (matching, _) = solver.run(&problem).expect_complete();
            assert!(
                (matching.cost() - want).abs() < 1e-6,
                "{name}: {} vs {want}",
                matching.cost()
            );
        }
    }
}
