//! The trait-based solver pipeline: every CCA algorithm behind one
//! interface, constructible from data.
//!
//! * [`Problem`] — one query: providers plus customer access (R-tree or
//!   in-memory slice), built builder-style.
//! * [`Solver`] — the algorithm interface: `name()`, `label()`, source
//!   construction and `solve`.
//! * [`SolverConfig`] — a solver selection as plain data (name + params).
//! * [`SolverRegistry`] — name → factory, so benches, examples and the
//!   batch runner enumerate and select algorithms uniformly.
//!
//! ```
//! use cca_core::solver::{Problem, SolverConfig, SolverRegistry};
//! use cca_geo::Point;
//!
//! let providers = vec![(Point::new(0.0, 0.0), 1), (Point::new(9.0, 0.0), 1)];
//! let customers = vec![Point::new(1.0, 0.0), Point::new(8.0, 0.0)];
//! let problem = Problem::new(&providers).with_customers(&customers);
//!
//! let registry = SolverRegistry::with_defaults();
//! let solver = registry.build(&SolverConfig::new("ida")).unwrap();
//! let (matching, _stats) = solver.run(&problem);
//! assert_eq!(matching.size(), 2);
//! ```

pub mod config;
pub mod problem;
pub mod registry;
pub mod solvers;

pub use config::SolverConfig;
pub use problem::Problem;
pub use registry::{SolverFactory, SolverRegistry, UnknownSolver};
pub use solvers::{
    CaSolver, IdaGroupedSolver, IdaSolver, NiaSolver, RiaSolver, SaSolver, SspaSolver,
};

use crate::exact::CustomerSource;
use crate::matching::Matching;
use crate::stats::AlgoStats;

/// A CCA algorithm behind a uniform interface.
///
/// Implementations are cheap, immutable descriptions (algorithm + tuning);
/// all per-query state lives in the [`Problem`] and the [`CustomerSource`],
/// so one solver value can serve many queries — including concurrently,
/// which the batch runner relies on (`Send + Sync`).
pub trait Solver: Send + Sync {
    /// Registry name (`"ida"`, `"ca"`, …).
    fn name(&self) -> &'static str;

    /// Chart label matching the paper's figures (`"IDA"`, `"CAN"`, …).
    fn label(&self) -> String {
        self.name().to_uppercase()
    }

    /// Builds the customer source this solver wants for `problem`; the
    /// default is the problem's plain per-provider NN/range source.
    fn make_source<'a>(&self, problem: &Problem<'a>) -> Box<dyn CustomerSource + 'a> {
        problem.source()
    }

    /// Solves `problem` over `source`, returning the matching and the
    /// paper's per-run measurements. Implementations leave
    /// [`AlgoStats::io`] untouched — [`Solver::run`] fills it from the
    /// problem's [`cca_storage::IoSession`] when one is attached.
    fn solve(
        &self,
        problem: &Problem<'_>,
        source: &mut dyn CustomerSource,
    ) -> (Matching, AlgoStats);

    /// Convenience: build the preferred source and solve.
    ///
    /// When the problem carries an attribution session, the session traffic
    /// accrued during this run (source construction included — grouped-ANN
    /// sources may touch the tree eagerly) is copied into the returned
    /// [`AlgoStats::io`], giving per-query I/O even when many runs share
    /// one buffer pool concurrently.
    fn run(&self, problem: &Problem<'_>) -> (Matching, AlgoStats) {
        let io_before = problem.session().map(|s| s.stats());
        let mut source = self.make_source(problem);
        let (matching, mut stats) = self.solve(problem, &mut *source);
        if let (Some(session), Some(before)) = (problem.session(), io_before) {
            stats.io = session.stats().since(&before);
        }
        (matching, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_testutil::{build_tree, gamma, optimal_cost, random_instance};

    /// Every registered solver must solve a small tree-backed instance; the
    /// exact ones to the optimum, the approximate ones within their bound
    /// (δ is driven to ~0 so they are near-exact too).
    #[test]
    fn all_registered_solvers_solve_through_the_trait() {
        let (providers, customers) = random_instance(77, 4, 40, 4);
        let want = optimal_cost(&providers, &customers);
        let tree = build_tree(&customers);
        let problem = Problem::new(&providers).with_tree(&tree);
        assert_eq!(problem.gamma(), gamma(&providers, &customers));

        let registry = SolverRegistry::with_defaults();
        for name in registry.names() {
            let solver = registry
                .build(&SolverConfig::new(name).theta(25.0).delta(1e-9))
                .unwrap();
            let (matching, stats) = solver.run(&problem);
            matching
                .validate_unit(&providers, &customers)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                (matching.cost() - want).abs() < 1e-6,
                "{name}: {} vs optimal {want}",
                matching.cost()
            );
            assert!(
                stats.iterations > 0 || stats.fast_phase_matches > 0,
                "{name}"
            );
        }
    }

    #[test]
    fn memory_backed_problem_serves_exact_solvers() {
        let (providers, customers) = random_instance(78, 3, 25, 3);
        let want = optimal_cost(&providers, &customers);
        let problem = Problem::new(&providers).with_customers(&customers);
        for name in ["sspa", "ria", "nia", "ida", "ida-grouped"] {
            let solver = SolverRegistry::with_defaults()
                .build(&SolverConfig::new(name).theta(25.0))
                .unwrap();
            let (matching, _) = solver.run(&problem);
            assert!(
                (matching.cost() - want).abs() < 1e-6,
                "{name}: {} vs {want}",
                matching.cost()
            );
        }
    }
}
