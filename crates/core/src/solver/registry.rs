//! [`SolverRegistry`] — name-indexed solver factories.

use std::fmt;

use crate::approx::{CaConfig, CoresetConfig, DaConfig, SaConfig};
use crate::exact::{IdaConfig, NiaConfig, RiaConfig};
use crate::solver::config::SolverConfig;
use crate::solver::solvers::{
    CaSolver, CoresetSolver, DaSolver, IdaGroupedSolver, IdaSolver, NiaSolver, RiaSolver, SaSolver,
    SspaSolver,
};
use crate::solver::Solver;

/// Builds one solver from a config.
pub type SolverFactory = fn(&SolverConfig) -> Box<dyn Solver>;

/// Maps registry names to solver factories, so callers (benches, examples,
/// the batch runner, a future query server) can enumerate and select
/// algorithms uniformly from data.
///
/// ```
/// # use cca_core::solver::{SolverConfig, SolverRegistry};
/// let registry = SolverRegistry::with_defaults();
/// let solver = registry.build(&SolverConfig::new("ida")).unwrap();
/// assert_eq!(solver.name(), "ida");
/// assert_eq!(registry.names().count(), 9);
/// ```
pub struct SolverRegistry {
    entries: Vec<(&'static str, SolverFactory)>,
}

impl SolverRegistry {
    /// An empty registry (for fully custom solver sets).
    pub fn empty() -> Self {
        SolverRegistry {
            entries: Vec::new(),
        }
    }

    /// The seven paper algorithms plus the approximate scale-out tier,
    /// under their canonical names: `sspa`, `ria`, `nia`, `ida`,
    /// `ida-grouped`, `sa`, `ca`, `coreset`, `da`.
    pub fn with_defaults() -> Self {
        let mut r = Self::empty();
        r.register("sspa", |_| Box::new(SspaSolver));
        r.register("ria", |c| {
            Box::new(RiaSolver {
                cfg: RiaConfig { theta: c.theta },
            })
        });
        r.register("nia", |c| {
            Box::new(NiaSolver {
                cfg: NiaConfig {
                    use_pua: !c.disable_pua,
                },
            })
        });
        r.register("ida", |c| {
            Box::new(IdaSolver {
                cfg: IdaConfig {
                    key_mode: c.key_mode,
                    disable_fast_phase: c.disable_fast_phase,
                    disable_pua: c.disable_pua,
                },
            })
        });
        r.register("ida-grouped", |c| {
            Box::new(IdaGroupedSolver {
                cfg: IdaConfig {
                    key_mode: c.key_mode,
                    disable_fast_phase: c.disable_fast_phase,
                    disable_pua: c.disable_pua,
                },
                group_size: c.group_size,
            })
        });
        r.register("sa", |c| {
            Box::new(SaSolver {
                cfg: SaConfig {
                    delta: c.delta,
                    refine: c.refine,
                },
            })
        });
        r.register("ca", |c| {
            Box::new(CaSolver {
                cfg: CaConfig {
                    delta: c.delta,
                    refine: c.refine,
                },
            })
        });
        r.register("coreset", |c| {
            Box::new(CoresetSolver {
                cfg: CoresetConfig {
                    size: c.coreset_size,
                    seed: c.sample_seed,
                    swap_passes: c.swap_passes,
                    refine: c.refine,
                },
            })
        });
        r.register("da", |c| {
            Box::new(DaSolver {
                cfg: DaConfig {
                    temps: c.anneal_steps,
                    ..DaConfig::default()
                },
            })
        });
        r
    }

    /// Registers (or replaces) a factory under `name`.
    pub fn register(&mut self, name: &'static str, factory: SolverFactory) {
        match self.entries.iter_mut().find(|(n, _)| *n == name) {
            Some(entry) => entry.1 = factory,
            None => self.entries.push((name, factory)),
        }
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.entries.iter().map(|&(n, _)| n)
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|&(n, _)| n == name)
    }

    /// Builds the solver selected by `config`.
    pub fn build(&self, config: &SolverConfig) -> Result<Box<dyn Solver>, UnknownSolver> {
        self.entries
            .iter()
            .find(|(n, _)| *n == config.name())
            .map(|(_, factory)| factory(config))
            .ok_or_else(|| UnknownSolver {
                name: config.name().to_string(),
                known: self.names().collect(),
            })
    }

    /// Builds the solver registered under `name` with default parameters.
    pub fn build_by_name(&self, name: &str) -> Result<Box<dyn Solver>, UnknownSolver> {
        self.build(&SolverConfig::new(name))
    }
}

impl Default for SolverRegistry {
    fn default() -> Self {
        Self::with_defaults()
    }
}

/// Error returned by [`SolverRegistry::build`] for unregistered names.
#[derive(Clone, Debug)]
pub struct UnknownSolver {
    /// The requested name.
    pub name: String,
    /// Names the registry does know.
    pub known: Vec<&'static str>,
}

impl fmt::Display for UnknownSolver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown solver `{}` (registered: {})",
            self.name,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownSolver {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_registry_has_the_nine_algorithms() {
        let r = SolverRegistry::with_defaults();
        let names: Vec<_> = r.names().collect();
        assert_eq!(
            names,
            [
                "sspa",
                "ria",
                "nia",
                "ida",
                "ida-grouped",
                "sa",
                "ca",
                "coreset",
                "da"
            ]
        );
        for name in names {
            let solver = r.build_by_name(name).unwrap();
            assert_eq!(solver.name(), name);
        }
    }

    #[test]
    fn configs_reach_the_solver() {
        let r = SolverRegistry::with_defaults();
        let solver = r
            .build(&SolverConfig::new("sa").refine(crate::RefineMethod::ExclusiveNn))
            .unwrap();
        assert_eq!(solver.label(), "SAE");
        let solver = r.build(&SolverConfig::new("ca")).unwrap();
        assert_eq!(solver.label(), "CAN");
    }

    #[test]
    fn unknown_name_is_a_helpful_error() {
        let r = SolverRegistry::with_defaults();
        let err = r.build_by_name("voronoi").map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("voronoi"));
        assert!(err.to_string().contains("ida"));
    }

    #[test]
    fn register_replaces_existing() {
        let mut r = SolverRegistry::with_defaults();
        let before = r.names().count();
        r.register("ida", |_| Box::new(SspaSolver));
        assert_eq!(r.names().count(), before);
        assert_eq!(r.build_by_name("ida").unwrap().name(), "sspa");
    }
}
