//! Exact and approximate Capacity Constrained Assignment.
//!
//! This crate implements the contribution of "Capacity Constrained
//! Assignment in Spatial Databases" (SIGMOD 2008): given customers `P`
//! (disk-resident, R-tree indexed) and providers `Q` with capacities, find
//! the maximal matching of minimum total Euclidean cost.
//!
//! * [`solver`] — the trait-based pipeline: [`Solver`], [`Problem`],
//!   [`SolverConfig`] and [`SolverRegistry`]; the public entry points.
//! * [`exact`] — RIA, NIA and IDA (§3) over a shared incremental-SSPA
//!   engine, with the PUA (§3.4.1) and grouped-ANN (§3.4.2) optimisations.
//! * `approx` — SA and CA (§4) with NN-based and exclusive-NN refinement and
//!   the error bounds of Theorems 3–4, plus the approximate scale-out tier
//!   (capacity-aware coresets, deterministic annealing).
//! * [`dynamic`] — the continuous-assignment engine: a feasible matching
//!   maintained incrementally under a stream of world events.
//! * [`matching`] / [`stats`] — result and measurement types shared by all
//!   algorithms and by the benchmark harness.

pub mod approx;
pub mod dynamic;
pub mod exact;
pub mod matching;
pub mod solver;
pub mod stats;

pub use approx::{
    ca, ca_ctx, ca_error_bound, coreset, coreset_ctx, da, da_ctx, sa, sa_ctx, sa_error_bound,
    CaConfig, CoresetConfig, DaConfig, RefineMethod, SaConfig,
};
pub use dynamic::{
    ContinuousAssignment, ContinuousConfig, DynamicStats, EventReport, RepairKind, WorldEvent,
};
pub use exact::{
    ida, nia, ria, CustomerSource, IdaConfig, IdaKeyMode, MemorySource, NiaConfig, RiaConfig,
    RtreeSource,
};
pub use matching::{MatchPair, Matching};
pub use solver::{Outcome, Problem, Solver, SolverConfig, SolverRegistry};
pub use stats::AlgoStats;
