//! RIA — Range Incremental Algorithm (Algorithm 2, §3.1).
//!
//! Edges are discovered in bulk by `T`-range searches around every provider;
//! when Theorem 1 cannot validate the current shortest path, `T` grows by θ
//! and an annular range search `(T−θ, T]` fetches the next shell of edges.

use std::time::Instant;

use cca_geo::Point;

use crate::exact::engine::Engine;
use crate::exact::source::CustomerSource;
use crate::matching::Matching;
use crate::stats::AlgoStats;

/// RIA tuning.
#[derive(Clone, Copy, Debug)]
pub struct RiaConfig {
    /// Range increment θ. The paper fine-tunes it to 0.8 for its default
    /// workload (§5.1).
    pub theta: f64,
}

impl Default for RiaConfig {
    fn default() -> Self {
        RiaConfig { theta: 0.8 }
    }
}

/// Runs RIA to the optimal matching.
pub fn ria<S: CustomerSource>(
    providers: &[(Point, u32)],
    source: &mut S,
    cfg: &RiaConfig,
) -> (Matching, AlgoStats) {
    assert!(cfg.theta > 0.0, "theta must be positive");
    let start = Instant::now();
    let mut engine = Engine::new(providers, source.num_customers());
    engine.set_context(source.context());
    engine.skip_fast_phase();
    let gamma = engine.total_capacity().min(source.total_weight());
    let max_edges = providers.len() as u64 * source.num_customers() as u64;

    // Initial T-range around every provider (Algorithm 2 lines 1–4).
    let mut t_radius = cfg.theta;
    for qi in 0..providers.len() {
        for c in source.range(qi, 0.0, t_radius, true) {
            engine.insert_edge(qi, c.id, c.pos, c.weight, c.dist);
        }
    }

    let mut done = 0u64;
    while done < gamma {
        if source.abort_reason().is_some() {
            // Aborted (cancelled / deadline / I/O budget): further range
            // extensions would come back empty, so stop with the partial
            // matching instead of growing T forever.
            break;
        }
        engine.begin_iteration();
        // Once every possible edge is present, the unexplored set is empty
        // and any shortest path is trivially valid.
        let threshold = if engine.stats.esub_edges >= max_edges {
            f64::INFINITY
        } else {
            t_radius
        };
        if engine.sp_valid(threshold) {
            engine.commit();
            done += 1;
        } else {
            if source.abort_reason().is_some() {
                // The search itself aborted mid-Dijkstra (deadline or
                // cancellation polled inside the flow loop): not a
                // miscomputed γ. The loop-head poll unwinds next round.
                continue;
            }
            assert!(
                engine.stats.esub_edges < max_edges,
                "sink unreachable with the complete edge set: γ miscomputed"
            );
            engine.note_invalid();
            // Extend T and fetch the annulus (Algorithm 2 lines 12–15).
            let lo = t_radius;
            t_radius += cfg.theta;
            for qi in 0..providers.len() {
                for c in source.range(qi, lo, t_radius, false) {
                    engine.insert_edge(qi, c.id, c.pos, c.weight, c.dist);
                }
            }
        }
    }

    let matching = engine.matching();
    let mut stats = engine.stats;
    stats.cpu_time = start.elapsed();
    (matching, stats)
}
