//! The shared incremental-SSPA engine behind RIA, NIA and IDA.
//!
//! All three exact algorithms (§3) are SSPA instances that differ only in
//! *how they discover edges* and *how they bound the unexplored edge set*
//! (Theorem 1). This engine owns the shared machinery:
//!
//! * the growing flow graph over `{s, t} ∪ Q ∪ discovered(P)`,
//! * the per-iteration Dijkstra state with PUA re-optimisation,
//! * the Theorem-1 validity test and commit (augment + potential update,
//!   `τmax` maintenance, fullness tracking),
//! * IDA's Theorem-2 fast phase, including the closed-form feasible
//!   potential installed at phase exit (see `fast_phase` notes below).

use cca_flow::{DijkstraState, FlowGraph, NodeId};
use cca_geo::Point;
use cca_storage::QueryContext;

use crate::matching::{MatchPair, Matching};
use crate::stats::AlgoStats;

/// Slack for the Theorem-1 validity test. Accepting a path whose cost
/// exceeds the bound by 1e-9 changes Ψ(M) by at most γ·1e-9 — far below the
/// noise floor of double-precision distance sums.
pub const VALIDITY_EPS: f64 = 1e-9;

/// What a flow edge models; used to update fullness after augmenting.
#[derive(Clone, Copy, Debug)]
enum EdgeKind {
    /// `s → q_i`, capacity `q.k`.
    SourceQ(u32),
    /// `p → t`, capacity = customer weight.
    CustomerT(u32),
    /// `q_i → p`, the distance edges of `Esub`.
    QP,
}

struct ProviderState {
    cap: u32,
    node: NodeId,
    sq_edge: u32,
    full: bool,
}

struct CustomerState {
    id: u64,
    pos: Point,
    weight: u32,
    node: NodeId,
    pt_edge: u32,
    assigned: u32,
    /// Distance of the latest fast-phase match (for the phase-exit
    /// potential).
    last_match_dist: f64,
}

/// A q→p edge of `Esub`.
struct QpRec {
    edge: u32,
    provider: u32,
    cust: u32,
    dist: f64,
}

/// Incremental SSPA engine.
pub struct Engine {
    g: FlowGraph,
    dij: DijkstraState,
    s: NodeId,
    t: NodeId,
    providers: Vec<ProviderState>,
    customers: Vec<CustomerState>,
    /// Customer id → index into `customers` (dense ids; `NONE` sentinel).
    cust_index: Vec<u32>,
    edge_kind: Vec<EdgeKind>,
    qp_edges: Vec<QpRec>,
    /// `τmax = max_{q∈Q} q.τ` (Algorithms 2–4, "the highest potential").
    tau_max: f64,
    num_full_providers: usize,
    /// Cost of the current iteration's shortest path (`vmin.α`), if the sink
    /// has been reached in the current subgraph.
    alpha_t: Option<f64>,
    /// Largest fast-phase match distance (`D` in the phase-exit potential).
    fast_d: f64,
    in_fast_phase: bool,
    /// Arcs of the most recently committed path, for batched re-commits.
    last_path: Vec<u32>,
    /// When true, `check_reduced_costs` runs after every commit (tests).
    pub paranoid: bool,
    pub stats: AlgoStats,
    /// Cooperative abort context polled inside the Dijkstra/PUA loops, so a
    /// CPU-heavy search over a large `Esub` cannot overshoot its deadline
    /// between the drivers' loop-head polls.
    ctx: Option<QueryContext>,
}

const NONE: u32 = u32::MAX;

impl Engine {
    /// Creates the engine: source, sink and provider nodes plus their
    /// `s → q` edges; no customers yet.
    pub fn new(providers: &[(Point, u32)], num_customers_hint: usize) -> Self {
        let mut g = FlowGraph::new();
        let s = g.add_node();
        let t = g.add_node();
        let mut edge_kind = Vec::new();
        let provider_states = providers
            .iter()
            .enumerate()
            .map(|(i, &(_pos, cap))| {
                let node = g.add_node();
                let sq_edge = g.add_edge(s, node, cap, 0.0);
                edge_kind.push(EdgeKind::SourceQ(i as u32));
                ProviderState {
                    cap,
                    node,
                    sq_edge,
                    full: cap == 0,
                }
            })
            .collect::<Vec<_>>();
        let num_full = provider_states.iter().filter(|p| p.full).count();
        Engine {
            g,
            dij: DijkstraState::new(),
            s,
            t,
            providers: provider_states,
            customers: Vec::new(),
            cust_index: vec![NONE; num_customers_hint],
            edge_kind,
            qp_edges: Vec::new(),
            tau_max: 0.0,
            num_full_providers: num_full,
            alpha_t: None,
            fast_d: 0.0,
            in_fast_phase: true,
            last_path: Vec::new(),
            paranoid: false,
            stats: AlgoStats::default(),
            ctx: None,
        }
    }

    /// Attaches the query context whose deadline/cancellation the engine's
    /// Dijkstra and PUA loops poll cooperatively. The drivers pass their
    /// source's context here, so one context governs discovery I/O *and*
    /// the CPU-bound search.
    pub fn set_context(&mut self, ctx: Option<&QueryContext>) {
        self.ctx = ctx.cloned();
    }

    /// Total provider capacity `Σ q.k`.
    pub fn total_capacity(&self) -> u64 {
        self.providers.iter().map(|p| u64::from(p.cap)).sum()
    }

    /// `τmax`, the highest provider potential.
    #[inline]
    pub fn tau_max(&self) -> f64 {
        self.tau_max
    }

    /// Cost of the current shortest path, if the sink is reachable.
    #[inline]
    pub fn alpha_t(&self) -> Option<f64> {
        self.alpha_t
    }

    /// True while no provider is full (Theorem 2's precondition).
    #[inline]
    pub fn no_provider_full(&self) -> bool {
        self.num_full_providers == 0
    }

    /// True if provider `qi` is full (Definition 2).
    #[inline]
    pub fn provider_full(&self, qi: usize) -> bool {
        self.providers[qi].full
    }

    /// Latest Dijkstra α of provider `qi` (∞ if not reached this iteration).
    #[inline]
    pub fn provider_alpha(&self, qi: usize) -> f64 {
        self.dij.alpha(self.providers[qi].node)
    }

    /// True if provider `qi` was settled by the current iteration's search.
    #[inline]
    pub fn provider_settled(&self, qi: usize) -> bool {
        self.dij.is_settled(self.providers[qi].node)
    }

    /// Current potential `τ(q_i)`.
    #[inline]
    pub fn provider_tau(&self, qi: usize) -> f64 {
        self.g.tau(self.providers[qi].node)
    }

    /// The potential lag `τmax − τ(q_i)` of a provider. In raw-distance
    /// terms the cheapest way to reach `q_i` costs `α(q_i) + τ(s) − τ(q_i)`,
    /// and since the Theorem-1 test subtracts `τmax ≤ τ(s)` from the heap's
    /// top key, an IDA key of `α(q_i) + lag + dist` stays a valid lower
    /// bound while pruning far more than `α(q_i) + dist` alone (reduced-cost
    /// α's are marginal and tiny; the lag carries the congestion signal).
    /// Non-full providers have zero lag by construction.
    #[inline]
    pub fn provider_tau_lag(&self, qi: usize) -> f64 {
        (self.tau_max - self.provider_tau(qi)).max(0.0)
    }

    /// True if customer `id` has been discovered and is full (Definition 3).
    pub fn customer_full(&self, id: u64) -> bool {
        match self.lookup_customer(id) {
            Some(c) => self.customers[c as usize].assigned == self.customers[c as usize].weight,
            None => false,
        }
    }

    fn lookup_customer(&self, id: u64) -> Option<u32> {
        let idx = usize::try_from(id).expect("customer id fits usize");
        match self.cust_index.get(idx) {
            Some(&c) if c != NONE => Some(c),
            _ => None,
        }
    }

    fn ensure_customer(&mut self, id: u64, pos: Point, weight: u32) -> u32 {
        if let Some(c) = self.lookup_customer(id) {
            return c;
        }
        let idx = usize::try_from(id).expect("customer id fits usize");
        if idx >= self.cust_index.len() {
            self.cust_index.resize(idx + 1, NONE);
        }
        let node = self.g.add_node();
        let pt_edge = self.g.add_edge(node, self.t, weight, 0.0);
        self.edge_kind
            .push(EdgeKind::CustomerT(self.customers.len() as u32));
        let c = self.customers.len() as u32;
        self.customers.push(CustomerState {
            id,
            pos,
            weight,
            node,
            pt_edge,
            assigned: 0,
            last_match_dist: 0.0,
        });
        self.cust_index[idx] = c;
        c
    }

    /// Inserts edge `e(q_i, p)` into `Esub` (discovering the customer if
    /// new) and returns the flow-graph edge id.
    pub fn insert_edge(&mut self, qi: usize, id: u64, pos: Point, weight: u32, dist: f64) -> u32 {
        let c = self.ensure_customer(id, pos, weight);
        let cap = weight; // a provider may serve up to `weight` units of a rep
        let e = self.g.add_edge(
            self.providers[qi].node,
            self.customers[c as usize].node,
            cap,
            dist,
        );
        self.edge_kind.push(EdgeKind::QP);
        self.qp_edges.push(QpRec {
            edge: e,
            provider: qi as u32,
            cust: c,
            dist,
        });
        self.stats.esub_edges += 1;
        e
    }

    /// Inserts an edge *and* re-optimises the in-flight shortest-path
    /// computation with PUA (§3.4.1). Must be called between
    /// [`Engine::begin_iteration`] and the commit.
    pub fn insert_edge_reoptimize(
        &mut self,
        qi: usize,
        id: u64,
        pos: Point,
        weight: u32,
        dist: f64,
    ) {
        let e = self.insert_edge(qi, id, pos, weight, dist);
        self.dij.pua_insert_edge(&self.g, e);
        self.stats.pua_runs += 1;
        let ctx = self.ctx.as_ref();
        if self.dij.is_settled(self.t) {
            match self.dij.drain_below_sink_ctx(&self.g, self.t, ctx) {
                Ok(()) => self.alpha_t = Some(self.dij.alpha(self.t)),
                // The abort is sticky on the context; the driver's next
                // loop-head poll unwinds with the partial matching, and a
                // cleared alpha_t keeps `sp_valid` from committing a path
                // whose search never finished.
                Err(_) => self.alpha_t = None,
            }
        } else {
            self.alpha_t = self
                .dij
                .run_until_ctx(&self.g, self.t, ctx)
                .unwrap_or_default();
        }
    }

    /// Starts an SSPA iteration: fresh Dijkstra from `s` until the sink
    /// settles (or the frontier empties). Returns the sp cost, if any —
    /// `None` also when the query context aborted mid-search (the abort is
    /// sticky; drivers observe it at their next loop-head poll).
    pub fn begin_iteration(&mut self) -> Option<f64> {
        self.dij.init(&self.g, self.s);
        self.alpha_t = self
            .dij
            .run_until_ctx(&self.g, self.t, self.ctx.as_ref())
            .unwrap_or_default();
        self.stats.dijkstra_runs += 1;
        self.alpha_t
    }

    /// The Theorem-1 validity test: is the current sp provably shortest on
    /// the *complete* graph, given that every unexplored edge would
    /// contribute at least `threshold`?
    pub fn sp_valid(&self, threshold: f64) -> bool {
        match self.alpha_t {
            Some(at) => at <= threshold - self.tau_max + VALIDITY_EPS,
            None => false,
        }
    }

    /// Commits the current shortest path: augments one unit, updates
    /// potentials, `τmax` and fullness flags.
    ///
    /// # Panics
    /// Panics if the sink is unreachable (callers must test `sp_valid`
    /// first).
    pub fn commit(&mut self) {
        let alpha_t = self.alpha_t.expect("commit without a shortest path");
        debug_assert!(!self.in_fast_phase, "commit during fast phase");

        // Augment along parent arcs, tracking fullness of touched edges.
        self.last_path = self.dij.extract_path(&self.g, self.t);
        self.augment_last_path();

        // Potential update (Algorithm 1 lines 8–9) and τmax maintenance.
        let dij = &self.dij;
        self.g
            .update_potentials(dij.settled_nodes(), |v| dij.alpha(v), alpha_t);
        for &v in self.dij.settled_nodes() {
            // Provider nodes occupy the contiguous id range [2, 2+|Q|).
            let first = 2;
            let last = 2 + self.providers.len() as NodeId;
            if v >= first && v < last {
                let tau = self.g.tau(v);
                if tau > self.tau_max {
                    self.tau_max = tau;
                }
            }
        }

        self.stats.settled += self.dij.settled_nodes().len() as u64;
        self.stats.iterations += 1;
        self.alpha_t = None;

        if self.paranoid {
            if let Err((arc, rc)) = self.g.check_reduced_costs(1e-6) {
                panic!("reduced-cost invariant broken after commit: arc {arc} rc {rc}");
            }
        }
    }

    /// Pushes one unit along `last_path`, updating fullness and assignment
    /// bookkeeping for every touched edge.
    fn augment_last_path(&mut self) {
        for i in 0..self.last_path.len() {
            let a = self.last_path[i];
            self.g.push_flow(a, 1);
        }
        for i in 0..self.last_path.len() {
            let e = self.g.arc_edge(self.last_path[i]);
            match self.edge_kind[e as usize] {
                EdgeKind::SourceQ(qi) => {
                    let p = &mut self.providers[qi as usize];
                    let now_full = self.g.edge_flow(p.sq_edge) == p.cap;
                    if now_full && !p.full {
                        p.full = true;
                        self.num_full_providers += 1;
                    } else if !now_full && p.full {
                        // A reverse arc on the path un-saturated the edge.
                        p.full = false;
                        self.num_full_providers -= 1;
                    }
                }
                EdgeKind::CustomerT(c) => {
                    let cust = &mut self.customers[c as usize];
                    cust.assigned = self.g.edge_flow(cust.pt_edge);
                }
                EdgeKind::QP => {}
            }
        }
    }

    /// True if the last committed path still has residual capacity on every
    /// arc, i.e. it could be augmented again as-is.
    pub fn last_path_residual(&self) -> bool {
        !self.last_path.is_empty() && self.last_path.iter().all(|&a| self.g.residual_cap(a) >= 1)
    }

    /// The Theorem-1 test for a *zero-length* shortest path. After a commit,
    /// every arc of the committed path has reduced cost 0, so while the path
    /// keeps residual capacity a fresh Dijkstra would find it again at
    /// reduced length exactly 0 (no residual path can be cheaper: all
    /// reduced costs are non-negative). The corresponding potential update
    /// is then a no-op (`α(v) = α_t = 0` for every settled node), so the
    /// whole hypothetical iteration collapses to this test plus a re-push.
    pub fn zero_sp_valid(&self, threshold: f64) -> bool {
        0.0 <= threshold - self.tau_max + VALIDITY_EPS
    }

    /// Re-commits the last committed path without a new Dijkstra: one more
    /// augmentation along the identical arcs, with identical bookkeeping.
    /// Callers must have checked [`Engine::last_path_residual`] and
    /// [`Engine::zero_sp_valid`] first; this is the batched form of the
    /// iteration those tests make redundant.
    pub fn recommit(&mut self) {
        debug_assert!(self.last_path_residual());
        self.augment_last_path();
        self.stats.iterations += 1;
        if self.paranoid {
            if let Err((arc, rc)) = self.g.check_reduced_costs(1e-6) {
                panic!("reduced-cost invariant broken after recommit: arc {arc} rc {rc}");
            }
        }
    }

    /// Marks the current candidate path invalid (Theorem-1 test failed).
    pub fn note_invalid(&mut self) {
        self.stats.invalid_paths += 1;
    }

    // ------------------------------------------------------------------
    // Theorem-2 fast phase (IDA)
    // ------------------------------------------------------------------

    /// Processes one fast-phase edge pop (Theorem 2): inserts the edge and,
    /// if the customer is not full, immediately matches as many units as
    /// both sides allow. Batching is exact: repeating SSPA on the same
    /// cheapest pair augments the identical single-edge path until one side
    /// saturates, so the per-unit iterations are collapsed here.
    ///
    /// Returns the number of units matched (0 for an already-full customer).
    pub fn fast_match(&mut self, qi: usize, id: u64, pos: Point, weight: u32, dist: f64) -> u32 {
        debug_assert!(self.in_fast_phase && self.no_provider_full());
        let e = self.insert_edge(qi, id, pos, weight, dist);
        let c = self.lookup_customer(id).expect("just inserted");
        let cust = &mut self.customers[c as usize];
        if cust.assigned == cust.weight {
            // Full customer: the edge joins Esub but no assignment happens
            // (Theorem 2: "If pj is full, we directly insert it into Esub
            // and de-heap the next entry").
            return 0;
        }
        let sq_edge = self.providers[qi].sq_edge;
        let provider_spare = self.providers[qi].cap - self.g.edge_flow(sq_edge);
        let units = (cust.weight - cust.assigned).min(provider_spare);
        debug_assert!(units >= 1);
        cust.assigned += units;
        cust.last_match_dist = dist;
        let pt_edge = cust.pt_edge;
        self.g.push_flow(2 * sq_edge, units);
        self.g.push_flow(2 * e, units);
        self.g.push_flow(2 * pt_edge, units);
        debug_assert!(
            dist + 1e-9 >= self.fast_d,
            "fast-phase pops must be globally ascending: {dist} < {}",
            self.fast_d
        );
        self.fast_d = self.fast_d.max(dist);
        if self.g.edge_flow(sq_edge) == self.providers[qi].cap {
            self.providers[qi].full = true;
            self.num_full_providers += 1;
        }
        self.stats.fast_phase_matches += u64::from(units);
        self.stats.iterations += u64::from(units);
        units
    }

    /// Ends the fast phase, installing the closed-form feasible potential.
    ///
    /// With `D` = the largest matched distance: `τ(s) = τ(q) = D` for all
    /// providers, `τ(p) = D − lastMatchDist(p)` for *full* customers, 0 for
    /// partially-assigned or unassigned ones, `τ(t) = 0`. Feasibility
    /// argument: matched reverse arcs get reduced cost `D − (D − d) − d = 0`;
    /// explored-but-unmatched edges `(q,p)` all have `dist ≥ lastMatchDist(p)`
    /// because the fast phase pops edges in globally ascending length order
    /// and a non-full customer is matched at its first pop, so
    /// `w = dist − D + τ(p) ≥ 0`; source/sink arcs check directly.
    pub fn finish_fast_phase(&mut self) {
        debug_assert!(self.in_fast_phase);
        self.in_fast_phase = false;
        let d = self.fast_d;
        self.g.set_tau(self.s, d);
        for i in 0..self.providers.len() {
            self.g.set_tau(self.providers[i].node, d);
        }
        for c in &self.customers {
            let tau = if c.assigned == c.weight {
                d - c.last_match_dist
            } else {
                0.0
            };
            self.g.set_tau(c.node, tau);
        }
        self.g.set_tau(self.t, 0.0);
        self.tau_max = d;
        if self.paranoid {
            if let Err((arc, rc)) = self.g.check_reduced_costs(1e-6) {
                panic!("fast-phase exit potential infeasible: arc {arc} rc {rc}");
            }
        }
    }

    /// Declares that no fast phase will run (RIA/NIA); potentials stay 0.
    pub fn skip_fast_phase(&mut self) {
        self.in_fast_phase = false;
    }

    /// Extracts the matching from the final flow.
    pub fn matching(&self) -> Matching {
        let mut pairs = Vec::new();
        for rec in &self.qp_edges {
            let units = self.g.edge_flow(rec.edge);
            if units > 0 {
                pairs.push(MatchPair {
                    provider: rec.provider as usize,
                    customer: self.customers[rec.cust as usize].id,
                    units,
                    dist: rec.dist,
                    customer_pos: self.customers[rec.cust as usize].pos,
                });
            }
        }
        Matching { pairs }
    }

    /// Total units currently assigned (for driver loops).
    pub fn assigned_units(&self) -> u64 {
        self.customers.iter().map(|c| u64::from(c.assigned)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn providers_at(caps: &[u32]) -> Vec<(Point, u32)> {
        caps.iter()
            .enumerate()
            .map(|(i, &k)| (Point::new(i as f64 * 100.0, 0.0), k))
            .collect()
    }

    #[test]
    fn new_engine_has_source_edges_only() {
        let engine = Engine::new(&providers_at(&[2, 3]), 10);
        assert_eq!(engine.total_capacity(), 5);
        assert!(engine.no_provider_full());
        assert_eq!(engine.stats.esub_edges, 0);
        assert_eq!(engine.assigned_units(), 0);
    }

    #[test]
    fn zero_capacity_provider_starts_full() {
        let engine = Engine::new(&providers_at(&[0, 1]), 4);
        assert!(!engine.no_provider_full());
        assert!(engine.provider_full(0));
        assert!(!engine.provider_full(1));
    }

    #[test]
    fn fast_match_assigns_and_fills() {
        let mut engine = Engine::new(&providers_at(&[2]), 4);
        engine.paranoid = true;
        let q = Point::new(0.0, 0.0);
        let p1 = Point::new(1.0, 0.0);
        let p2 = Point::new(2.0, 0.0);
        assert_eq!(engine.fast_match(0, 0, p1, 1, q.dist(&p1)), 1);
        assert!(!engine.provider_full(0));
        assert!(engine.customer_full(0));
        // Re-popping the full customer inserts the edge but matches nothing.
        assert_eq!(engine.fast_match(0, 0, p1, 1, q.dist(&p1)), 0);
        assert_eq!(engine.fast_match(0, 1, p2, 1, q.dist(&p2)), 1);
        assert!(engine.provider_full(0), "capacity 2 reached");
        assert_eq!(engine.assigned_units(), 2);
        engine.finish_fast_phase();
        let m = engine.matching();
        assert_eq!(m.size(), 2);
        assert!((m.cost() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fast_match_batches_weighted_customers() {
        // One provider (cap 3) pops a representative of weight 5: it must
        // take all 3 units at once.
        let mut engine = Engine::new(&providers_at(&[3]), 2);
        let units = engine.fast_match(0, 0, Point::new(4.0, 0.0), 5, 4.0);
        assert_eq!(units, 3);
        assert!(engine.provider_full(0));
        assert!(!engine.customer_full(0), "2 of 5 units still open");
        engine.finish_fast_phase();
        let m = engine.matching();
        assert_eq!(m.size(), 3);
        assert!((m.cost() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn fast_phase_exit_potential_is_feasible() {
        // Several matches at increasing distances, then validate the
        // closed-form potential with the reduced-cost checker (paranoid
        // mode panics on violation).
        // Capacities of 2 keep every provider non-full throughout (the fast
        // phase ends at the first full provider).
        let mut engine = Engine::new(&providers_at(&[2, 2, 2]), 8);
        engine.paranoid = true;
        engine.fast_match(0, 0, Point::new(1.0, 0.0), 1, 1.0);
        engine.fast_match(1, 1, Point::new(102.0, 0.0), 1, 2.0);
        // An edge to an already-full customer at larger distance.
        assert_eq!(engine.fast_match(2, 0, Point::new(1.0, 0.0), 1, 199.0), 0);
        engine.fast_match(2, 2, Point::new(200.0, 200.0), 1, 200.0);
        engine.finish_fast_phase(); // panics if the potential is infeasible
        assert_eq!(engine.tau_max(), 200.0);
    }

    #[test]
    fn dijkstra_iteration_commit_updates_fullness() {
        // cap-1 provider at x=0; two customers; fast phase disabled so the
        // engine exercises the Dijkstra path.
        let mut engine = Engine::new(&providers_at(&[1, 1]), 4);
        engine.paranoid = true;
        engine.skip_fast_phase();
        engine.insert_edge(0, 0, Point::new(1.0, 0.0), 1, 1.0);
        engine.insert_edge(1, 1, Point::new(101.0, 0.0), 1, 1.0);
        let at = engine.begin_iteration();
        assert_eq!(at, Some(1.0));
        assert!(engine.sp_valid(f64::INFINITY));
        engine.commit();
        // Exactly one of the two providers committed its unit.
        assert_eq!(engine.assigned_units(), 1);
        let full_count = [0, 1].iter().filter(|&&q| engine.provider_full(q)).count();
        assert_eq!(full_count, 1);
        // Second iteration serves the other pair.
        engine.begin_iteration();
        engine.commit();
        assert_eq!(engine.assigned_units(), 2);
        assert!(engine.provider_full(0) && engine.provider_full(1));
        assert_eq!(engine.matching().size(), 2);
    }

    #[test]
    fn sp_valid_applies_theorem_one() {
        let mut engine = Engine::new(&providers_at(&[1]), 4);
        engine.skip_fast_phase();
        engine.insert_edge(0, 0, Point::new(5.0, 0.0), 1, 5.0);
        engine.begin_iteration();
        // alpha_t = 5; with tau_max = 0 the sp is valid iff the unexplored
        // threshold is at least 5.
        assert!(!engine.sp_valid(4.0));
        assert!(engine.sp_valid(5.0));
        assert!(engine.sp_valid(f64::INFINITY));
    }

    #[test]
    fn insert_edge_reoptimize_improves_alpha_t() {
        let mut engine = Engine::new(&providers_at(&[1, 1]), 4);
        engine.skip_fast_phase();
        engine.insert_edge(0, 0, Point::new(9.0, 0.0), 1, 9.0);
        assert_eq!(engine.begin_iteration(), Some(9.0));
        // A cheaper edge from the other provider shows up: PUA must lower
        // alpha_t without a fresh Dijkstra.
        engine.insert_edge_reoptimize(1, 1, Point::new(102.0, 0.0), 1, 2.0);
        assert_eq!(engine.alpha_t(), Some(2.0));
        let runs = engine.stats.dijkstra_runs;
        assert_eq!(runs, 1, "no extra full Dijkstra executions");
        assert!(engine.stats.pua_runs >= 1);
    }

    #[test]
    fn unreachable_sink_reports_none() {
        let mut engine = Engine::new(&providers_at(&[1]), 4);
        engine.skip_fast_phase();
        assert_eq!(engine.begin_iteration(), None);
        assert!(!engine.sp_valid(f64::INFINITY));
    }

    #[test]
    fn matching_extracts_units_per_edge() {
        let mut engine = Engine::new(&providers_at(&[4]), 2);
        engine.fast_match(0, 0, Point::new(3.0, 0.0), 3, 3.0);
        engine.finish_fast_phase();
        let m = engine.matching();
        assert_eq!(m.pairs.len(), 1);
        assert_eq!(m.pairs[0].units, 3);
        assert_eq!(m.pairs[0].customer, 0);
    }
}
