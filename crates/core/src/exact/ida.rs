//! IDA — Incremental On-demand Algorithm (Algorithm 4, §3.3).
//!
//! IDA improves NIA in two ways:
//!
//! 1. **Full-provider keys.** Heap entries of *full* providers are keyed by
//!    `q.α + dist(q, p)`: any path through a full `q` costs at least `q.α`
//!    to reach `q`, so its unexplored edges can be postponed (Φ bound).
//! 2. **Theorem-2 fast phase.** While no provider is full, the shortest
//!    path is a single edge: the globally shortest pending edge with a
//!    non-full customer. Matches are made straight off the heap with no
//!    Dijkstra at all; at phase exit a closed-form feasible potential is
//!    installed (see `Engine::finish_fast_phase`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use cca_geo::{OrdF64, Point};

use crate::exact::engine::Engine;
use crate::exact::source::{CustomerSource, SourcedCustomer};
use crate::matching::Matching;
use crate::stats::AlgoStats;

/// How IDA keys heap entries of full providers whose α was not refreshed by
/// the *current* iteration's Dijkstra.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IdaKeyMode {
    /// Algorithm 4 verbatim: keep the α from the last Dijkstra execution
    /// that visited the provider, even across iterations.
    #[default]
    Paper,
    /// Reset α contributions at the start of every iteration; only fold in
    /// α values observed by the current iteration's search. Strictly
    /// conservative (keys never overestimate Φ), at the price of weaker
    /// pruning. Ablated in `cca-bench`.
    Safe,
}

/// IDA tuning.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdaConfig {
    pub key_mode: IdaKeyMode,
    /// Disable the Theorem-2 fast phase (ablation only).
    pub disable_fast_phase: bool,
    /// Disable PUA reuse (ablation only).
    pub disable_pua: bool,
}

/// Lazy per-provider edge heap with updatable keys.
struct IdaHeap {
    heap: BinaryHeap<Reverse<(OrdF64, u32)>>,
    pending: Vec<Option<SourcedCustomer>>,
    /// Authoritative key per provider; heap entries not matching are stale.
    key: Vec<f64>,
    /// Last observed Dijkstra α per provider (0 for non-full providers,
    /// possibly stale for full ones — Algorithm 4 keeps stale values).
    alpha_raw: Vec<f64>,
}

impl IdaHeap {
    fn new<S: CustomerSource>(num_providers: usize, source: &mut S) -> Self {
        let mut h = IdaHeap {
            heap: BinaryHeap::new(),
            pending: Vec::with_capacity(num_providers),
            key: vec![f64::INFINITY; num_providers],
            alpha_raw: vec![0.0; num_providers],
        };
        for qi in 0..num_providers {
            let c = source.next_nn(qi);
            h.pending.push(c);
            if let Some(c) = h.pending[qi] {
                h.key[qi] = c.dist;
                h.heap.push(Reverse((OrdF64::new(c.dist), qi as u32)));
            }
        }
        h
    }

    fn set_key(&mut self, qi: usize, key: f64) {
        self.key[qi] = key;
        self.heap.push(Reverse((OrdF64::new(key), qi as u32)));
    }

    /// Discards stale heap entries so the top reflects authoritative keys.
    fn clean_top(&mut self) {
        while let Some(&Reverse((k, qi))) = self.heap.peek() {
            let qi = qi as usize;
            if self.pending[qi].is_none() || k.get() != self.key[qi] {
                self.heap.pop();
            } else {
                return;
            }
        }
    }

    /// `Φ(E − Esub)` lower bound: minimum authoritative key, ∞ if exhausted.
    fn top_key(&mut self) -> f64 {
        self.clean_top();
        self.heap
            .peek()
            .map_or(f64::INFINITY, |Reverse((k, _))| k.get())
    }

    /// Pops the minimum-key pending edge; the caller refills via `refill`.
    fn pop(&mut self) -> Option<(usize, SourcedCustomer)> {
        self.clean_top();
        let Reverse((_, qi)) = self.heap.pop()?;
        let qi = qi as usize;
        let cust = self.pending[qi].take().expect("cleaned entry is pending");
        Some((qi, cust))
    }

    /// Refills provider `qi` from its NN stream; the key carries the given
    /// α plus the provider's potential lag.
    fn refill<S: CustomerSource>(&mut self, qi: usize, source: &mut S, alpha: f64, lag: f64) {
        debug_assert!(self.pending[qi].is_none());
        let next = source.next_nn(qi);
        self.pending[qi] = next;
        self.alpha_raw[qi] = alpha;
        if let Some(c) = next {
            self.set_key(qi, alpha + lag + c.dist);
        } else {
            self.key[qi] = f64::INFINITY;
        }
    }
}

/// Runs IDA to the optimal matching.
pub fn ida<S: CustomerSource>(
    providers: &[(Point, u32)],
    source: &mut S,
    cfg: &IdaConfig,
) -> (Matching, AlgoStats) {
    let start = Instant::now();
    let mut engine = Engine::new(providers, source.num_customers());
    engine.set_context(source.context());
    let gamma = engine.total_capacity().min(source.total_weight());
    let mut heap = IdaHeap::new(providers.len(), source);
    let mut done = 0u64;

    // ---- Theorem-2 fast phase --------------------------------------
    if !cfg.disable_fast_phase {
        while done < gamma && engine.no_provider_full() && source.abort_reason().is_none() {
            let Some((qi, c)) = heap.pop() else {
                break; // NN streams exhausted; every edge is in Esub
            };
            done += u64::from(engine.fast_match(qi, c.id, c.pos, c.weight, c.dist));
            heap.refill(qi, source, 0.0, 0.0);
        }
    }
    engine.finish_fast_phase();
    if done >= gamma || source.abort_reason().is_some() {
        // Finished — or aborted (cancelled / deadline / I/O budget): return
        // the partial matching built so far with its partial stats.
        let matching = engine.matching();
        let mut stats = engine.stats;
        stats.cpu_time = start.elapsed();
        return (matching, stats);
    }

    // ---- Dijkstra phase (Algorithm 4) -------------------------------
    'outer: while done < gamma {
        if source.abort_reason().is_some() {
            break;
        }
        if cfg.key_mode == IdaKeyMode::Safe {
            // Forget cross-iteration α terms; the potential-lag part is
            // always current (it only changes at commits) and therefore
            // kept — `refresh_full_keys` below re-derives it exactly.
            for qi in 0..providers.len() {
                if heap.alpha_raw[qi] != 0.0 {
                    if let Some(c) = heap.pending[qi] {
                        heap.alpha_raw[qi] = 0.0;
                        heap.set_key(qi, engine.provider_tau_lag(qi) + c.dist);
                    }
                }
            }
        }
        let mut have_sp = false;
        loop {
            // De-heap the next edge into Esub (Algorithm 4 lines 7–8).
            if let Some((qi, c)) = heap.pop() {
                if have_sp && !cfg.disable_pua {
                    engine.insert_edge_reoptimize(qi, c.id, c.pos, c.weight, c.dist);
                } else {
                    engine.insert_edge(qi, c.id, c.pos, c.weight, c.dist);
                    have_sp = false;
                }
                // Line 13–14: fetch the next NN *after* α updates so the
                // en-heaped edge has an up-to-date key. Full providers use
                // their current α if this iteration settled them, otherwise
                // the last known value (Algorithm 4 keeps stale α's); the
                // potential lag is always current.
                let (alpha, lag) = if engine.provider_full(qi) {
                    let a = if engine.provider_settled(qi) {
                        engine.provider_alpha(qi)
                    } else {
                        heap.alpha_raw[qi]
                    };
                    (a, engine.provider_tau_lag(qi))
                } else {
                    (0.0, 0.0)
                };
                heap.refill(qi, source, alpha, lag);
            }
            if !have_sp {
                engine.begin_iteration();
                have_sp = true;
            }
            // Lines 10–12: refresh keys of full providers whose α changed in
            // this Dijkstra execution.
            refresh_full_keys(&engine, &mut heap, providers.len());
            if engine.sp_valid(heap.top_key()) {
                engine.commit();
                done += 1;
                // Batched same-path augmentation: after the commit the path's
                // arcs all have reduced cost 0, so while it keeps residual
                // capacity a fresh Dijkstra would re-find it at reduced
                // length 0 and the potential update would be a no-op. Skip
                // those searches: re-validate with Theorem 1 (α_t = 0,
                // against a conservative Φ that drops possibly-stale α
                // terms) and push another unit along the identical arcs.
                // This collapses the per-unit iterations of weighted
                // instances (e.g. CA's concise matching) into one search.
                while done < gamma
                    && engine.last_path_residual()
                    && engine.zero_sp_valid(conservative_phi(&engine, &heap))
                {
                    engine.recommit();
                    done += 1;
                }
                break;
            }
            engine.note_invalid();
            if source.abort_reason().is_some() {
                // The streams dried up because the query aborted, not
                // because the edge set is complete: stop with what we have.
                break 'outer;
            }
            assert!(
                heap.top_key().is_finite() || engine.alpha_t().is_some(),
                "sink unreachable with the complete edge set: γ miscomputed"
            );
        }
    }

    let matching = engine.matching();
    let mut stats = engine.stats;
    stats.cpu_time = start.elapsed();
    (matching, stats)
}

/// A strictly conservative `Φ(E − Esub)` lower bound for the batched
/// re-commit test: like the heap keys, but with the α term of full providers
/// dropped. Stale α values (which Algorithm 4 keeps) may overestimate the
/// current reduced-cost distance; since true α ≥ 0 always, `lag + dist`
/// never does, so re-commits validated against this bound are exactly as
/// safe as fresh-search iterations.
fn conservative_phi(engine: &Engine, heap: &IdaHeap) -> f64 {
    let mut phi = f64::INFINITY;
    for (qi, pending) in heap.pending.iter().enumerate() {
        let Some(c) = pending else { continue };
        let key = if engine.provider_full(qi) {
            engine.provider_tau_lag(qi) + c.dist
        } else {
            c.dist
        };
        phi = phi.min(key);
    }
    phi
}

/// Applies Algorithm 4 lines 10–12, extended with the potential-lag
/// correction: every full provider's key is kept at
/// `α(q) + (τmax − τ(q)) + dist`, where α is the value observed by the most
/// recent search that settled `q` (stale values persist, as in the paper)
/// and the lag term is recomputed from the current potentials.
fn refresh_full_keys(engine: &Engine, heap: &mut IdaHeap, num_providers: usize) {
    for qi in 0..num_providers {
        if !engine.provider_full(qi) {
            continue;
        }
        if engine.provider_settled(qi) {
            heap.alpha_raw[qi] = engine.provider_alpha(qi);
        }
        let Some(c) = heap.pending[qi] else {
            continue;
        };
        let key = heap.alpha_raw[qi] + engine.provider_tau_lag(qi) + c.dist;
        if key != heap.key[qi] {
            heap.set_key(qi, key);
        }
    }
}
