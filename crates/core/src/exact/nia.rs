//! NIA — Nearest Neighbor Incremental Algorithm (Algorithm 3, §3.2).
//!
//! Edges are discovered one at a time by per-provider incremental NN search,
//! merged through a global min-heap keyed by edge *length*. The heap's top
//! is exactly `φ(E − Esub)`, so the Theorem-1 test is
//! `vmin.α ≤ TopKey(H) − τmax`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use cca_geo::{OrdF64, Point};

use crate::exact::engine::Engine;
use crate::exact::source::{CustomerSource, SourcedCustomer};
use crate::matching::Matching;
use crate::stats::AlgoStats;

/// NIA tuning.
#[derive(Clone, Copy, Debug)]
pub struct NiaConfig {
    /// Reuse Dijkstra state across edge insertions within an iteration
    /// (the PUA optimisation of §3.4.1). Disabled only for ablation.
    pub use_pua: bool,
}

impl Default for NiaConfig {
    fn default() -> Self {
        NiaConfig { use_pua: true }
    }
}

/// The per-provider candidate-edge heap shared conceptually with IDA; NIA
/// keys entries by plain edge length.
struct EdgeHeap {
    heap: BinaryHeap<Reverse<(OrdF64, u32)>>,
    pending: Vec<Option<SourcedCustomer>>,
}

impl EdgeHeap {
    fn new<S: CustomerSource>(num_providers: usize, source: &mut S) -> Self {
        let mut heap = BinaryHeap::new();
        let mut pending = Vec::with_capacity(num_providers);
        for qi in 0..num_providers {
            let c = source.next_nn(qi);
            if let Some(c) = c {
                heap.push(Reverse((OrdF64::new(c.dist), qi as u32)));
            }
            pending.push(c);
        }
        EdgeHeap { heap, pending }
    }

    /// `TopKey(H)`: the minimum length among undiscovered edges, or ∞ when
    /// every provider's stream is exhausted (then `E − Esub = ∅`).
    fn top_key(&self) -> f64 {
        self.heap
            .peek()
            .map_or(f64::INFINITY, |Reverse((k, _))| k.get())
    }

    /// Pops the shortest pending edge and refills that provider's slot from
    /// its NN stream.
    fn pop<S: CustomerSource>(&mut self, source: &mut S) -> Option<(usize, SourcedCustomer)> {
        let Reverse((_, qi)) = self.heap.pop()?;
        let qi = qi as usize;
        let cust = self.pending[qi].take().expect("heap entry implies pending");
        let next = source.next_nn(qi);
        if let Some(c) = next {
            self.heap.push(Reverse((OrdF64::new(c.dist), qi as u32)));
        }
        self.pending[qi] = next;
        Some((qi, cust))
    }
}

/// Runs NIA to the optimal matching.
pub fn nia<S: CustomerSource>(
    providers: &[(Point, u32)],
    source: &mut S,
    cfg: &NiaConfig,
) -> (Matching, AlgoStats) {
    let start = Instant::now();
    let mut engine = Engine::new(providers, source.num_customers());
    engine.set_context(source.context());
    engine.skip_fast_phase();
    let gamma = engine.total_capacity().min(source.total_weight());
    let mut heap = EdgeHeap::new(providers.len(), source);

    let mut done = 0u64;
    'outer: while done < gamma {
        // One SSPA iteration (Algorithm 3 lines 6–17): keep de-heaping and
        // inserting edges until the Theorem-1 test validates the sp.
        let mut have_sp = false;
        loop {
            if source.abort_reason().is_some() {
                // Aborted (cancelled / deadline / I/O budget): the streams
                // are dry by construction, so stop with the partial result.
                break 'outer;
            }
            if let Some((qi, c)) = heap.pop(source) {
                if have_sp && cfg.use_pua {
                    engine.insert_edge_reoptimize(qi, c.id, c.pos, c.weight, c.dist);
                } else {
                    engine.insert_edge(qi, c.id, c.pos, c.weight, c.dist);
                    have_sp = false; // fresh Dijkstra required
                }
            } else {
                assert!(
                    have_sp || engine.stats.esub_edges > 0,
                    "NN streams exhausted before any edge was produced"
                );
            }
            if !have_sp {
                engine.begin_iteration();
                have_sp = true;
            }
            if engine.sp_valid(heap.top_key()) {
                engine.commit();
                done += 1;
                break;
            }
            engine.note_invalid();
            if source.abort_reason().is_some() {
                // The streams dried up because the query aborted mid-pop
                // (e.g. the refill's fault tripped the budget), not because
                // the edge set is complete: stop with what we have.
                break 'outer;
            }
            assert!(
                heap.top_key().is_finite() || engine.alpha_t().is_some(),
                "sink unreachable with the complete edge set: γ miscomputed"
            );
        }
    }

    let matching = engine.matching();
    let mut stats = engine.stats;
    stats.cpu_time = start.elapsed();
    (matching, stats)
}
