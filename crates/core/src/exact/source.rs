//! Customer sources: where the incremental algorithms get their edges from.
//!
//! RIA/NIA/IDA are defined against a disk-resident, R-tree-indexed customer
//! set (§3), while the approximate algorithms re-run IDA on small in-memory
//! sets (provider representatives vs. `P`, or `Q` vs. customer
//! representatives, §4). [`CustomerSource`] abstracts over both so the same
//! algorithm code serves every phase.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cca_geo::{OrdF64, Point};
use cca_rtree::{GroupAnn, IncNn, RTree};
use cca_storage::{AbortReason, QueryContext};

/// A customer record yielded by a source.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SourcedCustomer {
    /// Stable identifier (index into `P`, or representative id).
    pub id: u64,
    pub pos: Point,
    /// Weight: 1 for ordinary customers, `g.w` for CA representatives.
    pub weight: u32,
    /// Distance from the querying provider.
    pub dist: f64,
}

/// Incremental access to customers, per provider.
pub trait CustomerSource {
    /// Upper bound (exclusive) on customer ids.
    fn num_customers(&self) -> usize;

    /// Total customer weight `Σ p.w` (the `|P|` side of γ).
    fn total_weight(&self) -> u64;

    /// Next nearest unreturned customer of provider `qi`, or `None` when the
    /// set is exhausted for this provider.
    fn next_nn(&mut self, qi: usize) -> Option<SourcedCustomer>;

    /// Customers with `lo < dist(q_i, p) ≤ hi` (or `dist ≤ hi` when
    /// `include_lo`), for RIA's (annular) range searches.
    fn range(&mut self, qi: usize, lo: f64, hi: f64, include_lo: bool) -> Vec<SourcedCustomer>;

    /// The [`QueryContext`] governing this source, if any. The shared
    /// incremental-SSPA engine reads it off the source so its CPU-bound
    /// Dijkstra loops poll the same deadline/cancellation the I/O path
    /// enforces — one context governs the whole query.
    fn context(&self) -> Option<&QueryContext> {
        None
    }

    /// Why the source's query context aborted, if it did. A source that
    /// aborts makes its NN streams dry up and its range searches come back
    /// empty; the algorithm drivers poll this at their loop heads and
    /// unwind with a partial matching instead of spinning on an exhausted
    /// source. Sources without a context never abort.
    fn abort_reason(&self) -> Option<AbortReason> {
        self.context().and_then(|c| c.abort_reason())
    }
}

/// Forwarding impl so trait objects (`&mut dyn CustomerSource`) satisfy the
/// generic `ida`/`nia`/`ria` entry points — the [`crate::solver`] pipeline
/// hands sources around as trait objects.
impl<T: CustomerSource + ?Sized> CustomerSource for &mut T {
    fn num_customers(&self) -> usize {
        (**self).num_customers()
    }

    fn total_weight(&self) -> u64 {
        (**self).total_weight()
    }

    fn next_nn(&mut self, qi: usize) -> Option<SourcedCustomer> {
        (**self).next_nn(qi)
    }

    fn range(&mut self, qi: usize, lo: f64, hi: f64, include_lo: bool) -> Vec<SourcedCustomer> {
        (**self).range(qi, lo, hi, include_lo)
    }

    fn context(&self) -> Option<&QueryContext> {
        (**self).context()
    }

    fn abort_reason(&self) -> Option<AbortReason> {
        (**self).abort_reason()
    }
}

/// Customers indexed by the disk-resident R-tree (the paper's primary
/// setting). NN streams are either one [`IncNn`] cursor per provider or the
/// grouped incremental ANN of §3.4.2.
pub struct RtreeSource<'t> {
    tree: &'t RTree,
    providers: Vec<Point>,
    cursors: Cursors<'t>,
    /// Query context shared by every cursor and range search this source
    /// issues: the whole query's tree traffic lands in one place, and one
    /// abort (cancellation / deadline / I/O budget) stops every cursor.
    ctx: Option<QueryContext>,
}

enum Cursors<'t> {
    Plain(Vec<IncNn<'t>>),
    Grouped {
        groups: Vec<GroupAnn<'t>>,
        /// provider index → (group, member index within group)
        map: Vec<(u32, u32)>,
    },
}

impl<'t> RtreeSource<'t> {
    /// One independent incremental-NN cursor per provider.
    pub fn new(tree: &'t RTree, providers: Vec<Point>) -> Self {
        Self::new_ctx(tree, providers, None)
    }

    /// [`RtreeSource::new`] with all traversal I/O charged to `ctx` and
    /// every cursor subject to its abort checks.
    pub fn new_ctx(tree: &'t RTree, providers: Vec<Point>, ctx: Option<&QueryContext>) -> Self {
        let cursors = Cursors::Plain(providers.iter().map(|&q| tree.inc_nn_ctx(q, ctx)).collect());
        RtreeSource {
            tree,
            providers,
            cursors,
            ctx: ctx.cloned(),
        }
    }

    /// Grouped incremental ANN (§3.4.2): providers are Hilbert-sorted and cut
    /// into groups of `group_size`; members of a group share R-tree reads.
    pub fn with_ann_groups(tree: &'t RTree, providers: Vec<Point>, group_size: usize) -> Self {
        Self::with_ann_groups_ctx(tree, providers, group_size, None)
    }

    /// [`RtreeSource::with_ann_groups`] with all traversal I/O charged to
    /// `ctx` and every group heap subject to its abort checks.
    pub fn with_ann_groups_ctx(
        tree: &'t RTree,
        providers: Vec<Point>,
        group_size: usize,
        ctx: Option<&QueryContext>,
    ) -> Self {
        assert!(group_size >= 1);
        let order = cca_geo::hilbert::sort_by_hilbert(&providers, cca_geo::WORLD_SIZE);
        let mut groups = Vec::new();
        let mut map = vec![(0u32, 0u32); providers.len()];
        for chunk in order.chunks(group_size) {
            let gidx = groups.len() as u32;
            let members: Vec<Point> = chunk.iter().map(|&i| providers[i]).collect();
            for (m, &i) in chunk.iter().enumerate() {
                map[i] = (gidx, m as u32);
            }
            groups.push(tree.group_ann_ctx(members, ctx));
        }
        RtreeSource {
            tree,
            providers,
            cursors: Cursors::Grouped { groups, map },
            ctx: ctx.cloned(),
        }
    }
}

impl CustomerSource for RtreeSource<'_> {
    fn num_customers(&self) -> usize {
        self.tree.len()
    }

    fn total_weight(&self) -> u64 {
        self.tree.len() as u64
    }

    fn next_nn(&mut self, qi: usize) -> Option<SourcedCustomer> {
        let hit = match &mut self.cursors {
            Cursors::Plain(cursors) => cursors[qi].next(),
            Cursors::Grouped { groups, map } => {
                let (g, m) = map[qi];
                groups[g as usize].next_nn(m as usize)
            }
        };
        hit.map(|(pos, id, dist)| SourcedCustomer {
            id,
            pos,
            weight: 1,
            dist,
        })
    }

    fn range(&mut self, qi: usize, lo: f64, hi: f64, include_lo: bool) -> Vec<SourcedCustomer> {
        let q = self.providers[qi];
        let ctx = self.ctx.as_ref();
        let hits = if include_lo {
            self.tree.range_search_ctx(q, hi, ctx)
        } else {
            self.tree.annular_range_search_ctx(q, lo, hi, ctx)
        };
        // An aborted search yields nothing; the driver sees the abort via
        // `abort_reason` and stops extending its range.
        hits.unwrap_or_default()
            .into_iter()
            .map(|(pos, id, dist)| SourcedCustomer {
                id,
                pos,
                weight: 1,
                dist,
            })
            .collect()
    }

    fn context(&self) -> Option<&QueryContext> {
        self.ctx.as_ref()
    }
}

/// In-memory customers with optional weights; used for the approximate
/// algorithms' concise matching and refinement phases, and handy in tests.
///
/// Per-provider NN streams are lazily-popped min-heaps: heapify is O(n)
/// where a full sort would be O(n log n), and the incremental algorithms
/// consume only a short prefix of each stream before the Theorem-1 bound
/// cuts discovery off.
///
/// A memory source performs no I/O, but it may still carry a
/// [`QueryContext`] ([`MemorySource::with_context`]): the CPU-bound driver
/// and engine loops then poll the context's deadline/cancellation, so even
/// an all-in-memory solve (SSPA on a drained graph, CA's concise matching)
/// cannot overshoot its deadline.
pub struct MemorySource {
    customers: Vec<(Point, u32)>,
    /// Per provider: min-heap of (dist, id), popped on demand. Ties break on
    /// the lower customer id, matching a stable sort by distance.
    streams: Vec<BinaryHeap<Reverse<(OrdF64, u32)>>>,
    providers: Vec<Point>,
    ctx: Option<QueryContext>,
}

impl MemorySource {
    pub fn new(providers: Vec<Point>, customers: Vec<(Point, u32)>) -> Self {
        let streams = providers
            .iter()
            .map(|q| {
                customers
                    .iter()
                    .enumerate()
                    .map(|(id, &(pos, _))| Reverse((OrdF64::new(q.dist(&pos)), id as u32)))
                    .collect::<BinaryHeap<_>>()
            })
            .collect();
        MemorySource {
            customers,
            streams,
            providers,
            ctx: None,
        }
    }

    /// Attaches the query context whose deadline/cancellation governs the
    /// CPU-bound phases run over this source.
    pub fn with_context(mut self, ctx: Option<&QueryContext>) -> Self {
        self.ctx = ctx.cloned();
        self
    }

    /// Position and weight of customer `id`.
    pub fn customer(&self, id: u64) -> (Point, u32) {
        self.customers[usize::try_from(id).expect("id fits usize")]
    }
}

impl CustomerSource for MemorySource {
    fn num_customers(&self) -> usize {
        self.customers.len()
    }

    fn total_weight(&self) -> u64 {
        self.customers.iter().map(|&(_, w)| u64::from(w)).sum()
    }

    fn next_nn(&mut self, qi: usize) -> Option<SourcedCustomer> {
        let Reverse((dist, id)) = self.streams[qi].pop()?;
        let (pos, weight) = self.customers[id as usize];
        Some(SourcedCustomer {
            id: u64::from(id),
            pos,
            weight,
            dist: dist.get(),
        })
    }

    fn range(&mut self, qi: usize, lo: f64, hi: f64, include_lo: bool) -> Vec<SourcedCustomer> {
        let q = self.providers[qi];
        self.customers
            .iter()
            .enumerate()
            .filter_map(|(id, &(pos, weight))| {
                let d = q.dist(&pos);
                let above = if include_lo { d >= lo } else { d > lo };
                (above && d <= hi).then_some(SourcedCustomer {
                    id: id as u64,
                    pos,
                    weight,
                    dist: d,
                })
            })
            .collect()
    }

    fn context(&self) -> Option<&QueryContext> {
        self.ctx.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_storage::PageStore;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)))
            .collect()
    }

    #[test]
    fn memory_source_streams_ascending() {
        let customers: Vec<(Point, u32)> =
            random_points(100, 1).into_iter().map(|p| (p, 1)).collect();
        let providers = random_points(3, 2);
        let mut src = MemorySource::new(providers, customers);
        for qi in 0..3 {
            let mut last = 0.0;
            let mut n = 0;
            while let Some(c) = src.next_nn(qi) {
                assert!(c.dist >= last);
                last = c.dist;
                n += 1;
            }
            assert_eq!(n, 100);
        }
    }

    #[test]
    fn memory_source_range_matches_brute() {
        let customers: Vec<(Point, u32)> =
            random_points(200, 3).into_iter().map(|p| (p, 1)).collect();
        let providers = random_points(1, 4);
        let q = providers[0];
        let mut src = MemorySource::new(providers, customers.clone());
        let got = src.range(0, 0.0, 100.0, true);
        let want = customers
            .iter()
            .filter(|&&(p, _)| q.dist(&p) <= 100.0)
            .count();
        assert_eq!(got.len(), want);
    }

    #[test]
    fn rtree_source_matches_memory_source_streams() {
        let pts = random_points(500, 5);
        let items: Vec<(Point, u64)> = pts
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as u64))
            .collect();
        let tree = RTree::bulk_load(PageStore::with_config(1024, 2048), &items);
        let providers = random_points(4, 6);

        let mut rt = RtreeSource::new(&tree, providers.clone());
        let mut mem = MemorySource::new(providers.clone(), pts.iter().map(|&p| (p, 1)).collect());
        for qi in 0..providers.len() {
            for _ in 0..50 {
                let a = rt.next_nn(qi).unwrap();
                let b = mem.next_nn(qi).unwrap();
                assert!((a.dist - b.dist).abs() < 1e-12);
            }
        }
        assert_eq!(rt.total_weight(), 500);
        assert_eq!(mem.total_weight(), 500);
    }

    #[test]
    fn grouped_source_yields_same_distances_as_plain() {
        let pts = random_points(400, 7);
        let items: Vec<(Point, u64)> = pts
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as u64))
            .collect();
        let tree = RTree::bulk_load(PageStore::with_config(1024, 2048), &items);
        let providers = random_points(10, 8);

        let mut plain = RtreeSource::new(&tree, providers.clone());
        let mut grouped = RtreeSource::with_ann_groups(&tree, providers.clone(), 4);
        for qi in 0..providers.len() {
            for _ in 0..30 {
                let a = plain.next_nn(qi).unwrap();
                let b = grouped.next_nn(qi).unwrap();
                assert!(
                    (a.dist - b.dist).abs() < 1e-12,
                    "qi={qi}: {} vs {}",
                    a.dist,
                    b.dist
                );
            }
        }
    }

    #[test]
    fn weighted_memory_source_total_weight() {
        let customers = vec![(Point::new(0.0, 0.0), 3), (Point::new(1.0, 1.0), 5)];
        let src = MemorySource::new(vec![Point::new(0.0, 0.0)], customers);
        assert_eq!(src.total_weight(), 8);
        assert_eq!(src.num_customers(), 2);
        assert_eq!(src.customer(1).1, 5);
    }
}
