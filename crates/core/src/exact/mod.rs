//! Exact CCA algorithms (§3): RIA, NIA, IDA over a shared incremental-SSPA
//! engine.

pub mod engine;
pub mod ida;
pub mod nia;
pub mod ria;
pub mod source;

pub use engine::Engine;
pub use ida::{ida, IdaConfig, IdaKeyMode};
pub use nia::{nia, NiaConfig};
pub use ria::{ria, RiaConfig};
pub use source::{CustomerSource, MemorySource, RtreeSource, SourcedCustomer};

#[cfg(test)]
mod tests {
    use super::*;
    use cca_flow::sspa::{solve_complete_bipartite, FlowProvider};
    use cca_geo::Point;
    use cca_testutil::{build_tree, optimal_cost, random_instance};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Runs all three exact algorithms on both source kinds and checks that
    /// each yields a valid matching with the optimal cost.
    fn check_all_exact(seed: u64, nq: usize, np: usize, max_cap: u32) {
        let (providers, customers) = random_instance(seed, nq, np, max_cap);
        let want = optimal_cost(&providers, &customers);
        let tree = build_tree(&customers);
        let qpos: Vec<Point> = providers.iter().map(|&(p, _)| p).collect();

        // RIA over the R-tree (large theta keeps the test fast).
        let mut src = RtreeSource::new(&tree, qpos.clone());
        let (m, _) = ria(&providers, &mut src, &RiaConfig { theta: 25.0 });
        m.validate_unit(&providers, &customers).unwrap();
        assert!(
            (m.cost() - want).abs() < 1e-6,
            "seed {seed}: RIA {} vs optimal {want}",
            m.cost()
        );

        // NIA.
        let mut src = RtreeSource::new(&tree, qpos.clone());
        let (m, _) = nia(&providers, &mut src, &NiaConfig::default());
        m.validate_unit(&providers, &customers).unwrap();
        assert!(
            (m.cost() - want).abs() < 1e-6,
            "seed {seed}: NIA {} vs optimal {want}",
            m.cost()
        );

        // NIA without PUA (ablation path must stay correct).
        let mut src = RtreeSource::new(&tree, qpos.clone());
        let (m, _) = nia(&providers, &mut src, &NiaConfig { use_pua: false });
        assert!((m.cost() - want).abs() < 1e-6, "seed {seed}: NIA/noPUA");

        // IDA in both key modes, with and without the fast phase.
        for key_mode in [IdaKeyMode::Paper, IdaKeyMode::Safe] {
            for disable_fast_phase in [false, true] {
                let mut src = RtreeSource::new(&tree, qpos.clone());
                let cfg = IdaConfig {
                    key_mode,
                    disable_fast_phase,
                    disable_pua: false,
                };
                let (m, _) = ida(&providers, &mut src, &cfg);
                m.validate_unit(&providers, &customers).unwrap();
                assert!(
                    (m.cost() - want).abs() < 1e-6,
                    "seed {seed}: IDA({key_mode:?}, nofast={disable_fast_phase}) {} vs {want}",
                    m.cost()
                );
            }
        }

        // IDA over the grouped-ANN source.
        let mut src = RtreeSource::with_ann_groups(&tree, qpos.clone(), 4);
        let (m, _) = ida(&providers, &mut src, &IdaConfig::default());
        assert!((m.cost() - want).abs() < 1e-6, "seed {seed}: IDA/ANN");

        // IDA over the in-memory source (the approximation phases rely on
        // this combination).
        let mut src = MemorySource::new(qpos, customers.iter().map(|&p| (p, 1)).collect());
        let (m, _) = ida(&providers, &mut src, &IdaConfig::default());
        assert!((m.cost() - want).abs() < 1e-6, "seed {seed}: IDA/mem");
    }

    #[test]
    fn exact_algorithms_match_sspa_small() {
        check_all_exact(1, 3, 12, 3);
    }

    #[test]
    fn exact_algorithms_match_sspa_surplus_capacity() {
        // Σk > |P|: some providers stay underutilised.
        check_all_exact(2, 4, 6, 5);
    }

    #[test]
    fn exact_algorithms_match_sspa_surplus_customers() {
        // Σk < |P|: some customers stay unmatched.
        check_all_exact(3, 2, 25, 4);
    }

    #[test]
    fn exact_algorithms_match_sspa_unit_capacities() {
        // One-to-one matching (the classical assignment problem).
        check_all_exact(4, 8, 8, 1);
    }

    #[test]
    fn exact_algorithms_match_sspa_medium() {
        check_all_exact(5, 10, 120, 8);
    }

    #[test]
    fn exact_single_provider() {
        check_all_exact(6, 1, 30, 10);
    }

    #[test]
    fn weighted_customers_memory_source_optimal() {
        // Weighted reps (CA concise matching): compare against the
        // complete-bipartite solver with the same weights.
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..10 {
            let nq = rng.random_range(2..5);
            let nr = rng.random_range(2..8);
            let providers: Vec<(Point, u32)> = (0..nq)
                .map(|_| {
                    (
                        Point::new(rng.random_range(0.0..500.0), rng.random_range(0.0..500.0)),
                        rng.random_range(1..6),
                    )
                })
                .collect();
            let reps: Vec<(Point, u32)> = (0..nr)
                .map(|_| {
                    (
                        Point::new(rng.random_range(0.0..500.0), rng.random_range(0.0..500.0)),
                        rng.random_range(1..5),
                    )
                })
                .collect();
            let fps: Vec<FlowProvider> = providers
                .iter()
                .map(|&(pos, cap)| FlowProvider { pos, cap })
                .collect();
            let fcs: Vec<cca_flow::FlowCustomer> = reps
                .iter()
                .map(|&(pos, weight)| cca_flow::FlowCustomer { pos, weight })
                .collect();
            let (want, _) = solve_complete_bipartite(&fps, &fcs);

            let qpos: Vec<Point> = providers.iter().map(|&(p, _)| p).collect();
            let mut src = MemorySource::new(qpos, reps.clone());
            let (m, _) = ida(&providers, &mut src, &IdaConfig::default());
            assert_eq!(m.size(), want.size(), "trial {trial}");
            assert!(
                (m.cost() - want.cost).abs() < 1e-6,
                "trial {trial}: IDA weighted {} vs SSPA {}",
                m.cost(),
                want.cost
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_ida_paper_mode_is_optimal(seed in 0u64..100_000,
                                          nq in 1usize..8,
                                          np in 1usize..60,
                                          max_cap in 1u32..6) {
            let (providers, customers) = random_instance(seed, nq, np, max_cap);
            let want = optimal_cost(&providers, &customers);
            let tree = build_tree(&customers);
            let qpos: Vec<Point> = providers.iter().map(|&(p, _)| p).collect();
            let mut src = RtreeSource::new(&tree, qpos);
            let (m, _) = ida(&providers, &mut src, &IdaConfig::default());
            prop_assert!(m.validate_unit(&providers, &customers).is_ok());
            prop_assert!((m.cost() - want).abs() < 1e-6,
                         "IDA {} vs optimal {}", m.cost(), want);
        }

        #[test]
        fn prop_nia_is_optimal(seed in 0u64..100_000,
                               nq in 1usize..6,
                               np in 1usize..40,
                               max_cap in 1u32..5) {
            let (providers, customers) = random_instance(seed, nq, np, max_cap);
            let want = optimal_cost(&providers, &customers);
            let tree = build_tree(&customers);
            let qpos: Vec<Point> = providers.iter().map(|&(p, _)| p).collect();
            let mut src = RtreeSource::new(&tree, qpos);
            let (m, _) = nia(&providers, &mut src, &NiaConfig::default());
            prop_assert!((m.cost() - want).abs() < 1e-6,
                         "NIA {} vs optimal {}", m.cost(), want);
        }
    }
}
