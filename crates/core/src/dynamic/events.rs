//! Event vocabulary and reporting types of the continuous engine.

use cca_geo::Point;
use cca_storage::AbortReason;

/// One change to the dynamic world, applied via
/// [`crate::dynamic::ContinuousAssignment::apply`].
///
/// `cca-datagen`'s `StreamEvent` mirrors this enum one-to-one (datagen sits
/// below core in the crate layering, so the conversion lives with callers).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WorldEvent {
    /// A new customer appears. `id` must be fresh — ids are never reused.
    CustomerArrive { id: u64, pos: Point },
    /// The live customer `id` leaves.
    CustomerDepart { id: u64 },
    /// Provider `index` gains or loses capacity (clamped at zero; a cut
    /// below the provider's current load evicts its farthest customers).
    ProviderCapacityDelta { index: usize, delta: i32 },
    /// Provider `index` relocates.
    ProviderMove { index: usize, to: Point },
}

/// How an event's re-optimization was carried out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairKind {
    /// The matching was already maximal (and the event needed no
    /// re-optimization), so no solve ran.
    None,
    /// A bounded-neighbourhood repair around the event's epicenter.
    Local,
    /// A full re-solve (dirty-fraction threshold crossed, or the local
    /// neighbourhood could not absorb the deficit).
    Full,
}

/// What [`crate::dynamic::ContinuousAssignment::apply`] did for one event.
#[derive(Clone, Copy, Debug)]
pub struct EventReport {
    /// The repair tier that ran (the world change itself always commits).
    pub repair: RepairKind,
    /// Set when the repair phase was cut short by the event's
    /// [`cca_storage::QueryContext`]. The engine then still holds the last
    /// committed feasible matching; call
    /// [`crate::dynamic::ContinuousAssignment::repair`] to finish the work.
    pub aborted: Option<AbortReason>,
    /// Units still missing versus `γ = min(|P|, Σk)` after this event
    /// (non-zero only after an aborted or exhausted repair).
    pub deficit: u64,
}

/// Running counters of a [`crate::dynamic::ContinuousAssignment`].
#[derive(Clone, Copy, Debug, Default)]
pub struct DynamicStats {
    /// Events applied, by kind.
    pub arrivals: u64,
    pub departures: u64,
    pub capacity_events: u64,
    pub moves: u64,
    /// Customers evicted by capacity cuts (they re-enter via repair).
    pub evicted: u64,
    /// Bounded-neighbourhood repairs that ran (including expansions).
    pub local_repairs: u64,
    /// Neighbourhood expansions beyond the first round.
    pub expansions: u64,
    /// Full re-solves, and how many of them resumed warm from the
    /// incrementally maintained SSPA cache.
    pub full_resolves: u64,
    pub warm_full_resolves: u64,
    /// Repairs cut short by a context abort.
    pub aborted_repairs: u64,
}

/// Tuning of the continuous engine.
#[derive(Clone, Copy, Debug)]
pub struct ContinuousConfig {
    /// Providers forming the first repair neighbourhood (doubled per
    /// expansion round).
    pub neighborhood_providers: usize,
    /// Customer-candidate radius as a multiple of the epicenter's distance
    /// to its farthest neighbourhood provider.
    pub radius_factor: f64,
    /// Cap on customers pulled from the R-tree per repair round (doubled
    /// per expansion round).
    pub candidate_scan_cap: usize,
    /// Expansion rounds before a local repair gives up and the engine falls
    /// back to a full re-solve.
    pub max_expansions: u32,
    /// Dirty fraction (events since the last full solve / live customers)
    /// above which the engine re-solves from scratch instead of patching.
    pub dirty_threshold: f64,
    /// Largest `|Q|·|P|` for which full re-solves use the in-memory SSPA
    /// (warm-started from the maintained cache); above it they run IDA over
    /// the customer set and the cache is left inactive.
    pub sspa_edge_limit: usize,
    /// Page size of the engine-owned customer R-tree.
    pub page_size: usize,
    /// Buffer-pool pages of the engine-owned customer R-tree.
    pub buffer_pages: usize,
}

impl Default for ContinuousConfig {
    fn default() -> Self {
        ContinuousConfig {
            neighborhood_providers: 8,
            radius_factor: 1.6,
            candidate_scan_cap: 64,
            max_expansions: 3,
            dirty_threshold: 0.25,
            sspa_edge_limit: 1_500_000,
            page_size: 1024,
            buffer_pages: 4096,
        }
    }
}
