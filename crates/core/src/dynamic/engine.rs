//! The incremental re-solve engine.

use std::collections::HashMap;

use cca_flow::sspa::{
    solve_complete_bipartite_ctx, solve_complete_bipartite_warm_ctx, CacheDelta, FlowCustomer,
    FlowProvider, SspaCache,
};
use cca_geo::Point;
use cca_rtree::RTree;
use cca_storage::{Aborted, PageStore, QueryContext};

use crate::matching::{MatchPair, Matching};
use crate::solver::{Problem, SolverConfig, SolverRegistry};

use super::events::{ContinuousConfig, DynamicStats, EventReport, RepairKind, WorldEvent};

/// A feasible CCA matching maintained under a stream of world events.
///
/// Each [`ContinuousAssignment::apply`] runs in two phases:
///
/// 1. **Commit** — the world change itself (customer list, R-tree
///    maintenance, provider capacities, SSPA-cache delta). This phase is
///    infallible and conservative: it only ever *removes* assignment (a
///    departing customer's pair; evictions under a capacity cut), so the
///    matching stays feasible no matter what happens next. Page traffic is
///    charged to the event's [`QueryContext`], but maintenance is atomic —
///    an exhausted budget never tears the index.
/// 2. **Repair** — re-optimization, and the only abortable phase. The
///    engine patches a bounded neighbourhood around the event (K nearest
///    providers, their local assignees and nearby unmatched customers via
///    `knn_within_ctx`, then one small SSPA over that sub-instance spliced
///    back), expanding the neighbourhood up to
///    [`ContinuousConfig::max_expansions`] times; when the accumulated
///    dirty fraction crosses [`ContinuousConfig::dirty_threshold`] — or the
///    neighbourhood cannot absorb the deficit — it falls back to a full
///    re-solve, warm-started from the incrementally maintained
///    [`SspaCache`] when the instance fits the in-memory SSPA. An abort
///    unwinds to the phase-1 matching; [`ContinuousAssignment::repair`]
///    finishes the work later.
///
/// Customers are stored densely (slot order); departures swap the last slot
/// in, mirroring [`CacheDelta::RemoveCustomer`]'s index semantics exactly so
/// the cached SSPA state tracks the engine's solve order.
pub struct ContinuousAssignment {
    cfg: ContinuousConfig,
    providers: Vec<(Point, u32)>,
    /// Dense live-customer positions (slot order = SSPA solve order).
    customers: Vec<Point>,
    /// Slot → stable external id (ids are never reused).
    ids: Vec<u64>,
    slot_of: HashMap<u64, usize>,
    /// Slot → assigned provider.
    assigned: Vec<Option<u32>>,
    load: Vec<u32>,
    size: u64,
    tree: RTree,
    cache: SspaCache,
    /// Events since the last full re-solve.
    dirty: usize,
    stats: DynamicStats,
    registry: SolverRegistry,
}

impl ContinuousAssignment {
    /// Bulk-loads the customer index, solves the initial instance from
    /// scratch and starts the engine on that matching. Initial customer ids
    /// are their indices; arrivals continue the sequence.
    pub fn build(
        providers: Vec<(Point, u32)>,
        customers: Vec<Point>,
        cfg: ContinuousConfig,
    ) -> Self {
        let items: Vec<(Point, u64)> = customers
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as u64))
            .collect();
        let tree = RTree::bulk_load(
            PageStore::with_config(cfg.page_size, cfg.buffer_pages),
            &items,
        );
        let num_providers = providers.len();
        let mut engine = ContinuousAssignment {
            cfg,
            providers,
            ids: (0..customers.len() as u64).collect(),
            slot_of: customers
                .iter()
                .enumerate()
                .map(|(i, _)| (i as u64, i))
                .collect(),
            assigned: vec![None; customers.len()],
            load: vec![0; num_providers],
            size: 0,
            customers,
            tree,
            cache: SspaCache::new(),
            dirty: 0,
            stats: DynamicStats::default(),
            registry: SolverRegistry::with_defaults(),
        };
        engine
            .full_resolve(None)
            .expect("no context on the initial solve, no abort");
        engine
    }

    /// Applies one event: commits the world change (always), then repairs
    /// the matching (unless the event's context aborts the repair — the
    /// report says so, and the engine keeps the last feasible matching).
    pub fn apply(&mut self, event: WorldEvent, ctx: Option<&QueryContext>) -> EventReport {
        let (epicenter, needs_opt) = self.commit(event, ctx);
        match self.repair_at(epicenter, needs_opt, ctx) {
            Ok(repair) => EventReport {
                repair,
                aborted: None,
                deficit: self.deficit(),
            },
            Err(aborted) => {
                self.stats.aborted_repairs += 1;
                EventReport {
                    repair: RepairKind::None,
                    aborted: Some(aborted.reason),
                    deficit: self.deficit(),
                }
            }
        }
    }

    /// Phase 1: the infallible world change. Returns the event's epicenter
    /// for the repair phase, plus whether the event can degrade the
    /// matching's *cost* even while it stays maximal (then the repair phase
    /// re-optimizes the neighbourhood even at deficit zero: an arrival may
    /// undercut a standing pair, a matched departure or a capacity change
    /// frees slots others could rebalance into, a move changes every
    /// incident cost).
    fn commit(&mut self, event: WorldEvent, ctx: Option<&QueryContext>) -> (Point, bool) {
        self.dirty += 1;
        match event {
            WorldEvent::CustomerArrive { id, pos } => {
                assert!(
                    !self.slot_of.contains_key(&id),
                    "customer id {id} already live (ids are never reused)"
                );
                self.stats.arrivals += 1;
                let slot = self.customers.len();
                self.customers.push(pos);
                self.ids.push(id);
                self.assigned.push(None);
                self.slot_of.insert(id, slot);
                self.tree.insert_ctx(pos, id, ctx);
                if self.cache_active() {
                    let fp = self.flow_providers();
                    self.cache.apply_delta(CacheDelta::AddCustomer {
                        pos,
                        weight: 1,
                        providers: &fp,
                    });
                }
                (pos, true)
            }
            WorldEvent::CustomerDepart { id } => {
                let slot = *self
                    .slot_of
                    .get(&id)
                    .unwrap_or_else(|| panic!("departure of unknown customer {id}"));
                self.stats.departures += 1;
                let pos = self.customers[slot];
                let was_matched = self.assigned[slot].is_some();
                if let Some(q) = self.assigned[slot] {
                    self.load[q as usize] -= 1;
                    self.size -= 1;
                }
                self.tree.delete_ctx(pos, id, ctx);
                // Swap-with-last, mirrored into the cache's index space.
                self.customers.swap_remove(slot);
                self.ids.swap_remove(slot);
                self.assigned.swap_remove(slot);
                self.slot_of.remove(&id);
                if slot < self.ids.len() {
                    self.slot_of.insert(self.ids[slot], slot);
                }
                if self.cache_active() {
                    self.cache.apply_delta(CacheDelta::RemoveCustomer {
                        index: slot,
                        weight: 1,
                    });
                } else {
                    self.cache.clear();
                }
                // An unmatched departure only shrinks the feasible set the
                // old optimum never used — no re-optimization to do.
                (pos, was_matched)
            }
            WorldEvent::ProviderCapacityDelta { index, delta } => {
                self.stats.capacity_events += 1;
                let (pos, old_cap) = self.providers[index];
                let new_cap = u32::try_from((i64::from(old_cap) + i64::from(delta)).max(0))
                    .expect("capacity fits u32");
                self.providers[index].1 = new_cap;
                // Conservative feasibility fix: shed the farthest customers
                // of an over-loaded provider; repair re-homes them.
                while self.load[index] > new_cap {
                    let victim = self
                        .assigned
                        .iter()
                        .enumerate()
                        .filter(|&(_, &a)| a == Some(index as u32))
                        .max_by(|a, b| {
                            let da = pos.dist(&self.customers[a.0]);
                            let db = pos.dist(&self.customers[b.0]);
                            da.total_cmp(&db)
                        })
                        .map(|(slot, _)| slot)
                        .expect("load > 0 implies an assignee");
                    self.assigned[victim] = None;
                    self.load[index] -= 1;
                    self.size -= 1;
                    self.stats.evicted += 1;
                }
                if self.cache_active() {
                    self.cache.apply_delta(CacheDelta::SetProviderCapacity {
                        index,
                        old_cap,
                        new_cap,
                    });
                } else {
                    self.cache.clear();
                }
                (pos, new_cap != old_cap)
            }
            WorldEvent::ProviderMove { index, to } => {
                self.stats.moves += 1;
                self.providers[index].0 = to;
                // Every incident cost changed; nothing certifiable remains.
                self.cache.apply_delta(CacheDelta::MoveProvider { index });
                (to, true)
            }
        }
    }

    /// Finishes any repair work left behind by an aborted event (or does
    /// nothing when the matching is already maximal). Epicenters are the
    /// unmatched customers themselves.
    pub fn repair(&mut self, ctx: Option<&QueryContext>) -> Result<RepairKind, Aborted> {
        let mut did = RepairKind::None;
        while self.deficit() > 0 {
            let slot = self
                .assigned
                .iter()
                .position(|a| a.is_none())
                .expect("deficit > 0 implies an unmatched customer");
            let kind = self.repair_at(self.customers[slot], false, ctx)?;
            if kind == RepairKind::None {
                // This epicenter's neighbourhood is saturated but capacity
                // exists elsewhere: only a full re-solve can route it.
                self.full_resolve(ctx)?;
                return Ok(RepairKind::Full);
            }
            did = kind;
            if kind == RepairKind::Full {
                break;
            }
        }
        Ok(did)
    }

    /// Phase 2 driver: dirty-threshold fallback, else expanding local
    /// repair, else full re-solve.
    fn repair_at(
        &mut self,
        epicenter: Point,
        force_local: bool,
        ctx: Option<&QueryContext>,
    ) -> Result<RepairKind, Aborted> {
        let live = self.customers.len().max(1);
        if self.dirty as f64 > self.cfg.dirty_threshold * live as f64 {
            self.full_resolve(ctx)?;
            return Ok(RepairKind::Full);
        }
        if self.deficit() == 0 && !force_local {
            return Ok(RepairKind::None);
        }
        if self.providers.is_empty() {
            return Ok(RepairKind::None);
        }
        let before = self.deficit();
        for round in 0..=self.cfg.max_expansions {
            if round > 0 {
                self.stats.expansions += 1;
            }
            self.local_repair(epicenter, round, ctx)?;
            if self.deficit() == 0 {
                return Ok(RepairKind::Local);
            }
        }
        if self.deficit() < before {
            // Progress but not closure: the rest of the deficit is not
            // local to this epicenter.
            return Ok(RepairKind::Local);
        }
        self.full_resolve(ctx)?;
        Ok(RepairKind::Full)
    }

    /// One bounded-neighbourhood repair round: K·2^round nearest providers,
    /// their locally present assignees plus nearby unmatched customers, one
    /// in-memory SSPA over the sub-instance, spliced back.
    ///
    /// The splice can only grow the matching: each local provider's
    /// sub-capacity counts its free slots plus its locally included
    /// assignees, so the sub-instance's γ is at least the number of pairs
    /// the splice removes.
    fn local_repair(
        &mut self,
        epicenter: Point,
        round: u32,
        ctx: Option<&QueryContext>,
    ) -> Result<(), Aborted> {
        self.stats.local_repairs += 1;
        let k = (self.cfg.neighborhood_providers << round).min(self.providers.len());
        let mut order: Vec<(f64, usize)> = self
            .providers
            .iter()
            .enumerate()
            .map(|(i, (p, _))| (p.dist(&epicenter), i))
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0));
        order.truncate(k);
        let radius = if k == self.providers.len() {
            f64::INFINITY
        } else {
            self.cfg.radius_factor * order[k - 1].0
        };
        let mut in_hood = vec![false; self.providers.len()];
        for &(_, i) in &order {
            in_hood[i] = true;
        }

        // Nearby customers: unmatched ones, and those assigned within the
        // neighbourhood (assignments to outside providers are not touched).
        let scan_cap = self.cfg.candidate_scan_cap << round;
        let scan = self.tree.knn_within_ctx(epicenter, scan_cap, radius, ctx)?;
        let mut slots: Vec<usize> = Vec::with_capacity(scan.len());
        let mut local_load = vec![0u32; k];
        let hood_index: HashMap<usize, usize> = order
            .iter()
            .enumerate()
            .map(|(j, &(_, i))| (i, j))
            .collect();
        let mut included = vec![false; self.customers.len()];
        for (_, id, _) in scan {
            let slot = self.slot_of[&id];
            match self.assigned[slot] {
                None => {
                    included[slot] = true;
                    slots.push(slot);
                }
                Some(q) if in_hood[q as usize] => {
                    local_load[hood_index[&(q as usize)]] += 1;
                    included[slot] = true;
                    slots.push(slot);
                }
                Some(_) => {}
            }
        }
        // The spatial scan finds the neighbourhood's *churn*; it can miss
        // the replacement the repair actually needs, because unmatched
        // customers live exactly where providers are not (that is why they
        // are unmatched). Pull the nearest unmatched customers directly so
        // a freed slot can always be refilled locally instead of
        // escalating to a full re-solve.
        if self.deficit() > 0 {
            let want = (16usize << round).min(self.customers.len());
            let mut free: Vec<(f64, usize)> = self
                .assigned
                .iter()
                .enumerate()
                .filter(|&(slot, a)| a.is_none() && !included[slot])
                .map(|(slot, _)| (self.customers[slot].dist(&epicenter), slot))
                .collect();
            free.sort_by(|a, b| a.0.total_cmp(&b.0));
            for &(_, slot) in free.iter().take(want) {
                included[slot] = true;
                slots.push(slot);
            }
        }
        if slots.is_empty() {
            return Ok(());
        }

        let sub_providers: Vec<FlowProvider> = order
            .iter()
            .enumerate()
            .map(|(j, &(_, i))| FlowProvider {
                pos: self.providers[i].0,
                // Free slots + locally included assignees: the splice below
                // can always re-install at least what it removes.
                cap: self.providers[i].1 - self.load[i] + local_load[j],
            })
            .collect();
        let sub_customers: Vec<FlowCustomer> = slots
            .iter()
            .map(|&s| FlowCustomer {
                pos: self.customers[s],
                weight: 1,
            })
            .collect();
        let (asg, _) = solve_complete_bipartite_ctx(&sub_providers, &sub_customers, ctx)
            .map_err(|fa| Aborted { reason: fa.reason })?;

        // Splice: release the local pairs, install the sub-solution.
        for &slot in &slots {
            if let Some(q) = self.assigned[slot].take() {
                self.load[q as usize] -= 1;
                self.size -= 1;
            }
        }
        for (qj, pj, units) in asg.pairs {
            debug_assert_eq!(units, 1);
            let q = order[qj].1;
            self.assigned[slots[pj]] = Some(q as u32);
            self.load[q] += 1;
            self.size += 1;
        }
        Ok(())
    }

    /// Full re-solve: in-memory SSPA (warm-startable from the maintained
    /// cache) when the instance fits, IDA over the customer set otherwise.
    fn full_resolve(&mut self, ctx: Option<&QueryContext>) -> Result<(), Aborted> {
        self.stats.full_resolves += 1;
        if self.cache_active() {
            let fp = self.flow_providers();
            let fc: Vec<FlowCustomer> = self
                .customers
                .iter()
                .map(|&pos| FlowCustomer { pos, weight: 1 })
                .collect();
            let (asg, sspa_stats) =
                solve_complete_bipartite_warm_ctx(&fp, &fc, ctx, Some(&self.cache))
                    .map_err(|fa| Aborted { reason: fa.reason })?;
            if sspa_stats.warm_started {
                self.stats.warm_full_resolves += 1;
            }
            self.assigned.fill(None);
            self.load.fill(0);
            self.size = 0;
            for (q, p, units) in asg.pairs {
                debug_assert_eq!(units, 1);
                self.assigned[p] = Some(q as u32);
                self.load[q] += 1;
                self.size += 1;
            }
        } else {
            self.cache.clear();
            let solver = self
                .registry
                .build(&SolverConfig::new("ida"))
                .expect("ida is registered");
            let problem = Problem::new(&self.providers).with_customers(&self.customers);
            let problem = match ctx {
                Some(c) => problem.with_context(c),
                None => problem,
            };
            let outcome = solver.run(&problem);
            if let Some(reason) = outcome.abort_reason() {
                // Keep the phase-1 matching: the partial solve is discarded
                // (it may be smaller than what we already hold).
                return Err(Aborted { reason });
            }
            let (matching, _) = outcome.into_parts();
            self.assigned.fill(None);
            self.load.fill(0);
            self.size = 0;
            for pair in matching.pairs {
                let slot = usize::try_from(pair.customer).expect("slot fits usize");
                self.assigned[slot] = Some(pair.provider as u32);
                self.load[pair.provider] += 1;
                self.size += 1;
            }
        }
        self.dirty = 0;
        Ok(())
    }

    /// True while full re-solves go through the in-memory SSPA and the
    /// cache is worth maintaining.
    fn cache_active(&self) -> bool {
        self.providers.len() * self.customers.len() <= self.cfg.sspa_edge_limit
    }

    fn flow_providers(&self) -> Vec<FlowProvider> {
        self.providers
            .iter()
            .map(|&(pos, cap)| FlowProvider { pos, cap })
            .collect()
    }

    /// `γ = min(|P|, Σk)` of the current world.
    pub fn gamma(&self) -> u64 {
        let cap: u64 = self.providers.iter().map(|&(_, k)| u64::from(k)).sum();
        cap.min(self.customers.len() as u64)
    }

    /// Units missing from maximality (non-zero only after an aborted or
    /// locally exhausted repair).
    pub fn deficit(&self) -> u64 {
        self.gamma() - self.size
    }

    /// Current matching size in units.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Cost `Ψ(M)` of the maintained matching.
    pub fn cost(&self) -> f64 {
        self.assigned
            .iter()
            .enumerate()
            .filter_map(|(slot, a)| {
                a.map(|q| self.providers[q as usize].0.dist(&self.customers[slot]))
            })
            .sum()
    }

    /// Materialises the maintained matching (customer ids are *slots* into
    /// [`ContinuousAssignment::alive_customers`], which is exactly what the
    /// validators expect).
    pub fn matching(&self) -> Matching {
        let pairs = self
            .assigned
            .iter()
            .enumerate()
            .filter_map(|(slot, a)| {
                a.map(|q| {
                    let qi = q as usize;
                    MatchPair {
                        provider: qi,
                        customer: slot as u64,
                        units: 1,
                        dist: self.providers[qi].0.dist(&self.customers[slot]),
                        customer_pos: self.customers[slot],
                    }
                })
            })
            .collect();
        Matching { pairs }
    }

    /// Validates every structural invariant of the maintained matching
    /// (distances, capacities, no double assignment) and the internal
    /// load/size accounting. The size may lag γ only by the reported
    /// [`ContinuousAssignment::deficit`].
    pub fn check_feasible(&self) -> Result<(), String> {
        let m = self.matching();
        m.validate_unit_partial(&self.providers, &self.customers)?;
        if m.size() != self.size {
            return Err(format!(
                "size drift: pairs {} vs counter {}",
                m.size(),
                self.size
            ));
        }
        let loads = m.provider_load(self.providers.len());
        for (i, (&tracked, &actual)) in self.load.iter().zip(&loads).enumerate() {
            if u64::from(tracked) != actual {
                return Err(format!("load drift at provider {i}: {tracked} vs {actual}"));
            }
        }
        if self.tree.len() != self.customers.len() {
            return Err(format!(
                "index drift: tree {} vs live {}",
                self.tree.len(),
                self.customers.len()
            ));
        }
        Ok(())
    }

    /// Live customers in slot order.
    pub fn alive_customers(&self) -> &[Point] {
        &self.customers
    }

    /// Stable external id of each live customer, in slot order.
    pub fn customer_ids(&self) -> &[u64] {
        &self.ids
    }

    /// Providers (positions and current capacities).
    pub fn providers(&self) -> &[(Point, u32)] {
        &self.providers
    }

    /// The engine-owned customer index.
    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    /// Event and repair counters.
    pub fn stats(&self) -> DynamicStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_testutil::{optimal_cost, random_instance};

    fn engine_cfg() -> ContinuousConfig {
        ContinuousConfig::default()
    }

    /// From-scratch optimum of the engine's current world.
    fn scratch_cost(engine: &ContinuousAssignment) -> f64 {
        optimal_cost(engine.providers(), engine.alive_customers())
    }

    #[test]
    fn build_starts_on_the_optimal_matching() {
        let (providers, customers) = random_instance(101, 6, 60, 3);
        let engine =
            ContinuousAssignment::build(providers.clone(), customers.clone(), engine_cfg());
        engine.check_feasible().unwrap();
        assert_eq!(engine.deficit(), 0);
        let want = optimal_cost(&providers, &customers);
        assert!((engine.cost() - want).abs() < 1e-6 * want.max(1.0));
        engine
            .matching()
            .validate_unit(&providers, &customers)
            .unwrap();
    }

    #[test]
    fn arrivals_stay_exact_when_the_neighbourhood_covers_all_providers() {
        // With |Q| ≤ neighborhood_providers the first repair round covers
        // the entire provider set (radius = ∞), so the local repair *is* a
        // global re-solve restricted to untouched assignments — and since
        // every assignment is local, the engine must track the optimum
        // exactly, event by event.
        let (mut providers, customers) = random_instance(102, 5, 30, 8);
        for (_, cap) in providers.iter_mut() {
            *cap += 20; // capacity surplus: every arrival opens a deficit
        }
        let mut engine = ContinuousAssignment::build(providers, customers, engine_cfg());
        for i in 0..40u64 {
            let pos = Point::new(
                997.0 * ((i * 37 + 11) % 100) as f64 / 100.0,
                31.0 + i as f64 * 13.7 % 900.0,
            );
            let report = engine.apply(WorldEvent::CustomerArrive { id: 1000 + i, pos }, None);
            assert!(report.aborted.is_none());
            assert_eq!(report.deficit, 0);
            engine.check_feasible().unwrap();
            let want = scratch_cost(&engine);
            assert!(
                (engine.cost() - want).abs() < 1e-6 * want.max(1.0),
                "event {i}: engine {} vs scratch {want}",
                engine.cost()
            );
        }
        assert_eq!(engine.stats().arrivals, 40);
    }

    #[test]
    fn departures_and_moves_stay_exact_on_small_instances() {
        let (providers, customers) = random_instance(103, 4, 40, 6);
        let n = customers.len() as u64;
        let mut engine = ContinuousAssignment::build(providers, customers, engine_cfg());
        for i in 0..12u64 {
            let report = engine.apply(WorldEvent::CustomerDepart { id: (i * 3) % n }, None);
            assert!(report.aborted.is_none());
            engine.check_feasible().unwrap();
        }
        for i in 0..4usize {
            let to = Point::new(100.0 + 200.0 * i as f64, 500.0);
            let report = engine.apply(WorldEvent::ProviderMove { index: i, to }, None);
            assert!(report.aborted.is_none());
            engine.check_feasible().unwrap();
            let want = scratch_cost(&engine);
            assert!(
                (engine.cost() - want).abs() < 1e-6 * want.max(1.0),
                "move {i}: engine {} vs scratch {want}",
                engine.cost()
            );
        }
    }

    #[test]
    fn zero_dirty_threshold_forces_full_resolves_and_warms_from_the_cache() {
        let mut cfg = engine_cfg();
        cfg.dirty_threshold = 0.0; // every event crosses the threshold
        let (mut providers, customers) = random_instance(104, 5, 40, 3);
        // Providers in one corner so a far arrival cannot undercut the
        // cached marginal cost (the AddCustomer delta stays certified).
        for (p, _) in providers.iter_mut() {
            *p = Point::new(p.x * 0.05, p.y * 0.05);
        }
        let mut engine = ContinuousAssignment::build(providers, customers, cfg);
        for i in 0..5u64 {
            let report = engine.apply(
                WorldEvent::CustomerArrive {
                    id: 5000 + i,
                    pos: Point::new(900.0 + i as f64, 900.0),
                },
                None,
            );
            assert_eq!(report.repair, RepairKind::Full);
            engine.check_feasible().unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.full_resolves, 1 + 5, "initial solve + one per event");
        assert!(
            stats.warm_full_resolves >= 4,
            "certified arrival deltas must keep the cache warm: {stats:?}"
        );
        let want = scratch_cost(&engine);
        assert!((engine.cost() - want).abs() < 1e-6 * want.max(1.0));
    }

    #[test]
    fn capacity_cut_evicts_then_repair_rehomes() {
        let (providers, customers) = random_instance(105, 6, 50, 4);
        let mut engine = ContinuousAssignment::build(providers, customers, engine_cfg());
        let loaded = engine
            .load
            .iter()
            .position(|&l| l > 1)
            .expect("some provider carries load");
        let old_size = engine.size();
        let report = engine.apply(
            WorldEvent::ProviderCapacityDelta {
                index: loaded,
                delta: -(engine.providers[loaded].1 as i32),
            },
            None,
        );
        assert!(report.aborted.is_none());
        engine.check_feasible().unwrap();
        assert!(engine.stats().evicted > 0, "cut below load must evict");
        assert_eq!(engine.providers[loaded].1, 0);
        assert_eq!(engine.load[loaded], 0);
        // γ shrank with Σk, and the matching is maximal again.
        assert_eq!(engine.deficit(), 0);
        assert!(engine.size() <= old_size);

        // Growing capacity back re-opens slots; repair fills them.
        let report = engine.apply(
            WorldEvent::ProviderCapacityDelta {
                index: loaded,
                delta: 4,
            },
            None,
        );
        assert!(report.aborted.is_none());
        assert_eq!(engine.deficit(), 0);
        engine.check_feasible().unwrap();
    }

    #[test]
    fn aborted_repair_unwinds_and_recovers() {
        let (mut providers, customers) = random_instance(106, 6, 60, 8);
        for (_, cap) in providers.iter_mut() {
            *cap += 12; // surplus, so the arrival needs (abortable) repair
        }
        let mut engine = ContinuousAssignment::build(providers, customers, engine_cfg());
        let ctx = QueryContext::new();
        ctx.cancel();
        let report = engine.apply(
            WorldEvent::CustomerArrive {
                id: 7000,
                pos: Point::new(500.0, 500.0),
            },
            Some(&ctx),
        );
        // Surplus capacity: the arrival needs repair, which the cancelled
        // context aborts — the event itself stays committed.
        assert!(report.aborted.is_some());
        assert_eq!(report.deficit, 1);
        assert_eq!(engine.alive_customers().len(), 61);
        engine.check_feasible().unwrap();
        assert_eq!(engine.stats().aborted_repairs, 1);

        let kind = engine.repair(None).unwrap();
        assert_ne!(kind, RepairKind::None);
        assert_eq!(engine.deficit(), 0);
        engine.check_feasible().unwrap();
    }

    #[test]
    fn unknown_departure_panics() {
        let (providers, customers) = random_instance(107, 3, 10, 2);
        let mut engine = ContinuousAssignment::build(providers, customers, engine_cfg());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.apply(WorldEvent::CustomerDepart { id: 999 }, None)
        }));
        assert!(result.is_err(), "departing a dead id is a caller bug");
    }
}
