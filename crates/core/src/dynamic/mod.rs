//! Continuous assignment over a dynamic world (the incremental re-solve
//! engine).
//!
//! The paper solves a static instance once; a serving system faces a world
//! that keeps changing — customers arrive and depart, providers move, and
//! capacity is consumed and released. [`ContinuousAssignment`] maintains a
//! feasible matching under a stream of [`WorldEvent`]s and re-optimizes
//! *incrementally*: a bounded-neighbourhood repair around each event
//! (powered by the R-tree's `knn_within_ctx` and a small in-memory SSPA),
//! the `SspaCache` kept valid across events via `apply_delta` so full
//! re-solves warm-start, and a dirty-fraction threshold deciding when
//! patching stops paying and the engine re-solves from scratch.
//!
//! Every event is two-phase: the world change always commits (and stays
//! feasible by construction); only the re-optimization is abortable, so a
//! deadline or I/O-budget abort unwinds to the last committed feasible
//! matching and [`ContinuousAssignment::repair`] finishes the work later.

pub mod engine;
pub mod events;

pub use engine::ContinuousAssignment;
pub use events::{ContinuousConfig, DynamicStats, EventReport, RepairKind, WorldEvent};
