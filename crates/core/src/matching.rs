//! Matching types and validation.

use cca_geo::Point;

/// One matched pair. `units` is 1 for ordinary customers and may exceed 1
/// when the "customer" is a weighted representative (CA concise matching,
/// §4.2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MatchPair {
    /// Provider index into the instance's provider list.
    pub provider: usize,
    /// Customer identifier (index into `P`, or a representative id).
    pub customer: u64,
    /// Units assigned (1 for unit customers).
    pub units: u32,
    /// Euclidean distance of the pair.
    pub dist: f64,
    /// Position of the customer (kept so downstream phases — e.g. the
    /// approximation refinements — need no id→position lookup).
    pub customer_pos: Point,
}

/// A CCA matching `M ⊆ Q × P` with its assignment cost `Ψ(M)` (Equation 1).
#[derive(Clone, Debug, Default)]
pub struct Matching {
    pub pairs: Vec<MatchPair>,
}

impl Matching {
    /// Assignment cost `Ψ(M) = Σ units · dist(q, p)`.
    pub fn cost(&self) -> f64 {
        self.pairs.iter().map(|p| f64::from(p.units) * p.dist).sum()
    }

    /// Matching size `|M|` in units.
    pub fn size(&self) -> u64 {
        self.pairs.iter().map(|p| u64::from(p.units)).sum()
    }

    /// Units per provider.
    pub fn provider_load(&self, num_providers: usize) -> Vec<u64> {
        let mut load = vec![0u64; num_providers];
        for p in &self.pairs {
            load[p.provider] += u64::from(p.units);
        }
        load
    }

    /// Validates the matching against an instance with unit customers:
    /// distances correct, capacities respected, each customer at most once,
    /// size = `γ = min(|P|, Σ q.k)`.
    pub fn validate_unit(
        &self,
        providers: &[(Point, u32)],
        customers: &[Point],
    ) -> Result<(), String> {
        self.validate_unit_impl(providers, customers, true)
    }

    /// Like [`Matching::validate_unit`] but for the *partial* matching of
    /// an aborted run: every structural invariant must hold (distances,
    /// capacities, no duplicated customer), except the size may fall short
    /// of γ — an abort stops early, it never corrupts what was committed.
    pub fn validate_unit_partial(
        &self,
        providers: &[(Point, u32)],
        customers: &[Point],
    ) -> Result<(), String> {
        self.validate_unit_impl(providers, customers, false)
    }

    fn validate_unit_impl(
        &self,
        providers: &[(Point, u32)],
        customers: &[Point],
        require_full: bool,
    ) -> Result<(), String> {
        let mut qload = vec![0u64; providers.len()];
        let mut passigned = vec![false; customers.len()];
        for p in &self.pairs {
            if p.provider >= providers.len() {
                return Err(format!("unknown provider {}", p.provider));
            }
            let cid = usize::try_from(p.customer).expect("customer id fits usize");
            if cid >= customers.len() {
                return Err(format!("unknown customer {cid}"));
            }
            if p.units != 1 {
                return Err(format!("unit matching has units={} pair", p.units));
            }
            if passigned[cid] {
                return Err(format!("customer {cid} assigned twice"));
            }
            passigned[cid] = true;
            qload[p.provider] += 1;
            let true_dist = providers[p.provider].0.dist(&customers[cid]);
            if (true_dist - p.dist).abs() > 1e-6 {
                return Err(format!(
                    "pair ({}, {cid}) dist {} but geometry says {true_dist}",
                    p.provider, p.dist
                ));
            }
        }
        for (i, (&load, &(_, cap))) in qload.iter().zip(providers).enumerate() {
            if load > u64::from(cap) {
                return Err(format!("provider {i} overloaded: {load} > {cap}"));
            }
        }
        let total_cap: u64 = providers.iter().map(|&(_, k)| u64::from(k)).sum();
        let gamma = total_cap.min(customers.len() as u64);
        if require_full && self.size() != gamma {
            return Err(format!("size {} != γ = {gamma}", self.size()));
        }
        if self.size() > gamma {
            return Err(format!("size {} exceeds γ = {gamma}", self.size()));
        }
        Ok(())
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    use super::{MatchPair, Matching};
    use cca_geo::Point;
    use serde::{Deserialize, Error, Serialize, Value};

    impl Serialize for MatchPair {
        fn to_value(&self) -> Value {
            Value::map([
                ("provider", self.provider.to_value()),
                ("customer", self.customer.to_value()),
                ("units", self.units.to_value()),
                ("dist", self.dist.to_value()),
                ("customer_pos", self.customer_pos.to_value()),
            ])
        }
    }

    impl Deserialize for MatchPair {
        fn from_value(v: &Value) -> Result<Self, Error> {
            Ok(MatchPair {
                provider: usize::from_value(v.get("provider")?)?,
                customer: u64::from_value(v.get("customer")?)?,
                units: u32::from_value(v.get("units")?)?,
                dist: f64::from_value(v.get("dist")?)?,
                customer_pos: Point::from_value(v.get("customer_pos")?)?,
            })
        }
    }

    impl Serialize for Matching {
        fn to_value(&self) -> Value {
            Value::map([("pairs", self.pairs.to_value())])
        }
    }

    impl Deserialize for Matching {
        fn from_value(v: &Value) -> Result<Self, Error> {
            Ok(Matching {
                pairs: Vec::from_value(v.get("pairs")?)?,
            })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn matching_json_roundtrip() {
            let m = Matching {
                pairs: vec![MatchPair {
                    provider: 2,
                    customer: 17,
                    units: 3,
                    dist: 4.25,
                    customer_pos: Point::new(1.5, -2.0),
                }],
            };
            let json = serde::json::to_string(&m);
            let back: Matching = serde::json::from_str(&json).unwrap();
            assert_eq!(back.pairs, m.pairs);
            assert_eq!(back.cost(), m.cost());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(q: usize, p: u64, d: f64) -> MatchPair {
        MatchPair {
            provider: q,
            customer: p,
            units: 1,
            dist: d,
            customer_pos: Point::origin(),
        }
    }

    #[test]
    fn cost_and_size_accumulate() {
        let m = Matching {
            pairs: vec![pair(0, 0, 2.0), pair(0, 1, 3.0)],
        };
        assert_eq!(m.cost(), 5.0);
        assert_eq!(m.size(), 2);
        assert_eq!(m.provider_load(2), vec![2, 0]);
    }

    #[test]
    fn weighted_pairs_scale_cost() {
        let m = Matching {
            pairs: vec![MatchPair {
                provider: 0,
                customer: 0,
                units: 3,
                dist: 2.0,
                customer_pos: Point::origin(),
            }],
        };
        assert_eq!(m.cost(), 6.0);
        assert_eq!(m.size(), 3);
    }

    #[test]
    fn validate_accepts_correct_matching() {
        let providers = vec![(Point::new(0.0, 0.0), 1), (Point::new(10.0, 0.0), 1)];
        let customers = vec![Point::new(1.0, 0.0), Point::new(9.0, 0.0)];
        let m = Matching {
            pairs: vec![pair(0, 0, 1.0), pair(1, 1, 1.0)],
        };
        m.validate_unit(&providers, &customers).unwrap();
    }

    #[test]
    fn validate_rejects_double_assignment() {
        let providers = vec![(Point::new(0.0, 0.0), 2)];
        let customers = vec![Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
        let m = Matching {
            pairs: vec![pair(0, 0, 1.0), pair(0, 0, 1.0)],
        };
        assert!(m
            .validate_unit(&providers, &customers)
            .unwrap_err()
            .contains("twice"));
    }

    #[test]
    fn validate_rejects_wrong_distance() {
        let providers = vec![(Point::new(0.0, 0.0), 1)];
        let customers = vec![Point::new(1.0, 0.0)];
        let m = Matching {
            pairs: vec![pair(0, 0, 5.0)],
        };
        assert!(m
            .validate_unit(&providers, &customers)
            .unwrap_err()
            .contains("geometry"));
    }

    #[test]
    fn partial_validator_accepts_undersized_but_not_broken() {
        let providers = vec![(Point::new(0.0, 0.0), 2)];
        let customers = vec![Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
        let partial = Matching {
            pairs: vec![MatchPair {
                provider: 0,
                customer: 0,
                units: 1,
                dist: 1.0,
                customer_pos: customers[0],
            }],
        };
        assert!(partial.validate_unit(&providers, &customers).is_err());
        partial
            .validate_unit_partial(&providers, &customers)
            .unwrap();
        // Structural breakage still fails the partial validator.
        let broken = Matching {
            pairs: vec![MatchPair {
                provider: 0,
                customer: 0,
                units: 1,
                dist: 99.0,
                customer_pos: customers[0],
            }],
        };
        assert!(broken
            .validate_unit_partial(&providers, &customers)
            .is_err());
    }

    #[test]
    fn validate_rejects_undersized() {
        let providers = vec![(Point::new(0.0, 0.0), 2)];
        let customers = vec![Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
        let m = Matching {
            pairs: vec![pair(0, 0, 1.0)],
        };
        assert!(m
            .validate_unit(&providers, &customers)
            .unwrap_err()
            .contains("γ"));
    }
}
