//! Per-run algorithm statistics — the quantities the paper's figures plot.

use std::time::Duration;

use cca_storage::IoStats;

/// Counters collected by every CCA algorithm run.
///
/// `esub_edges` is the `|Esub|` of Figures 9–13 (number of q→p edges
/// materialised in the subgraph); CPU time is measured, I/O time is charged
/// from `io.faults` at 10 ms/fault exactly as in §5.1.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlgoStats {
    /// q→p edges inserted into the subgraph (`|Esub|`).
    pub esub_edges: u64,
    /// Full Dijkstra executions.
    pub dijkstra_runs: u64,
    /// Nodes settled across all Dijkstra executions (search effort).
    pub settled: u64,
    /// PUA invocations (edge insertions re-optimised incrementally).
    pub pua_runs: u64,
    /// Completed SSPA iterations (valid shortest paths augmented) = γ.
    pub iterations: u64,
    /// Shortest paths rejected by the Theorem-1 test.
    pub invalid_paths: u64,
    /// Matches produced by IDA's Theorem-2 fast phase (no Dijkstra).
    pub fast_phase_matches: u64,
    /// Wall-clock CPU time of the algorithm (excludes index construction).
    pub cpu_time: Duration,
    /// Buffer-pool traffic during the run.
    pub io: IoStats,
}

impl AlgoStats {
    /// The paper's "total time": measured CPU time plus charged I/O time.
    pub fn total_time_s(&self) -> f64 {
        self.cpu_time.as_secs_f64() + self.io.charged_io_time_s()
    }

    /// Charged I/O seconds (faults × 10 ms).
    pub fn io_time_s(&self) -> f64 {
        self.io.charged_io_time_s()
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    use super::AlgoStats;
    use cca_storage::IoStats;
    use serde::{Deserialize, Error, Serialize, Value};
    use std::time::Duration;

    impl Serialize for AlgoStats {
        fn to_value(&self) -> Value {
            Value::map([
                ("esub_edges", self.esub_edges.to_value()),
                ("dijkstra_runs", self.dijkstra_runs.to_value()),
                ("settled", self.settled.to_value()),
                ("pua_runs", self.pua_runs.to_value()),
                ("iterations", self.iterations.to_value()),
                ("invalid_paths", self.invalid_paths.to_value()),
                ("fast_phase_matches", self.fast_phase_matches.to_value()),
                ("cpu_time", self.cpu_time.to_value()),
                ("io", self.io.to_value()),
            ])
        }
    }

    impl Deserialize for AlgoStats {
        fn from_value(v: &Value) -> Result<Self, Error> {
            Ok(AlgoStats {
                esub_edges: u64::from_value(v.get("esub_edges")?)?,
                dijkstra_runs: u64::from_value(v.get("dijkstra_runs")?)?,
                settled: u64::from_value(v.get("settled")?)?,
                pua_runs: u64::from_value(v.get("pua_runs")?)?,
                iterations: u64::from_value(v.get("iterations")?)?,
                invalid_paths: u64::from_value(v.get("invalid_paths")?)?,
                fast_phase_matches: u64::from_value(v.get("fast_phase_matches")?)?,
                cpu_time: Duration::from_value(v.get("cpu_time")?)?,
                io: IoStats::from_value(v.get("io")?)?,
            })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn algo_stats_json_roundtrip() {
            let s = AlgoStats {
                esub_edges: 123,
                iterations: 45,
                fast_phase_matches: 6,
                cpu_time: Duration::from_micros(987_654),
                io: IoStats {
                    hits: 9,
                    faults: 2,
                    writes: 1,
                },
                ..Default::default()
            };
            let json = serde::json::to_string(&s);
            let back: AlgoStats = serde::json::from_str(&json).unwrap();
            assert_eq!(back.esub_edges, s.esub_edges);
            assert_eq!(back.iterations, s.iterations);
            assert_eq!(back.fast_phase_matches, s.fast_phase_matches);
            assert_eq!(back.cpu_time, s.cpu_time);
            assert_eq!(back.io, s.io);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_time_combines_cpu_and_charged_io() {
        let s = AlgoStats {
            cpu_time: Duration::from_millis(1500),
            io: IoStats {
                hits: 0,
                faults: 200,
                writes: 0,
            },
            ..Default::default()
        };
        assert!((s.io_time_s() - 2.0).abs() < 1e-12);
        assert!((s.total_time_s() - 3.5).abs() < 1e-12);
    }
}
