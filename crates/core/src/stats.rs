//! Per-run algorithm statistics — the quantities the paper's figures plot.

use std::time::Duration;

use cca_storage::IoStats;

/// Counters collected by every CCA algorithm run.
///
/// `esub_edges` is the `|Esub|` of Figures 9–13 (number of q→p edges
/// materialised in the subgraph); CPU time is measured, I/O time is charged
/// from `io.faults` at 10 ms/fault exactly as in §5.1.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlgoStats {
    /// q→p edges inserted into the subgraph (`|Esub|`).
    pub esub_edges: u64,
    /// Full Dijkstra executions.
    pub dijkstra_runs: u64,
    /// PUA invocations (edge insertions re-optimised incrementally).
    pub pua_runs: u64,
    /// Completed SSPA iterations (valid shortest paths augmented) = γ.
    pub iterations: u64,
    /// Shortest paths rejected by the Theorem-1 test.
    pub invalid_paths: u64,
    /// Matches produced by IDA's Theorem-2 fast phase (no Dijkstra).
    pub fast_phase_matches: u64,
    /// Wall-clock CPU time of the algorithm (excludes index construction).
    pub cpu_time: Duration,
    /// Buffer-pool traffic during the run.
    pub io: IoStats,
}

impl AlgoStats {
    /// The paper's "total time": measured CPU time plus charged I/O time.
    pub fn total_time_s(&self) -> f64 {
        self.cpu_time.as_secs_f64() + self.io.charged_io_time_s()
    }

    /// Charged I/O seconds (faults × 10 ms).
    pub fn io_time_s(&self) -> f64 {
        self.io.charged_io_time_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_time_combines_cpu_and_charged_io() {
        let s = AlgoStats {
            cpu_time: Duration::from_millis(1500),
            io: IoStats {
                hits: 0,
                faults: 200,
                writes: 0,
            },
            ..Default::default()
        };
        assert!((s.io_time_s() - 2.0).abs() < 1e-12);
        assert!((s.total_time_s() - 3.5).abs() < 1e-12);
    }
}
