//! `cca-serve` — the priority-scheduled serving layer for CCA queries.
//!
//! The UYMM08 algorithms can burn unbounded I/O on adversarial inputs, so a
//! serving path needs more than a work-stealing cursor: it needs *admission
//! control* (a bounded backlog that sheds load explicitly), *priorities*
//! (with aging, so low-priority work is deferred but never starved),
//! *deadlines and I/O budgets* (enforced cooperatively through
//! [`QueryContext`], which the storage layer charges at page-fault time)
//! and *cancellation*. This crate provides that serving layer:
//!
//! * [`serve`] — runs a scoped worker pool; requests may borrow the shared
//!   instance from the caller's stack (no `'static` bound),
//! * [`ServeHandle::submit`] — admission: returns a [`Ticket`] or sheds
//!   the request with [`Rejected::QueueFull`],
//! * [`Ticket`] — await / poll / cancel one query,
//! * [`queue::AgingQueue`] — the bounded multi-level priority queue with
//!   the deterministic anti-starvation bound,
//! * [`ServeConfig`] — workers, queue capacity, aging period.
//!
//! ```
//! use cca_serve::{serve, Priority, QueryContext, Request, ServeConfig};
//!
//! let config = ServeConfig::default().workers(2).queue_capacity(8);
//! let total: u64 = serve(config, |handle| {
//!     let tickets: Vec<_> = (0..4u64)
//!         .map(|i| {
//!             let req = Request::new(move |_ctx: &QueryContext| i * 10)
//!                 .priority(if i == 0 { Priority::High } else { Priority::Normal });
//!             handle.submit(req).expect("queue has room")
//!         })
//!         .collect();
//!     tickets.into_iter().map(|t| t.wait()).sum()
//! });
//! assert_eq!(total, 60);
//! ```
//!
//! The façade crate's `BatchRunner` is a thin adapter over this scheduler,
//! and `examples/serving.rs` shows the full submit / deadline / shed loop
//! on a mixed workload.

pub mod queue;
pub mod scheduler;

pub use cca_storage::{AbortReason, Aborted, IoStats, Priority, QueryContext};
pub use queue::AgingQueue;
pub use scheduler::{serve, Rejected, Request, ServeConfig, ServeHandle, Ticket};
