//! `cca-serve` — the tenant-fair, priority-scheduled serving layer for CCA
//! queries.
//!
//! The UYMM08 algorithms can burn unbounded I/O on adversarial inputs, so a
//! serving path needs more than a work-stealing cursor: it needs *admission
//! control* (a bounded backlog that sheds load explicitly), *fairness
//! across tenants* (one aggressive party must not monopolise the queue or
//! the workers, however high it bids its priorities), *priorities* (with
//! aging, so low-priority work is deferred but never starved — per tenant),
//! *deadlines and I/O budgets* (enforced cooperatively through
//! [`QueryContext`], which the storage layer charges at page-fault time and
//! the flow engine polls inside its CPU loops) and *cancellation*. This
//! crate provides that serving layer as a **two-level scheduler**:
//!
//! * level 1 picks the *tenant* by weighted deficit-round-robin over the
//!   backlogged tenants ([`TenantQuota::weight`]), with per-tenant
//!   admission quotas (queue slots, in-flight cap);
//! * level 2 keeps the PR 4 priority+aging semantics *within* each tenant
//!   ([`queue::AgingQueue`]), preserving the deterministic per-tenant
//!   starvation bound (`3 × aging_period + 1` tenant-local dispatches).
//!
//! The pieces:
//!
//! * [`serve`] — runs a scoped worker pool; requests may borrow the shared
//!   instance from the caller's stack (no `'static` bound),
//! * [`ServingInstance`] — the *owned* counterpart: a long-lived scheduler
//!   whose workers and cumulative [`TenantStats`] outlive any one batch or
//!   connection (the serving core a network gateway runs on), with
//!   [`ServingInstance::scope`] re-creating the borrowed ergonomics on the
//!   shared instance,
//! * [`ServeHandle::submit`] — admission: returns a [`Ticket`] or sheds
//!   the request with [`Rejected::QueueFull`] /
//!   [`Rejected::TenantQuotaExceeded`],
//! * [`Ticket`] / [`OwnedTicket`] — await / poll / cancel one query
//!   (cancelling a queued query releases its admission slot immediately),
//! * [`ServeHandle::tenant_stats`] — operator snapshots: per-tenant
//!   dispatch/abort counters, cumulative attributed I/O, latency, and a
//!   sliding-window submission rate ([`TenantStats::qps`]),
//! * [`ServeConfig`] — workers, queue capacity, aging period, tenant
//!   weights and quotas, QPS window.
//!
//! ```
//! use cca_serve::{serve, Priority, QueryContext, Request, ServeConfig, TenantId, TenantQuota};
//!
//! let config = ServeConfig::default()
//!     .workers(2)
//!     .queue_capacity(8)
//!     .tenant_quota(TenantId(1), TenantQuota::default().weight(2));
//! let total: u64 = serve(config, |handle| {
//!     let tickets: Vec<_> = (0..4u64)
//!         .map(|i| {
//!             let req = Request::new(move |_ctx: &QueryContext| i * 10)
//!                 .tenant(TenantId(u32::from(i % 2 == 0)))
//!                 .priority(if i == 0 { Priority::High } else { Priority::Normal });
//!             handle.submit(req).expect("queue has room")
//!         })
//!         .collect();
//!     tickets.into_iter().map(|t| t.wait()).sum()
//! });
//! assert_eq!(total, 60);
//! ```
//!
//! The façade crate's `BatchRunner` is a thin adapter over this scheduler,
//! and `examples/tenants.rs` shows two weighted tenants sharing one
//! instance, quota shedding included.

mod drr;
mod instance;
pub mod queue;
mod rate;
pub mod scheduler;
#[cfg(feature = "serde")]
mod serde_impls;

pub use cca_storage::{AbortReason, Aborted, IoStats, Priority, QueryContext, TenantId};
pub use drr::{TenantQuota, TenantStats};
pub use instance::{InstanceScope, OwnedTicket, ServingInstance};
pub use queue::AgingQueue;
pub use scheduler::{serve, Rejected, Request, ServeConfig, ServeHandle, Ticket};
