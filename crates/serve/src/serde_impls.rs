//! `serde` feature: wire encodings for the serving vocabulary —
//! [`Rejected`] (admission shedding), [`TenantQuota`] (operator config)
//! and [`TenantStats`] (the stats a gateway reports per tenant).
//!
//! Hand-written field-per-field maps against the vendored `serde` shim,
//! shaped like the derive output so swapping in the real serde later is
//! mechanical. `Rejected` is a tagged map (`{"kind": ..., ...fields}`),
//! the enum idiom used across the workspace.

use serde::{Deserialize, Error, Serialize, Value};

use crate::drr::{TenantQuota, TenantStats};
use crate::scheduler::Rejected;

impl Serialize for Rejected {
    fn to_value(&self) -> Value {
        match self {
            Rejected::QueueFull { capacity } => Value::map([
                ("kind", "queue_full".to_value()),
                ("capacity", capacity.to_value()),
            ]),
            Rejected::TenantQuotaExceeded {
                tenant,
                queue_slots,
            } => Value::map([
                ("kind", "tenant_quota_exceeded".to_value()),
                ("tenant", tenant.to_value()),
                ("queue_slots", queue_slots.to_value()),
            ]),
        }
    }
}

impl Deserialize for Rejected {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match String::from_value(v.get("kind")?)?.as_str() {
            "queue_full" => Ok(Rejected::QueueFull {
                capacity: usize::from_value(v.get("capacity")?)?,
            }),
            "tenant_quota_exceeded" => Ok(Rejected::TenantQuotaExceeded {
                tenant: Deserialize::from_value(v.get("tenant")?)?,
                queue_slots: usize::from_value(v.get("queue_slots")?)?,
            }),
            other => Err(Error(format!("unknown rejection kind `{other}`"))),
        }
    }
}

impl Serialize for TenantQuota {
    fn to_value(&self) -> Value {
        Value::map([
            ("weight", self.weight.to_value()),
            ("queue_slots", self.queue_slots.to_value()),
            ("max_in_flight", self.max_in_flight.to_value()),
        ])
    }
}

impl Deserialize for TenantQuota {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(TenantQuota {
            weight: u32::from_value(v.get("weight")?)?,
            queue_slots: usize::from_value(v.get("queue_slots")?)?,
            max_in_flight: usize::from_value(v.get("max_in_flight")?)?,
        })
    }
}

impl Serialize for TenantStats {
    fn to_value(&self) -> Value {
        Value::map([
            ("tenant", self.tenant.to_value()),
            ("weight", self.weight.to_value()),
            ("submitted", self.submitted.to_value()),
            ("rejected", self.rejected.to_value()),
            ("dispatched", self.dispatched.to_value()),
            ("completed", self.completed.to_value()),
            ("aborted", self.aborted.to_value()),
            ("cancelled_queued", self.cancelled_queued.to_value()),
            ("queued", self.queued.to_value()),
            ("in_flight", self.in_flight.to_value()),
            ("io", self.io.to_value()),
            ("total_latency", self.total_latency.to_value()),
            ("max_latency", self.max_latency.to_value()),
            ("qps", self.qps.to_value()),
        ])
    }
}

impl Deserialize for TenantStats {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(TenantStats {
            tenant: Deserialize::from_value(v.get("tenant")?)?,
            weight: u32::from_value(v.get("weight")?)?,
            submitted: u64::from_value(v.get("submitted")?)?,
            rejected: u64::from_value(v.get("rejected")?)?,
            dispatched: u64::from_value(v.get("dispatched")?)?,
            completed: u64::from_value(v.get("completed")?)?,
            aborted: u64::from_value(v.get("aborted")?)?,
            cancelled_queued: u64::from_value(v.get("cancelled_queued")?)?,
            queued: usize::from_value(v.get("queued")?)?,
            in_flight: usize::from_value(v.get("in_flight")?)?,
            io: Deserialize::from_value(v.get("io")?)?,
            total_latency: Deserialize::from_value(v.get("total_latency")?)?,
            max_latency: Deserialize::from_value(v.get("max_latency")?)?,
            qps: f64::from_value(v.get("qps")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_storage::{IoStats, TenantId};
    use std::time::Duration;

    #[test]
    fn rejected_json_roundtrip_both_variants() {
        for r in [
            Rejected::QueueFull { capacity: 128 },
            Rejected::TenantQuotaExceeded {
                tenant: TenantId(9),
                queue_slots: 4,
            },
        ] {
            let back: Rejected = serde::json::from_str(&serde::json::to_string(&r)).unwrap();
            assert_eq!(back, r);
        }
        assert!(serde::json::from_str::<Rejected>("{\"kind\":\"tired\"}").is_err());
    }

    #[test]
    fn tenant_quota_json_roundtrip_including_unlimited() {
        for q in [
            TenantQuota::default(),
            TenantQuota::default()
                .weight(3)
                .queue_slots(64)
                .max_in_flight(2),
        ] {
            let back: TenantQuota = serde::json::from_str(&serde::json::to_string(&q)).unwrap();
            assert_eq!(back.weight, q.weight);
            assert_eq!(back.queue_slots, q.queue_slots);
            assert_eq!(back.max_in_flight, q.max_in_flight);
        }
    }

    #[test]
    fn tenant_stats_json_roundtrip() {
        let s = TenantStats {
            tenant: TenantId(3),
            weight: 2,
            submitted: 100,
            rejected: 5,
            dispatched: 90,
            completed: 80,
            aborted: 10,
            cancelled_queued: 1,
            queued: 4,
            in_flight: 2,
            io: IoStats {
                hits: 1000,
                faults: 50,
                writes: 0,
            },
            total_latency: Duration::from_millis(12345),
            max_latency: Duration::from_millis(700),
            qps: 12.5,
        };
        let back: TenantStats = serde::json::from_str(&serde::json::to_string(&s)).unwrap();
        assert_eq!(back.tenant, s.tenant);
        assert_eq!(back.submitted, s.submitted);
        assert_eq!(back.rejected, s.rejected);
        assert_eq!(back.dispatched, s.dispatched);
        assert_eq!(back.completed, s.completed);
        assert_eq!(back.aborted, s.aborted);
        assert_eq!(back.cancelled_queued, s.cancelled_queued);
        assert_eq!(back.queued, s.queued);
        assert_eq!(back.in_flight, s.in_flight);
        assert_eq!(back.io, s.io);
        assert_eq!(back.total_latency, s.total_latency);
        assert_eq!(back.max_latency, s.max_latency);
        assert_eq!(back.qps, s.qps);
    }
}
