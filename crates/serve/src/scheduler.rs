//! The worker-pool scheduler: scoped workers draining the two-level ready
//! queue (tenant-fair DRR over per-tenant priority+aging queues), tickets
//! for callers, explicit load shedding at admission.

use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use cca_storage::{Priority, QueryContext, TenantId};

use crate::drr::{DrrQueue, PushError, TenantQuota, TenantStats};

/// Scheduler tuning.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Global admission bound: queued (not yet running) requests beyond
    /// this are shed with [`Rejected::QueueFull`]. This is semaphore-style
    /// admission control — the capacity is the number of backlog permits,
    /// shared by all tenants.
    pub queue_capacity: usize,
    /// *Per-tenant* dispatches between priority-aging rounds (`0` disables
    /// aging). With `L` priority levels, a waiter reaches its tenant's top
    /// level after at most `(L − 1) × aging_period` of that tenant's own
    /// dispatches — the anti-starvation bound, now per tenant.
    pub aging_period: u32,
    /// Weight and quotas applied to tenants without an explicit entry in
    /// [`ServeConfig::quotas`].
    pub default_quota: TenantQuota,
    /// Per-tenant overrides of weight / queue slots / in-flight cap.
    pub quotas: Vec<(TenantId, TenantQuota)>,
    /// Width of the sliding window behind [`TenantStats::qps`]: each
    /// tenant's submission rate is averaged over the last `rate_window`
    /// seconds (whole seconds; at least one).
    pub rate_window: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_capacity: 1024,
            aging_period: 8,
            default_quota: TenantQuota::default(),
            quotas: Vec::new(),
            rate_window: Duration::from_secs(10),
        }
    }
}

impl ServeConfig {
    /// Sets the worker-thread count.
    pub fn workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "at least one worker");
        self.workers = workers;
        self
    }

    /// Sets the global admission bound.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "capacity of at least one request");
        self.queue_capacity = capacity;
        self
    }

    /// Sets the aging period (`0` disables anti-starvation promotion).
    pub fn aging_period(mut self, period: u32) -> Self {
        self.aging_period = period;
        self
    }

    /// Sets the quota applied to tenants without an explicit override.
    pub fn default_quota(mut self, quota: TenantQuota) -> Self {
        self.default_quota = quota;
        self
    }

    /// Sets (or replaces) one tenant's weight and admission quotas.
    pub fn tenant_quota(mut self, tenant: TenantId, quota: TenantQuota) -> Self {
        if let Some(entry) = self.quotas.iter_mut().find(|(t, _)| *t == tenant) {
            entry.1 = quota;
        } else {
            self.quotas.push((tenant, quota));
        }
        self
    }

    /// Sets the QPS sliding-window width (≥ 1 s; whole seconds).
    pub fn rate_window(mut self, window: Duration) -> Self {
        assert!(
            window >= Duration::from_secs(1),
            "rate window of at least one second"
        );
        self.rate_window = window;
        self
    }
}

/// Why a submission was refused — the explicit load-shedding signal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rejected {
    /// The global backlog is at capacity; retry later or shed the query.
    QueueFull {
        /// The configured admission bound that was hit.
        capacity: usize,
    },
    /// The submitting tenant's own queue-slot quota is exhausted — other
    /// tenants' traffic is unaffected, which is the point: one party
    /// cannot convert its flood into everyone's `QueueFull`.
    TenantQuotaExceeded {
        /// The tenant whose quota was hit.
        tenant: TenantId,
        /// The tenant's configured backlog permit count.
        queue_slots: usize,
    },
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} queued requests)")
            }
            Rejected::TenantQuotaExceeded {
                tenant,
                queue_slots,
            } => {
                write!(f, "{tenant} queue quota exhausted ({queue_slots} slots)")
            }
        }
    }
}

impl std::error::Error for Rejected {}

pub(crate) type Work<'env, T> = Box<dyn FnOnce(&QueryContext) -> T + Send + 'env>;

/// One query submission: the work closure plus its [`QueryContext`]
/// (tenant, priority, deadline, I/O budget, cancellation).
pub struct Request<'env, T> {
    pub(crate) ctx: QueryContext,
    pub(crate) work: Work<'env, T>,
}

impl<'env, T> Request<'env, T> {
    /// A request running `work` under a fresh default context.
    pub fn new(work: impl FnOnce(&QueryContext) -> T + Send + 'env) -> Self {
        Request {
            ctx: QueryContext::new(),
            work: Box::new(work),
        }
    }

    /// Replaces the query context (tenant, deadline, budget, priority, …).
    pub fn context(mut self, ctx: QueryContext) -> Self {
        self.ctx = ctx;
        self
    }

    /// Sets just the priority, keeping the rest of the context.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.ctx = self.ctx.with_priority(priority);
        self
    }

    /// Sets just the tenant, keeping the rest of the context.
    pub fn tenant(mut self, tenant: TenantId) -> Self {
        self.ctx = self.ctx.with_tenant(tenant);
        self
    }
}

/// Completion state of one submitted query. Distinguishing `Taken` and
/// `Panicked` from `Pending` keeps [`Ticket::wait`] from blocking forever
/// on a slot that will never be (re)filled.
pub(crate) enum Slot<T> {
    /// Not finished yet.
    Pending,
    /// Finished; result not yet claimed.
    Done(T),
    /// Result already claimed by [`Ticket::try_take`].
    Taken,
    /// The query closure panicked; the payload is re-raised at the waiter.
    Panicked(Box<dyn std::any::Any + Send>),
}

/// Completion cell shared between a running job and its ticket
/// ([`Ticket`] in a scoped [`serve`], `OwnedTicket` on a
/// [`crate::ServingInstance`]).
pub(crate) struct TicketCell<T> {
    slot: Mutex<Slot<T>>,
    done: Condvar,
}

impl<T> TicketCell<T> {
    fn new() -> Self {
        TicketCell {
            slot: Mutex::new(Slot::Pending),
            done: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Slot<T>> {
        self.slot.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn fill(&self, slot: Slot<T>) {
        *self.lock() = slot;
        self.done.notify_all();
    }

    /// Blocks until the cell resolves and claims the result; re-raises the
    /// closure's panic; panics if the result was already claimed.
    pub(crate) fn wait_take(&self) -> T {
        let mut slot = self.lock();
        loop {
            match std::mem::replace(&mut *slot, Slot::Pending) {
                Slot::Done(result) => {
                    *slot = Slot::Taken;
                    return result;
                }
                Slot::Panicked(payload) => {
                    *slot = Slot::Taken;
                    drop(slot);
                    std::panic::resume_unwind(payload);
                }
                Slot::Taken => panic!("ticket result already taken"),
                Slot::Pending => {
                    slot = self.done.wait(slot).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// Claims the result if resolved (`None` while pending or after it was
    /// taken); re-raises the closure's panic.
    pub(crate) fn try_take(&self) -> Option<T> {
        let mut slot = self.lock();
        match std::mem::replace(&mut *slot, Slot::Pending) {
            Slot::Done(result) => {
                *slot = Slot::Taken;
                Some(result)
            }
            Slot::Panicked(payload) => {
                *slot = Slot::Taken;
                drop(slot);
                std::panic::resume_unwind(payload);
            }
            Slot::Taken => {
                *slot = Slot::Taken;
                None
            }
            Slot::Pending => None,
        }
    }

    /// True once the cell resolved (stays true after the result is taken).
    pub(crate) fn is_done(&self) -> bool {
        !matches!(*self.lock(), Slot::Pending)
    }
}

/// Runs a job's closure under its context and resolves its ticket cell,
/// catching a panicking closure so the waiter never blocks forever.
pub(crate) fn run_job<T>(job: Job<'_, T>) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (job.work)(&job.ctx)));
    match result {
        Ok(value) => job.cell.fill(Slot::Done(value)),
        Err(payload) => job.cell.fill(Slot::Panicked(payload)),
    }
}

/// The caller's handle on one submitted query: await the result, poll it,
/// or cancel the query cooperatively.
pub struct Ticket<'a, 'env, T> {
    cell: Arc<TicketCell<T>>,
    ctx: QueryContext,
    tenant: TenantId,
    seq: u64,
    shared: &'a Shared<'env, T>,
}

impl<T> Ticket<'_, '_, T> {
    /// Blocks until the query finishes and returns its result.
    ///
    /// # Panics
    /// Re-raises the query closure's panic, if it panicked; panics if the
    /// result was already claimed via [`Ticket::try_take`].
    pub fn wait(self) -> T {
        self.cell.wait_take()
    }

    /// Takes the result if the query already finished (`None` while it is
    /// still pending or after the result was taken).
    ///
    /// # Panics
    /// Re-raises the query closure's panic, if it panicked.
    pub fn try_take(&self) -> Option<T> {
        self.cell.try_take()
    }

    /// True once the query finished (it stays true after the result is
    /// taken).
    pub fn is_done(&self) -> bool {
        self.cell.is_done()
    }

    /// Requests cooperative cancellation of the query.
    ///
    /// A query that is *still queued* is withdrawn right here: its
    /// admission slot (global and per-tenant) is released at cancel time —
    /// not when a worker would eventually pop the dead entry — and its
    /// closure runs on the cancelling thread, where it observes the
    /// cancelled context at its first poll and unwinds with its partial
    /// result. A *running* query aborts at its next context poll. Either
    /// way, [`Ticket::wait`] still returns the (partial) result.
    pub fn cancel(&self) {
        cancel_on(self.shared, &self.ctx, self.tenant, self.seq);
    }

    /// The query's context (for inspecting attribution mid-flight).
    pub fn context(&self) -> &QueryContext {
        &self.ctx
    }
}

pub(crate) struct Job<'env, T> {
    /// Scheduler-unique id, so a cancel can withdraw exactly this entry.
    pub(crate) seq: u64,
    pub(crate) ctx: QueryContext,
    pub(crate) cell: Arc<TicketCell<T>>,
    pub(crate) work: Work<'env, T>,
    pub(crate) submitted_at: Instant,
}

pub(crate) struct State<'env, T> {
    pub(crate) queue: DrrQueue<Job<'env, T>>,
    pub(crate) next_seq: u64,
    pub(crate) shutdown: bool,
}

pub(crate) struct Shared<'env, T> {
    pub(crate) state: Mutex<State<'env, T>>,
    pub(crate) work_ready: Condvar,
}

impl<'env, T> Shared<'env, T> {
    pub(crate) fn new(config: &ServeConfig) -> Self {
        assert!(config.workers >= 1, "at least one worker");
        assert!(config.queue_capacity >= 1, "capacity of at least one");
        Shared {
            state: Mutex::new(State {
                queue: DrrQueue::new(
                    config.queue_capacity,
                    config.aging_period,
                    config.default_quota,
                    &config.quotas,
                    config.rate_window,
                ),
                next_seq: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        }
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, State<'env, T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// What [`submit_to`] hands back for an admitted request: everything a
/// ticket (borrowing or owned) needs on top of its scheduler handle.
pub(crate) struct Admitted<T> {
    pub(crate) cell: Arc<TicketCell<T>>,
    pub(crate) ctx: QueryContext,
    pub(crate) tenant: TenantId,
    pub(crate) seq: u64,
}

/// The one admission path: allocates the seq and ticket cell, pushes the
/// job through the DRR queue's quota checks, and wakes a worker — or sheds
/// the request (the job is dropped, no ticket is created). Shared by the
/// scoped [`ServeHandle`] and the owned [`crate::ServingInstance`].
pub(crate) fn submit_to<'env, T: Send>(
    shared: &Shared<'env, T>,
    request: Request<'env, T>,
) -> Result<Admitted<T>, Rejected> {
    let Request { ctx, work } = request;
    let cell = Arc::new(TicketCell::new());
    let tenant = ctx.tenant();
    let priority = ctx.priority();
    let mut state = shared.lock();
    let seq = state.next_seq;
    state.next_seq += 1;
    let job = Job {
        seq,
        ctx: ctx.clone(),
        cell: Arc::clone(&cell),
        work,
        submitted_at: Instant::now(),
    };
    match state.queue.push(tenant, priority, job) {
        Ok(()) => {
            debug_assert!(state.queue.len() <= state.queue.capacity());
            drop(state);
            shared.work_ready.notify_one();
            Ok(Admitted {
                cell,
                ctx,
                tenant,
                seq,
            })
        }
        Err(PushError::TenantQuota {
            tenant,
            queue_slots,
        }) => Err(Rejected::TenantQuotaExceeded {
            tenant,
            queue_slots,
        }),
        Err(PushError::Full { capacity }) => Err(Rejected::QueueFull { capacity }),
    }
}

/// The one cancellation path (shared by both ticket kinds): flags the
/// context, and if the job is still queued withdraws it — releasing its
/// admission slot immediately — and runs it on the cancelling thread,
/// where its first context poll unwinds with the partial result.
pub(crate) fn cancel_on<T>(shared: &Shared<'_, T>, ctx: &QueryContext, tenant: TenantId, seq: u64) {
    ctx.cancel();
    let withdrawn = {
        let mut state = shared.lock();
        state.queue.remove_queued(tenant, |job| job.seq == seq)
    };
    if let Some(job) = withdrawn {
        run_job(job);
    }
}

/// The submission front-end handed to the [`serve`] body.
pub struct ServeHandle<'a, 'env, T: Send> {
    shared: &'a Shared<'env, T>,
}

impl<'a, 'env, T: Send> ServeHandle<'a, 'env, T> {
    /// Submits a request for scheduling. Returns the [`Ticket`] to await,
    /// or sheds the request explicitly: [`Rejected::TenantQuotaExceeded`]
    /// when the submitting tenant's own queue-slot quota is exhausted,
    /// [`Rejected::QueueFull`] when the shared backlog is at capacity.
    pub fn submit(&self, request: Request<'env, T>) -> Result<Ticket<'a, 'env, T>, Rejected> {
        let Admitted {
            cell,
            ctx,
            tenant,
            seq,
        } = submit_to(self.shared, request)?;
        Ok(Ticket {
            cell,
            ctx,
            tenant,
            seq,
            shared: self.shared,
        })
    }

    /// Requests currently queued (admitted, not yet dispatched), across
    /// all tenants.
    pub fn queue_len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Operator snapshot of every tenant the scheduler has seen (or was
    /// configured with), sorted by tenant id: dispatch/abort counters,
    /// cumulative attributed I/O, and latency aggregates.
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        self.shared.lock().queue.tenant_stats()
    }

    /// Snapshot of one tenant, if the scheduler has seen it.
    pub fn tenant_stats_for(&self, tenant: TenantId) -> Option<TenantStats> {
        self.shared.lock().queue.tenant_stats_for(tenant)
    }
}

pub(crate) fn worker<T: Send>(shared: &Shared<'_, T>) {
    let mut state = shared.lock();
    loop {
        if let Some((tenant, job)) = state.queue.pop() {
            drop(state);
            // The closure polls the context itself (an expired deadline or
            // cancelled queued job unwinds on its first poll); the panic is
            // caught so the waiter never blocks on an unfilled cell.
            let Job {
                ctx,
                cell,
                work,
                submitted_at,
                ..
            } = job;
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| work(&ctx)));
            state = shared.lock();
            // `recorded_abort`, not `abort_reason`: the latter is an active
            // poll that could record a deadline that expired *after* the
            // closure finished, counting a cleanly completed query as
            // aborted in the stats while its ticket reports completion.
            state.queue.finish(
                tenant,
                ctx.stats(),
                submitted_at.elapsed(),
                ctx.recorded_abort().is_some(),
            );
            // A completion can unblock an in-flight-capped tenant's backlog
            // for the *other* parked workers, and during shutdown sleepers
            // must recheck the exit condition — wake everyone (completions
            // are not a hot path; the dispatch path still uses notify_one).
            if !state.queue.is_empty() || state.shutdown {
                shared.work_ready.notify_all();
            }
            drop(state);
            // Resolve the ticket only after the accounting landed, so a
            // waiter that observes the result also observes its tenant's
            // stats updated.
            match result {
                Ok(value) => cell.fill(Slot::Done(value)),
                Err(payload) => cell.fill(Slot::Panicked(payload)),
            }
            state = shared.lock();
        } else if state.queue.is_empty() && state.shutdown {
            // Drained and shutting down. (A non-empty queue whose tenants
            // are all at their in-flight caps waits below instead: their
            // running queries are on other workers, whose completions
            // notify.)
            return;
        } else {
            state = shared
                .work_ready
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Flips the shutdown flag and wakes every worker when dropped — on the
/// body's normal return *and* on its unwind, so a panicking body can never
/// leave workers parked forever under `thread::scope`'s implicit join.
struct ShutdownGuard<'a, 'env, T> {
    shared: &'a Shared<'env, T>,
}

impl<T> Drop for ShutdownGuard<'_, '_, T> {
    fn drop(&mut self) {
        self.shared.lock().shutdown = true;
        self.shared.work_ready.notify_all();
    }
}

/// Runs a serving scope: spawns `config.workers` scoped worker threads,
/// hands the submission [`ServeHandle`] to `body`, and when `body` returns
/// shuts down — workers drain every admitted request (so all tickets
/// resolve) and then exit.
///
/// The scope ties worker lifetimes to the caller's stack, so requests may
/// borrow from the environment (`'env`) — e.g. a shared
/// `SpatialAssignment` — without `Arc`s or `'static` bounds.
pub fn serve<'env, T, Out>(
    config: ServeConfig,
    body: impl FnOnce(&ServeHandle<'_, 'env, T>) -> Out,
) -> Out
where
    T: Send + 'env,
{
    let shared: Shared<'env, T> = Shared::new(&config);
    std::thread::scope(|scope| {
        for _ in 0..config.workers {
            scope.spawn(|| worker(&shared));
        }
        let _shutdown = ShutdownGuard { shared: &shared };
        body(&ServeHandle { shared: &shared })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn submits_run_and_tickets_resolve() {
        let outputs = serve(ServeConfig::default().workers(4), |handle| {
            let tickets: Vec<_> = (0..32)
                .map(|i| handle.submit(Request::new(move |_| i * 2)).unwrap())
                .collect();
            tickets.into_iter().map(Ticket::wait).collect::<Vec<_>>()
        });
        assert_eq!(outputs, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn queue_full_sheds_explicitly() {
        // One worker parked on a gate so the queue can be saturated
        // deterministically.
        let gate = Mutex::new(());
        let guard = gate.lock().unwrap();
        let config = ServeConfig::default()
            .workers(1)
            .queue_capacity(2)
            .aging_period(0);
        serve(config, |handle| {
            let blocker = handle
                .submit(Request::new(|_| {
                    drop(gate.lock().unwrap_or_else(|e| e.into_inner()));
                }))
                .unwrap();
            // Wait until the worker has dequeued the blocker.
            while handle.queue_len() > 0 {
                std::thread::yield_now();
            }
            let _a = handle.submit(Request::new(|_| ())).unwrap();
            let _b = handle.submit(Request::new(|_| ())).unwrap();
            let shed = handle.submit(Request::new(|_| ()));
            assert!(matches!(shed, Err(Rejected::QueueFull { capacity: 2 })));
            drop(guard); // release the worker; shutdown drains the rest
            blocker.wait();
        });
    }

    #[test]
    fn higher_priority_overtakes_with_one_worker() {
        let order = Mutex::new(Vec::new());
        let gate = Mutex::new(());
        let guard = gate.lock().unwrap();
        let config = ServeConfig::default()
            .workers(1)
            .queue_capacity(16)
            .aging_period(0);
        serve(config, |handle| {
            let blocker = handle
                .submit(Request::new(|_| {
                    drop(gate.lock().unwrap_or_else(|e| e.into_inner()));
                }))
                .unwrap();
            while handle.queue_len() > 0 {
                std::thread::yield_now();
            }
            let mut tickets = Vec::new();
            for (name, priority) in [
                ("low", Priority::Low),
                ("normal", Priority::Normal),
                ("critical", Priority::Critical),
                ("high", Priority::High),
            ] {
                let order = &order;
                tickets.push(
                    handle
                        .submit(
                            Request::new(move |_| order.lock().unwrap().push(name))
                                .priority(priority),
                        )
                        .unwrap(),
                );
            }
            drop(guard);
            blocker.wait();
            for t in tickets {
                t.wait();
            }
        });
        assert_eq!(
            *order.lock().unwrap(),
            vec!["critical", "high", "normal", "low"]
        );
    }

    #[test]
    fn panicking_request_resurfaces_at_wait_without_hanging() {
        let result = std::panic::catch_unwind(|| {
            serve(ServeConfig::default().workers(1), |handle| {
                let bad = handle
                    .submit(Request::new(|_| -> usize { panic!("solver bug") }))
                    .unwrap();
                // The worker survives the panic and keeps serving.
                let good = handle.submit(Request::new(|_| 7usize)).unwrap();
                assert_eq!(good.wait(), 7);
                bad.wait() // re-raises "solver bug"
            })
        });
        let payload = result.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"solver bug"));
    }

    #[test]
    fn panicking_body_still_shuts_workers_down() {
        // Without the shutdown drop-guard this hangs forever in
        // thread::scope's implicit join instead of propagating the panic.
        let result = std::panic::catch_unwind(|| {
            serve::<(), ()>(ServeConfig::default().workers(2), |_handle| {
                panic!("body bug")
            })
        });
        let payload = result.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"body bug"));
    }

    #[test]
    fn wait_after_try_take_panics_instead_of_blocking() {
        let result = std::panic::catch_unwind(|| {
            serve(ServeConfig::default().workers(1), |handle| {
                let ticket = handle.submit(Request::new(|_| 42usize)).unwrap();
                while !ticket.is_done() {
                    std::thread::yield_now();
                }
                assert_eq!(ticket.try_take(), Some(42));
                assert!(ticket.is_done(), "done stays true after taking");
                assert_eq!(ticket.try_take(), None, "second poll sees it taken");
                ticket.wait() // must fail fast, not block forever
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn cancellation_reaches_the_running_closure() {
        let polls = AtomicUsize::new(0);
        let config = ServeConfig::default().workers(1);
        let cancelled = serve(config, |handle| {
            let ticket = handle
                .submit(Request::new(|ctx: &QueryContext| {
                    // Spin until the ticket cancels us.
                    while ctx.abort_reason().is_none() {
                        polls.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    ctx.abort_reason()
                }))
                .unwrap();
            while !ticket.is_done() && polls.load(Ordering::Relaxed) < 3 {
                std::thread::yield_now();
            }
            ticket.cancel();
            ticket.wait()
        });
        assert_eq!(cancelled, Some(cca_storage::AbortReason::Cancelled));
    }

    /// Cancelling a *still-queued* ticket releases its admission slot at
    /// cancel time — the freed permit is reusable immediately, before any
    /// worker touches the dead entry — and the ticket still resolves with
    /// the closure's cancelled-context result.
    #[test]
    fn cancel_of_queued_job_releases_the_slot_immediately() {
        let gate = Mutex::new(());
        let guard = gate.lock().unwrap();
        let config = ServeConfig::default()
            .workers(1)
            .queue_capacity(2)
            .aging_period(0);
        serve(config, |handle| {
            let blocker = handle
                .submit(Request::new(|_| {
                    drop(gate.lock().unwrap_or_else(|e| e.into_inner()));
                    "blocker"
                }))
                .unwrap();
            while handle.queue_len() > 0 {
                std::thread::yield_now();
            }
            // Saturate the backlog while the only worker is parked.
            let doomed = handle
                .submit(Request::new(|ctx: &QueryContext| {
                    match ctx.abort_reason() {
                        Some(_) => "unwound",
                        None => "ran",
                    }
                }))
                .unwrap();
            let _keep = handle.submit(Request::new(|_| "keep")).unwrap();
            assert!(matches!(
                handle.submit(Request::new(|_| "over")),
                Err(Rejected::QueueFull { .. })
            ));
            // Cancel the queued job: both permits' accounting must update
            // with the worker still parked.
            doomed.cancel();
            assert_eq!(handle.queue_len(), 1, "slot released at cancel time");
            let refill = handle.submit(Request::new(|_| "refill")).unwrap();
            // The cancelled ticket resolved on the cancelling thread with
            // the closure's cancelled-context result.
            assert!(doomed.is_done());
            assert_eq!(doomed.wait(), "unwound");
            let stats = handle.tenant_stats_for(TenantId::DEFAULT).unwrap();
            assert_eq!(stats.cancelled_queued, 1);
            drop(guard);
            blocker.wait();
            refill.wait();
        });
    }

    /// The ISSUE's adversarial fairness scenario, end to end: tenant A
    /// floods critical-priority work, tenant B (equal weight) submits less
    /// and at lower priority — yet over every 50-dispatch window of a
    /// saturated run, B receives at least 40 % of the dispatches.
    #[test]
    fn adversarial_tenant_cannot_starve_an_equal_weight_peer() {
        const A: TenantId = TenantId(1);
        const B: TenantId = TenantId(2);
        let order = Mutex::new(Vec::new());
        let gate = Mutex::new(());
        let guard = gate.lock().unwrap();
        let config = ServeConfig::default()
            .workers(1)
            .queue_capacity(256)
            .aging_period(4);
        serve(config, |handle| {
            let blocker = handle
                .submit(Request::new(|_| {
                    drop(gate.lock().unwrap_or_else(|e| e.into_inner()));
                }))
                .unwrap();
            while handle.queue_len() > 0 {
                std::thread::yield_now();
            }
            let mut tickets = Vec::new();
            let order = &order;
            // A floods 120 critical requests; B submits 60 normal ones.
            for _ in 0..120 {
                tickets.push(
                    handle
                        .submit(
                            Request::new(move |ctx: &QueryContext| {
                                order.lock().unwrap().push(ctx.tenant());
                            })
                            .tenant(A)
                            .priority(Priority::Critical),
                        )
                        .unwrap(),
                );
            }
            for _ in 0..60 {
                tickets.push(
                    handle
                        .submit(
                            Request::new(move |ctx: &QueryContext| {
                                order.lock().unwrap().push(ctx.tenant());
                            })
                            .tenant(B)
                            .priority(Priority::Normal),
                        )
                        .unwrap(),
                );
            }
            drop(guard);
            blocker.wait();
            for t in tickets {
                t.wait();
            }
            let a_stats = handle.tenant_stats_for(A).unwrap();
            let b_stats = handle.tenant_stats_for(B).unwrap();
            assert_eq!(a_stats.dispatched, 120);
            assert_eq!(b_stats.dispatched, 60);
            assert_eq!(a_stats.completed, 120);
            assert!(b_stats.max_latency >= b_stats.mean_latency());
        });
        let order = order.into_inner().unwrap();
        assert_eq!(order.len(), 180);
        // While both tenants are backlogged (the first 120 dispatches),
        // every 50-wide window splits 25/25 — B's ≥ 40 % share holds.
        for window in order[..120].windows(50) {
            let b = window.iter().filter(|&&t| t == B).count();
            assert!(
                b >= 20,
                "tenant B got {b}/50 dispatches in a saturated window"
            );
        }
    }

    #[test]
    fn tenant_queue_quota_rejects_only_that_tenant() {
        const NOISY: TenantId = TenantId(9);
        let gate = Mutex::new(());
        let guard = gate.lock().unwrap();
        let config = ServeConfig::default()
            .workers(1)
            .queue_capacity(64)
            .tenant_quota(NOISY, TenantQuota::default().queue_slots(2));
        serve(config, |handle| {
            let blocker = handle
                .submit(Request::new(|_| {
                    drop(gate.lock().unwrap_or_else(|e| e.into_inner()));
                }))
                .unwrap();
            while handle.queue_len() > 0 {
                std::thread::yield_now();
            }
            let mut tickets = Vec::new();
            for _ in 0..2 {
                tickets.push(handle.submit(Request::new(|_| ()).tenant(NOISY)).unwrap());
            }
            let shed = handle.submit(Request::new(|_| ()).tenant(NOISY));
            assert_eq!(
                shed.err(),
                Some(Rejected::TenantQuotaExceeded {
                    tenant: NOISY,
                    queue_slots: 2
                })
            );
            // The default tenant still has the global queue to itself.
            tickets.push(handle.submit(Request::new(|_| ())).unwrap());
            let stats = handle.tenant_stats_for(NOISY).unwrap();
            assert_eq!(stats.rejected, 1);
            assert_eq!(stats.queued, 2);
            drop(guard);
            blocker.wait();
            for t in tickets {
                t.wait();
            }
        });
    }

    /// An in-flight cap bounds worker occupancy: with 2 workers and a cap
    /// of 1, no two of the capped tenant's queries may ever run
    /// concurrently — dispatch is gated, admission is not.
    #[test]
    fn in_flight_cap_bounds_concurrency() {
        const CAPPED: TenantId = TenantId(3);
        let concurrent = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let config = ServeConfig::default()
            .workers(2)
            .queue_capacity(64)
            .tenant_quota(CAPPED, TenantQuota::default().max_in_flight(1));
        serve(config, |handle| {
            let concurrent = &concurrent;
            let peak = &peak;
            let tickets: Vec<_> = (0..6)
                .map(|_| {
                    handle
                        .submit(
                            Request::new(move |_| {
                                let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                                peak.fetch_max(now, Ordering::SeqCst);
                                std::thread::sleep(Duration::from_millis(2));
                                concurrent.fetch_sub(1, Ordering::SeqCst);
                            })
                            .tenant(CAPPED),
                        )
                        .unwrap()
                })
                .collect();
            for t in tickets {
                t.wait();
            }
        });
        assert_eq!(
            peak.load(Ordering::SeqCst),
            1,
            "cap of 1 must serialise the tenant's queries"
        );
    }

    /// The satellite starvation bound, end to end — unchanged from PR 4
    /// but now *per tenant*: one worker, a saturated stream of
    /// high-priority requests, and a single low-priority request submitted
    /// first, all under one tenant. With aging every `A` of the tenant's
    /// dispatches the low request must be dispatched within `3A + 1`
    /// rounds of entering the queue.
    #[test]
    fn aged_low_priority_request_completes_within_bounded_rounds() {
        const AGING: u32 = 4;
        const HIGH_BACKLOG: usize = 8;
        let dispatched = AtomicUsize::new(0);
        let config = ServeConfig::default()
            .workers(1)
            .queue_capacity(64)
            .aging_period(AGING);
        let gate = Mutex::new(());
        let guard = gate.lock().unwrap();
        let low_round = serve(config, |handle| {
            let blocker = handle
                .submit(Request::new(|_| {
                    drop(gate.lock().unwrap_or_else(|e| e.into_inner()));
                    0usize
                }))
                .unwrap();
            while handle.queue_len() > 0 {
                std::thread::yield_now();
            }
            // Low enters first, then a standing high-priority backlog.
            let dispatched = &dispatched;
            let low = handle
                .submit(
                    Request::new(move |_| dispatched.fetch_add(1, Ordering::SeqCst) + 1)
                        .priority(Priority::Low),
                )
                .unwrap();
            let mut highs = Vec::new();
            for _ in 0..HIGH_BACKLOG {
                highs.push(
                    handle
                        .submit(
                            Request::new(move |_| dispatched.fetch_add(1, Ordering::SeqCst) + 1)
                                .priority(Priority::High),
                        )
                        .unwrap(),
                );
            }
            drop(guard);
            blocker.wait();
            // Keep the queue saturated with fresh high-priority work until
            // the low request completes.
            loop {
                if let Some(round) = low.try_take() {
                    for h in highs {
                        h.wait();
                    }
                    return round;
                }
                if let Ok(t) = handle.submit(
                    Request::new(move |_| dispatched.fetch_add(1, Ordering::SeqCst) + 1)
                        .priority(Priority::High),
                ) {
                    highs.push(t);
                }
                std::thread::yield_now();
            }
        });
        let bound = (3 * AGING + 1) as usize;
        assert!(
            low_round <= bound,
            "low-priority request dispatched in round {low_round}, bound {bound}"
        );
    }
}
