//! The worker-pool scheduler: scoped workers draining the [`AgingQueue`],
//! tickets for callers, explicit load shedding at admission.

use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use cca_storage::{Priority, QueryContext};

use crate::queue::AgingQueue;

/// Scheduler tuning.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Admission bound: queued (not yet running) requests beyond this are
    /// shed with [`Rejected::QueueFull`]. This is semaphore-style admission
    /// control — the capacity is the number of backlog permits.
    pub queue_capacity: usize,
    /// Pops between priority-aging rounds (`0` disables aging). With `L`
    /// priority levels, a waiter reaches the top level after at most
    /// `(L − 1) × aging_period` dispatches — the anti-starvation bound.
    pub aging_period: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_capacity: 1024,
            aging_period: 8,
        }
    }
}

impl ServeConfig {
    /// Sets the worker-thread count.
    pub fn workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "at least one worker");
        self.workers = workers;
        self
    }

    /// Sets the admission bound.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "capacity of at least one request");
        self.queue_capacity = capacity;
        self
    }

    /// Sets the aging period (`0` disables anti-starvation promotion).
    pub fn aging_period(mut self, period: u32) -> Self {
        self.aging_period = period;
        self
    }
}

/// Why a submission was refused — the explicit load-shedding signal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rejected {
    /// The backlog is at capacity; retry later or shed the query.
    QueueFull {
        /// The configured admission bound that was hit.
        capacity: usize,
    },
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} queued requests)")
            }
        }
    }
}

impl std::error::Error for Rejected {}

type Work<'env, T> = Box<dyn FnOnce(&QueryContext) -> T + Send + 'env>;

/// One query submission: the work closure plus its [`QueryContext`]
/// (priority, deadline, I/O budget, cancellation).
pub struct Request<'env, T> {
    ctx: QueryContext,
    work: Work<'env, T>,
}

impl<'env, T> Request<'env, T> {
    /// A request running `work` under a fresh default context.
    pub fn new(work: impl FnOnce(&QueryContext) -> T + Send + 'env) -> Self {
        Request {
            ctx: QueryContext::new(),
            work: Box::new(work),
        }
    }

    /// Replaces the query context (deadline, budget, priority, …).
    pub fn context(mut self, ctx: QueryContext) -> Self {
        self.ctx = ctx;
        self
    }

    /// Sets just the priority, keeping the rest of the context.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.ctx = self.ctx.with_priority(priority);
        self
    }
}

/// Completion state of one submitted query. Distinguishing `Taken` and
/// `Panicked` from `Pending` keeps [`Ticket::wait`] from blocking forever
/// on a slot that will never be (re)filled.
enum Slot<T> {
    /// Not finished yet.
    Pending,
    /// Finished; result not yet claimed.
    Done(T),
    /// Result already claimed by [`Ticket::try_take`].
    Taken,
    /// The query closure panicked; the payload is re-raised at the waiter.
    Panicked(Box<dyn std::any::Any + Send>),
}

/// Completion cell shared between a running job and its [`Ticket`].
struct TicketCell<T> {
    slot: Mutex<Slot<T>>,
    done: Condvar,
}

impl<T> TicketCell<T> {
    fn new() -> Self {
        TicketCell {
            slot: Mutex::new(Slot::Pending),
            done: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Slot<T>> {
        self.slot.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn fill(&self, slot: Slot<T>) {
        *self.lock() = slot;
        self.done.notify_all();
    }
}

/// The caller's handle on one submitted query: await the result, poll it,
/// or cancel the query cooperatively.
pub struct Ticket<T> {
    cell: Arc<TicketCell<T>>,
    ctx: QueryContext,
}

impl<T> Ticket<T> {
    /// Blocks until the query finishes and returns its result.
    ///
    /// # Panics
    /// Re-raises the query closure's panic, if it panicked; panics if the
    /// result was already claimed via [`Ticket::try_take`].
    pub fn wait(self) -> T {
        let mut slot = self.cell.lock();
        loop {
            match std::mem::replace(&mut *slot, Slot::Pending) {
                Slot::Done(result) => {
                    *slot = Slot::Taken;
                    return result;
                }
                Slot::Panicked(payload) => {
                    *slot = Slot::Taken;
                    drop(slot);
                    std::panic::resume_unwind(payload);
                }
                Slot::Taken => panic!("ticket result already taken"),
                Slot::Pending => {
                    slot = self.cell.done.wait(slot).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// Takes the result if the query already finished (`None` while it is
    /// still pending or after the result was taken).
    ///
    /// # Panics
    /// Re-raises the query closure's panic, if it panicked.
    pub fn try_take(&self) -> Option<T> {
        let mut slot = self.cell.lock();
        match std::mem::replace(&mut *slot, Slot::Pending) {
            Slot::Done(result) => {
                *slot = Slot::Taken;
                Some(result)
            }
            Slot::Panicked(payload) => {
                *slot = Slot::Taken;
                drop(slot);
                std::panic::resume_unwind(payload);
            }
            Slot::Taken => {
                *slot = Slot::Taken;
                None
            }
            Slot::Pending => None,
        }
    }

    /// True once the query finished (it stays true after the result is
    /// taken).
    pub fn is_done(&self) -> bool {
        !matches!(*self.cell.lock(), Slot::Pending)
    }

    /// Requests cooperative cancellation of the query. A queued query runs
    /// its closure, which observes the cancelled context immediately and
    /// unwinds with a partial result; a running query aborts at its next
    /// context poll. `wait` still returns that (partial) result.
    pub fn cancel(&self) {
        self.ctx.cancel();
    }

    /// The query's context (for inspecting attribution mid-flight).
    pub fn context(&self) -> &QueryContext {
        &self.ctx
    }
}

struct Job<'env, T> {
    ctx: QueryContext,
    cell: Arc<TicketCell<T>>,
    work: Work<'env, T>,
}

struct State<'env, T> {
    queue: AgingQueue<Job<'env, T>>,
    shutdown: bool,
}

struct Shared<'env, T> {
    state: Mutex<State<'env, T>>,
    work_ready: Condvar,
}

impl<'env, T> Shared<'env, T> {
    fn lock(&self) -> MutexGuard<'_, State<'env, T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The submission front-end handed to the [`serve`] body.
pub struct ServeHandle<'a, 'env, T: Send> {
    shared: &'a Shared<'env, T>,
}

impl<'env, T: Send> ServeHandle<'_, 'env, T> {
    /// Submits a request for scheduling. Returns the [`Ticket`] to await,
    /// or sheds the request with [`Rejected::QueueFull`] when the backlog
    /// is at capacity.
    pub fn submit(&self, request: Request<'env, T>) -> Result<Ticket<T>, Rejected> {
        let Request { ctx, work } = request;
        let cell = Arc::new(TicketCell::new());
        let job = Job {
            ctx: ctx.clone(),
            cell: Arc::clone(&cell),
            work,
        };
        let priority = ctx.priority();
        let mut state = self.shared.lock();
        match state.queue.push(priority, job) {
            Ok(()) => {
                let capacity = state.queue.capacity();
                debug_assert!(state.queue.len() <= capacity);
                drop(state);
                self.shared.work_ready.notify_one();
                Ok(Ticket { cell, ctx })
            }
            Err(_) => {
                let capacity = state.queue.capacity();
                Err(Rejected::QueueFull { capacity })
            }
        }
    }

    /// Requests currently queued (admitted, not yet dispatched).
    pub fn queue_len(&self) -> usize {
        self.shared.lock().queue.len()
    }
}

fn worker<T: Send>(shared: &Shared<'_, T>) {
    let mut state = shared.lock();
    loop {
        if let Some(job) = state.queue.pop() {
            drop(state);
            // The closure polls the context itself (an expired deadline or
            // cancelled queued job unwinds on its first poll). A panicking
            // closure must still fill the cell — otherwise its waiter
            // blocks forever — so the panic is caught here and re-raised
            // at the ticket; the worker itself keeps serving.
            let result =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (job.work)(&job.ctx)));
            match result {
                Ok(value) => job.cell.fill(Slot::Done(value)),
                Err(payload) => job.cell.fill(Slot::Panicked(payload)),
            }
            state = shared.lock();
        } else if state.shutdown {
            return;
        } else {
            state = shared
                .work_ready
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Flips the shutdown flag and wakes every worker when dropped — on the
/// body's normal return *and* on its unwind, so a panicking body can never
/// leave workers parked forever under `thread::scope`'s implicit join.
struct ShutdownGuard<'a, 'env, T> {
    shared: &'a Shared<'env, T>,
}

impl<T> Drop for ShutdownGuard<'_, '_, T> {
    fn drop(&mut self) {
        self.shared.lock().shutdown = true;
        self.shared.work_ready.notify_all();
    }
}

/// Runs a serving scope: spawns `config.workers` scoped worker threads,
/// hands the submission [`ServeHandle`] to `body`, and when `body` returns
/// shuts down — workers drain every admitted request (so all tickets
/// resolve) and then exit.
///
/// The scope ties worker lifetimes to the caller's stack, so requests may
/// borrow from the environment (`'env`) — e.g. a shared
/// `SpatialAssignment` — without `Arc`s or `'static` bounds.
pub fn serve<'env, T, Out>(
    config: ServeConfig,
    body: impl FnOnce(&ServeHandle<'_, 'env, T>) -> Out,
) -> Out
where
    T: Send + 'env,
{
    assert!(config.workers >= 1, "at least one worker");
    assert!(config.queue_capacity >= 1, "capacity of at least one");
    let shared: Shared<'env, T> = Shared {
        state: Mutex::new(State {
            queue: AgingQueue::new(config.queue_capacity, config.aging_period),
            shutdown: false,
        }),
        work_ready: Condvar::new(),
    };
    std::thread::scope(|scope| {
        for _ in 0..config.workers {
            scope.spawn(|| worker(&shared));
        }
        let _shutdown = ShutdownGuard { shared: &shared };
        body(&ServeHandle { shared: &shared })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn submits_run_and_tickets_resolve() {
        let outputs = serve(ServeConfig::default().workers(4), |handle| {
            let tickets: Vec<_> = (0..32)
                .map(|i| handle.submit(Request::new(move |_| i * 2)).unwrap())
                .collect();
            tickets.into_iter().map(Ticket::wait).collect::<Vec<_>>()
        });
        assert_eq!(outputs, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn queue_full_sheds_explicitly() {
        // One worker parked on a gate so the queue can be saturated
        // deterministically.
        let gate = Mutex::new(());
        let guard = gate.lock().unwrap();
        let config = ServeConfig::default()
            .workers(1)
            .queue_capacity(2)
            .aging_period(0);
        serve(config, |handle| {
            let blocker = handle
                .submit(Request::new(|_| {
                    drop(gate.lock().unwrap_or_else(|e| e.into_inner()));
                }))
                .unwrap();
            // Wait until the worker has dequeued the blocker.
            while handle.queue_len() > 0 {
                std::thread::yield_now();
            }
            let _a = handle.submit(Request::new(|_| ())).unwrap();
            let _b = handle.submit(Request::new(|_| ())).unwrap();
            let shed = handle.submit(Request::new(|_| ()));
            assert!(matches!(shed, Err(Rejected::QueueFull { capacity: 2 })));
            drop(guard); // release the worker; shutdown drains the rest
            blocker.wait();
        });
    }

    #[test]
    fn higher_priority_overtakes_with_one_worker() {
        let order = Mutex::new(Vec::new());
        let gate = Mutex::new(());
        let guard = gate.lock().unwrap();
        let config = ServeConfig::default()
            .workers(1)
            .queue_capacity(16)
            .aging_period(0);
        serve(config, |handle| {
            let blocker = handle
                .submit(Request::new(|_| {
                    drop(gate.lock().unwrap_or_else(|e| e.into_inner()));
                }))
                .unwrap();
            while handle.queue_len() > 0 {
                std::thread::yield_now();
            }
            let mut tickets = Vec::new();
            for (name, priority) in [
                ("low", Priority::Low),
                ("normal", Priority::Normal),
                ("critical", Priority::Critical),
                ("high", Priority::High),
            ] {
                let order = &order;
                tickets.push(
                    handle
                        .submit(
                            Request::new(move |_| order.lock().unwrap().push(name))
                                .priority(priority),
                        )
                        .unwrap(),
                );
            }
            drop(guard);
            blocker.wait();
            for t in tickets {
                t.wait();
            }
        });
        assert_eq!(
            *order.lock().unwrap(),
            vec!["critical", "high", "normal", "low"]
        );
    }

    #[test]
    fn panicking_request_resurfaces_at_wait_without_hanging() {
        let result = std::panic::catch_unwind(|| {
            serve(ServeConfig::default().workers(1), |handle| {
                let bad = handle
                    .submit(Request::new(|_| -> usize { panic!("solver bug") }))
                    .unwrap();
                // The worker survives the panic and keeps serving.
                let good = handle.submit(Request::new(|_| 7usize)).unwrap();
                assert_eq!(good.wait(), 7);
                bad.wait() // re-raises "solver bug"
            })
        });
        let payload = result.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"solver bug"));
    }

    #[test]
    fn panicking_body_still_shuts_workers_down() {
        // Without the shutdown drop-guard this hangs forever in
        // thread::scope's implicit join instead of propagating the panic.
        let result = std::panic::catch_unwind(|| {
            serve::<(), ()>(ServeConfig::default().workers(2), |_handle| {
                panic!("body bug")
            })
        });
        let payload = result.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"body bug"));
    }

    #[test]
    fn wait_after_try_take_panics_instead_of_blocking() {
        let result = std::panic::catch_unwind(|| {
            serve(ServeConfig::default().workers(1), |handle| {
                let ticket = handle.submit(Request::new(|_| 42usize)).unwrap();
                while !ticket.is_done() {
                    std::thread::yield_now();
                }
                assert_eq!(ticket.try_take(), Some(42));
                assert!(ticket.is_done(), "done stays true after taking");
                assert_eq!(ticket.try_take(), None, "second poll sees it taken");
                ticket.wait() // must fail fast, not block forever
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn cancellation_reaches_the_running_closure() {
        let polls = AtomicUsize::new(0);
        let config = ServeConfig::default().workers(1);
        let cancelled = serve(config, |handle| {
            let ticket = handle
                .submit(Request::new(|ctx: &QueryContext| {
                    // Spin until the ticket cancels us.
                    while ctx.abort_reason().is_none() {
                        polls.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    ctx.abort_reason()
                }))
                .unwrap();
            while !ticket.is_done() && polls.load(Ordering::Relaxed) < 3 {
                std::thread::yield_now();
            }
            ticket.cancel();
            ticket.wait()
        });
        assert_eq!(cancelled, Some(cca_storage::AbortReason::Cancelled));
    }

    /// The satellite starvation bound, end to end: one worker, a saturated
    /// stream of high-priority requests, and a single low-priority request
    /// submitted first. With aging every `A` dispatches the low request
    /// must be dispatched within `3A + 1` rounds of entering the queue.
    #[test]
    fn aged_low_priority_request_completes_within_bounded_rounds() {
        const AGING: u32 = 4;
        const HIGH_BACKLOG: usize = 8;
        let dispatched = AtomicUsize::new(0);
        let config = ServeConfig::default()
            .workers(1)
            .queue_capacity(64)
            .aging_period(AGING);
        let gate = Mutex::new(());
        let guard = gate.lock().unwrap();
        let low_round = serve(config, |handle| {
            let blocker = handle
                .submit(Request::new(|_| {
                    drop(gate.lock().unwrap_or_else(|e| e.into_inner()));
                    0usize
                }))
                .unwrap();
            while handle.queue_len() > 0 {
                std::thread::yield_now();
            }
            // Low enters first, then a standing high-priority backlog.
            let dispatched = &dispatched;
            let low = handle
                .submit(
                    Request::new(move |_| dispatched.fetch_add(1, Ordering::SeqCst) + 1)
                        .priority(Priority::Low),
                )
                .unwrap();
            let mut highs = Vec::new();
            for _ in 0..HIGH_BACKLOG {
                highs.push(
                    handle
                        .submit(
                            Request::new(move |_| dispatched.fetch_add(1, Ordering::SeqCst) + 1)
                                .priority(Priority::High),
                        )
                        .unwrap(),
                );
            }
            drop(guard);
            blocker.wait();
            // Keep the queue saturated with fresh high-priority work until
            // the low request completes.
            loop {
                if let Some(round) = low.try_take() {
                    for h in highs {
                        h.wait();
                    }
                    return round;
                }
                if let Ok(t) = handle.submit(
                    Request::new(move |_| dispatched.fetch_add(1, Ordering::SeqCst) + 1)
                        .priority(Priority::High),
                ) {
                    highs.push(t);
                }
                std::thread::yield_now();
            }
        });
        let bound = (3 * AGING + 1) as usize;
        assert!(
            low_round <= bound,
            "low-priority request dispatched in round {low_round}, bound {bound}"
        );
    }
}
