//! [`AgingQueue`] — the scheduler's bounded multi-level priority queue.
//!
//! One FIFO ring per [`Priority`] level, popped highest level first. To
//! prevent starvation under a saturated stream of high-priority work, the
//! queue *ages* waiters: every `aging_period` pops, the front (oldest)
//! entry of each non-top level is promoted one level up. A lone
//! low-priority entry therefore reaches the top level after at most
//! `(levels − 1) × aging_period` pops and is served next — a deterministic
//! bound the starvation tests pin down.
//!
//! The queue is bounded: [`AgingQueue::push`] refuses entries beyond
//! `capacity`, which is the scheduler's semaphore-style admission control —
//! capacity is the number of backlog permits, and an exhausted queue sheds
//! load explicitly instead of growing without bound.

use std::collections::VecDeque;

use cca_storage::Priority;

/// Bounded multi-level FIFO queue with priority aging.
#[derive(Debug)]
pub struct AgingQueue<T> {
    /// One FIFO per priority level, indexed by [`Priority::index`].
    levels: Vec<VecDeque<T>>,
    len: usize,
    capacity: usize,
    /// Pops between promotion rounds (`0` disables aging).
    aging_period: u32,
    pops_since_promotion: u32,
}

impl<T> AgingQueue<T> {
    /// A queue admitting at most `capacity` entries, promoting waiters
    /// every `aging_period` pops (`0` = never promote).
    pub fn new(capacity: usize, aging_period: u32) -> Self {
        AgingQueue {
            levels: (0..Priority::ALL.len()).map(|_| VecDeque::new()).collect(),
            len: 0,
            capacity,
            aging_period,
            pops_since_promotion: 0,
        }
    }

    /// Entries currently queued.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The admission bound.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues `item` at `priority`; gives the item back when the queue is
    /// at capacity (the caller turns that into an explicit rejection).
    pub fn push(&mut self, priority: Priority, item: T) -> Result<(), T> {
        if self.len >= self.capacity {
            return Err(item);
        }
        self.levels[priority.index()].push_back(item);
        self.len += 1;
        Ok(())
    }

    /// Dequeues the front of the highest non-empty level, after applying a
    /// promotion round if one is due.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        if self.aging_period > 0 {
            self.pops_since_promotion += 1;
            if self.pops_since_promotion >= self.aging_period {
                self.pops_since_promotion = 0;
                self.promote_round();
            }
        }
        for level in (0..self.levels.len()).rev() {
            if let Some(item) = self.levels[level].pop_front() {
                self.len -= 1;
                return Some(item);
            }
        }
        unreachable!("len > 0 but every level was empty");
    }

    /// One aging round: the oldest waiter of each non-top level moves one
    /// level up (to the back of that level's FIFO, as its newest arrival).
    fn promote_round(&mut self) {
        for level in (0..self.levels.len() - 1).rev() {
            if let Some(item) = self.levels[level].pop_front() {
                self.levels[level + 1].push_back(item);
            }
        }
    }

    /// Removes and returns the first queued entry matching `pred` (scanning
    /// highest level first), or `None`. This is how a still-queued job is
    /// withdrawn at cancel time — the admission slot frees immediately
    /// instead of when a worker would eventually pop the dead entry.
    pub fn remove_first(&mut self, mut pred: impl FnMut(&T) -> bool) -> Option<T> {
        for level in self.levels.iter_mut().rev() {
            if let Some(i) = level.iter().position(&mut pred) {
                self.len -= 1;
                return level.remove(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_highest_priority_first_fifo_within_level() {
        let mut q = AgingQueue::new(8, 0);
        q.push(Priority::Normal, "n1").unwrap();
        q.push(Priority::High, "h1").unwrap();
        q.push(Priority::Normal, "n2").unwrap();
        q.push(Priority::Critical, "c1").unwrap();
        q.push(Priority::Low, "l1").unwrap();
        q.push(Priority::High, "h2").unwrap();
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, ["c1", "h1", "h2", "n1", "n2", "l1"]);
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_bounds_admission() {
        let mut q = AgingQueue::new(2, 0);
        q.push(Priority::Normal, 1).unwrap();
        q.push(Priority::Low, 2).unwrap();
        assert_eq!(
            q.push(Priority::Critical, 3),
            Err(3),
            "full sheds even critical"
        );
        assert_eq!(q.len(), 2);
        q.pop().unwrap();
        q.push(Priority::Critical, 3).unwrap();
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn aging_promotes_a_starved_low_entry_within_the_bound() {
        const PERIOD: u32 = 3;
        let mut q = AgingQueue::new(64, PERIOD);
        q.push(Priority::Low, u32::MAX).unwrap();
        // A saturated high-priority stream: top up after every pop.
        let mut next_high = 0u32;
        for _ in 0..4 {
            q.push(Priority::High, next_high).unwrap();
            next_high += 1;
        }
        let mut pops = 0u32;
        loop {
            let item = q.pop().expect("queue kept saturated");
            pops += 1;
            if item == u32::MAX {
                break;
            }
            q.push(Priority::High, next_high).unwrap();
            next_high += 1;
        }
        // Low → Normal → High → Critical takes ≤ 3 rounds of PERIOD pops;
        // at Critical it is served on the next pop.
        let bound = 3 * PERIOD + 1;
        assert!(
            pops <= bound,
            "low-priority entry served after {pops} pops (bound {bound})"
        );
    }

    #[test]
    fn aging_disabled_starves_lower_levels() {
        let mut q = AgingQueue::new(64, 0);
        q.push(Priority::Low, 999).unwrap();
        for i in 0..20 {
            q.push(Priority::High, i).unwrap();
        }
        for _ in 0..20 {
            assert_ne!(q.pop(), Some(999), "high work drains first without aging");
        }
        assert_eq!(q.pop(), Some(999));
    }

    #[test]
    fn remove_first_frees_a_slot_and_preserves_order() {
        let mut q = AgingQueue::new(3, 0);
        q.push(Priority::Low, "a").unwrap();
        q.push(Priority::High, "b").unwrap();
        q.push(Priority::Low, "c").unwrap();
        assert_eq!(q.remove_first(|&x| x == "a"), Some("a"));
        assert_eq!(q.len(), 2);
        assert_eq!(q.remove_first(|&x| x == "a"), None, "already removed");
        // The freed slot admits again; remaining order is untouched.
        q.push(Priority::Low, "d").unwrap();
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, ["b", "c", "d"]);
    }

    #[test]
    fn promotion_preserves_relative_age() {
        // Two low entries: the older one must be promoted (and served)
        // first.
        let mut q = AgingQueue::new(8, 1);
        q.push(Priority::Low, "old").unwrap();
        q.push(Priority::Low, "young").unwrap();
        q.push(Priority::High, "h").unwrap();
        assert_eq!(q.pop(), Some("h"));
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        assert_eq!((a, b), ("old", "young"));
    }
}
