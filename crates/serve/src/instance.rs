//! [`ServingInstance`] — an *owned*, long-lived serving scope.
//!
//! [`crate::serve`] ties the scheduler's lifetime to one stack frame: the
//! worker pool exists only inside the closure, which is exactly right for
//! a batch but cannot back a network front-end where connections come and
//! go for hours. `ServingInstance` inverts the ownership: the DRR/aging
//! queues and worker threads live behind an `Arc` for as long as the value
//! does, submissions arrive from any thread across many batches and
//! connections, and the per-tenant [`TenantStats`] accumulate over the
//! instance's whole lifetime — the cross-batch fairness picture a gateway
//! reports to operators.
//!
//! Two submission paths:
//!
//! * [`ServingInstance::submit`] takes `'static` work (the wire path: a
//!   request decoded from a socket owns its problem data), returning an
//!   [`OwnedTicket`] that is itself `'static` and can be waited on from
//!   the connection's thread.
//! * [`ServingInstance::scope`] re-creates the borrowed ergonomics of
//!   [`crate::serve`] *on the shared instance*: inside the scope, work may
//!   borrow from the caller's stack (e.g. a `SpatialAssignment` held by a
//!   batch runner); the scope blocks on exit until every closure it
//!   submitted has been consumed, which is what makes the borrow sound.
//!
//! Dropping the instance flips the shutdown flag and joins the workers;
//! they drain every admitted request first, so outstanding tickets still
//! resolve.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use cca_storage::{QueryContext, TenantId};

use crate::drr::TenantStats;
use crate::scheduler::{
    cancel_on, submit_to, Admitted, Rejected, Request, ServeConfig, Shared, TicketCell, Work,
};

/// An owned scheduler: worker threads plus the two-level tenant-fair queue,
/// living for as long as the value (not a scope) does.
pub struct ServingInstance<T: Send + 'static> {
    shared: Arc<Shared<'static, T>>,
    workers: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> ServingInstance<T> {
    /// Starts `config.workers` worker threads over a fresh queue.
    pub fn start(config: ServeConfig) -> Self {
        let shared = Arc::new(Shared::new(&config));
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cca-serve-{i}"))
                    .spawn(move || crate::scheduler::worker(&*shared))
                    .expect("spawn serving worker")
            })
            .collect();
        ServingInstance { shared, workers }
    }

    /// Submits owned (`'static`) work — the wire path. Same admission
    /// semantics as [`crate::ServeHandle::submit`]: a [`Rejected`] request
    /// is shed explicitly and no ticket is created.
    pub fn submit(&self, request: Request<'static, T>) -> Result<OwnedTicket<T>, Rejected> {
        let Admitted {
            cell,
            ctx,
            tenant,
            seq,
        } = submit_to(&self.shared, request)?;
        Ok(OwnedTicket {
            cell,
            ctx,
            tenant,
            seq,
            shared: Arc::clone(&self.shared),
        })
    }

    /// Runs `body` with an [`InstanceScope`] through which work may borrow
    /// from the caller's environment (`'env`), like [`crate::serve`] — but
    /// on this shared, long-lived instance, so the work is scheduled
    /// *against* whatever the wire path is submitting concurrently and
    /// lands in the same cumulative [`TenantStats`].
    ///
    /// Returns only after every closure submitted through the scope has
    /// been consumed (run to completion on a worker, run on a cancelling
    /// thread, or dropped at teardown), so the borrows are dead — the
    /// scope's whole soundness argument. Waiting on the scope's tickets
    /// inside `body` (the usual pattern) makes this wait a no-op.
    pub fn scope<'env, Out>(&self, body: impl FnOnce(&InstanceScope<'_, 'env, T>) -> Out) -> Out {
        let pending = Arc::new(ScopeState::default());
        let scope = InstanceScope {
            instance: self,
            pending: Arc::clone(&pending),
            _env: std::marker::PhantomData,
        };
        // Declared after `scope`, so it drops first — the wait runs on
        // normal return *and* on a panicking `body`, before `'env` ends.
        let _wait = ScopeWait { state: &pending };
        body(&scope)
    }

    /// Requests currently queued (admitted, not yet dispatched).
    pub fn queue_len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Lifetime per-tenant snapshots (cross-batch, cross-connection),
    /// sorted by tenant id.
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        self.shared.lock().queue.tenant_stats()
    }

    /// Lifetime snapshot of one tenant, if the instance has seen it.
    pub fn tenant_stats_for(&self, tenant: TenantId) -> Option<TenantStats> {
        self.shared.lock().queue.tenant_stats_for(tenant)
    }

    /// Shuts the instance down explicitly (identical to dropping it):
    /// blocks until the workers drain every admitted request and exit.
    /// Outstanding [`OwnedTicket`]s keep working — they share the
    /// completion cells, which all resolve during the drain.
    pub fn shutdown(self) {}
}

impl<T: Send + 'static> Drop for ServingInstance<T> {
    fn drop(&mut self) {
        self.shared.lock().shutdown = true;
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The caller's handle on one query submitted to a [`ServingInstance`] —
/// [`crate::Ticket`] without the scope lifetimes, so a connection thread
/// can hold it across await points of its own making.
pub struct OwnedTicket<T: Send + 'static> {
    cell: Arc<TicketCell<T>>,
    ctx: QueryContext,
    tenant: TenantId,
    seq: u64,
    shared: Arc<Shared<'static, T>>,
}

impl<T: Send + 'static> OwnedTicket<T> {
    /// Blocks until the query finishes and returns its result.
    ///
    /// # Panics
    /// Re-raises the query closure's panic, if it panicked; panics if the
    /// result was already claimed via [`OwnedTicket::try_take`].
    pub fn wait(self) -> T {
        self.cell.wait_take()
    }

    /// Takes the result if the query already finished (`None` while it is
    /// still pending or after the result was taken).
    ///
    /// # Panics
    /// Re-raises the query closure's panic, if it panicked.
    pub fn try_take(&self) -> Option<T> {
        self.cell.try_take()
    }

    /// True once the query finished (stays true after the result is
    /// taken).
    pub fn is_done(&self) -> bool {
        self.cell.is_done()
    }

    /// Requests cooperative cancellation — same semantics as
    /// [`crate::Ticket::cancel`]: a still-queued query is withdrawn here
    /// (its admission slots released immediately) and runs on the
    /// cancelling thread; a running query aborts at its next context poll.
    pub fn cancel(&self) {
        cancel_on(&self.shared, &self.ctx, self.tenant, self.seq);
    }

    /// The query's context (for inspecting attribution mid-flight).
    pub fn context(&self) -> &QueryContext {
        &self.ctx
    }
}

/// Count of scope-submitted closures not yet consumed, plus the condvar
/// the scope's exit wait parks on.
#[derive(Default)]
struct ScopeState {
    outstanding: Mutex<usize>,
    all_consumed: Condvar,
}

impl ScopeState {
    fn incr(&self) {
        *self.outstanding.lock().unwrap_or_else(|e| e.into_inner()) += 1;
    }

    fn decr(&self) {
        let mut n = self.outstanding.lock().unwrap_or_else(|e| e.into_inner());
        *n -= 1;
        if *n == 0 {
            self.all_consumed.notify_all();
        }
    }

    fn wait_consumed(&self) {
        let mut n = self.outstanding.lock().unwrap_or_else(|e| e.into_inner());
        while *n > 0 {
            n = self.all_consumed.wait(n).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Owned by every closure a scope submits; dropping it (the closure ran,
/// unwound, or was torn down unrun) is what the scope's exit wait counts.
struct ScopeToken {
    state: Arc<ScopeState>,
}

impl ScopeToken {
    fn new(state: Arc<ScopeState>) -> Self {
        state.incr();
        ScopeToken { state }
    }
}

impl Drop for ScopeToken {
    fn drop(&mut self) {
        self.state.decr();
    }
}

/// Blocks, when dropped, until every token the scope handed out is dead.
struct ScopeWait<'s> {
    state: &'s ScopeState,
}

impl Drop for ScopeWait<'_> {
    fn drop(&mut self) {
        self.state.wait_consumed();
    }
}

/// Submission handle inside [`ServingInstance::scope`]: accepts work
/// borrowing from the scope's environment `'env`.
pub struct InstanceScope<'a, 'env, T: Send + 'static> {
    instance: &'a ServingInstance<T>,
    pending: Arc<ScopeState>,
    /// Invariant in `'env`, like `std::thread::Scope` — the environment
    /// lifetime must not be shortened behind the scope's back.
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'env, T: Send + 'static> InstanceScope<'_, 'env, T> {
    /// Submits work that may borrow from `'env`, onto the shared
    /// instance. Admission semantics are unchanged; the returned ticket is
    /// owned and may outlive the scope (it holds no `'env` data — `T` is
    /// `'static`).
    pub fn submit(&self, request: Request<'env, T>) -> Result<OwnedTicket<T>, Rejected> {
        let Request { ctx, work } = request;
        let token = ScopeToken::new(Arc::clone(&self.pending));
        let work: Work<'env, T> = Box::new(move |ctx: &QueryContext| {
            // Hold the token for the closure's whole run: it drops when
            // the call frame ends — after `work` returns *or* while its
            // panic unwinds — and with the environment if never called.
            let _consumed = token;
            work(ctx)
        });
        // SAFETY: the closure is erased to `'static` so it can sit in the
        // instance's `'static` queue, but nothing borrowed from `'env` can
        // be used after `'env` ends: the closure owns a `ScopeToken`, and
        // `ServingInstance::scope` blocks (via `ScopeWait`) until every
        // token is dropped before it returns — i.e. until the closure has
        // been consumed (run on a worker, run on a cancelling thread, or
        // destroyed). `T` itself is `'static`, so results carry no `'env`
        // borrows. Box<dyn FnOnce>'s layout does not depend on the trait
        // object's lifetime bound, so the transmute is layout-safe.
        let work: Work<'static, T> =
            unsafe { std::mem::transmute::<Work<'env, T>, Work<'static, T>>(work) };
        self.instance.submit(Request { ctx, work })
    }

    /// The shared instance the scope submits to.
    pub fn instance(&self) -> &ServingInstance<T> {
        self.instance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drr::TenantQuota;
    use cca_storage::{IoStats, Priority};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    const A: TenantId = TenantId(1);
    const B: TenantId = TenantId(2);

    #[test]
    fn one_instance_serves_sequential_batches_with_cumulative_stats() {
        let instance: ServingInstance<u64> =
            ServingInstance::start(ServeConfig::default().workers(2).queue_capacity(64));
        for batch in 0..3u64 {
            let tickets: Vec<_> = (0..8u64)
                .map(|i| {
                    instance
                        .submit(Request::new(move |_: &QueryContext| batch * 100 + i).tenant(A))
                        .unwrap()
                })
                .collect();
            let sum: u64 = tickets.into_iter().map(OwnedTicket::wait).sum();
            assert_eq!(sum, batch * 800 + 28);
            // The whole point of the owned instance: stats survive the
            // batch boundary instead of dying with a scope.
            let stats = instance.tenant_stats_for(A).unwrap();
            assert_eq!(stats.submitted, (batch + 1) * 8);
            assert_eq!(stats.completed, (batch + 1) * 8);
        }
        instance.shutdown();
    }

    #[test]
    fn submissions_from_many_threads_interleave_on_one_instance() {
        let instance: ServingInstance<u32> =
            ServingInstance::start(ServeConfig::default().workers(4).queue_capacity(256));
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let instance = &instance;
                s.spawn(move || {
                    let tenant = TenantId(t % 2 + 1);
                    let tickets: Vec<_> = (0..16)
                        .map(|i| {
                            instance
                                .submit(Request::new(move |_: &QueryContext| i).tenant(tenant))
                                .unwrap()
                        })
                        .collect();
                    for (i, ticket) in tickets.into_iter().enumerate() {
                        assert_eq!(ticket.wait(), i as u32);
                    }
                });
            }
        });
        let a = instance.tenant_stats_for(A).unwrap();
        let b = instance.tenant_stats_for(B).unwrap();
        assert_eq!(a.completed + b.completed, 64);
        assert!(a.qps > 0.0 && b.qps > 0.0);
    }

    #[test]
    fn drop_drains_admitted_work_and_outstanding_tickets_resolve() {
        let ran = Arc::new(AtomicUsize::new(0));
        let instance: ServingInstance<usize> =
            ServingInstance::start(ServeConfig::default().workers(1).queue_capacity(64));
        let tickets: Vec<_> = (0..16)
            .map(|i| {
                let ran = Arc::clone(&ran);
                instance
                    .submit(Request::new(move |_: &QueryContext| {
                        std::thread::sleep(Duration::from_millis(1));
                        ran.fetch_add(1, Ordering::SeqCst);
                        i
                    }))
                    .unwrap()
            })
            .collect();
        drop(instance); // joins workers; they drain all 16 first
        assert_eq!(ran.load(Ordering::SeqCst), 16);
        for (i, ticket) in tickets.into_iter().enumerate() {
            assert_eq!(ticket.try_take(), Some(i), "resolved during the drain");
        }
    }

    #[test]
    fn scope_lets_work_borrow_the_callers_stack() {
        let instance: ServingInstance<u64> =
            ServingInstance::start(ServeConfig::default().workers(2).queue_capacity(64));
        // Stack data the closures borrow — this must not require 'static.
        let data: Vec<u64> = (0..100).collect();
        let total: u64 = instance.scope(|scope| {
            let tickets: Vec<_> = data
                .chunks(10)
                .map(|chunk| {
                    scope
                        .submit(Request::new(move |_: &QueryContext| {
                            chunk.iter().sum::<u64>()
                        }))
                        .unwrap()
                })
                .collect();
            tickets.into_iter().map(OwnedTicket::wait).sum()
        });
        assert_eq!(total, 4950);
        // The instance is still alive and serving after the scope.
        let after = instance
            .submit(Request::new(|_: &QueryContext| 7u64))
            .unwrap();
        assert_eq!(after.wait(), 7);
    }

    #[test]
    fn scope_exit_waits_for_unawaited_borrowed_work() {
        let instance: ServingInstance<usize> =
            ServingInstance::start(ServeConfig::default().workers(2).queue_capacity(64));
        let hits = AtomicUsize::new(0);
        instance.scope(|scope| {
            // Deliberately do NOT wait on the tickets: the scope itself
            // must block until the borrowed closures are consumed.
            for _ in 0..8 {
                let hits = &hits;
                scope
                    .submit(Request::new(move |_: &QueryContext| {
                        std::thread::sleep(Duration::from_millis(2));
                        hits.fetch_add(1, Ordering::SeqCst)
                    }))
                    .unwrap();
            }
        });
        // If the scope returned early this would race; the wait makes it
        // deterministic.
        assert_eq!(hits.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn owned_ticket_cancel_withdraws_queued_work_and_frees_the_slot() {
        let gate = Arc::new(Mutex::new(()));
        let guard = gate.lock().unwrap();
        let instance: ServingInstance<&'static str> = ServingInstance::start(
            ServeConfig::default()
                .workers(1)
                .queue_capacity(2)
                .aging_period(0),
        );
        let gate2 = Arc::clone(&gate);
        let blocker = instance
            .submit(Request::new(move |_: &QueryContext| {
                drop(gate2.lock().unwrap_or_else(|e| e.into_inner()));
                "blocker"
            }))
            .unwrap();
        while instance.queue_len() > 0 {
            std::thread::yield_now();
        }
        let doomed = instance
            .submit(Request::new(|ctx: &QueryContext| {
                match ctx.abort_reason() {
                    Some(_) => "unwound",
                    None => "ran",
                }
            }))
            .unwrap();
        let _keep = instance
            .submit(Request::new(|_: &QueryContext| "keep"))
            .unwrap();
        assert!(matches!(
            instance.submit(Request::new(|_: &QueryContext| "over")),
            Err(Rejected::QueueFull { .. })
        ));
        doomed.cancel();
        assert_eq!(instance.queue_len(), 1, "slot released at cancel time");
        assert_eq!(doomed.wait(), "unwound");
        let stats = instance.tenant_stats_for(TenantId::DEFAULT).unwrap();
        assert_eq!(stats.cancelled_queued, 1);
        drop(guard);
        assert_eq!(blocker.wait(), "blocker");
        instance.shutdown();
    }

    #[test]
    fn tenant_quotas_apply_across_submission_sources() {
        let gate = Arc::new(Mutex::new(()));
        let guard = gate.lock().unwrap();
        let instance: ServingInstance<()> = ServingInstance::start(
            ServeConfig::default()
                .workers(1)
                .queue_capacity(64)
                .tenant_quota(B, TenantQuota::default().queue_slots(1)),
        );
        let gate2 = Arc::clone(&gate);
        let blocker = instance
            .submit(Request::new(move |_: &QueryContext| {
                drop(gate2.lock().unwrap_or_else(|e| e.into_inner()));
            }))
            .unwrap();
        while instance.queue_len() > 0 {
            std::thread::yield_now();
        }
        // Owned path fills B's only slot; the scoped path then sheds.
        let _queued = instance
            .submit(Request::new(|_: &QueryContext| ()).tenant(B))
            .unwrap();
        instance.scope(|scope| {
            let shed = scope.submit(Request::new(|_: &QueryContext| ()).tenant(B));
            assert_eq!(
                shed.err(),
                Some(Rejected::TenantQuotaExceeded {
                    tenant: B,
                    queue_slots: 1
                })
            );
        });
        drop(guard);
        blocker.wait();
    }

    #[test]
    fn stats_io_is_attributed_across_batches() {
        // `finish` folds each query's context-attributed IO into the
        // tenant aggregate; fake it by charging contexts directly.
        let instance: ServingInstance<IoStats> =
            ServingInstance::start(ServeConfig::default().workers(1).queue_capacity(8));
        for _ in 0..2 {
            let ticket = instance
                .submit(
                    Request::new(|ctx: &QueryContext| {
                        ctx.charge(IoStats {
                            hits: 2,
                            faults: 3,
                            writes: 0,
                        });
                        ctx.stats()
                    })
                    .tenant(A)
                    .priority(Priority::High),
                )
                .unwrap();
            assert_eq!(ticket.wait().faults, 3);
        }
        let stats = instance.tenant_stats_for(A).unwrap();
        assert_eq!(stats.io.faults, 6, "IO accumulates across submissions");
        assert_eq!(stats.io.hits, 4);
    }
}
