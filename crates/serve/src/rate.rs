//! [`RateMeter`] — a sliding-window request-rate meter.
//!
//! The scheduler keeps one per tenant and records every submission the
//! tenant *offers* (admitted or shed against its own state), so
//! [`crate::TenantStats::qps`] reports offered load over the last
//! `rate_window` seconds — the number an operator sizes quotas against.
//! Time is bucketed per whole second: recording touches at most one bucket
//! and pruning keeps the deque at `window + 1` entries, so the meter is
//! O(1) amortised and safe to drive under the scheduler lock.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

pub(crate) struct RateMeter {
    /// Fixed reference point; bucket indices are whole seconds since it.
    origin: Instant,
    /// Window width in whole seconds (≥ 1).
    window_secs: u64,
    /// `(second index, events in that second)`, oldest first; only seconds
    /// with at least one event get a bucket.
    buckets: VecDeque<(u64, u64)>,
}

impl RateMeter {
    pub(crate) fn new(window: Duration) -> Self {
        RateMeter {
            origin: Instant::now(),
            window_secs: window.as_secs().max(1),
            buckets: VecDeque::new(),
        }
    }

    fn sec_index(&self, now: Instant) -> u64 {
        now.saturating_duration_since(self.origin).as_secs()
    }

    /// Counts one event at `now`.
    pub(crate) fn record_at(&mut self, now: Instant) {
        let sec = self.sec_index(now);
        // Drop buckets that fell out of the window ending at `sec`.
        let keep_from = sec.saturating_sub(self.window_secs);
        while self.buckets.front().is_some_and(|&(s, _)| s < keep_from) {
            self.buckets.pop_front();
        }
        match self.buckets.back_mut() {
            Some((s, n)) if *s == sec => *n += 1,
            _ => self.buckets.push_back((sec, 1)),
        }
    }

    pub(crate) fn record(&mut self) {
        self.record_at(Instant::now());
    }

    /// Events per second over the window ending at `now`: the count of the
    /// last `window` whole-second buckets (current partial second
    /// included) divided by the window width.
    pub(crate) fn rate_at(&self, now: Instant) -> f64 {
        let sec = self.sec_index(now);
        let from = (sec + 1).saturating_sub(self.window_secs);
        let events: u64 = self
            .buckets
            .iter()
            .filter(|&&(s, _)| s >= from && s <= sec)
            .map(|&(_, n)| n)
            .sum();
        events as f64 / self.window_secs as f64
    }

    pub(crate) fn rate(&self) -> f64 {
        self.rate_at(Instant::now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(meter: &RateMeter, secs: u64) -> Instant {
        meter.origin + Duration::from_secs(secs)
    }

    #[test]
    fn counts_within_the_window() {
        let mut m = RateMeter::new(Duration::from_secs(10));
        for _ in 0..5 {
            m.record_at(at(&m, 0));
        }
        for _ in 0..5 {
            m.record_at(at(&m, 3));
        }
        assert_eq!(m.rate_at(at(&m, 3)), 1.0, "10 events / 10 s window");
    }

    #[test]
    fn old_events_fall_out_of_the_window() {
        let mut m = RateMeter::new(Duration::from_secs(5));
        for _ in 0..10 {
            m.record_at(at(&m, 0));
        }
        assert_eq!(m.rate_at(at(&m, 0)), 2.0);
        assert_eq!(m.rate_at(at(&m, 4)), 2.0, "second 0 still in [0, 4]");
        assert_eq!(m.rate_at(at(&m, 5)), 0.0, "window [1, 5] excludes them");
    }

    #[test]
    fn pruning_bounds_the_bucket_count() {
        let mut m = RateMeter::new(Duration::from_secs(3));
        for s in 0..100 {
            m.record_at(at(&m, s));
        }
        assert!(m.buckets.len() <= 4, "window + 1 buckets at most");
        assert_eq!(m.rate_at(at(&m, 99)), 1.0);
    }

    #[test]
    fn sub_second_windows_round_up_to_one_second() {
        let mut m = RateMeter::new(Duration::from_millis(10));
        m.record_at(at(&m, 0));
        assert_eq!(m.rate_at(at(&m, 0)), 1.0);
    }
}
