//! [`DrrQueue`] — the scheduler's two-level, tenant-fair ready queue.
//!
//! Level 1 picks the *tenant* by weighted deficit-round-robin (DRR):
//! backlogged tenants sit in a ring, each with a deficit counter refilled
//! with its weight when its turn starts, and every dispatch costs one
//! deficit unit — so over any saturated window tenants receive dispatches
//! in proportion to their weights, regardless of how many requests (or how
//! high-priority) an aggressive tenant floods in. Level 2 keeps the
//! [`AgingQueue`] priority+aging semantics *within* each tenant, preserving
//! the deterministic per-tenant starvation bound (`3 × aging_period + 1`
//! tenant-local dispatches) the PR 4 tests pin down.
//!
//! Admission is bounded twice: a global backlog capacity shared by all
//! tenants, and per-tenant quotas ([`TenantQuota`]) — queue slots rejected
//! at submit time, and an in-flight cap that gates *dispatch* (a tenant at
//! its cap is rotated past without spending deficit, so its backlog waits
//! without blocking anyone else's).
//!
//! The queue also owns the per-tenant accounting behind the scheduler's
//! [`TenantStats`] snapshots: admission/rejection/dispatch counters, abort
//! and latency aggregates, and cumulative I/O aggregated from each query's
//! [`cca_storage::QueryContext`] attribution at completion time.

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use cca_storage::{IoStats, Priority, TenantId};

use crate::queue::AgingQueue;
use crate::rate::RateMeter;

/// Per-tenant scheduling weight and admission quotas.
///
/// Built builder-style; the default is weight 1 with unlimited quotas
/// (fairness without caps):
///
/// ```
/// use cca_serve::TenantQuota;
/// let quota = TenantQuota::default().weight(3).queue_slots(64).max_in_flight(2);
/// assert_eq!(quota.weight, 3);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct TenantQuota {
    /// DRR weight: dispatches granted per round while backlogged (≥ 1).
    /// A tenant with weight 2 receives twice the dispatch share of a
    /// weight-1 tenant under saturation.
    pub weight: u32,
    /// Backlog permits: queued (not yet dispatched) requests beyond this
    /// are shed with `Rejected::TenantQuotaExceeded` even when the global
    /// queue still has room.
    pub queue_slots: usize,
    /// Concurrency cap: the tenant's queued work is not dispatched while
    /// this many of its queries are running, bounding how much of the
    /// worker pool one tenant can occupy.
    pub max_in_flight: usize,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            weight: 1,
            queue_slots: usize::MAX,
            max_in_flight: usize::MAX,
        }
    }
}

impl TenantQuota {
    /// Sets the DRR weight (≥ 1).
    pub fn weight(mut self, weight: u32) -> Self {
        assert!(weight >= 1, "a tenant needs a positive weight");
        self.weight = weight;
        self
    }

    /// Sets the per-tenant backlog permit count (≥ 1).
    pub fn queue_slots(mut self, slots: usize) -> Self {
        assert!(slots >= 1, "at least one queue slot");
        self.queue_slots = slots;
        self
    }

    /// Sets the per-tenant concurrency cap (≥ 1).
    pub fn max_in_flight(mut self, max: usize) -> Self {
        assert!(max >= 1, "at least one in-flight query");
        self.max_in_flight = max;
        self
    }
}

/// Why [`DrrQueue::push`] refused an entry (the entry is dropped — the
/// scheduler turns this into an explicit [`crate::Rejected`] and never
/// creates a ticket for a shed request).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum PushError {
    /// The tenant's own queue-slot quota is exhausted.
    TenantQuota {
        tenant: TenantId,
        queue_slots: usize,
    },
    /// The global backlog is at capacity.
    Full { capacity: usize },
}

/// Operator-facing snapshot of one tenant's serving state, taken under the
/// scheduler lock by `ServeHandle::tenant_stats`.
#[derive(Clone, Debug)]
pub struct TenantStats {
    pub tenant: TenantId,
    /// The DRR weight the tenant is scheduled at.
    pub weight: u32,
    /// Requests admitted into the queue (lifetime).
    pub submitted: u64,
    /// Requests shed at admission (tenant quota or global capacity).
    pub rejected: u64,
    /// Requests handed to a worker (lifetime).
    pub dispatched: u64,
    /// Dispatched requests that finished with a clean context.
    pub completed: u64,
    /// Dispatched requests whose context was aborted (deadline, I/O
    /// budget or cancellation) by the time they finished.
    pub aborted: u64,
    /// Still-queued requests withdrawn at cancel time (their admission
    /// slot was released without a dispatch).
    pub cancelled_queued: u64,
    /// Requests queued right now.
    pub queued: usize,
    /// Requests running right now.
    pub in_flight: usize,
    /// Cumulative buffer-pool traffic attributed to this tenant's queries
    /// (summed from each query's `QueryContext` at completion).
    pub io: IoStats,
    /// Sum of submit→finish latencies of finished queries.
    pub total_latency: Duration,
    /// Worst submit→finish latency seen.
    pub max_latency: Duration,
    /// Offered submission rate (requests/s, admitted *and* shed) averaged
    /// over the scheduler's sliding `rate_window` — the load the tenant is
    /// putting on the admission queue right now.
    pub qps: f64,
}

impl TenantStats {
    /// Finished queries (completed + aborted).
    pub fn finished(&self) -> u64 {
        self.completed + self.aborted
    }

    /// Mean submit→finish latency, or zero before anything finished.
    pub fn mean_latency(&self) -> Duration {
        match self.finished() {
            0 => Duration::ZERO,
            n => self.total_latency / u32::try_from(n.min(u64::from(u32::MAX))).unwrap_or(1),
        }
    }

    /// The paper's charged I/O time for this tenant's cumulative faults.
    pub fn charged_io_ms(&self) -> f64 {
        self.io.charged_io_time_ms()
    }
}

/// One tenant's level-2 queue plus its DRR and accounting state.
struct TenantState<T> {
    queue: AgingQueue<T>,
    quota: TenantQuota,
    /// Remaining dispatches in the tenant's current DRR turn.
    deficit: u64,
    in_flight: usize,
    submitted: u64,
    rejected: u64,
    dispatched: u64,
    completed: u64,
    aborted: u64,
    cancelled_queued: u64,
    io: IoStats,
    total_latency: Duration,
    max_latency: Duration,
    meter: RateMeter,
}

impl<T> TenantState<T> {
    fn new(quota: TenantQuota, aging_period: u32, rate_window: Duration) -> Self {
        TenantState {
            // The per-tenant AgingQueue bound is the tenant's own quota;
            // the global capacity is enforced by the DrrQueue.
            queue: AgingQueue::new(quota.queue_slots, aging_period),
            quota,
            deficit: 0,
            in_flight: 0,
            submitted: 0,
            rejected: 0,
            dispatched: 0,
            completed: 0,
            aborted: 0,
            cancelled_queued: 0,
            io: IoStats::default(),
            total_latency: Duration::ZERO,
            max_latency: Duration::ZERO,
            meter: RateMeter::new(rate_window),
        }
    }

    fn stats(&self, tenant: TenantId) -> TenantStats {
        TenantStats {
            tenant,
            weight: self.quota.weight,
            submitted: self.submitted,
            rejected: self.rejected,
            dispatched: self.dispatched,
            completed: self.completed,
            aborted: self.aborted,
            cancelled_queued: self.cancelled_queued,
            queued: self.queue.len(),
            in_flight: self.in_flight,
            io: self.io,
            total_latency: self.total_latency,
            max_latency: self.max_latency,
            qps: self.meter.rate(),
        }
    }
}

/// The two-level ready queue: weighted DRR across tenants, priority+aging
/// within each tenant. All operations run under the scheduler's mutex.
pub(crate) struct DrrQueue<T> {
    tenants: HashMap<TenantId, TenantState<T>>,
    /// Backlogged tenants in round-robin order; invariant: a tenant is in
    /// the ring iff its level-2 queue is non-empty (each appears once).
    ring: VecDeque<TenantId>,
    len: usize,
    capacity: usize,
    aging_period: u32,
    default_quota: TenantQuota,
    rate_window: Duration,
}

impl<T> DrrQueue<T> {
    pub(crate) fn new(
        capacity: usize,
        aging_period: u32,
        default_quota: TenantQuota,
        quotas: &[(TenantId, TenantQuota)],
        rate_window: Duration,
    ) -> Self {
        let mut q = DrrQueue {
            tenants: HashMap::new(),
            ring: VecDeque::new(),
            len: 0,
            capacity,
            aging_period,
            default_quota,
            rate_window,
        };
        // Pre-seed configured tenants so their weights/quotas apply from
        // the first submit and they appear in stats snapshots immediately.
        for &(tenant, quota) in quotas {
            q.tenants
                .insert(tenant, TenantState::new(quota, aging_period, rate_window));
        }
        q
    }

    /// Total queued entries across all tenants.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The global admission bound.
    #[inline]
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    fn tenant_mut(&mut self, tenant: TenantId) -> &mut TenantState<T> {
        let (aging, quota, window) = (self.aging_period, self.default_quota, self.rate_window);
        self.tenants
            .entry(tenant)
            .or_insert_with(|| TenantState::new(quota, aging, window))
    }

    /// Admits `item` for `tenant` at `priority`, or refuses it with the
    /// quota/capacity that was hit. Tenant quota is checked first — the
    /// more specific shedding signal.
    pub(crate) fn push(
        &mut self,
        tenant: TenantId,
        priority: Priority,
        item: T,
    ) -> Result<(), PushError> {
        let global_full = self.len >= self.capacity;
        // A tenant the scheduler has never admitted anything for gets no
        // state while the queue is full — an adversary cycling fresh
        // tenant ids against a saturated queue must not grow the map (the
        // un-tracked rejection costs it its stats entry, nothing else).
        if global_full && !self.tenants.contains_key(&tenant) {
            return Err(PushError::Full {
                capacity: self.capacity,
            });
        }
        let state = self.tenant_mut(tenant);
        // Meter the *offer*, not just the admission: shed traffic is
        // exactly what a quota-sizing operator needs to see. (The
        // never-admitted-tenant rejection above stays unmetered by design —
        // no state may be allocated for it.)
        state.meter.record();
        if state.queue.len() >= state.quota.queue_slots {
            state.rejected += 1;
            return Err(PushError::TenantQuota {
                tenant,
                queue_slots: state.quota.queue_slots,
            });
        }
        if global_full {
            state.rejected += 1;
            return Err(PushError::Full {
                capacity: self.capacity,
            });
        }
        let was_empty = state.queue.is_empty();
        state
            .queue
            .push(priority, item)
            .unwrap_or_else(|_| unreachable!("slot quota checked above"));
        state.submitted += 1;
        self.len += 1;
        if was_empty {
            self.ring.push_back(tenant);
        }
        Ok(())
    }

    /// Dequeues the next job by the two-level policy, or `None` when the
    /// backlog is empty *or* every backlogged tenant sits at its in-flight
    /// cap (a completion will unblock it — the scheduler re-polls then).
    pub(crate) fn pop(&mut self) -> Option<(TenantId, T)> {
        // One pass over the ring: tenants at their in-flight cap are
        // rotated past without spending deficit; if everyone is capped,
        // report no eligible work.
        let mut capped = 0;
        while capped < self.ring.len() {
            let tenant = *self.ring.front().expect("ring non-empty in loop");
            let state = self.tenants.get_mut(&tenant).expect("ring tenant exists");
            debug_assert!(!state.queue.is_empty(), "ring holds backlogged tenants");
            if state.in_flight >= state.quota.max_in_flight {
                self.ring.rotate_left(1);
                capped += 1;
                continue;
            }
            // The tenant's turn: refill the deficit if a new turn starts,
            // spend one unit per dispatch.
            if state.deficit == 0 {
                state.deficit = u64::from(state.quota.weight);
            }
            state.deficit -= 1;
            let item = state.queue.pop().expect("backlogged tenant has work");
            state.in_flight += 1;
            state.dispatched += 1;
            self.len -= 1;
            if state.queue.is_empty() {
                // Classic DRR: an emptied tenant leaves the ring and
                // forfeits its residual deficit (no credit hoarding while
                // idle).
                state.deficit = 0;
                self.ring.pop_front();
            } else if state.deficit == 0 {
                self.ring.rotate_left(1);
            }
            return Some((tenant, item));
        }
        None
    }

    /// Withdraws the first still-queued entry of `tenant` matching `pred`
    /// (cancel-time slot release). Returns the entry so the caller can
    /// resolve its ticket.
    pub(crate) fn remove_queued(
        &mut self,
        tenant: TenantId,
        pred: impl FnMut(&T) -> bool,
    ) -> Option<T> {
        let state = self.tenants.get_mut(&tenant)?;
        let item = state.queue.remove_first(pred)?;
        state.cancelled_queued += 1;
        self.len -= 1;
        if state.queue.is_empty() {
            state.deficit = 0;
            self.ring.retain(|&t| t != tenant);
        }
        Some(item)
    }

    /// Records the completion of a dispatched job: frees the in-flight
    /// slot and folds the query's attribution into the tenant aggregates.
    pub(crate) fn finish(
        &mut self,
        tenant: TenantId,
        io: IoStats,
        latency: Duration,
        aborted: bool,
    ) {
        let state = self.tenant_mut(tenant);
        debug_assert!(state.in_flight > 0, "finish without a dispatch");
        state.in_flight = state.in_flight.saturating_sub(1);
        if aborted {
            state.aborted += 1;
        } else {
            state.completed += 1;
        }
        state.io = state.io + io;
        state.total_latency += latency;
        state.max_latency = state.max_latency.max(latency);
    }

    /// Queued entries of one tenant (test observability).
    #[cfg(test)]
    pub(crate) fn queued_of(&self, tenant: TenantId) -> usize {
        self.tenants.get(&tenant).map_or(0, |s| s.queue.len())
    }

    /// Snapshots every tenant ever seen (configured or observed), sorted
    /// by tenant id for stable operator output.
    pub(crate) fn tenant_stats(&self) -> Vec<TenantStats> {
        let mut stats: Vec<TenantStats> = self
            .tenants
            .iter()
            .map(|(&tenant, state)| state.stats(tenant))
            .collect();
        stats.sort_by_key(|s| s.tenant);
        stats
    }

    /// Snapshot of one tenant, if it has been configured or seen.
    pub(crate) fn tenant_stats_for(&self, tenant: TenantId) -> Option<TenantStats> {
        self.tenants.get(&tenant).map(|s| s.stats(tenant))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drr(capacity: usize, quotas: &[(TenantId, TenantQuota)]) -> DrrQueue<&'static str> {
        DrrQueue::new(
            capacity,
            0,
            TenantQuota::default(),
            quotas,
            Duration::from_secs(10),
        )
    }

    const A: TenantId = TenantId(1);
    const B: TenantId = TenantId(2);
    const C: TenantId = TenantId(3);

    #[test]
    fn equal_weights_alternate_under_saturation() {
        let mut q = drr(64, &[]);
        for _ in 0..8 {
            q.push(A, Priority::High, "a").unwrap();
            q.push(B, Priority::Low, "b").unwrap();
        }
        let mut order = Vec::new();
        while let Some((t, _)) = q.pop() {
            q.finish(t, IoStats::default(), Duration::ZERO, false);
            order.push(t);
        }
        assert_eq!(order.len(), 16);
        // Strict alternation: tenant A's high priority buys it nothing at
        // level 1 — priorities order work *within* a tenant only.
        for pair in order.chunks(2) {
            assert_ne!(pair[0], pair[1], "one dispatch each per DRR round");
        }
    }

    /// The ISSUE's fairness invariant, at queue level: equal weights and a
    /// saturated queue give each tenant ≥ 40 % of any ≥ 50-dispatch window.
    #[test]
    fn fairness_invariant_over_sliding_windows() {
        let mut q = drr(1024, &[]);
        // Tenant A floods 10× more high-priority work than B submits.
        for _ in 0..300 {
            q.push(A, Priority::Critical, "flood").unwrap();
        }
        for _ in 0..120 {
            q.push(B, Priority::Normal, "fair").unwrap();
        }
        let mut order = Vec::new();
        for _ in 0..200 {
            let (t, _) = q.pop().expect("saturated");
            q.finish(t, IoStats::default(), Duration::ZERO, false);
            order.push(t);
        }
        for window in order.windows(50) {
            let a = window.iter().filter(|&&t| t == A).count();
            assert!(
                (20..=30).contains(&a),
                "tenant A got {a}/50 in a window — not the weighted share"
            );
        }
    }

    #[test]
    fn weights_skew_the_share() {
        let quotas = [(A, TenantQuota::default().weight(3))];
        let mut q = drr(256, &quotas);
        for _ in 0..40 {
            q.push(A, Priority::Normal, "a").unwrap();
            q.push(B, Priority::Normal, "b").unwrap();
        }
        let mut first = Vec::new();
        for _ in 0..40 {
            let (t, _) = q.pop().unwrap();
            q.finish(t, IoStats::default(), Duration::ZERO, false);
            first.push(t);
        }
        let a = first.iter().filter(|&&t| t == A).count();
        assert_eq!(a, 30, "weight 3 vs 1 → 3/4 of dispatches while saturated");
        // And the pattern is burst-of-3 then 1: A A A B A A A B ...
        assert_eq!(&first[..8], &[A, A, A, B, A, A, A, B]);
    }

    #[test]
    fn queue_slot_quota_rejects_before_global_capacity() {
        let quotas = [(A, TenantQuota::default().queue_slots(2))];
        let mut q = drr(64, &quotas);
        q.push(A, Priority::Normal, "1").unwrap();
        q.push(A, Priority::Normal, "2").unwrap();
        assert_eq!(
            q.push(A, Priority::Critical, "3"),
            Err(PushError::TenantQuota {
                tenant: A,
                queue_slots: 2
            })
        );
        // Another tenant is unaffected.
        q.push(B, Priority::Normal, "b").unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.tenant_stats_for(A).unwrap().rejected, 1);
    }

    #[test]
    fn global_capacity_rejects_across_tenants() {
        let mut q = drr(2, &[]);
        q.push(A, Priority::Normal, "1").unwrap();
        q.push(B, Priority::Normal, "2").unwrap();
        assert_eq!(
            q.push(C, Priority::Critical, "3"),
            Err(PushError::Full { capacity: 2 })
        );
        // A never-admitted tenant rejected at a full queue leaves no state
        // behind — cycling fresh tenant ids cannot grow the map.
        for i in 100..200 {
            let fresh = TenantId(i);
            assert!(q.push(fresh, Priority::Normal, "spam").is_err());
            assert!(q.tenant_stats_for(fresh).is_none());
        }
        assert_eq!(q.tenant_stats().len(), 2, "only admitted tenants tracked");
    }

    #[test]
    fn in_flight_cap_gates_dispatch_not_admission() {
        let quotas = [(A, TenantQuota::default().max_in_flight(1))];
        let mut q = drr(64, &quotas);
        q.push(A, Priority::Normal, "a1").unwrap();
        q.push(A, Priority::Normal, "a2").unwrap();
        q.push(B, Priority::Normal, "b1").unwrap();
        let (t1, _) = q.pop().unwrap();
        assert_eq!(t1, A);
        // A is now at its cap: its second job must wait; B runs instead.
        let (t2, _) = q.pop().unwrap();
        assert_eq!(t2, B);
        assert_eq!(q.pop().map(|(t, _)| t), None, "only capped work remains");
        assert_eq!(q.len(), 1, "a2 still queued");
        // A completion unblocks the tenant.
        q.finish(A, IoStats::default(), Duration::ZERO, false);
        assert_eq!(q.pop().map(|(t, _)| t), Some(A));
    }

    #[test]
    fn priority_and_aging_survive_within_a_tenant() {
        // Within one tenant the level-2 queue is the PR 4 AgingQueue:
        // highest priority first, FIFO within a level.
        let mut q = DrrQueue::new(64, 0, TenantQuota::default(), &[], Duration::from_secs(10));
        q.push(A, Priority::Low, "low").unwrap();
        q.push(A, Priority::Critical, "crit").unwrap();
        q.push(A, Priority::Normal, "norm").unwrap();
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, j)| j)).collect();
        assert_eq!(order, ["crit", "norm", "low"]);
    }

    #[test]
    fn remove_queued_releases_the_slot_and_ring_entry() {
        let quotas = [(A, TenantQuota::default().queue_slots(1))];
        let mut q = drr(64, &quotas);
        q.push(A, Priority::Normal, "only").unwrap();
        assert!(q.push(A, Priority::Normal, "over").is_err());
        assert_eq!(q.remove_queued(A, |&j| j == "only"), Some("only"));
        assert_eq!(q.len(), 0);
        assert_eq!(q.queued_of(A), 0);
        // The slot is free again and the ring no longer lists the tenant.
        q.push(A, Priority::Normal, "again").unwrap();
        assert_eq!(q.pop().map(|(_, j)| j), Some("again"));
        let stats = q.tenant_stats_for(A).unwrap();
        assert_eq!(stats.cancelled_queued, 1);
        assert_eq!(stats.dispatched, 1);
    }

    #[test]
    fn finish_aggregates_io_latency_and_outcomes() {
        let mut q = drr(8, &[]);
        q.push(A, Priority::Normal, "x").unwrap();
        q.push(A, Priority::Normal, "y").unwrap();
        q.pop().unwrap();
        q.pop().unwrap();
        q.finish(
            A,
            IoStats {
                hits: 5,
                faults: 3,
                writes: 0,
            },
            Duration::from_millis(10),
            false,
        );
        q.finish(
            A,
            IoStats {
                hits: 0,
                faults: 7,
                writes: 1,
            },
            Duration::from_millis(30),
            true,
        );
        let s = q.tenant_stats_for(A).unwrap();
        assert_eq!(s.completed, 1);
        assert_eq!(s.aborted, 1);
        assert_eq!(s.finished(), 2);
        assert_eq!(s.io.faults, 10);
        assert_eq!(s.charged_io_ms(), 100.0);
        assert_eq!(s.total_latency, Duration::from_millis(40));
        assert_eq!(s.max_latency, Duration::from_millis(30));
        assert_eq!(s.mean_latency(), Duration::from_millis(20));
        assert_eq!(s.in_flight, 0);
        // Both submissions landed inside the 10 s window just now.
        assert_eq!(s.qps, 0.2);
    }

    #[test]
    fn qps_meters_offered_load_including_shed_submissions() {
        let quotas = [(A, TenantQuota::default().queue_slots(1))];
        let mut q = drr(64, &quotas);
        q.push(A, Priority::Normal, "in").unwrap();
        assert!(q.push(A, Priority::Normal, "shed").is_err());
        let s = q.tenant_stats_for(A).unwrap();
        // 2 offers (1 admitted + 1 shed) over the 10 s window.
        assert_eq!(s.qps, 0.2);
        assert!(q.tenant_stats_for(B).is_none());
    }

    #[test]
    fn idle_tenant_forfeits_residual_deficit() {
        // Weight 4, but only one job queued: after it drains, re-arriving
        // work must not burst 4+4 — the deficit resets on emptying.
        let quotas = [(A, TenantQuota::default().weight(4))];
        let mut q = drr(64, &quotas);
        q.push(A, Priority::Normal, "a").unwrap();
        q.push(B, Priority::Normal, "b").unwrap();
        assert_eq!(q.pop().map(|(t, _)| t), Some(A));
        q.finish(A, IoStats::default(), Duration::ZERO, false);
        // A re-arrives behind B in the ring with a *fresh* 4-quantum (not a
        // hoarded 3 + 4): after B's turn, A gets exactly 4 consecutive
        // dispatches.
        for _ in 0..4 {
            q.push(A, Priority::Normal, "a").unwrap();
        }
        let mut order = Vec::new();
        while let Some((t, _)) = q.pop() {
            q.finish(t, IoStats::default(), Duration::ZERO, false);
            order.push(t);
        }
        assert_eq!(order, [B, A, A, A, A]);
    }

    #[test]
    fn snapshots_list_configured_and_observed_tenants_sorted() {
        let quotas = [(C, TenantQuota::default().weight(2))];
        let mut q = drr(8, &quotas);
        q.push(A, Priority::Normal, "a").unwrap();
        let stats = q.tenant_stats();
        let ids: Vec<TenantId> = stats.iter().map(|s| s.tenant).collect();
        assert_eq!(ids, [A, C], "sorted; C listed although never submitted");
        assert_eq!(stats[1].weight, 2);
        assert!(q.tenant_stats_for(B).is_none());
    }
}
