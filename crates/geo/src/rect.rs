//! Axis-aligned rectangles (minimum bounding rectangles).

use crate::point::Point;

/// An axis-aligned rectangle, the MBR of R-tree entries (§2.3) and of the
/// provider/customer groups formed by the approximate algorithms (§4).
///
/// Invariant: `lo.x <= hi.x && lo.y <= hi.y` for non-empty rectangles.
/// An *empty* rectangle (from [`Rect::empty`]) has inverted bounds and acts as
/// the identity for [`Rect::union`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect {
    pub lo: Point,
    pub hi: Point,
}

impl Rect {
    /// Creates a rectangle from two corner points (any corner order).
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            lo: Point::new(a.x.min(b.x), a.y.min(b.y)),
            hi: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The empty rectangle: identity element for [`Rect::union`].
    #[inline]
    pub fn empty() -> Self {
        Rect {
            lo: Point::new(f64::INFINITY, f64::INFINITY),
            hi: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// A degenerate rectangle covering a single point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Rect { lo: p, hi: p }
    }

    /// True if this is the empty rectangle.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo.x > self.hi.x || self.lo.y > self.hi.y
    }

    /// Width along x.
    #[inline]
    pub fn width(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.hi.x - self.lo.x
        }
    }

    /// Height along y.
    #[inline]
    pub fn height(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.hi.y - self.lo.y
        }
    }

    /// Area of the rectangle (zero for empty or degenerate rectangles).
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half-perimeter, the "margin" measure used by R*-style split heuristics.
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Length of the MBR diagonal — the measure bounded by the approximation
    /// parameter δ during the partitioning phase (§4.1: "the diagonal of their
    /// MBR does not exceed a threshold δ").
    #[inline]
    pub fn diagonal(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.lo.dist(&self.hi)
        }
    }

    /// Geometric centre of the rectangle. For CA group representatives the
    /// paper places `g` "at the geometric centroid of e" (§4.2), which for an
    /// MBR entry is its centre, making the rep-to-member distance ≤ δ/2
    /// (Theorem 4).
    #[inline]
    pub fn center(&self) -> Point {
        self.lo.midpoint(&self.hi)
    }

    /// True if `p` lies inside (or on the border of) the rectangle.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// True if `other` lies fully inside this rectangle.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        if other.is_empty() {
            return true;
        }
        self.contains_point(&other.lo) && self.contains_point(&other.hi)
    }

    /// True if the rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }

    /// Smallest rectangle containing both inputs.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            lo: Point::new(self.lo.x.min(other.lo.x), self.lo.y.min(other.lo.y)),
            hi: Point::new(self.hi.x.max(other.hi.x), self.hi.y.max(other.hi.y)),
        }
    }

    /// Grows the rectangle to cover `p`.
    #[inline]
    pub fn expand_point(&mut self, p: &Point) {
        self.lo.x = self.lo.x.min(p.x);
        self.lo.y = self.lo.y.min(p.y);
        self.hi.x = self.hi.x.max(p.x);
        self.hi.y = self.hi.y.max(p.y);
    }

    /// Area increase caused by enlarging this rectangle to cover `other`;
    /// the classic R-tree `ChooseSubtree` criterion.
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Minimum Euclidean distance from `p` to any point in the rectangle
    /// (`mindist` in the best-first NN algorithm of Hjaltason & Samet, §2.3).
    /// Zero if `p` is inside.
    #[inline]
    pub fn mindist(&self, p: &Point) -> f64 {
        self.mindist2(p).sqrt()
    }

    /// Squared version of [`Rect::mindist`] for comparison-only call sites.
    #[inline]
    pub fn mindist2(&self, p: &Point) -> f64 {
        debug_assert!(!self.is_empty());
        let dx = (self.lo.x - p.x).max(0.0).max(p.x - self.hi.x);
        let dy = (self.lo.y - p.y).max(0.0).max(p.y - self.hi.y);
        dx * dx + dy * dy
    }

    /// Maximum Euclidean distance from `p` to any point in the rectangle
    /// (distance to the farthest corner). Used by annular range search to
    /// prune subtrees that lie entirely inside the inner radius.
    #[inline]
    pub fn maxdist(&self, p: &Point) -> f64 {
        debug_assert!(!self.is_empty());
        let dx = (p.x - self.lo.x).abs().max((p.x - self.hi.x).abs());
        let dy = (p.y - self.lo.y).abs().max((p.y - self.hi.y).abs());
        (dx * dx + dy * dy).sqrt()
    }

    /// Minimum distance between two rectangles
    /// (`mindist(MBR(Gm), MBR(e))` in the grouped ANN search, Algorithm 6).
    #[inline]
    pub fn mindist_rect(&self, other: &Rect) -> f64 {
        debug_assert!(!self.is_empty() && !other.is_empty());
        let dx = (other.lo.x - self.hi.x)
            .max(0.0)
            .max(self.lo.x - other.hi.x);
        let dy = (other.lo.y - self.hi.y)
            .max(0.0)
            .max(self.lo.y - other.hi.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// True if every point of the rectangle is within distance `r` of `c`,
    /// i.e. the subtree can be reported wholesale by a range query.
    #[inline]
    pub fn within_range(&self, c: &Point, r: f64) -> bool {
        self.maxdist(c) <= r
    }

    /// Splits the rectangle into two halves along its longest side. Used by
    /// CA partitioning when an R-tree leaf MBR still exceeds δ
    /// (§4.2: "conceptually split its MBR into two equal halves on its
    /// longest dimension").
    #[inline]
    pub fn split_longest(&self) -> (Rect, Rect) {
        if self.width() >= self.height() {
            let mid = (self.lo.x + self.hi.x) * 0.5;
            (
                Rect::new(self.lo, Point::new(mid, self.hi.y)),
                Rect::new(Point::new(mid, self.lo.y), self.hi),
            )
        } else {
            let mid = (self.lo.y + self.hi.y) * 0.5;
            (
                Rect::new(self.lo, Point::new(self.hi.x, mid)),
                Rect::new(Point::new(self.lo.x, mid), self.hi),
            )
        }
    }
}

impl FromIterator<Point> for Rect {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Self {
        let mut r = Rect::empty();
        for p in iter {
            r.expand_point(&p);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(ax: f64, ay: f64, bx: f64, by: f64) -> Rect {
        Rect::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn new_normalises_corners() {
        let rect = Rect::new(Point::new(5.0, 1.0), Point::new(2.0, 7.0));
        assert_eq!(rect.lo, Point::new(2.0, 1.0));
        assert_eq!(rect.hi, Point::new(5.0, 7.0));
    }

    #[test]
    fn empty_rect_behaviour() {
        let e = Rect::empty();
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        assert_eq!(e.diagonal(), 0.0);
        let b = r(0.0, 0.0, 1.0, 1.0);
        assert_eq!(e.union(&b), b);
        assert!(!e.intersects(&b));
    }

    #[test]
    fn area_margin_diagonal() {
        let rect = r(0.0, 0.0, 3.0, 4.0);
        assert_eq!(rect.area(), 12.0);
        assert_eq!(rect.margin(), 7.0);
        assert_eq!(rect.diagonal(), 5.0);
        assert_eq!(rect.center(), Point::new(1.5, 2.0));
    }

    #[test]
    fn containment_and_intersection() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        let b = r(2.0, 2.0, 3.0, 3.0);
        let c = r(11.0, 11.0, 12.0, 12.0);
        assert!(a.contains_rect(&b));
        assert!(!b.contains_rect(&a));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        // Touching edges count as intersecting.
        let d = r(10.0, 0.0, 12.0, 5.0);
        assert!(a.intersects(&d));
    }

    #[test]
    fn mindist_inside_is_zero() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        assert_eq!(a.mindist(&Point::new(5.0, 5.0)), 0.0);
    }

    #[test]
    fn mindist_outside_axis_and_corner() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        assert_eq!(a.mindist(&Point::new(13.0, 5.0)), 3.0);
        assert_eq!(a.mindist(&Point::new(13.0, 14.0)), 5.0); // 3-4-5 corner
    }

    #[test]
    fn maxdist_is_farthest_corner() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        assert_eq!(a.maxdist(&Point::new(0.0, 0.0)), (200.0f64).sqrt());
        assert_eq!(a.maxdist(&Point::new(5.0, 5.0)), (50.0f64).sqrt());
    }

    #[test]
    fn mindist_rect_disjoint_and_overlap() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(4.0, 5.0, 6.0, 7.0);
        assert_eq!(a.mindist_rect(&b), 5.0); // dx=3, dy=4
        let c = r(0.5, 0.5, 2.0, 2.0);
        assert_eq!(a.mindist_rect(&c), 0.0);
    }

    #[test]
    fn split_longest_covers_and_halves() {
        let a = r(0.0, 0.0, 8.0, 2.0);
        let (l, rr) = a.split_longest();
        assert_eq!(l, r(0.0, 0.0, 4.0, 2.0));
        assert_eq!(rr, r(4.0, 0.0, 8.0, 2.0));
        let tall = r(0.0, 0.0, 2.0, 8.0);
        let (bot, top) = tall.split_longest();
        assert_eq!(bot, r(0.0, 0.0, 2.0, 4.0));
        assert_eq!(top, r(0.0, 4.0, 2.0, 8.0));
    }

    #[test]
    fn from_iterator_builds_mbr() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 0.0),
            Point::new(3.0, 2.0),
        ];
        let rect: Rect = pts.into_iter().collect();
        assert_eq!(rect, r(-2.0, 0.0, 3.0, 5.0));
    }

    #[test]
    fn within_range_checks_farthest_corner() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let c = Point::new(0.5, 0.5);
        assert!(a.within_range(&c, 1.0));
        assert!(!a.within_range(&c, 0.5));
    }

    fn coord() -> impl Strategy<Value = f64> {
        -1000.0..1000.0f64
    }

    fn point() -> impl Strategy<Value = Point> {
        (coord(), coord()).prop_map(|(x, y)| Point::new(x, y))
    }

    fn rect() -> impl Strategy<Value = Rect> {
        (point(), point()).prop_map(|(a, b)| Rect::new(a, b))
    }

    proptest! {
        #[test]
        fn prop_union_contains_both(a in rect(), b in rect()) {
            let u = a.union(&b);
            prop_assert!(u.contains_rect(&a));
            prop_assert!(u.contains_rect(&b));
        }

        #[test]
        fn prop_mindist_le_maxdist(a in rect(), p in point()) {
            prop_assert!(a.mindist(&p) <= a.maxdist(&p) + 1e-9);
        }

        #[test]
        fn prop_mindist_lower_bounds_member_distance(a in rect(), p in point(),
                                                     tx in 0.0..1.0f64, ty in 0.0..1.0f64) {
            // Any point inside the rect is at least mindist away from p and at
            // most maxdist away.
            let inside = Point::new(
                a.lo.x + tx * a.width(),
                a.lo.y + ty * a.height(),
            );
            let d = p.dist(&inside);
            prop_assert!(a.mindist(&p) <= d + 1e-9);
            prop_assert!(d <= a.maxdist(&p) + 1e-9);
        }

        #[test]
        fn prop_mindist_rect_lower_bounds_pointwise(a in rect(), b in rect(),
                                                    t in 0.0..1.0f64, u in 0.0..1.0f64) {
            let pa = Point::new(a.lo.x + t * a.width(), a.lo.y + u * a.height());
            prop_assert!(a.mindist_rect(&b) <= b.mindist(&pa) + 1e-9);
        }

        #[test]
        fn prop_split_preserves_area(a in rect()) {
            let (l, r) = a.split_longest();
            prop_assert!((l.area() + r.area() - a.area()).abs() < 1e-6);
            prop_assert!(a.contains_rect(&l) && a.contains_rect(&r));
        }

        #[test]
        fn prop_enlargement_nonnegative(a in rect(), b in rect()) {
            prop_assert!(a.enlargement(&b) >= -1e-9);
        }

        #[test]
        fn prop_contains_point_iff_mindist_zero(a in rect(), p in point()) {
            if a.contains_point(&p) {
                prop_assert!(a.mindist(&p) == 0.0);
            } else {
                prop_assert!(a.mindist(&p) > 0.0);
            }
        }
    }
}
