//! `serde` feature: persistence impls for the geometry types.
//!
//! Hand-written field-per-field maps against the vendored `serde` shim
//! (see `vendor/README.md`); shaped exactly like the maps
//! `#[derive(Serialize, Deserialize)]` would produce, so swapping in the
//! real serde later is mechanical.

use serde::{Deserialize, Error, Serialize, Value};

use crate::{Point, Rect};

impl Serialize for Point {
    fn to_value(&self) -> Value {
        Value::map([("x", self.x.to_value()), ("y", self.y.to_value())])
    }
}

impl Deserialize for Point {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Point {
            x: f64::from_value(v.get("x")?)?,
            y: f64::from_value(v.get("y")?)?,
        })
    }
}

impl Serialize for Rect {
    fn to_value(&self) -> Value {
        Value::map([("lo", self.lo.to_value()), ("hi", self.hi.to_value())])
    }
}

impl Deserialize for Rect {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Rect {
            lo: Point::from_value(v.get("lo")?)?,
            hi: Point::from_value(v.get("hi")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_and_rect_json_roundtrip() {
        let p = Point::new(12.25, -3.5);
        let back: Point = serde::json::from_str(&serde::json::to_string(&p)).unwrap();
        assert_eq!(back, p);

        let r = Rect::new(Point::new(0.0, 1.0), Point::new(10.0, 11.0));
        let back: Rect = serde::json::from_str(&serde::json::to_string(&r)).unwrap();
        assert_eq!(back, r);

        // Workload-shaped payload: a point list survives persistence.
        let pts = vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)];
        let back: Vec<Point> = serde::json::from_str(&serde::json::to_string(&pts)).unwrap();
        assert_eq!(back, pts);
    }
}
