//! Two-dimensional points and Euclidean distance.

use std::fmt;

/// A point in the plane.
///
/// All CCA distances (`dist(q, p)` in the paper, Equation 1) are Euclidean
/// distances between `Point`s. Coordinates are `f64` because the paper
/// explicitly contrasts CCA's real-valued edge costs with the integer costs
/// required by cost-scaling solvers (§2.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    #[inline]
    pub const fn origin() -> Self {
        Point::new(0.0, 0.0)
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Useful in hot loops where only the *ordering* of distances matters;
    /// `sqrt` is monotone so comparisons on squared distances are safe.
    #[inline]
    pub fn dist2(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other` (the paper's `dist(q, p)`).
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Component-wise midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Linear interpolation: `self + t * (other - self)`.
    ///
    /// Used by the data generator to place customers *on* road-network edges.
    #[inline]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }

    /// True if both coordinates are finite (no NaN / infinity).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dist_of_identical_points_is_zero() {
        let p = Point::new(3.5, -2.0);
        assert_eq!(p.dist(&p), 0.0);
    }

    #[test]
    fn dist_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist2(&b), 25.0);
    }

    #[test]
    fn dist_is_symmetric_on_example() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-4.0, 7.5);
        assert_eq!(a.dist(&b), b.dist(&a));
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 4.0);
        assert_eq!(a.midpoint(&b), Point::new(5.0, 2.0));
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = Point::new(2.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point::new(3.0, 4.0));
    }

    #[test]
    fn non_finite_points_detected() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }

    fn coord() -> impl Strategy<Value = f64> {
        -1000.0..1000.0f64
    }

    fn point() -> impl Strategy<Value = Point> {
        (coord(), coord()).prop_map(|(x, y)| Point::new(x, y))
    }

    proptest! {
        #[test]
        fn prop_dist_nonnegative(a in point(), b in point()) {
            prop_assert!(a.dist(&b) >= 0.0);
        }

        #[test]
        fn prop_dist_symmetric(a in point(), b in point()) {
            prop_assert!((a.dist(&b) - b.dist(&a)).abs() < 1e-12);
        }

        #[test]
        fn prop_triangle_inequality(a in point(), b in point(), c in point()) {
            // Allow a tiny epsilon for floating-point rounding.
            prop_assert!(a.dist(&c) <= a.dist(&b) + b.dist(&c) + 1e-9);
        }

        #[test]
        fn prop_dist2_consistent_with_dist(a in point(), b in point()) {
            let d = a.dist(&b);
            prop_assert!((d * d - a.dist2(&b)).abs() < 1e-6);
        }

        #[test]
        fn prop_lerp_stays_on_segment(a in point(), b in point(), t in 0.0..1.0f64) {
            let m = a.lerp(&b, t);
            // Point on segment: dist(a,m) + dist(m,b) == dist(a,b).
            prop_assert!((a.dist(&m) + m.dist(&b) - a.dist(&b)).abs() < 1e-6);
        }
    }
}
