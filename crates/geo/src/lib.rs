//! Geometry primitives shared by every crate in the CCA workspace.
//!
//! The paper ("Capacity Constrained Assignment in Spatial Databases",
//! SIGMOD 2008) works with two-dimensional Euclidean points normalised to the
//! `[0, 1000]²` space. This crate provides:
//!
//! * [`Point`] — a 2-D point with Euclidean distance helpers,
//! * [`Rect`] — axis-aligned rectangles (MBRs) with the `mindist` / `maxdist`
//!   metrics used by best-first R-tree search and the `diagonal` measure used
//!   by the approximate algorithms' partitioning phase (§4.1–4.2),
//! * [`hilbert`] — a Hilbert space-filling curve used to order service
//!   providers for grouping (§3.4.2 and §4.1),
//! * [`kernel`] — batched struct-of-arrays distance kernels (bit-identical
//!   to the scalar metrics, shaped so the compiler autovectorizes them) for
//!   the R-tree's NN hot loops.

pub mod hilbert;
pub mod kernel;
pub mod num;
pub mod point;
pub mod rect;
#[cfg(feature = "serde")]
mod serde_impls;

pub use num::OrdF64;
pub use point::Point;
pub use rect::Rect;

/// The side length of the normalised workspace used throughout the paper's
/// evaluation (§5.1: "All datasets are normalized to lie in a [0, 1000]²
/// space").
pub const WORLD_SIZE: f64 = 1000.0;

/// The world rectangle `[0, WORLD_SIZE]²`.
pub fn world() -> Rect {
    Rect::new(Point::new(0.0, 0.0), Point::new(WORLD_SIZE, WORLD_SIZE))
}
