//! Total-ordering wrapper for finite `f64` keys.

use std::cmp::Ordering;

/// An `f64` with total ordering, for use as a priority-queue key.
///
/// Distances and costs in this workspace are always finite and non-NaN
/// (Euclidean distances of finite points, sums thereof). Constructing an
/// `OrdF64` from NaN is a bug; we fail fast in debug builds and order NaN
/// last in release builds rather than panicking in a hot loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrdF64(pub f64);

impl OrdF64 {
    #[inline]
    pub fn new(v: f64) -> Self {
        debug_assert!(!v.is_nan(), "NaN used as ordering key");
        OrdF64(v)
    }

    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for OrdF64 {
    fn from(v: f64) -> Self {
        OrdF64::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn orders_like_f64() {
        assert!(OrdF64::new(1.0) < OrdF64::new(2.0));
        assert!(OrdF64::new(-1.0) < OrdF64::new(0.0));
        assert_eq!(OrdF64::new(3.5), OrdF64::new(3.5));
    }

    #[test]
    fn works_as_min_heap_key() {
        let mut heap = BinaryHeap::new();
        for v in [3.0, 1.0, 2.0] {
            heap.push(std::cmp::Reverse(OrdF64::new(v)));
        }
        assert_eq!(heap.pop().unwrap().0.get(), 1.0);
        assert_eq!(heap.pop().unwrap().0.get(), 2.0);
        assert_eq!(heap.pop().unwrap().0.get(), 3.0);
    }

    #[test]
    fn negative_zero_equals_zero_ordering() {
        // total_cmp puts -0.0 before 0.0 but they are distinct keys; we only
        // require a consistent total order.
        assert!(OrdF64::new(-0.0) <= OrdF64::new(0.0));
    }
}
