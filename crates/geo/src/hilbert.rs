//! Hilbert space-filling curve.
//!
//! The paper orders service providers "based on their Hilbert space-filling
//! curve ordering" both for the grouped all-nearest-neighbour search
//! (§3.4.2) and for the partitioning phase of the SA approximation (§4.1).
//! This module implements the classic d2xy/xy2d conversion on a `2^ORDER ×
//! 2^ORDER` grid, plus a convenience mapping from continuous world
//! coordinates.

use crate::point::Point;

/// Resolution of the Hilbert grid: the curve visits `2^ORDER * 2^ORDER`
/// cells. 16 gives a 65536×65536 grid — far below a metre of slack in the
/// `[0,1000]²` world, ample for grouping purposes.
pub const ORDER: u32 = 16;

/// Side length of the Hilbert grid.
pub const GRID: u32 = 1 << ORDER;

/// Maps grid cell coordinates `(x, y)`, both `< GRID`, to the cell's index
/// along the Hilbert curve.
pub fn xy_to_d(mut x: u32, mut y: u32) -> u64 {
    debug_assert!(x < GRID && y < GRID);
    let mut rx: u32;
    let mut ry: u32;
    let mut d: u64 = 0;
    let mut s: u32 = GRID / 2;
    while s > 0 {
        rx = u32::from((x & s) > 0);
        ry = u32::from((y & s) > 0);
        d += (s as u64) * (s as u64) * u64::from((3 * rx) ^ ry);
        // Rotate quadrant.
        if ry == 0 {
            if rx == 1 {
                x = s.wrapping_sub(1).wrapping_sub(x) & (GRID - 1);
                y = s.wrapping_sub(1).wrapping_sub(y) & (GRID - 1);
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Inverse of [`xy_to_d`]: maps a curve index to grid cell coordinates.
pub fn d_to_xy(d: u64) -> (u32, u32) {
    debug_assert!(d < (GRID as u64) * (GRID as u64));
    let mut rx: u64;
    let mut ry: u64;
    let mut t = d;
    let mut x: u64 = 0;
    let mut y: u64 = 0;
    let mut s: u64 = 1;
    while s < GRID as u64 {
        rx = 1 & (t / 2);
        ry = 1 & (t ^ rx);
        // Rotate quadrant.
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    (x as u32, y as u32)
}

/// Hilbert index of a continuous point inside `[0, world_size]²`.
///
/// Coordinates are clamped into the world first, so slightly out-of-range
/// values (floating point noise at the boundary) are tolerated.
pub fn hilbert_of_point(p: &Point, world_size: f64) -> u64 {
    let scale = (GRID as f64) / world_size;
    let gx = ((p.x.clamp(0.0, world_size) * scale) as u32).min(GRID - 1);
    let gy = ((p.y.clamp(0.0, world_size) * scale) as u32).min(GRID - 1);
    xy_to_d(gx, gy)
}

/// Hilbert index of a point normalised against an arbitrary bounding
/// rectangle (rather than the `[0, world]²` origin square of
/// [`hilbert_of_point`]).
///
/// Degenerate extents (all points share an x or y) collapse that axis to
/// grid coordinate 0, so collinear inputs still get a consistent ordering
/// along the other axis. Coordinates outside `bbox` are clamped.
pub fn hilbert_in_rect(p: &Point, bbox: &crate::Rect) -> u64 {
    let axis = |v: f64, lo: f64, hi: f64| -> u32 {
        let extent = hi - lo;
        if extent <= 0.0 {
            return 0;
        }
        (((v.clamp(lo, hi) - lo) / extent * GRID as f64) as u32).min(GRID - 1)
    };
    xy_to_d(
        axis(p.x, bbox.lo.x, bbox.hi.x),
        axis(p.y, bbox.lo.y, bbox.hi.y),
    )
}

/// Sorts indices `0..items.len()` by the Hilbert value of the corresponding
/// point. Returns the permutation rather than reordering the input, because
/// callers (SA partitioning, ANN grouping) need to keep the original
/// positions alongside capacities.
pub fn sort_by_hilbert(points: &[Point], world_size: f64) -> Vec<usize> {
    let mut keyed: Vec<(u64, usize)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (hilbert_of_point(p, world_size), i))
        .collect();
    keyed.sort_unstable();
    keyed.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn first_cells_of_order_one_pattern() {
        // On the full grid the first four indices form the first-level "U".
        assert_eq!(d_to_xy(0), (0, 0));
        let (x1, y1) = d_to_xy(1);
        // Next cell must be adjacent to (0,0).
        assert_eq!(x1 + y1, 1);
    }

    #[test]
    fn roundtrip_small_indices() {
        for d in 0..4096u64 {
            let (x, y) = d_to_xy(d);
            assert_eq!(xy_to_d(x, y), d, "roundtrip failed at d={d}");
        }
    }

    #[test]
    fn adjacent_indices_are_adjacent_cells() {
        // The defining property of the Hilbert curve: consecutive indices map
        // to grid cells at Manhattan distance exactly 1.
        for d in 0..8192u64 {
            let (x0, y0) = d_to_xy(d);
            let (x1, y1) = d_to_xy(d + 1);
            let manhattan = x0.abs_diff(x1) + y0.abs_diff(y1);
            assert_eq!(manhattan, 1, "cells at d={d} not adjacent");
        }
    }

    #[test]
    fn point_mapping_clamps_out_of_world() {
        let inside = hilbert_of_point(&Point::new(0.0, 0.0), 1000.0);
        let clamped = hilbert_of_point(&Point::new(-5.0, -5.0), 1000.0);
        assert_eq!(inside, clamped);
        // Max corner must not overflow the grid.
        let _ = hilbert_of_point(&Point::new(1000.0, 1000.0), 1000.0);
    }

    #[test]
    fn rect_mapping_matches_world_mapping_on_the_world_square() {
        let world = crate::Rect::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
        for (x, y) in [(0.0, 0.0), (12.5, 997.0), (500.0, 500.0), (1000.0, 1000.0)] {
            let p = Point::new(x, y);
            assert_eq!(hilbert_in_rect(&p, &world), hilbert_of_point(&p, 1000.0));
        }
    }

    #[test]
    fn rect_mapping_tolerates_degenerate_extents() {
        // All points collinear in x: the x axis collapses, ordering follows y.
        let bbox = crate::Rect::new(Point::new(5.0, 0.0), Point::new(5.0, 100.0));
        let lo = hilbert_in_rect(&Point::new(5.0, 10.0), &bbox);
        let hi = hilbert_in_rect(&Point::new(5.0, 90.0), &bbox);
        assert_ne!(lo, hi);
        // A single point (both axes degenerate) maps to a fixed cell.
        let pt = crate::Rect::from_point(Point::new(3.0, 4.0));
        assert_eq!(hilbert_in_rect(&Point::new(3.0, 4.0), &pt), xy_to_d(0, 0));
    }

    #[test]
    fn sort_by_hilbert_groups_nearby_points() {
        // Two tight clusters far apart: the permutation must keep each
        // cluster contiguous.
        let mut pts = Vec::new();
        for i in 0..5 {
            pts.push(Point::new(10.0 + i as f64 * 0.2, 10.0));
        }
        for i in 0..5 {
            pts.push(Point::new(900.0 + i as f64 * 0.2, 900.0));
        }
        let perm = sort_by_hilbert(&pts, 1000.0);
        let first_half: Vec<bool> = perm[..5].iter().map(|&i| i < 5).collect();
        // All of the first five sorted entries come from the same cluster.
        assert!(
            first_half.iter().all(|&b| b) || first_half.iter().all(|&b| !b),
            "clusters interleaved: {perm:?}"
        );
    }

    proptest! {
        #[test]
        fn prop_roundtrip(x in 0u32..GRID, y in 0u32..GRID) {
            let d = xy_to_d(x, y);
            prop_assert_eq!(d_to_xy(d), (x, y));
        }

        #[test]
        fn prop_index_in_range(x in 0u32..GRID, y in 0u32..GRID) {
            let d = xy_to_d(x, y);
            prop_assert!(d < (GRID as u64) * (GRID as u64));
        }

        #[test]
        fn prop_injective_on_random_pairs(x1 in 0u32..GRID, y1 in 0u32..GRID,
                                          x2 in 0u32..GRID, y2 in 0u32..GRID) {
            if (x1, y1) != (x2, y2) {
                prop_assert_ne!(xy_to_d(x1, y1), xy_to_d(x2, y2));
            }
        }
    }
}
