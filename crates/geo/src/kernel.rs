//! Batched, autovectorizable distance kernels.
//!
//! Best-first NN search spends its CPU time computing `dist(q, p)` for every
//! entry of every visited node ([`crate::Point::dist2`] /
//! [`crate::Rect::mindist2`]). Called one entry at a time through the
//! streaming node decoders, those are scalar `sqrt`/`max` chains the
//! compiler cannot vectorize across entries. These kernels take the same
//! inputs in struct-of-arrays form (one slice per coordinate) and evaluate
//! fixed-width chunks, which LLVM turns into SIMD on any target with vector
//! `max`/`mul` — no intrinsics, no feature gates.
//!
//! Every kernel computes *bit-identical* results to its scalar counterpart
//! on the finite coordinates R-trees store (pinned by proptests), so
//! switching a traversal to the batched path can never change which
//! neighbour is found.

/// Chunk width. Eight `f64`s span two AVX2 registers or one AVX-512
/// register; on narrower targets the fixed trip count still unrolls cleanly.
pub const LANES: usize = 8;

/// Squared Euclidean distance from `(qx, qy)` to each `(xs[i], ys[i])`,
/// written to `out[i]`. Bit-identical to [`crate::Point::dist2`].
///
/// # Panics
/// If the slice lengths differ.
pub fn point_dist2_batch(qx: f64, qy: f64, xs: &[f64], ys: &[f64], out: &mut [f64]) {
    let n = xs.len();
    assert!(ys.len() == n && out.len() == n, "SoA slice length mismatch");
    let chunks = n / LANES;
    for c in 0..chunks {
        let base = c * LANES;
        // Fixed-size views give the autovectorizer a constant trip count.
        let xs: &[f64; LANES] = xs[base..base + LANES].try_into().expect("chunk");
        let ys: &[f64; LANES] = ys[base..base + LANES].try_into().expect("chunk");
        let out: &mut [f64; LANES] = (&mut out[base..base + LANES]).try_into().expect("chunk");
        for i in 0..LANES {
            let dx = qx - xs[i];
            let dy = qy - ys[i];
            out[i] = dx * dx + dy * dy;
        }
    }
    for i in chunks * LANES..n {
        let dx = qx - xs[i];
        let dy = qy - ys[i];
        out[i] = dx * dx + dy * dy;
    }
}

/// Select-based max: `f64::max` is IEEE `maxNum`, whose NaN handling LLVM
/// must preserve with a compare/blend *pair* per lane — that extra latency
/// is what made the first batched rect kernel measure slower than scalar. A
/// bare compare-select is a single vector `max` instruction on every SIMD
/// target.
///
/// For the finite inputs the traversals feed in, the only value where the
/// two differ is the sign of a zero (`sel_max(-0.0, 0.0)` may keep `-0.0`
/// where `maxNum` prefers `+0.0`) — and both clamped distances are squared
/// immediately, which erases the sign. So the kernel result stays
/// bit-identical to [`crate::Rect::mindist2`] (pinned by proptest below).
#[inline(always)]
fn sel_max(a: f64, b: f64) -> f64 {
    if a > b {
        a
    } else {
        b
    }
}

#[inline(always)]
fn mindist2_scalar(qx: f64, qy: f64, lox: f64, loy: f64, hix: f64, hiy: f64) -> f64 {
    // Same clamp structure as Rect::mindist2, with select-based max.
    let dx = sel_max(sel_max(lox - qx, 0.0), qx - hix);
    let dy = sel_max(sel_max(loy - qy, 0.0), qy - hiy);
    dx * dx + dy * dy
}

/// Squared minimum distance from `(qx, qy)` to each axis-aligned rectangle
/// `[lox[i], hix[i]] × [loy[i], hiy[i]]`, written to `out[i]`. Bit-identical
/// to [`crate::Rect::mindist2`].
///
/// **Status: kept as a measured negative result.** Even with the
/// select-based max (which removed the NaN compare/blend pair), this kernel
/// benchmarks at or below the scalar loop on the `hot_path` bench's
/// `dist_kernel` rows: it streams five arrays per element against the point
/// kernel's two, so the vector ALU win drowns in load-port pressure. The NN
/// traversal therefore scores inner-node MBRs through the scalar path and
/// batches only leaf points; this function stays for the bench rows that
/// document the comparison and for callers with warmer caches.
///
/// # Panics
/// If the slice lengths differ.
#[allow(clippy::too_many_arguments)]
pub fn rect_mindist2_batch(
    qx: f64,
    qy: f64,
    lox: &[f64],
    loy: &[f64],
    hix: &[f64],
    hiy: &[f64],
    out: &mut [f64],
) {
    let n = lox.len();
    assert!(
        loy.len() == n && hix.len() == n && hiy.len() == n && out.len() == n,
        "SoA slice length mismatch"
    );
    let chunks = n / LANES;
    for c in 0..chunks {
        let base = c * LANES;
        let lox: &[f64; LANES] = lox[base..base + LANES].try_into().expect("chunk");
        let loy: &[f64; LANES] = loy[base..base + LANES].try_into().expect("chunk");
        let hix: &[f64; LANES] = hix[base..base + LANES].try_into().expect("chunk");
        let hiy: &[f64; LANES] = hiy[base..base + LANES].try_into().expect("chunk");
        let out: &mut [f64; LANES] = (&mut out[base..base + LANES]).try_into().expect("chunk");
        for i in 0..LANES {
            out[i] = mindist2_scalar(qx, qy, lox[i], loy[i], hix[i], hiy[i]);
        }
    }
    for i in chunks * LANES..n {
        out[i] = mindist2_scalar(qx, qy, lox[i], loy[i], hix[i], hiy[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Point, Rect};
    use proptest::prelude::*;

    fn coord() -> impl Strategy<Value = f64> {
        -1000.0..1000.0f64
    }

    #[test]
    fn empty_batches_are_fine() {
        point_dist2_batch(1.0, 2.0, &[], &[], &mut []);
        rect_mindist2_batch(1.0, 2.0, &[], &[], &[], &[], &mut []);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        point_dist2_batch(0.0, 0.0, &[1.0, 2.0], &[1.0], &mut [0.0, 0.0]);
    }

    proptest! {
        /// Batched point distances are bit-identical to Point::dist2 at
        /// every length (covering both the chunked body and the tail).
        #[test]
        fn prop_point_batch_bit_equals_scalar(
            q in (coord(), coord()),
            pts in proptest::collection::vec((coord(), coord()), 0..40),
        ) {
            let query = Point::new(q.0, q.1);
            let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
            let mut out = vec![0.0; pts.len()];
            point_dist2_batch(q.0, q.1, &xs, &ys, &mut out);
            for (i, &(x, y)) in pts.iter().enumerate() {
                let want = query.dist2(&Point::new(x, y));
                prop_assert_eq!(out[i].to_bits(), want.to_bits(),
                                "element {} diverged: {} vs {}", i, out[i], want);
            }
        }

        /// Batched rect min-distances are bit-identical to Rect::mindist2.
        #[test]
        fn prop_rect_batch_bit_equals_scalar(
            q in (coord(), coord()),
            rects in proptest::collection::vec((coord(), coord(), coord(), coord()), 0..40),
        ) {
            let query = Point::new(q.0, q.1);
            let rs: Vec<Rect> = rects
                .iter()
                .map(|&(ax, ay, bx, by)| Rect::new(Point::new(ax, ay), Point::new(bx, by)))
                .collect();
            let lox: Vec<f64> = rs.iter().map(|r| r.lo.x).collect();
            let loy: Vec<f64> = rs.iter().map(|r| r.lo.y).collect();
            let hix: Vec<f64> = rs.iter().map(|r| r.hi.x).collect();
            let hiy: Vec<f64> = rs.iter().map(|r| r.hi.y).collect();
            let mut out = vec![0.0; rs.len()];
            rect_mindist2_batch(q.0, q.1, &lox, &loy, &hix, &hiy, &mut out);
            for (i, r) in rs.iter().enumerate() {
                let want = r.mindist2(&query);
                prop_assert_eq!(out[i].to_bits(), want.to_bits(),
                                "element {} diverged: {} vs {}", i, out[i], want);
            }
        }
    }
}
