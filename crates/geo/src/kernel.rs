//! Batched, autovectorizable distance kernels.
//!
//! Best-first NN search spends its CPU time computing `dist(q, p)` for every
//! entry of every visited node ([`crate::Point::dist2`] /
//! [`crate::Rect::mindist2`]). Called one entry at a time through the
//! streaming node decoders, those are scalar `sqrt`/`max` chains the
//! compiler cannot vectorize across entries. These kernels take the same
//! inputs in struct-of-arrays form (one slice per coordinate) and evaluate
//! fixed-width chunks, which LLVM turns into SIMD on any target with vector
//! `max`/`mul` — no intrinsics, no feature gates.
//!
//! Every kernel computes *bit-identical* results to its scalar counterpart
//! (same operations in the same order per element; pinned by proptests), so
//! switching a traversal to the batched path can never change which
//! neighbour is found.

/// Chunk width. Eight `f64`s span two AVX2 registers or one AVX-512
/// register; on narrower targets the fixed trip count still unrolls cleanly.
pub const LANES: usize = 8;

/// Squared Euclidean distance from `(qx, qy)` to each `(xs[i], ys[i])`,
/// written to `out[i]`. Bit-identical to [`crate::Point::dist2`].
///
/// # Panics
/// If the slice lengths differ.
pub fn point_dist2_batch(qx: f64, qy: f64, xs: &[f64], ys: &[f64], out: &mut [f64]) {
    let n = xs.len();
    assert!(ys.len() == n && out.len() == n, "SoA slice length mismatch");
    let chunks = n / LANES;
    for c in 0..chunks {
        let base = c * LANES;
        // Fixed-size views give the autovectorizer a constant trip count.
        let xs: &[f64; LANES] = xs[base..base + LANES].try_into().expect("chunk");
        let ys: &[f64; LANES] = ys[base..base + LANES].try_into().expect("chunk");
        let out: &mut [f64; LANES] = (&mut out[base..base + LANES]).try_into().expect("chunk");
        for i in 0..LANES {
            let dx = qx - xs[i];
            let dy = qy - ys[i];
            out[i] = dx * dx + dy * dy;
        }
    }
    for i in chunks * LANES..n {
        let dx = qx - xs[i];
        let dy = qy - ys[i];
        out[i] = dx * dx + dy * dy;
    }
}

#[inline(always)]
fn mindist2_scalar(qx: f64, qy: f64, lox: f64, loy: f64, hix: f64, hiy: f64) -> f64 {
    // Exactly Rect::mindist2's operation order, so results match bit for bit.
    let dx = (lox - qx).max(0.0).max(qx - hix);
    let dy = (loy - qy).max(0.0).max(qy - hiy);
    dx * dx + dy * dy
}

/// Squared minimum distance from `(qx, qy)` to each axis-aligned rectangle
/// `[lox[i], hix[i]] × [loy[i], hiy[i]]`, written to `out[i]`. Bit-identical
/// to [`crate::Rect::mindist2`].
///
/// # Panics
/// If the slice lengths differ.
#[allow(clippy::too_many_arguments)]
pub fn rect_mindist2_batch(
    qx: f64,
    qy: f64,
    lox: &[f64],
    loy: &[f64],
    hix: &[f64],
    hiy: &[f64],
    out: &mut [f64],
) {
    let n = lox.len();
    assert!(
        loy.len() == n && hix.len() == n && hiy.len() == n && out.len() == n,
        "SoA slice length mismatch"
    );
    let chunks = n / LANES;
    for c in 0..chunks {
        let base = c * LANES;
        let lox: &[f64; LANES] = lox[base..base + LANES].try_into().expect("chunk");
        let loy: &[f64; LANES] = loy[base..base + LANES].try_into().expect("chunk");
        let hix: &[f64; LANES] = hix[base..base + LANES].try_into().expect("chunk");
        let hiy: &[f64; LANES] = hiy[base..base + LANES].try_into().expect("chunk");
        let out: &mut [f64; LANES] = (&mut out[base..base + LANES]).try_into().expect("chunk");
        for i in 0..LANES {
            out[i] = mindist2_scalar(qx, qy, lox[i], loy[i], hix[i], hiy[i]);
        }
    }
    for i in chunks * LANES..n {
        out[i] = mindist2_scalar(qx, qy, lox[i], loy[i], hix[i], hiy[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Point, Rect};
    use proptest::prelude::*;

    fn coord() -> impl Strategy<Value = f64> {
        -1000.0..1000.0f64
    }

    #[test]
    fn empty_batches_are_fine() {
        point_dist2_batch(1.0, 2.0, &[], &[], &mut []);
        rect_mindist2_batch(1.0, 2.0, &[], &[], &[], &[], &mut []);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        point_dist2_batch(0.0, 0.0, &[1.0, 2.0], &[1.0], &mut [0.0, 0.0]);
    }

    proptest! {
        /// Batched point distances are bit-identical to Point::dist2 at
        /// every length (covering both the chunked body and the tail).
        #[test]
        fn prop_point_batch_bit_equals_scalar(
            q in (coord(), coord()),
            pts in proptest::collection::vec((coord(), coord()), 0..40),
        ) {
            let query = Point::new(q.0, q.1);
            let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
            let mut out = vec![0.0; pts.len()];
            point_dist2_batch(q.0, q.1, &xs, &ys, &mut out);
            for (i, &(x, y)) in pts.iter().enumerate() {
                let want = query.dist2(&Point::new(x, y));
                prop_assert_eq!(out[i].to_bits(), want.to_bits(),
                                "element {} diverged: {} vs {}", i, out[i], want);
            }
        }

        /// Batched rect min-distances are bit-identical to Rect::mindist2.
        #[test]
        fn prop_rect_batch_bit_equals_scalar(
            q in (coord(), coord()),
            rects in proptest::collection::vec((coord(), coord(), coord(), coord()), 0..40),
        ) {
            let query = Point::new(q.0, q.1);
            let rs: Vec<Rect> = rects
                .iter()
                .map(|&(ax, ay, bx, by)| Rect::new(Point::new(ax, ay), Point::new(bx, by)))
                .collect();
            let lox: Vec<f64> = rs.iter().map(|r| r.lo.x).collect();
            let loy: Vec<f64> = rs.iter().map(|r| r.lo.y).collect();
            let hix: Vec<f64> = rs.iter().map(|r| r.hi.x).collect();
            let hiy: Vec<f64> = rs.iter().map(|r| r.hi.y).collect();
            let mut out = vec![0.0; rs.len()];
            rect_mindist2_batch(q.0, q.1, &lox, &loy, &hix, &hiy, &mut out);
            for (i, r) in rs.iter().enumerate() {
                let want = r.mindist2(&query);
                prop_assert_eq!(out[i].to_bits(), want.to_bits(),
                                "element {} diverged: {} vs {}", i, out[i], want);
            }
        }
    }
}
