//! The simulated disk: fixed-size pages with physical I/O counters.

use std::fmt;

/// Identifier of a disk page. Dense (allocation order), so page tables can be
/// plain vectors.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PageId(pub u32);

impl PageId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

/// An in-memory simulated disk.
///
/// Pages are owned boxed slices of exactly `page_size` bytes. Every
/// `read_page` / `write_page` that reaches the disk is a *physical* access
/// and increments the corresponding counter; the buffer pool above decides
/// which logical accesses reach the disk.
pub struct DiskManager {
    page_size: usize,
    pages: Vec<Box<[u8]>>,
    physical_reads: u64,
    physical_writes: u64,
}

impl DiskManager {
    /// Creates an empty disk with the given page size.
    ///
    /// # Panics
    /// Panics if `page_size == 0`.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        DiskManager {
            page_size,
            pages: Vec::new(),
            physical_reads: 0,
            physical_writes: 0,
        }
    }

    /// The configured page size in bytes.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of allocated pages.
    #[inline]
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Allocates a zeroed page and returns its id. Allocation itself is not
    /// charged as an I/O: the writer will issue a physical write when it
    /// flushes content.
    pub fn alloc_page(&mut self) -> PageId {
        let id = PageId(u32::try_from(self.pages.len()).expect("page id overflow"));
        self.pages
            .push(vec![0u8; self.page_size].into_boxed_slice());
        id
    }

    /// Reads a page into `buf` (must be exactly `page_size` long), counting
    /// one physical read.
    ///
    /// # Panics
    /// Panics on an unallocated page id or wrong buffer length — both are
    /// storage-layer bugs, not recoverable conditions.
    pub fn read_page(&mut self, id: PageId, buf: &mut [u8]) {
        assert_eq!(buf.len(), self.page_size, "buffer/page size mismatch");
        let page = &self.pages[id.index()];
        buf.copy_from_slice(page);
        self.physical_reads += 1;
    }

    /// Writes `data` (exactly `page_size` long) to the page, counting one
    /// physical write.
    pub fn write_page(&mut self, id: PageId, data: &[u8]) {
        assert_eq!(data.len(), self.page_size, "buffer/page size mismatch");
        self.pages[id.index()].copy_from_slice(data);
        self.physical_writes += 1;
    }

    /// Physical reads performed so far.
    #[inline]
    pub fn physical_reads(&self) -> u64 {
        self.physical_reads
    }

    /// Physical writes performed so far.
    #[inline]
    pub fn physical_writes(&self) -> u64 {
        self.physical_writes
    }

    /// Resets the physical counters (used between experiment phases so that
    /// index-construction I/O is not charged to the queries).
    pub fn reset_counters(&mut self) {
        self.physical_reads = 0;
        self.physical_writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_dense_ids() {
        let mut d = DiskManager::new(64);
        assert_eq!(d.alloc_page(), PageId(0));
        assert_eq!(d.alloc_page(), PageId(1));
        assert_eq!(d.alloc_page(), PageId(2));
        assert_eq!(d.num_pages(), 3);
    }

    #[test]
    fn fresh_pages_are_zeroed() {
        let mut d = DiskManager::new(16);
        let id = d.alloc_page();
        let mut buf = vec![0xFFu8; 16];
        d.read_page(id, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut d = DiskManager::new(8);
        let id = d.alloc_page();
        let data = [1, 2, 3, 4, 5, 6, 7, 8];
        d.write_page(id, &data);
        let mut buf = [0u8; 8];
        d.read_page(id, &mut buf);
        assert_eq!(buf, data);
    }

    #[test]
    fn counters_track_physical_io() {
        let mut d = DiskManager::new(8);
        let a = d.alloc_page();
        let b = d.alloc_page();
        assert_eq!(d.physical_reads(), 0);
        assert_eq!(d.physical_writes(), 0);
        d.write_page(a, &[0u8; 8]);
        d.write_page(b, &[1u8; 8]);
        let mut buf = [0u8; 8];
        d.read_page(a, &mut buf);
        assert_eq!(d.physical_reads(), 1);
        assert_eq!(d.physical_writes(), 2);
        d.reset_counters();
        assert_eq!(d.physical_reads(), 0);
        assert_eq!(d.physical_writes(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer/page size mismatch")]
    fn wrong_buffer_size_panics() {
        let mut d = DiskManager::new(8);
        let id = d.alloc_page();
        let mut small = [0u8; 4];
        d.read_page(id, &mut small);
    }

    #[test]
    #[should_panic]
    fn unallocated_page_read_panics() {
        let mut d = DiskManager::new(8);
        let mut buf = [0u8; 8];
        d.read_page(PageId(3), &mut buf);
    }
}
