//! Paged storage substrate for the CCA reproduction.
//!
//! The paper assumes the customer set `P` "resides in secondary storage,
//! indexed by a spatial access method" (§1) and its evaluation fixes a 1 KB
//! page size, an LRU buffer sized at 1 % of the R-tree, and charges 10 ms per
//! page fault (§5.1). This crate reproduces that storage model:
//!
//! * [`disk::DiskManager`] — an in-memory simulated disk holding fixed-size
//!   pages and counting *physical* reads/writes,
//! * [`lru::LruList`] — an O(1) intrusive LRU list (kept as a reusable
//!   primitive; the pool itself now uses clock replacement),
//! * [`buffer::BufferPool`] — a buffer pool with clock (second-chance)
//!   replacement, write-back of dirty pages, and a seqlock-published frame
//!   directory that lets the sharded store serve page hits without a lock,
//! * [`stats::IoStats`] — fault counters plus the paper's charged I/O time,
//! * [`stats::IoSession`] — a per-query attribution handle charged alongside
//!   the global counters, so concurrent queries each see their own traffic,
//! * [`context::QueryContext`] — the per-query control block (session +
//!   tenant + priority + deadline + I/O budget + cancellation) threaded
//!   through every page access; budgets trip at page-fault time,
//! * [`store::PageStore`] — the facade striping pages over N independent
//!   shards (own frames, clock hand and lock each; counters are per-shard
//!   atomics aggregated on read), shared across the serving layer's worker
//!   threads. Page hits are served lock-free through a per-shard seqlock
//!   directory; only faults and writes take a shard mutex.
//!
//! The disk is in-memory (documented substitution in DESIGN.md §5): the
//! paper itself *charges* I/O time per fault rather than measuring a device,
//! so fault counting through a real LRU is exactly the fidelity required.

pub mod buffer;
pub mod context;
pub mod disk;
pub mod lru;
mod shard;
pub mod stats;
pub mod store;

pub use buffer::BufferPool;
pub use context::{AbortReason, Aborted, Priority, QueryContext, TenantId};
pub use disk::{DiskManager, PageId};
pub use stats::{IoSession, IoStats};
pub use store::{default_shards, PageStore};

/// Default page size used in the paper's evaluation ("indexed by an R-tree
/// with 1Kbyte page size", §5.1).
pub const DEFAULT_PAGE_SIZE: usize = 1024;

/// I/O cost charged per page fault ("we measure I/O time by charging 10ms
/// per page fault", §5.1).
pub const IO_COST_PER_FAULT_MS: f64 = 10.0;
