//! An intrusive, index-based LRU list with O(1) touch/push/pop.
//!
//! Used by the buffer pool to pick eviction victims. Entries are identified
//! by dense *slot* indices (the buffer pool's frame numbers), so the list is
//! two parallel `Vec<u32>`s rather than a pointer-chasing linked list.

const NIL: u32 = u32::MAX;

/// Doubly-linked LRU list over slots `0..capacity`.
///
/// Head = most recently used, tail = least recently used. Slots may be
/// *detached* (not in the list); pushing an attached slot first detaches it,
/// so `touch` is simply `push_front`.
pub struct LruList {
    prev: Vec<u32>,
    next: Vec<u32>,
    in_list: Vec<bool>,
    head: u32,
    tail: u32,
    len: usize,
}

impl LruList {
    /// Creates a list able to track `capacity` slots, all initially detached.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity < NIL as usize, "capacity too large for u32 links");
        LruList {
            prev: vec![NIL; capacity],
            next: vec![NIL; capacity],
            in_list: vec![false; capacity],
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of attached slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slot is attached.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots this list can track.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.prev.len()
    }

    /// True if `slot` is currently attached.
    #[inline]
    pub fn contains(&self, slot: usize) -> bool {
        self.in_list[slot]
    }

    /// Grows the tracked slot range (new slots start detached).
    pub fn grow_to(&mut self, capacity: usize) {
        assert!(capacity < NIL as usize);
        if capacity > self.prev.len() {
            self.prev.resize(capacity, NIL);
            self.next.resize(capacity, NIL);
            self.in_list.resize(capacity, false);
        }
    }

    /// Detaches `slot` if attached.
    pub fn remove(&mut self, slot: usize) {
        if !self.in_list[slot] {
            return;
        }
        let s = slot as u32;
        let p = self.prev[slot];
        let n = self.next[slot];
        if p == NIL {
            debug_assert_eq!(self.head, s);
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            debug_assert_eq!(self.tail, s);
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
        self.prev[slot] = NIL;
        self.next[slot] = NIL;
        self.in_list[slot] = false;
        self.len -= 1;
    }

    /// Moves (or inserts) `slot` to the most-recently-used position.
    pub fn touch(&mut self, slot: usize) {
        self.remove(slot);
        let s = slot as u32;
        self.prev[slot] = NIL;
        self.next[slot] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = s;
        }
        self.head = s;
        if self.tail == NIL {
            self.tail = s;
        }
        self.in_list[slot] = true;
        self.len += 1;
    }

    /// Removes and returns the least-recently-used slot, if any.
    pub fn pop_lru(&mut self) -> Option<usize> {
        if self.tail == NIL {
            return None;
        }
        let victim = self.tail as usize;
        self.remove(victim);
        Some(victim)
    }

    /// Peeks at the least-recently-used slot without removing it.
    #[inline]
    pub fn peek_lru(&self) -> Option<usize> {
        (self.tail != NIL).then_some(self.tail as usize)
    }

    /// Iterates slots from most- to least-recently-used (test/debug helper).
    pub fn iter_mru_to_lru(&self) -> impl Iterator<Item = usize> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                None
            } else {
                let slot = cur as usize;
                cur = self.next[slot];
                Some(slot)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_list_pops_none() {
        let mut l = LruList::new(4);
        assert!(l.is_empty());
        assert_eq!(l.pop_lru(), None);
        assert_eq!(l.peek_lru(), None);
    }

    #[test]
    fn eviction_order_is_lru() {
        let mut l = LruList::new(4);
        l.touch(0);
        l.touch(1);
        l.touch(2);
        assert_eq!(l.pop_lru(), Some(0));
        assert_eq!(l.pop_lru(), Some(1));
        assert_eq!(l.pop_lru(), Some(2));
        assert_eq!(l.pop_lru(), None);
    }

    #[test]
    fn touch_moves_to_front() {
        let mut l = LruList::new(4);
        l.touch(0);
        l.touch(1);
        l.touch(2);
        l.touch(0); // 0 becomes MRU, so 1 is now the LRU victim
        assert_eq!(l.pop_lru(), Some(1));
        assert_eq!(l.pop_lru(), Some(2));
        assert_eq!(l.pop_lru(), Some(0));
    }

    #[test]
    fn remove_detaches_middle_element() {
        let mut l = LruList::new(4);
        l.touch(0);
        l.touch(1);
        l.touch(2);
        l.remove(1);
        assert!(!l.contains(1));
        assert_eq!(l.len(), 2);
        assert_eq!(l.pop_lru(), Some(0));
        assert_eq!(l.pop_lru(), Some(2));
    }

    #[test]
    fn remove_head_and_tail() {
        let mut l = LruList::new(4);
        l.touch(0);
        l.touch(1);
        l.touch(2); // order MRU→LRU: 2,1,0
        l.remove(2); // remove head
        l.remove(0); // remove tail
        assert_eq!(l.len(), 1);
        assert_eq!(l.iter_mru_to_lru().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn grow_extends_capacity() {
        let mut l = LruList::new(1);
        l.touch(0);
        l.grow_to(3);
        l.touch(2);
        assert_eq!(l.capacity(), 3);
        assert_eq!(l.pop_lru(), Some(0));
        assert_eq!(l.pop_lru(), Some(2));
    }

    /// Reference model: a Vec where front = MRU.
    #[derive(Default)]
    struct Model(Vec<usize>);

    impl Model {
        fn touch(&mut self, s: usize) {
            self.0.retain(|&x| x != s);
            self.0.insert(0, s);
        }
        fn remove(&mut self, s: usize) {
            self.0.retain(|&x| x != s);
        }
        fn pop_lru(&mut self) -> Option<usize> {
            self.0.pop()
        }
    }

    #[derive(Debug, Clone)]
    enum Op {
        Touch(usize),
        Remove(usize),
        Pop,
    }

    fn op(max_slot: usize) -> impl Strategy<Value = Op> {
        prop_oneof![
            (0..max_slot).prop_map(Op::Touch),
            (0..max_slot).prop_map(Op::Remove),
            Just(Op::Pop),
        ]
    }

    proptest! {
        #[test]
        fn prop_matches_reference_model(ops in proptest::collection::vec(op(8), 1..200)) {
            let mut l = LruList::new(8);
            let mut m = Model::default();
            for o in ops {
                match o {
                    Op::Touch(s) => { l.touch(s); m.touch(s); }
                    Op::Remove(s) => { l.remove(s); m.remove(s); }
                    Op::Pop => {
                        prop_assert_eq!(l.pop_lru(), m.pop_lru());
                    }
                }
                prop_assert_eq!(l.len(), m.0.len());
                prop_assert_eq!(l.iter_mru_to_lru().collect::<Vec<_>>(), m.0.clone());
            }
        }
    }
}
