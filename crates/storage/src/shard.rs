//! One shard of the sharded buffer pool: a slice of the page-id space with
//! its own disk segment, LRU frames, lock, and atomic counters.
//!
//! Page ids are dense allocation indices, so the store stripes them
//! round-robin: with `N = 2^bits` shards, page `i` lives in shard
//! `i & (N-1)` under the shard-local id `i >> bits`. Striding (rather than
//! range partitioning) spreads any access locality — an R-tree traversal
//! touches pages allocated together — evenly across shards, which is what
//! makes independent shard locks pay off under concurrent queries.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::buffer::{BufferPool, HotTable};
use crate::context::QueryContext;
use crate::disk::{DiskManager, PageId};
use crate::stats::{IoSession, IoStats};

thread_local! {
    /// Per-thread staging buffer for optimistic page copies: the lock-free
    /// read path copies page bytes here before validating the seqlock
    /// version, so the user closure only ever sees a consistent snapshot.
    static HOT_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// The lock-protected working state of one shard.
pub(crate) struct ShardInner {
    pub(crate) disk: DiskManager,
    pub(crate) pool: BufferPool,
}

impl ShardInner {
    /// Grows the shard-local disk so `local` is a valid page (pages are
    /// allocated globally by an atomic counter; the owning shard lazily
    /// materialises its stripe on first touch).
    pub(crate) fn ensure_local_page(&mut self, local: PageId) {
        while self.disk.num_pages() <= local.index() {
            self.disk.alloc_page();
        }
    }
}

/// One shard: its own frames, LRU list, disk segment and lock, plus atomic
/// counters readable without the lock. The counters reuse [`IoSession`] —
/// a shard's aggregate is the same three-counter atomic bundle a per-query
/// session is, charged from the same place.
pub(crate) struct Shard {
    inner: Mutex<ShardInner>,
    stats: IoSession,
    /// The pool's lock-free frame directory, shared so the optimistic read
    /// path can resolve page hits without `inner`'s mutex.
    hot: Arc<HotTable>,
    page_size: usize,
    /// Times `inner` was locked — the observable half of the "hits skip the
    /// mutex" contract (tests assert a warmed read loop leaves it flat).
    lock_count: AtomicU64,
}

impl Shard {
    pub(crate) fn new(page_size: usize, buffer_pages: usize) -> Self {
        let pool = BufferPool::new(buffer_pages);
        let hot = pool.hot_table();
        Shard {
            inner: Mutex::new(ShardInner {
                disk: DiskManager::new(page_size),
                pool,
            }),
            stats: IoSession::new(),
            hot,
            page_size,
            lock_count: AtomicU64::new(0),
        }
    }

    /// Counters accumulated by this shard so far.
    pub(crate) fn stats(&self) -> IoStats {
        self.stats.stats()
    }

    /// Mutex acquisitions so far (all paths: reads that missed the
    /// optimistic fast path, writes, maintenance).
    pub(crate) fn lock_acquisitions(&self) -> u64 {
        self.lock_count.load(Ordering::Relaxed)
    }

    /// Locks the shard; poisoning is deliberately ignored (all mutation is
    /// in-memory bookkeeping that cannot be left torn).
    fn lock(&self) -> MutexGuard<'_, ShardInner> {
        self.lock_count.fetch_add(1, Ordering::Relaxed);
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Optimistic lock-free read: serves page `local` *if it is resident*,
    /// copying its bytes through the seqlock-validated hot directory without
    /// ever touching the shard mutex. On success the hit is charged to the
    /// shard counters and to `ctx` (hits never trip I/O budgets, so the
    /// lock-free charge is as exact as the locked one). On failure — page
    /// not resident, a racing writer, or a nested access already using this
    /// thread's staging buffer — the closure is handed back so the caller
    /// can fall through to the locked path.
    ///
    /// Charging here is lock-free, so unlike the locked path it can in
    /// principle race [`Shard::reset_stats`]; resetting counters while
    /// readers are in flight has never been supported (every caller resets
    /// between phases, quiescent), so the exactness contract is unchanged.
    pub(crate) fn try_read_hot<R, F: FnOnce(&[u8]) -> R>(
        &self,
        local: PageId,
        ctx: Option<&QueryContext>,
        f: F,
    ) -> Result<R, F> {
        HOT_SCRATCH.with(|scratch| {
            // A nested store access on this thread would already hold the
            // borrow; fall back to the locked path rather than panic.
            let Ok(mut scratch) = scratch.try_borrow_mut() else {
                return Err(f);
            };
            if scratch.len() != self.page_size {
                scratch.resize(self.page_size, 0);
            }
            if !self.hot.try_copy(local.0, &mut scratch[..]) {
                return Err(f);
            }
            let delta = IoStats {
                hits: 1,
                faults: 0,
                writes: 0,
            };
            self.stats.charge(delta);
            if let Some(ctx) = ctx {
                ctx.charge(delta);
            }
            Ok(f(&scratch[..]))
        })
    }

    /// Runs `op` under the shard lock and charges the pool-stat delta to
    /// the shard counters and, when given, to `ctx` — whose charge also
    /// performs the per-query I/O-budget check at fault time.
    ///
    /// The charge happens *before* the lock is released so it cannot race
    /// [`Shard::reset_stats`] (a post-unlock charge could resurrect
    /// pre-reset traffic into freshly zeroed counters).
    pub(crate) fn with_inner<R>(
        &self,
        ctx: Option<&QueryContext>,
        op: impl FnOnce(&mut ShardInner) -> R,
    ) -> R {
        let mut guard = self.lock();
        let before = guard.pool.stats();
        let result = op(&mut guard);
        let delta = guard.pool.stats().since(&before);
        if delta != IoStats::default() {
            self.stats.charge(delta);
            if let Some(ctx) = ctx {
                ctx.charge(delta);
            }
        }
        drop(guard);
        result
    }

    /// Resets both the pool-internal counters and the shard atomics, under
    /// one lock hold so no delta can slip between the two.
    pub(crate) fn reset_stats(&self) {
        let mut guard = self.lock();
        guard.pool.reset_stats();
        self.stats.reset();
    }
}

/// Routes page ids to shards: `shard = index & mask`, `local = index >> bits`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ShardRouter {
    bits: u32,
    mask: u32,
}

impl ShardRouter {
    /// Builds a router over `shards` shards (must be a power of two).
    pub(crate) fn new(shards: usize) -> Self {
        assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two"
        );
        assert!(shards <= 1 << 16, "shard count out of range");
        let bits = shards.trailing_zeros();
        ShardRouter {
            bits,
            mask: (shards - 1) as u32,
        }
    }

    #[inline]
    pub(crate) fn shards(&self) -> usize {
        (self.mask as usize) + 1
    }

    #[inline]
    pub(crate) fn shard_of(&self, id: PageId) -> usize {
        (id.0 & self.mask) as usize
    }

    #[inline]
    pub(crate) fn local_id(&self, id: PageId) -> PageId {
        PageId(id.0 >> self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_stripes_round_robin() {
        let r = ShardRouter::new(4);
        assert_eq!(r.shards(), 4);
        assert_eq!(r.shard_of(PageId(0)), 0);
        assert_eq!(r.shard_of(PageId(5)), 1);
        assert_eq!(r.shard_of(PageId(7)), 3);
        assert_eq!(r.local_id(PageId(0)), PageId(0));
        assert_eq!(r.local_id(PageId(5)), PageId(1));
        assert_eq!(r.local_id(PageId(14)), PageId(3));
    }

    #[test]
    fn single_shard_router_is_identity() {
        let r = ShardRouter::new(1);
        for i in [0u32, 1, 17, 4096] {
            assert_eq!(r.shard_of(PageId(i)), 0);
            assert_eq!(r.local_id(PageId(i)), PageId(i));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        ShardRouter::new(3);
    }

    #[test]
    fn shard_charges_atomics_and_context() {
        let shard = Shard::new(16, 2);
        let ctx = QueryContext::new();
        shard.with_inner(Some(&ctx), |inner| {
            let id = inner.disk.alloc_page();
            inner.pool.with_page(&mut inner.disk, id, |_| ());
            inner.pool.with_page(&mut inner.disk, id, |_| ());
        });
        let want = IoStats {
            hits: 1,
            faults: 1,
            writes: 0,
        };
        assert_eq!(shard.stats(), want);
        assert_eq!(ctx.stats(), want);
        shard.reset_stats();
        assert_eq!(shard.stats(), IoStats::default());
    }
}
