//! I/O statistics, the paper's charged I/O time model, and the
//! [`IoSession`] attribution handle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::IO_COST_PER_FAULT_MS;

/// Counters describing buffer-pool / disk traffic.
///
/// The evaluation (§5.1) measures "I/O time by charging 10ms per page
/// fault"; [`IoStats::charged_io_time_ms`] applies exactly that model. A
/// *fault* is a logical page request the buffer pool could not serve from a
/// cached frame (a physical read).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Logical page requests served from the buffer pool (no disk access).
    pub hits: u64,
    /// Logical page requests that required a physical read (page faults).
    pub faults: u64,
    /// Physical writes (dirty-page write-backs plus direct writes).
    pub writes: u64,
}

impl IoStats {
    /// Total logical page requests.
    #[inline]
    pub fn logical_reads(&self) -> u64 {
        self.hits + self.faults
    }

    /// Fraction of logical reads served from the buffer (0 when idle).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.logical_reads();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The paper's charged I/O time, in milliseconds: `faults × 10 ms`.
    #[inline]
    pub fn charged_io_time_ms(&self) -> f64 {
        self.faults as f64 * IO_COST_PER_FAULT_MS
    }

    /// Charged I/O time in seconds (the unit of the paper's figures).
    #[inline]
    pub fn charged_io_time_s(&self) -> f64 {
        self.charged_io_time_ms() / 1000.0
    }

    /// Element-wise difference (`self - earlier`), for measuring a phase.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            hits: self.hits - earlier.hits,
            faults: self.faults - earlier.faults,
            writes: self.writes - earlier.writes,
        }
    }
}

/// A per-query I/O attribution handle.
///
/// A session is a cheap, cloneable bundle of atomic counters. The
/// [`crate::PageStore`] charges every page access to the shard counters
/// *and* — when the access carries a session — to that session, so
/// concurrent queries over one shared buffer pool each see exactly the
/// traffic they caused. For disjoint sessions the per-session fault counts
/// sum to the store's global fault count (the invariant the batch runner's
/// tests enforce).
///
/// Cloning shares the counters (it is an `Arc` underneath): a query may
/// hand clones to several cursors and read one combined total.
#[derive(Clone, Debug, Default)]
pub struct IoSession {
    inner: Arc<SessionCounters>,
}

#[derive(Debug, Default)]
struct SessionCounters {
    hits: AtomicU64,
    faults: AtomicU64,
    writes: AtomicU64,
}

impl IoSession {
    /// A fresh session with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// The traffic charged to this session so far.
    pub fn stats(&self) -> IoStats {
        IoStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            faults: self.inner.faults.load(Ordering::Relaxed),
            writes: self.inner.writes.load(Ordering::Relaxed),
        }
    }

    /// Charges `delta` to the session (called by the store's shards).
    pub fn charge(&self, delta: IoStats) {
        if delta.hits != 0 {
            self.inner.hits.fetch_add(delta.hits, Ordering::Relaxed);
        }
        if delta.faults != 0 {
            self.inner.faults.fetch_add(delta.faults, Ordering::Relaxed);
        }
        if delta.writes != 0 {
            self.inner.writes.fetch_add(delta.writes, Ordering::Relaxed);
        }
    }

    /// Zeroes the counters (e.g. to reuse one session across phases).
    pub fn reset(&self) {
        self.inner.hits.store(0, Ordering::Relaxed);
        self.inner.faults.store(0, Ordering::Relaxed);
        self.inner.writes.store(0, Ordering::Relaxed);
    }

    /// True when both handles charge the same counters.
    pub fn same_session(&self, other: &IoSession) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    use super::IoStats;
    use serde::{Deserialize, Error, Serialize, Value};

    impl Serialize for IoStats {
        fn to_value(&self) -> Value {
            Value::map([
                ("hits", self.hits.to_value()),
                ("faults", self.faults.to_value()),
                ("writes", self.writes.to_value()),
            ])
        }
    }

    impl Deserialize for IoStats {
        fn from_value(v: &Value) -> Result<Self, Error> {
            Ok(IoStats {
                hits: u64::from_value(v.get("hits")?)?,
                faults: u64::from_value(v.get("faults")?)?,
                writes: u64::from_value(v.get("writes")?)?,
            })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn io_stats_json_roundtrip() {
            let s = IoStats {
                hits: 10,
                faults: 7,
                writes: 3,
            };
            let back: IoStats = serde::json::from_str(&serde::json::to_string(&s)).unwrap();
            assert_eq!(back, s);
        }
    }
}

impl std::ops::Add for IoStats {
    type Output = IoStats;
    fn add(self, rhs: IoStats) -> IoStats {
        IoStats {
            hits: self.hits + rhs.hits,
            faults: self.faults + rhs.faults,
            writes: self.writes + rhs.writes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charged_time_follows_ten_ms_rule() {
        let s = IoStats {
            hits: 5,
            faults: 100,
            writes: 0,
        };
        assert_eq!(s.charged_io_time_ms(), 1000.0);
        assert_eq!(s.charged_io_time_s(), 1.0);
    }

    #[test]
    fn hit_ratio_handles_zero_and_mixed() {
        assert_eq!(IoStats::default().hit_ratio(), 0.0);
        let s = IoStats {
            hits: 3,
            faults: 1,
            writes: 0,
        };
        assert_eq!(s.hit_ratio(), 0.75);
        assert_eq!(s.logical_reads(), 4);
    }

    #[test]
    fn since_subtracts_elementwise() {
        let a = IoStats {
            hits: 10,
            faults: 7,
            writes: 2,
        };
        let b = IoStats {
            hits: 4,
            faults: 5,
            writes: 1,
        };
        assert_eq!(
            a.since(&b),
            IoStats {
                hits: 6,
                faults: 2,
                writes: 1
            }
        );
    }

    #[test]
    fn session_charges_accumulate_across_clones() {
        let s = IoSession::new();
        let t = s.clone();
        assert!(s.same_session(&t));
        s.charge(IoStats {
            hits: 2,
            faults: 1,
            writes: 0,
        });
        t.charge(IoStats {
            hits: 0,
            faults: 3,
            writes: 1,
        });
        assert_eq!(
            s.stats(),
            IoStats {
                hits: 2,
                faults: 4,
                writes: 1
            }
        );
        s.reset();
        assert_eq!(t.stats(), IoStats::default());
        assert!(!s.same_session(&IoSession::new()));
    }

    #[test]
    fn add_accumulates() {
        let a = IoStats {
            hits: 1,
            faults: 2,
            writes: 3,
        };
        let b = IoStats {
            hits: 10,
            faults: 20,
            writes: 30,
        };
        assert_eq!(
            a + b,
            IoStats {
                hits: 11,
                faults: 22,
                writes: 33
            }
        );
    }
}
