//! Buffer pool with clock (second-chance) replacement, write-back of dirty
//! pages, and a lock-free directory of resident frames.
//!
//! Two structures make page *hits* readable without the owning shard's
//! mutex:
//!
//! * `FrameCell` — the concurrently readable half of a frame: the page
//!   bytes (as `AtomicU64` words, so racing reads are defined behaviour),
//!   the page identity, and a clock reference bit, all published through a
//!   seqlock version counter. Writers (always serialised by the shard mutex
//!   or `&mut BufferPool`) bump the version to odd, mutate, and bump back to
//!   even; lock-free readers copy the bytes and accept the copy only if the
//!   version was even and unchanged around the copy.
//! * `HotTable` — a chunked array of atomic cell pointers mapping
//!   shard-local page index → resident `FrameCell`, shared (via `Arc`)
//!   with the shard so its lock-free read path can find the frame without
//!   locking. Entries are maintained by the pool under the lock.
//!
//! Replacement is clock/second-chance rather than strict LRU: a hit only
//! sets the frame's atomic reference bit (no list mutation, so the
//! optimistic path needs no lock), and the eviction hand sweeps frames
//! clearing bits until it finds one already clear.

use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use crate::disk::{DiskManager, PageId};
use crate::stats::IoStats;

const NO_FRAME: u32 = u32::MAX;
const NO_PAGE: u32 = u32::MAX;

/// Entries per hot-table chunk.
const HOT_CHUNK_LEN: usize = 1024;
/// Chunks per hot table: 4096 × 1024 ≈ 4M pages per shard are addressable
/// lock-free; pages beyond that always take the locked path.
const HOT_CHUNKS: usize = 4096;

/// The shared, concurrently readable half of a buffer frame.
pub(crate) struct FrameCell {
    /// Seqlock version: even = stable, odd = mutation in progress.
    version: AtomicU64,
    /// Shard-local index of the page held, [`NO_PAGE`] when detached.
    page: AtomicU32,
    /// Clock reference bit: set on every hit, cleared by the sweeping hand.
    referenced: AtomicBool,
    /// Page bytes, native-endian words (zero-padded tail when the page size
    /// is not a multiple of 8).
    words: Box<[AtomicU64]>,
    page_size: usize,
}

impl FrameCell {
    fn new(page_size: usize) -> Self {
        FrameCell {
            version: AtomicU64::new(0),
            page: AtomicU32::new(NO_PAGE),
            referenced: AtomicBool::new(false),
            words: (0..page_size.div_ceil(8))
                .map(|_| AtomicU64::new(0))
                .collect(),
            page_size,
        }
    }

    /// The page currently held. Exact under the lock; a racy snapshot
    /// otherwise.
    #[inline]
    fn page_relaxed(&self) -> u32 {
        self.page.load(Ordering::Relaxed)
    }

    /// Sets the clock reference bit (any hit, locked or optimistic).
    #[inline]
    pub(crate) fn mark_referenced(&self) {
        self.referenced.store(true, Ordering::Relaxed);
    }

    /// Clears and returns the reference bit (the sweeping clock hand).
    #[inline]
    fn take_referenced(&self) -> bool {
        self.referenced.swap(false, Ordering::Relaxed)
    }

    /// Runs `f` inside a seqlock write section. `f` must perform its stores
    /// to this cell with `Relaxed` atomic stores ([`FrameCell::set_page`],
    /// [`FrameCell::fill_from`]). Callers are serialised by the shard mutex
    /// (or `&mut BufferPool`), so write sections never overlap.
    fn mutate(&self, f: impl FnOnce()) {
        let v = self.version.load(Ordering::Relaxed);
        debug_assert!(v.is_multiple_of(2), "nested frame mutation");
        self.version.store(v + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        f();
        self.version.store(v + 2, Ordering::Release);
    }

    /// Sets the page identity; call only inside [`FrameCell::mutate`].
    #[inline]
    fn set_page(&self, page: u32) {
        self.page.store(page, Ordering::Relaxed);
    }

    /// Replaces the page bytes; call only inside [`FrameCell::mutate`].
    fn fill_from(&self, bytes: &[u8]) {
        debug_assert_eq!(bytes.len(), self.page_size);
        let mut chunks = bytes.chunks_exact(8);
        for (word, chunk) in self.words.iter().zip(&mut chunks) {
            word.store(
                u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk")),
                Ordering::Relaxed,
            );
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.words[self.words.len() - 1].store(u64::from_ne_bytes(buf), Ordering::Relaxed);
        }
    }

    /// Lock-free read: copies the page bytes into `out` and returns `true`
    /// iff the cell held page `expect` with a stable (even, unchanged)
    /// version around the whole copy. A `false` can mean either "wrong /
    /// no page" or "writer raced us"; callers fall back to the locked path.
    fn try_read_into(&self, expect: u32, out: &mut [u8]) -> bool {
        debug_assert_eq!(out.len(), self.page_size);
        let v1 = self.version.load(Ordering::Acquire);
        if v1 % 2 == 1 || self.page.load(Ordering::Relaxed) != expect {
            return false;
        }
        // Copy with chunked volatile block reads rather than per-word atomic
        // loads: 128 individual atomic loads compile to 128 scalar moves,
        // while volatile blocks vectorise. A racing writer can tear the
        // copy, but the version re-check below discards any copy that
        // overlapped a write section (writers bump the version to odd with
        // a Release fence before their first store), so a torn snapshot is
        // never *used* — the classic seqlock read idiom. `AtomicU64` has
        // `u64`'s layout, and volatile keeps the compiler from caching,
        // splitting or inventing reads across the version checks.
        unsafe {
            let src = self.words.as_ptr() as *const u64;
            const WORDS: usize = 8;
            let mut w = 0usize;
            let mut off = 0usize;
            while w + WORDS <= self.words.len() && off + WORDS * 8 <= out.len() {
                let block: [u64; WORDS] = (src.add(w) as *const [u64; WORDS]).read_volatile();
                let bytes: [u8; WORDS * 8] = std::mem::transmute(block);
                out[off..off + WORDS * 8].copy_from_slice(&bytes);
                w += WORDS;
                off += WORDS * 8;
            }
            while off < out.len() {
                let word = src.add(w).read_volatile().to_ne_bytes();
                let take = (out.len() - off).min(8);
                out[off..off + take].copy_from_slice(&word[..take]);
                w += 1;
                off += take;
            }
        }
        fence(Ordering::Acquire);
        self.version.load(Ordering::Relaxed) == v1
    }

    /// The page bytes as a plain slice.
    ///
    /// # Safety
    ///
    /// The caller must hold whatever serialises writers to this cell (the
    /// shard mutex / `&mut BufferPool`) for the lifetime of the slice.
    /// Concurrent lock-free *readers* are fine — reads never race with
    /// reads — but a concurrent [`FrameCell::mutate`] would be UB.
    unsafe fn locked_bytes(&self) -> &[u8] {
        // `AtomicU64` has the same in-memory representation as `u64`, and
        // `fill_from` stores native-endian words, so reinterpreting the word
        // buffer as bytes yields exactly the bytes that were stored.
        std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.page_size)
    }
}

/// One chunk of the hot directory.
struct HotChunk {
    cells: [AtomicPtr<FrameCell>; HOT_CHUNK_LEN],
}

impl HotChunk {
    fn new() -> Box<Self> {
        Box::new(HotChunk {
            cells: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
        })
    }
}

/// Lock-free map from shard-local page index to the [`FrameCell`] currently
/// caching it. Readers walk it without any lock; all mutation happens under
/// the shard mutex. Chunks are allocated lazily and only freed on drop, so a
/// reader can never observe a dangling chunk pointer.
pub(crate) struct HotTable {
    chunks: Box<[AtomicPtr<HotChunk>; HOT_CHUNKS]>,
}

impl HotTable {
    fn new() -> Self {
        HotTable {
            chunks: Box::new(std::array::from_fn(
                |_| AtomicPtr::new(std::ptr::null_mut()),
            )),
        }
    }

    /// The directory slot for `index`, if its chunk exists.
    fn slot(&self, index: usize) -> Option<&AtomicPtr<FrameCell>> {
        let chunk_idx = index / HOT_CHUNK_LEN;
        if chunk_idx >= HOT_CHUNKS {
            return None;
        }
        let chunk = self.chunks[chunk_idx].load(Ordering::Acquire);
        if chunk.is_null() {
            return None;
        }
        // SAFETY: non-null chunk pointers are only ever set to live boxed
        // chunks that are freed no earlier than `HotTable::drop`.
        Some(unsafe { &(*chunk).cells[index % HOT_CHUNK_LEN] })
    }

    /// Publishes `cell` as the frame holding page `index`. Writer side only
    /// (serialised by the shard mutex). Indexes beyond the addressable
    /// range are ignored — such pages simply always take the locked path.
    fn set(&self, index: usize, cell: *const FrameCell) {
        let chunk_idx = index / HOT_CHUNK_LEN;
        if chunk_idx >= HOT_CHUNKS {
            return;
        }
        let mut chunk = self.chunks[chunk_idx].load(Ordering::Acquire);
        if chunk.is_null() {
            chunk = Box::into_raw(HotChunk::new());
            self.chunks[chunk_idx].store(chunk, Ordering::Release);
        }
        // SAFETY: just ensured non-null; chunks live until drop.
        unsafe { &(*chunk).cells[index % HOT_CHUNK_LEN] }.store(cell as *mut _, Ordering::Release);
    }

    /// Removes the directory entry for `index` (page evicted / detached).
    fn clear(&self, index: usize) {
        if let Some(slot) = self.slot(index) {
            slot.store(std::ptr::null_mut(), Ordering::Release);
        }
    }

    /// Attempts a lock-free read of page `local`: on success copies the page
    /// bytes into `out`, marks the frame referenced for the clock sweep, and
    /// returns `true`. `out` must be exactly one page long.
    ///
    /// A stale pointer (the page was evicted after we loaded the entry) is
    /// caught by the cell's page/version validation; a dangling pointer is
    /// impossible because the owning pool parks retired cells instead of
    /// freeing them (see `BufferPool::retired`).
    pub(crate) fn try_copy(&self, local: u32, out: &mut [u8]) -> bool {
        let Some(slot) = self.slot(local as usize) else {
            return false;
        };
        let ptr = slot.load(Ordering::Acquire);
        if ptr.is_null() {
            return false;
        }
        // SAFETY: see doc comment — cells outlive any reader of the table.
        let cell = unsafe { &*ptr };
        // One retry absorbs a writer that finished between the two attempts;
        // anything longer-lived falls back to the locked path.
        for _ in 0..2 {
            if cell.try_read_into(local, out) {
                cell.mark_referenced();
                return true;
            }
        }
        false
    }
}

impl Drop for HotTable {
    fn drop(&mut self) {
        for chunk in self.chunks.iter() {
            let ptr = chunk.load(Ordering::Acquire);
            if !ptr.is_null() {
                // SAFETY: set() only stores pointers from Box::into_raw and
                // nothing else frees them.
                drop(unsafe { Box::from_raw(ptr) });
            }
        }
    }
}

struct Frame {
    cell: Arc<FrameCell>,
    dirty: bool,
}

impl Frame {
    #[inline]
    fn page(&self) -> u32 {
        self.cell.page_relaxed()
    }
}

/// A buffer pool caching up to `capacity` pages with clock (second-chance)
/// replacement.
///
/// The evaluation uses a buffer sized at "1% of the tree size" (§5.1); the
/// R-tree configures that after bulk loading via
/// [`BufferPool::set_capacity`]. Every cache miss is a page fault charged at
/// 10 ms by [`IoStats`]. Hits touch no replacement list — they only set the
/// frame's atomic reference bit — which is what lets the sharded store serve
/// hits without taking the shard mutex at all.
pub struct BufferPool {
    capacity: usize,
    frames: Vec<Frame>,
    /// Maps `PageId` index → frame slot (`NO_FRAME` when uncached). Page ids
    /// are dense, so a vector beats a hash map here.
    page_table: Vec<u32>,
    /// Clock hand position for the second-chance sweep.
    hand: usize,
    /// Allocated frames currently holding no page (detached by
    /// [`BufferPool::clear`]); popped in O(1) before growing or evicting.
    free: Vec<u32>,
    /// Lock-free page → frame directory, shared with the owning shard's
    /// optimistic read path.
    hot: Arc<HotTable>,
    /// Cells of frames dropped by a capacity shrink. They are parked here —
    /// not freed — because a concurrent optimistic reader may still hold a
    /// pointer obtained from `hot` before the eviction cleared the entry.
    /// (Bounded by shrink events; freed when the pool drops.)
    retired: Vec<Arc<FrameCell>>,
    /// Reusable staging buffer: read-through reads in the zero-capacity
    /// mode, and disk reads on the fault path before publishing into a cell.
    scratch: Option<Box<[u8]>>,
    stats: IoStats,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` pages.
    ///
    /// A capacity of `0` is a *read-through* pool: every read faults into a
    /// scratch buffer and nothing is retained. The sharded store uses this
    /// for shards whose stripe earned no frame under a tiny total budget,
    /// keeping the store-wide capacity exactly as requested.
    pub fn new(capacity: usize) -> Self {
        BufferPool {
            capacity,
            frames: Vec::new(),
            page_table: Vec::new(),
            hand: 0,
            free: Vec::new(),
            hot: Arc::new(HotTable::new()),
            retired: Vec::new(),
            scratch: None,
            stats: IoStats::default(),
        }
    }

    /// The lock-free frame directory, shared with the owning shard so its
    /// optimistic read path can resolve hits without the lock.
    pub(crate) fn hot_table(&self) -> Arc<HotTable> {
        Arc::clone(&self.hot)
    }

    /// Current capacity in pages.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pages currently cached.
    #[inline]
    pub fn cached_pages(&self) -> usize {
        self.frames.len() - self.free.len()
    }

    /// Number of frame allocations held (cached + free); never exceeds
    /// [`BufferPool::capacity`].
    #[inline]
    pub fn allocated_frames(&self) -> usize {
        self.frames.len()
    }

    /// Accumulated I/O statistics.
    #[inline]
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets the statistics (cache content is kept).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    fn ensure_page_table(&mut self, id: PageId) {
        if id.index() >= self.page_table.len() {
            self.page_table.resize(id.index() + 1, NO_FRAME);
        }
    }

    /// Returns the frame slot caching `id`, if any.
    fn lookup(&self, id: PageId) -> Option<usize> {
        let slot = *self.page_table.get(id.index())?;
        (slot != NO_FRAME).then_some(slot as usize)
    }

    /// Takes the staging buffer (allocating it on first use).
    fn take_scratch(&mut self, disk: &DiskManager) -> Box<[u8]> {
        self.scratch
            .take()
            .unwrap_or_else(|| vec![0u8; disk.page_size()].into_boxed_slice())
    }

    /// Clock second-chance sweep: advances the hand, clearing reference bits,
    /// until it finds an attached frame whose bit is already clear. Bounded:
    /// after two full passes every bit has been cleared at least once, so a
    /// third pass takes the first attached frame unconditionally (optimistic
    /// hits can keep re-setting bits concurrently, but cannot stall us).
    fn pick_victim(&mut self) -> usize {
        let n = self.frames.len();
        debug_assert!(n > 0, "eviction from an empty pool");
        if self.hand >= n {
            self.hand = 0;
        }
        let mut steps = 0usize;
        loop {
            steps += 1;
            assert!(steps <= 4 * n, "buffer pool full but no evictable frame");
            let slot = self.hand;
            self.hand = (self.hand + 1) % n;
            let frame = &self.frames[slot];
            if frame.page() == NO_PAGE {
                continue; // detached (free-listed) frame: not a candidate
            }
            if steps > 2 * n || !frame.cell.take_referenced() {
                return slot;
            }
        }
    }

    /// Picks a frame for a new page: pop the free list, grow below capacity,
    /// else evict the clock victim (writing it back if dirty).
    fn acquire_slot(&mut self, disk: &mut DiskManager) -> usize {
        if let Some(slot) = self.free.pop() {
            return slot as usize;
        }
        if self.frames.len() < self.capacity {
            let slot = self.frames.len();
            self.frames.push(Frame {
                cell: Arc::new(FrameCell::new(disk.page_size())),
                dirty: false,
            });
            return slot;
        }
        let victim = self.pick_victim();
        self.evict_slot(victim, disk);
        victim
    }

    /// Detaches `slot` from its page: write-back if dirty, clear the page
    /// table and hot directory, and mark the cell page-less (under its
    /// seqlock, so a racing optimistic reader rejects its copy).
    fn evict_slot(&mut self, slot: usize, disk: &mut DiskManager) {
        if self.frames[slot].dirty {
            let frame = &self.frames[slot];
            // SAFETY: we have `&mut self`, so no writer can race the view.
            disk.write_page(PageId(frame.page()), unsafe { frame.cell.locked_bytes() });
            self.stats.writes += 1;
            self.frames[slot].dirty = false;
        }
        let old = self.frames[slot].page();
        if old != NO_PAGE {
            self.page_table[old as usize] = NO_FRAME;
            self.hot.clear(old as usize);
            let cell = &self.frames[slot].cell;
            cell.mutate(|| cell.set_page(NO_PAGE));
        }
    }

    /// Reads page `id` through the pool and passes its bytes to `f`.
    ///
    /// Counts a hit if cached, otherwise a fault plus a physical read.
    pub fn with_page<R>(
        &mut self,
        disk: &mut DiskManager,
        id: PageId,
        f: impl FnOnce(&[u8]) -> R,
    ) -> R {
        self.ensure_page_table(id);
        if let Some(slot) = self.lookup(id) {
            self.stats.hits += 1;
            let frame = &self.frames[slot];
            frame.cell.mark_referenced();
            // SAFETY: `&mut self` excludes writers for the borrow's lifetime.
            return f(unsafe { frame.cell.locked_bytes() });
        }
        self.stats.faults += 1;
        if self.capacity == 0 {
            // Read-through: serve the fault from the scratch buffer without
            // caching anything.
            let mut scratch = self.take_scratch(disk);
            disk.read_page(id, &mut scratch);
            let result = f(&scratch);
            self.scratch = Some(scratch);
            return result;
        }
        let slot = self.acquire_slot(disk);
        // Physical read into staging, then publish into the cell under its
        // seqlock so concurrent optimistic readers never observe torn bytes.
        let mut scratch = self.take_scratch(disk);
        disk.read_page(id, &mut scratch);
        {
            let cell = &self.frames[slot].cell;
            cell.mutate(|| {
                cell.set_page(id.0);
                cell.fill_from(&scratch);
            });
            cell.mark_referenced();
        }
        self.scratch = Some(scratch);
        self.frames[slot].dirty = false;
        self.page_table[id.index()] = slot as u32;
        self.hot
            .set(id.index(), Arc::as_ptr(&self.frames[slot].cell));
        let frame = &self.frames[slot];
        // SAFETY: as above.
        f(unsafe { frame.cell.locked_bytes() })
    }

    /// Writes a full page through the pool (write-allocate, no read needed
    /// because the whole page is replaced). The page is marked dirty and hits
    /// the disk on eviction or [`BufferPool::flush_all`].
    pub fn write_page(&mut self, disk: &mut DiskManager, id: PageId, data: &[u8]) {
        assert_eq!(data.len(), disk.page_size(), "buffer/page size mismatch");
        self.ensure_page_table(id);
        if self.capacity == 0 {
            // Write-through: no frame to hold the dirty page.
            disk.write_page(id, data);
            self.stats.writes += 1;
            return;
        }
        let (slot, newly_mapped) = match self.lookup(id) {
            Some(slot) => (slot, false),
            None => {
                let slot = self.acquire_slot(disk);
                self.page_table[id.index()] = slot as u32;
                (slot, true)
            }
        };
        {
            let cell = &self.frames[slot].cell;
            cell.mutate(|| {
                cell.set_page(id.0);
                cell.fill_from(data);
            });
            cell.mark_referenced();
        }
        self.frames[slot].dirty = true;
        if newly_mapped {
            self.hot
                .set(id.index(), Arc::as_ptr(&self.frames[slot].cell));
        }
    }

    /// Writes back every dirty frame.
    pub fn flush_all(&mut self, disk: &mut DiskManager) {
        for slot in 0..self.frames.len() {
            if self.frames[slot].page() != NO_PAGE && self.frames[slot].dirty {
                let frame = &self.frames[slot];
                // SAFETY: `&mut self` excludes writers; this is a pure read.
                disk.write_page(PageId(frame.page()), unsafe { frame.cell.locked_bytes() });
                self.stats.writes += 1;
                self.frames[slot].dirty = false;
            }
        }
    }

    /// Flushes and detaches all cached frames (cold restart between
    /// experiment runs, so each algorithm starts with an empty buffer as in
    /// the paper). Frame allocations are kept on the free list for reuse.
    ///
    /// The whole page table is wiped, so no entry can stay stale — not even
    /// for a frame that was detached at the time (e.g. by a panic unwound
    /// mid-acquisition).
    pub fn clear(&mut self, disk: &mut DiskManager) {
        self.flush_all(disk);
        self.page_table.fill(NO_FRAME);
        self.free.clear();
        for slot in 0..self.frames.len() {
            let old = self.frames[slot].page();
            if old != NO_PAGE {
                self.hot.clear(old as usize);
                let cell = &self.frames[slot].cell;
                cell.mutate(|| cell.set_page(NO_PAGE));
            }
            self.frames[slot].dirty = false;
            self.free.push(slot as u32);
        }
        self.hand = 0;
    }

    /// Changes the capacity; if shrinking, evicts clock victims immediately
    /// and compacts the surviving frames into the low slots so no live frame
    /// allocation outlives the new capacity. (Cells of dropped frames are
    /// parked, not freed — a concurrent optimistic reader may still hold a
    /// pointer to one.)
    pub fn set_capacity(&mut self, disk: &mut DiskManager, capacity: usize) {
        while self.cached_pages() > capacity {
            let victim = self.pick_victim();
            self.evict_slot(victim, disk);
            self.free.push(victim as u32);
        }
        if self.frames.len() > capacity {
            let old_frames = std::mem::take(&mut self.frames);
            self.free.clear();
            self.hand = 0;
            for frame in old_frames {
                if frame.page() != NO_PAGE {
                    let new_slot = self.frames.len() as u32;
                    self.page_table[frame.page() as usize] = new_slot;
                    self.frames.push(frame);
                } else {
                    self.retired.push(frame.cell);
                }
            }
        }
        self.capacity = capacity;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(
        pool_cap: usize,
        pages: usize,
        page_size: usize,
    ) -> (DiskManager, BufferPool, Vec<PageId>) {
        let mut disk = DiskManager::new(page_size);
        let ids: Vec<PageId> = (0..pages).map(|_| disk.alloc_page()).collect();
        for (i, &id) in ids.iter().enumerate() {
            let data = vec![i as u8; page_size];
            disk.write_page(id, &data);
        }
        disk.reset_counters();
        (disk, BufferPool::new(pool_cap), ids)
    }

    #[test]
    fn first_access_faults_second_hits() {
        let (mut disk, mut pool, ids) = setup(2, 2, 16);
        pool.with_page(&mut disk, ids[0], |d| assert_eq!(d[0], 0));
        pool.with_page(&mut disk, ids[0], |d| assert_eq!(d[0], 0));
        let s = pool.stats();
        assert_eq!(s.faults, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(disk.physical_reads(), 1);
    }

    #[test]
    fn eviction_follows_clock_second_chance() {
        let (mut disk, mut pool, ids) = setup(2, 3, 16);
        pool.with_page(&mut disk, ids[0], |_| ()); // slot 0, referenced
        pool.with_page(&mut disk, ids[1], |_| ()); // slot 1, referenced
        pool.with_page(&mut disk, ids[0], |_| ()); // hit
                                                   // Fault page 2: the hand sweeps slots 0 and 1 (both referenced,
                                                   // bits cleared), wraps, and takes slot 0 — second chance means the
                                                   // *first* swept frame loses once everyone has been referenced.
        pool.with_page(&mut disk, ids[2], |_| ());
        pool.with_page(&mut disk, ids[1], |_| ()); // page 1 survived -> hit
        pool.with_page(&mut disk, ids[0], |_| ()); // page 0 was evicted -> fault
        let s = pool.stats();
        assert_eq!(s.faults, 4, "pages 0,1,2 cold + page 0 re-read");
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn unreferenced_frame_is_taken_before_a_referenced_one() {
        let (mut disk, mut pool, ids) = setup(2, 4, 16);
        pool.with_page(&mut disk, ids[0], |_| ());
        pool.with_page(&mut disk, ids[1], |_| ());
        // Evicting for page 2 sweeps both bits clear and takes slot 0; the
        // fresh page 2 is referenced, page 1 is not.
        pool.with_page(&mut disk, ids[2], |_| ());
        // The next eviction finds page 1's bit already clear and takes it,
        // sparing the referenced page 2.
        pool.with_page(&mut disk, ids[3], |_| ());
        pool.reset_stats();
        pool.with_page(&mut disk, ids[2], |_| ());
        assert_eq!(pool.stats().hits, 1, "referenced page survived the sweep");
        pool.with_page(&mut disk, ids[1], |_| ());
        assert_eq!(pool.stats().faults, 1, "unreferenced page was the victim");
    }

    #[test]
    fn dirty_pages_written_back_on_eviction() {
        let (mut disk, mut pool, ids) = setup(1, 2, 8);
        pool.write_page(&mut disk, ids[0], &[9u8; 8]);
        assert_eq!(disk.physical_writes(), 0, "write-back is deferred");
        pool.with_page(&mut disk, ids[1], |_| ()); // evicts dirty page 0
        assert_eq!(disk.physical_writes(), 1);
        // Content must survive the round trip.
        pool.with_page(&mut disk, ids[0], |d| assert_eq!(d, &[9u8; 8]));
        assert_eq!(pool.stats().writes, 1);
    }

    #[test]
    fn flush_all_persists_without_eviction() {
        let (mut disk, mut pool, ids) = setup(4, 2, 8);
        pool.write_page(&mut disk, ids[0], &[7u8; 8]);
        pool.write_page(&mut disk, ids[1], &[8u8; 8]);
        pool.flush_all(&mut disk);
        assert_eq!(disk.physical_writes(), 2);
        // Flushing twice writes nothing new.
        pool.flush_all(&mut disk);
        assert_eq!(disk.physical_writes(), 2);
    }

    #[test]
    fn clear_cold_starts_the_cache() {
        let (mut disk, mut pool, ids) = setup(2, 2, 8);
        pool.with_page(&mut disk, ids[0], |_| ());
        pool.clear(&mut disk);
        pool.reset_stats();
        pool.with_page(&mut disk, ids[0], |_| ());
        assert_eq!(pool.stats().faults, 1, "cache was cold after clear");
    }

    #[test]
    fn shrinking_capacity_evicts() {
        let (mut disk, mut pool, ids) = setup(3, 3, 8);
        for &id in &ids {
            pool.with_page(&mut disk, id, |_| ());
        }
        assert_eq!(pool.cached_pages(), 3);
        pool.set_capacity(&mut disk, 1);
        assert!(pool.cached_pages() <= 1);
        // The survivor is the last frame the clock hand spared: with all
        // three referenced the sweep clears 0,1,2 then evicts 0 and 1.
        pool.reset_stats();
        pool.with_page(&mut disk, ids[2], |_| ());
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn working_set_larger_than_pool_thrashes() {
        let (mut disk, mut pool, ids) = setup(2, 5, 8);
        // Cyclic scan over 5 pages with a 2-page pool: every access faults.
        for _ in 0..3 {
            for &id in &ids {
                pool.with_page(&mut disk, id, |_| ());
            }
        }
        let s = pool.stats();
        assert_eq!(s.faults, 15);
        assert_eq!(s.hits, 0);
    }

    #[test]
    fn clear_reuses_frame_allocations_via_free_list() {
        let (mut disk, mut pool, ids) = setup(4, 4, 8);
        for &id in &ids {
            pool.with_page(&mut disk, id, |_| ());
        }
        assert_eq!(pool.cached_pages(), 4);
        assert_eq!(pool.allocated_frames(), 4);
        pool.clear(&mut disk);
        // Frames are detached but their allocations are retained.
        assert_eq!(pool.cached_pages(), 0);
        assert_eq!(pool.allocated_frames(), 4);
        // Re-reading pops the free list (no re-allocation, correct data).
        pool.reset_stats();
        pool.with_page(&mut disk, ids[2], |d| assert_eq!(d[0], 2));
        assert_eq!(pool.allocated_frames(), 4);
        assert_eq!(pool.cached_pages(), 1);
        assert_eq!(pool.stats().faults, 1, "cache is cold after clear");
    }

    #[test]
    fn shrinking_capacity_compacts_without_leaking_frames() {
        let (mut disk, mut pool, ids) = setup(8, 8, 8);
        for &id in &ids {
            pool.with_page(&mut disk, id, |_| ());
        }
        assert_eq!(pool.allocated_frames(), 8);
        pool.set_capacity(&mut disk, 3);
        assert_eq!(pool.capacity(), 3);
        assert!(
            pool.allocated_frames() <= 3,
            "shrink must drop spare frames"
        );
        assert_eq!(pool.cached_pages(), 3);
        // All eight were referenced once, so the sweep clears every bit and
        // then evicts slots 0..5 in hand order: pages 5,6,7 survive.
        pool.reset_stats();
        for &id in &ids[5..] {
            pool.with_page(&mut disk, id, |_| ());
        }
        assert_eq!(pool.stats().hits, 3);
        // The pool still works at the reduced size: a cold page faults in
        // and the working set stays within the new capacity.
        pool.with_page(&mut disk, ids[0], |_| ());
        assert_eq!(pool.stats().faults, 1);
        assert_eq!(pool.cached_pages(), 3);
        assert!(pool.allocated_frames() <= 3);
    }

    #[test]
    fn clear_after_shrink_has_no_stale_page_table_entries() {
        let (mut disk, mut pool, ids) = setup(4, 6, 8);
        for &id in &ids {
            pool.with_page(&mut disk, id, |_| ());
        }
        pool.set_capacity(&mut disk, 2);
        pool.clear(&mut disk);
        pool.reset_stats();
        // Every page must fault again; a stale table entry would fake a hit
        // (or worse, serve another page's bytes).
        for (i, &id) in ids.iter().enumerate() {
            pool.with_page(&mut disk, id, |d| assert_eq!(d[0], i as u8));
        }
        assert_eq!(pool.stats().faults as usize, ids.len());
        assert_eq!(pool.stats().hits, 0);
    }

    #[test]
    fn zero_capacity_pool_reads_through() {
        let (mut disk, mut pool, ids) = setup(0, 3, 8);
        assert_eq!(pool.capacity(), 0);
        for (i, &id) in ids.iter().enumerate() {
            pool.with_page(&mut disk, id, |d| assert_eq!(d[0], i as u8));
        }
        // Nothing is retained: every access faults, nothing is cached.
        pool.with_page(&mut disk, ids[0], |_| ());
        let s = pool.stats();
        assert_eq!(s.faults, 4);
        assert_eq!(s.hits, 0);
        assert_eq!(pool.cached_pages(), 0);
        // Writes go straight to disk and survive the round trip.
        pool.write_page(&mut disk, ids[1], &[9u8; 8]);
        assert_eq!(disk.physical_writes(), 1);
        pool.with_page(&mut disk, ids[1], |d| assert_eq!(d, &[9u8; 8]));
        pool.flush_all(&mut disk); // no dirty frames to flush
        assert_eq!(disk.physical_writes(), 1);
    }

    #[test]
    fn shrink_to_zero_then_grow_again() {
        let (mut disk, mut pool, ids) = setup(2, 2, 8);
        pool.write_page(&mut disk, ids[0], &[5u8; 8]);
        pool.set_capacity(&mut disk, 0);
        assert_eq!(disk.physical_writes(), 1, "dirty page written back");
        assert_eq!(pool.cached_pages(), 0);
        pool.with_page(&mut disk, ids[0], |d| assert_eq!(d, &[5u8; 8]));
        pool.set_capacity(&mut disk, 2);
        pool.reset_stats();
        pool.with_page(&mut disk, ids[0], |_| ());
        pool.with_page(&mut disk, ids[0], |_| ());
        assert_eq!(pool.stats().hits, 1, "caching resumes after regrow");
    }

    #[test]
    fn write_then_read_same_frame_no_fault() {
        let (mut disk, mut pool, ids) = setup(2, 1, 8);
        pool.write_page(&mut disk, ids[0], &[3u8; 8]);
        pool.with_page(&mut disk, ids[0], |d| assert_eq!(d, &[3u8; 8]));
        let s = pool.stats();
        assert_eq!(s.faults, 0, "write-allocate avoids the read fault");
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn hot_table_serves_resident_pages_and_rejects_the_rest() {
        let (mut disk, mut pool, ids) = setup(2, 3, 16);
        pool.with_page(&mut disk, ids[0], |_| ());
        pool.write_page(&mut disk, ids[1], &[42u8; 16]);
        let hot = pool.hot_table();
        let mut buf = vec![0u8; 16];
        assert!(hot.try_copy(ids[0].0, &mut buf));
        assert_eq!(buf, vec![0u8; 16]);
        assert!(hot.try_copy(ids[1].0, &mut buf));
        assert_eq!(buf, vec![42u8; 16]);
        // Uncached page: no directory entry.
        assert!(!hot.try_copy(ids[2].0, &mut buf));
        // Evicted page: the entry is cleared.
        pool.with_page(&mut disk, ids[2], |_| ());
        let evicted = ids
            .iter()
            .find(|id| pool.lookup(**id).is_none())
            .expect("capacity 2 with 3 pages must have evicted one");
        assert!(!hot.try_copy(evicted.0, &mut buf));
    }

    #[test]
    fn hot_read_rejects_mid_mutation_and_mismatched_pages() {
        let cell = FrameCell::new(16);
        let mut buf = vec![0u8; 16];
        // Detached cell: page identity can't match.
        assert!(!cell.try_read_into(0, &mut buf));
        cell.mutate(|| {
            cell.set_page(7);
            cell.fill_from(&[1u8; 16]);
        });
        assert!(cell.try_read_into(7, &mut buf));
        assert_eq!(buf, vec![1u8; 16]);
        assert!(!cell.try_read_into(8, &mut buf), "wrong page rejected");
        // Mid-mutation (odd version): the read must reject.
        cell.mutate(|| {
            assert!(!cell.try_read_into(7, &mut buf));
        });
    }

    #[test]
    fn non_word_page_sizes_roundtrip_through_cells() {
        for size in [1usize, 7, 9, 15, 17] {
            let cell = FrameCell::new(size);
            let bytes: Vec<u8> = (0..size as u8).collect();
            cell.mutate(|| {
                cell.set_page(3);
                cell.fill_from(&bytes);
            });
            let mut out = vec![0u8; size];
            assert!(cell.try_read_into(3, &mut out));
            assert_eq!(out, bytes, "page size {size}");
            // The locked view agrees byte for byte.
            assert_eq!(unsafe { cell.locked_bytes() }, &bytes[..]);
        }
    }

    #[test]
    fn retired_cells_survive_capacity_shrink() {
        let (mut disk, mut pool, ids) = setup(4, 4, 8);
        for &id in &ids {
            pool.with_page(&mut disk, id, |_| ());
        }
        let hot = pool.hot_table();
        pool.set_capacity(&mut disk, 1);
        assert_eq!(pool.allocated_frames(), 1);
        assert_eq!(pool.retired.len(), 3, "dropped frames park their cells");
        // Dropped pages are no longer resident: the directory rejects them
        // instead of serving stale bytes.
        let mut buf = vec![0u8; 8];
        let resident = (0..4).filter(|i| hot.try_copy(ids[*i].0, &mut buf)).count();
        assert_eq!(resident, 1);
    }
}
