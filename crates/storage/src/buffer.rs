//! LRU buffer pool with write-back of dirty pages.

use crate::disk::{DiskManager, PageId};
use crate::lru::LruList;
use crate::stats::IoStats;

const NO_FRAME: u32 = u32::MAX;

struct Frame {
    page: PageId,
    data: Box<[u8]>,
    dirty: bool,
}

/// A buffer pool caching up to `capacity` pages with LRU replacement.
///
/// The evaluation uses "an LRU buffer with size 1% of the tree size" (§5.1);
/// the R-tree configures that after bulk loading via
/// [`BufferPool::set_capacity`]. Every cache miss is a page fault charged at
/// 10 ms by [`IoStats`].
pub struct BufferPool {
    capacity: usize,
    frames: Vec<Frame>,
    /// Maps `PageId` index → frame slot (`NO_FRAME` when uncached). Page ids
    /// are dense, so a vector beats a hash map here.
    page_table: Vec<u32>,
    lru: LruList,
    /// Allocated frames currently holding no page (detached by
    /// [`BufferPool::clear`]); popped in O(1) before growing or evicting.
    free: Vec<u32>,
    /// Reusable read-through buffer for the zero-capacity mode.
    scratch: Option<Box<[u8]>>,
    stats: IoStats,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` pages.
    ///
    /// A capacity of `0` is a *read-through* pool: every read faults into a
    /// scratch buffer and nothing is retained. The sharded store uses this
    /// for shards whose stripe earned no frame under a tiny total budget,
    /// keeping the store-wide capacity exactly as requested.
    pub fn new(capacity: usize) -> Self {
        BufferPool {
            capacity,
            frames: Vec::new(),
            page_table: Vec::new(),
            lru: LruList::new(capacity),
            free: Vec::new(),
            scratch: None,
            stats: IoStats::default(),
        }
    }

    /// Current capacity in pages.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pages currently cached.
    #[inline]
    pub fn cached_pages(&self) -> usize {
        self.frames.len() - self.free.len()
    }

    /// Number of frame allocations held (cached + free); never exceeds
    /// [`BufferPool::capacity`].
    #[inline]
    pub fn allocated_frames(&self) -> usize {
        self.frames.len()
    }

    /// Accumulated I/O statistics.
    #[inline]
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets the statistics (cache content is kept).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    fn ensure_page_table(&mut self, id: PageId) {
        if id.index() >= self.page_table.len() {
            self.page_table.resize(id.index() + 1, NO_FRAME);
        }
    }

    /// Returns the frame slot caching `id`, if any.
    fn lookup(&self, id: PageId) -> Option<usize> {
        let slot = *self.page_table.get(id.index())?;
        (slot != NO_FRAME).then_some(slot as usize)
    }

    /// Picks a frame for a new page: pop the free list, grow below capacity,
    /// else evict the LRU victim (writing it back if dirty).
    fn acquire_slot(&mut self, disk: &mut DiskManager) -> usize {
        if let Some(slot) = self.free.pop() {
            return slot as usize;
        }
        if self.frames.len() < self.capacity {
            let slot = self.frames.len();
            self.frames.push(Frame {
                page: PageId(u32::MAX),
                data: vec![0u8; disk.page_size()].into_boxed_slice(),
                dirty: false,
            });
            self.lru.grow_to(self.frames.len());
            return slot;
        }
        let victim = self
            .lru
            .pop_lru()
            .expect("buffer pool full but LRU empty: pin leak");
        self.evict_slot(victim, disk);
        victim
    }

    fn evict_slot(&mut self, slot: usize, disk: &mut DiskManager) {
        let frame = &mut self.frames[slot];
        if frame.dirty {
            disk.write_page(frame.page, &frame.data);
            self.stats.writes += 1;
            frame.dirty = false;
        }
        let old = frame.page;
        if old.0 != u32::MAX {
            self.page_table[old.index()] = NO_FRAME;
        }
    }

    /// Reads page `id` through the pool and passes its bytes to `f`.
    ///
    /// Counts a hit if cached, otherwise a fault plus a physical read.
    pub fn with_page<R>(
        &mut self,
        disk: &mut DiskManager,
        id: PageId,
        f: impl FnOnce(&[u8]) -> R,
    ) -> R {
        self.ensure_page_table(id);
        if let Some(slot) = self.lookup(id) {
            self.stats.hits += 1;
            self.lru.touch(slot);
            return f(&self.frames[slot].data);
        }
        self.stats.faults += 1;
        if self.capacity == 0 {
            // Read-through: serve the fault from the scratch buffer without
            // caching anything.
            let mut scratch = self
                .scratch
                .take()
                .unwrap_or_else(|| vec![0u8; disk.page_size()].into_boxed_slice());
            disk.read_page(id, &mut scratch);
            let result = f(&scratch);
            self.scratch = Some(scratch);
            return result;
        }
        let slot = self.acquire_slot(disk);
        // Physical read into the frame. The frame buffer has the right size
        // by construction.
        disk.read_page(id, &mut self.frames[slot].data);
        self.frames[slot].page = id;
        self.frames[slot].dirty = false;
        self.page_table[id.index()] = slot as u32;
        self.lru.touch(slot);
        f(&self.frames[slot].data)
    }

    /// Writes a full page through the pool (write-allocate, no read needed
    /// because the whole page is replaced). The page is marked dirty and hits
    /// the disk on eviction or [`BufferPool::flush_all`].
    pub fn write_page(&mut self, disk: &mut DiskManager, id: PageId, data: &[u8]) {
        assert_eq!(data.len(), disk.page_size(), "buffer/page size mismatch");
        self.ensure_page_table(id);
        if self.capacity == 0 {
            // Write-through: no frame to hold the dirty page.
            disk.write_page(id, data);
            self.stats.writes += 1;
            return;
        }
        let slot = match self.lookup(id) {
            Some(slot) => slot,
            None => {
                let slot = self.acquire_slot(disk);
                self.frames[slot].page = id;
                self.page_table[id.index()] = slot as u32;
                slot
            }
        };
        self.frames[slot].data.copy_from_slice(data);
        self.frames[slot].dirty = true;
        self.lru.touch(slot);
    }

    /// Writes back every dirty frame.
    pub fn flush_all(&mut self, disk: &mut DiskManager) {
        for slot in 0..self.frames.len() {
            if self.lru.contains(slot) && self.frames[slot].dirty {
                disk.write_page(self.frames[slot].page, &self.frames[slot].data);
                self.stats.writes += 1;
                self.frames[slot].dirty = false;
            }
        }
    }

    /// Flushes and detaches all cached frames (cold restart between
    /// experiment runs, so each algorithm starts with an empty buffer as in
    /// the paper). Frame allocations are kept on the free list for reuse.
    ///
    /// The whole page table is wiped, so no entry can stay stale — not even
    /// for a frame that was detached from the LRU at the time (e.g. by a
    /// panic unwound mid-acquisition).
    pub fn clear(&mut self, disk: &mut DiskManager) {
        self.flush_all(disk);
        self.page_table.fill(NO_FRAME);
        self.lru = LruList::new(self.frames.len().max(self.capacity));
        self.free.clear();
        for (slot, frame) in self.frames.iter_mut().enumerate() {
            frame.page = PageId(u32::MAX);
            frame.dirty = false;
            self.free.push(slot as u32);
        }
    }

    /// Changes the capacity; if shrinking, evicts LRU victims immediately
    /// and compacts the surviving frames into the low slots so no frame
    /// allocation outlives the new capacity.
    pub fn set_capacity(&mut self, disk: &mut DiskManager, capacity: usize) {
        while self.lru.len() > capacity {
            let victim = self.lru.pop_lru().expect("len > 0");
            self.evict_slot(victim, disk);
        }
        if self.frames.len() > capacity {
            // Compact: keep the attached frames (≤ capacity of them), in
            // recency order, and drop every other allocation.
            let order_mru_first: Vec<usize> = self.lru.iter_mru_to_lru().collect();
            let mut old: Vec<Option<Frame>> = std::mem::take(&mut self.frames)
                .into_iter()
                .map(Some)
                .collect();
            self.lru = LruList::new(capacity);
            self.free.clear();
            // Re-touch LRU→MRU so the head ends up at the true MRU.
            for &slot in order_mru_first.iter().rev() {
                let frame = old[slot].take().expect("attached slot exists");
                let new_slot = self.frames.len();
                self.page_table[frame.page.index()] = new_slot as u32;
                self.frames.push(frame);
                self.lru.touch(new_slot);
            }
        }
        self.capacity = capacity;
        self.lru.grow_to(self.frames.len().max(capacity));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(
        pool_cap: usize,
        pages: usize,
        page_size: usize,
    ) -> (DiskManager, BufferPool, Vec<PageId>) {
        let mut disk = DiskManager::new(page_size);
        let ids: Vec<PageId> = (0..pages).map(|_| disk.alloc_page()).collect();
        for (i, &id) in ids.iter().enumerate() {
            let data = vec![i as u8; page_size];
            disk.write_page(id, &data);
        }
        disk.reset_counters();
        (disk, BufferPool::new(pool_cap), ids)
    }

    #[test]
    fn first_access_faults_second_hits() {
        let (mut disk, mut pool, ids) = setup(2, 2, 16);
        pool.with_page(&mut disk, ids[0], |d| assert_eq!(d[0], 0));
        pool.with_page(&mut disk, ids[0], |d| assert_eq!(d[0], 0));
        let s = pool.stats();
        assert_eq!(s.faults, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(disk.physical_reads(), 1);
    }

    #[test]
    fn eviction_follows_lru_order() {
        let (mut disk, mut pool, ids) = setup(2, 3, 16);
        pool.with_page(&mut disk, ids[0], |_| ());
        pool.with_page(&mut disk, ids[1], |_| ());
        // Touch page 0 so page 1 becomes the LRU victim.
        pool.with_page(&mut disk, ids[0], |_| ());
        pool.with_page(&mut disk, ids[2], |_| ()); // evicts 1
        pool.with_page(&mut disk, ids[0], |_| ()); // still cached -> hit
        pool.with_page(&mut disk, ids[1], |_| ()); // fault again
        let s = pool.stats();
        assert_eq!(s.faults, 4, "pages 0,1,2 cold + page 1 re-read");
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn dirty_pages_written_back_on_eviction() {
        let (mut disk, mut pool, ids) = setup(1, 2, 8);
        pool.write_page(&mut disk, ids[0], &[9u8; 8]);
        assert_eq!(disk.physical_writes(), 0, "write-back is deferred");
        pool.with_page(&mut disk, ids[1], |_| ()); // evicts dirty page 0
        assert_eq!(disk.physical_writes(), 1);
        // Content must survive the round trip.
        pool.with_page(&mut disk, ids[0], |d| assert_eq!(d, &[9u8; 8]));
        assert_eq!(pool.stats().writes, 1);
    }

    #[test]
    fn flush_all_persists_without_eviction() {
        let (mut disk, mut pool, ids) = setup(4, 2, 8);
        pool.write_page(&mut disk, ids[0], &[7u8; 8]);
        pool.write_page(&mut disk, ids[1], &[8u8; 8]);
        pool.flush_all(&mut disk);
        assert_eq!(disk.physical_writes(), 2);
        // Flushing twice writes nothing new.
        pool.flush_all(&mut disk);
        assert_eq!(disk.physical_writes(), 2);
    }

    #[test]
    fn clear_cold_starts_the_cache() {
        let (mut disk, mut pool, ids) = setup(2, 2, 8);
        pool.with_page(&mut disk, ids[0], |_| ());
        pool.clear(&mut disk);
        pool.reset_stats();
        pool.with_page(&mut disk, ids[0], |_| ());
        assert_eq!(pool.stats().faults, 1, "cache was cold after clear");
    }

    #[test]
    fn shrinking_capacity_evicts() {
        let (mut disk, mut pool, ids) = setup(3, 3, 8);
        for &id in &ids {
            pool.with_page(&mut disk, id, |_| ());
        }
        assert_eq!(pool.cached_pages(), 3);
        pool.set_capacity(&mut disk, 1);
        assert!(pool.cached_pages() <= 1);
        // The survivor is the most recently used page (ids[2]).
        pool.reset_stats();
        pool.with_page(&mut disk, ids[2], |_| ());
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn working_set_larger_than_pool_thrashes() {
        let (mut disk, mut pool, ids) = setup(2, 5, 8);
        // Cyclic scan over 5 pages with a 2-page pool: every access faults.
        for _ in 0..3 {
            for &id in &ids {
                pool.with_page(&mut disk, id, |_| ());
            }
        }
        let s = pool.stats();
        assert_eq!(s.faults, 15);
        assert_eq!(s.hits, 0);
    }

    #[test]
    fn clear_reuses_frame_allocations_via_free_list() {
        let (mut disk, mut pool, ids) = setup(4, 4, 8);
        for &id in &ids {
            pool.with_page(&mut disk, id, |_| ());
        }
        assert_eq!(pool.cached_pages(), 4);
        assert_eq!(pool.allocated_frames(), 4);
        pool.clear(&mut disk);
        // Frames are detached but their allocations are retained.
        assert_eq!(pool.cached_pages(), 0);
        assert_eq!(pool.allocated_frames(), 4);
        // Re-reading pops the free list (no re-allocation, correct data).
        pool.reset_stats();
        pool.with_page(&mut disk, ids[2], |d| assert_eq!(d[0], 2));
        assert_eq!(pool.allocated_frames(), 4);
        assert_eq!(pool.cached_pages(), 1);
        assert_eq!(pool.stats().faults, 1, "cache is cold after clear");
    }

    #[test]
    fn shrinking_capacity_compacts_without_leaking_frames() {
        let (mut disk, mut pool, ids) = setup(8, 8, 8);
        for &id in &ids {
            pool.with_page(&mut disk, id, |_| ());
        }
        assert_eq!(pool.allocated_frames(), 8);
        pool.set_capacity(&mut disk, 3);
        assert_eq!(pool.capacity(), 3);
        assert!(
            pool.allocated_frames() <= 3,
            "shrink must drop spare frames"
        );
        assert_eq!(pool.cached_pages(), 3);
        // Recency is preserved across compaction: survivors are the three
        // most recently used pages, in order.
        pool.reset_stats();
        for &id in &ids[5..] {
            pool.with_page(&mut disk, id, |_| ());
        }
        assert_eq!(pool.stats().hits, 3);
        // Touch a cold page: the victim must be the oldest survivor (ids[5]).
        pool.with_page(&mut disk, ids[0], |_| ());
        pool.with_page(&mut disk, ids[7], |_| ());
        pool.with_page(&mut disk, ids[6], |_| ());
        assert_eq!(pool.stats().hits, 5);
        assert_eq!(pool.stats().faults, 1);
    }

    #[test]
    fn clear_after_shrink_has_no_stale_page_table_entries() {
        let (mut disk, mut pool, ids) = setup(4, 6, 8);
        for &id in &ids {
            pool.with_page(&mut disk, id, |_| ());
        }
        pool.set_capacity(&mut disk, 2);
        pool.clear(&mut disk);
        pool.reset_stats();
        // Every page must fault again; a stale table entry would fake a hit
        // (or worse, serve another page's bytes).
        for (i, &id) in ids.iter().enumerate() {
            pool.with_page(&mut disk, id, |d| assert_eq!(d[0], i as u8));
        }
        assert_eq!(pool.stats().faults as usize, ids.len());
        assert_eq!(pool.stats().hits, 0);
    }

    #[test]
    fn zero_capacity_pool_reads_through() {
        let (mut disk, mut pool, ids) = setup(0, 3, 8);
        assert_eq!(pool.capacity(), 0);
        for (i, &id) in ids.iter().enumerate() {
            pool.with_page(&mut disk, id, |d| assert_eq!(d[0], i as u8));
        }
        // Nothing is retained: every access faults, nothing is cached.
        pool.with_page(&mut disk, ids[0], |_| ());
        let s = pool.stats();
        assert_eq!(s.faults, 4);
        assert_eq!(s.hits, 0);
        assert_eq!(pool.cached_pages(), 0);
        // Writes go straight to disk and survive the round trip.
        pool.write_page(&mut disk, ids[1], &[9u8; 8]);
        assert_eq!(disk.physical_writes(), 1);
        pool.with_page(&mut disk, ids[1], |d| assert_eq!(d, &[9u8; 8]));
        pool.flush_all(&mut disk); // no dirty frames to flush
        assert_eq!(disk.physical_writes(), 1);
    }

    #[test]
    fn shrink_to_zero_then_grow_again() {
        let (mut disk, mut pool, ids) = setup(2, 2, 8);
        pool.write_page(&mut disk, ids[0], &[5u8; 8]);
        pool.set_capacity(&mut disk, 0);
        assert_eq!(disk.physical_writes(), 1, "dirty page written back");
        assert_eq!(pool.cached_pages(), 0);
        pool.with_page(&mut disk, ids[0], |d| assert_eq!(d, &[5u8; 8]));
        pool.set_capacity(&mut disk, 2);
        pool.reset_stats();
        pool.with_page(&mut disk, ids[0], |_| ());
        pool.with_page(&mut disk, ids[0], |_| ());
        assert_eq!(pool.stats().hits, 1, "caching resumes after regrow");
    }

    #[test]
    fn write_then_read_same_frame_no_fault() {
        let (mut disk, mut pool, ids) = setup(2, 1, 8);
        pool.write_page(&mut disk, ids[0], &[3u8; 8]);
        pool.with_page(&mut disk, ids[0], |d| assert_eq!(d, &[3u8; 8]));
        let s = pool.stats();
        assert_eq!(s.faults, 0, "write-allocate avoids the read fault");
        assert_eq!(s.hits, 1);
    }
}
