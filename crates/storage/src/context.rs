//! [`QueryContext`] — the per-query control block threaded through every
//! storage access: I/O attribution ([`IoSession`]), a scheduling
//! [`Priority`], an optional deadline, an optional I/O (fault) budget and a
//! cooperative cancellation flag.
//!
//! The context generalises the plain attribution session of the batch
//! runner: the [`crate::PageStore`] charges every page access to it, and the
//! charge itself trips the budget check — a query whose fault count reaches
//! its budget is marked aborted *at page-fault time*, before the traversal
//! can issue another access. Higher layers (the R-tree cursors, the solver
//! drivers, the `cca-serve` scheduler) poll [`QueryContext::abort_reason`]
//! at their loop heads and unwind with partial results instead of burning
//! unbounded I/O on adversarial inputs.
//!
//! All state is behind `Arc`s, so a context can be cloned into a ticket
//! held by the submitting thread while the worker runs the query: calling
//! [`QueryContext::cancel`] on either clone stops the other.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::stats::{IoSession, IoStats};
use crate::IO_COST_PER_FAULT_MS;

/// Scheduling priority of a query, lowest to highest.
///
/// The serving layer maps each level to its own FIFO queue and ages waiting
/// queries upward, so [`Priority::Low`] work is deferred under load but
/// never starved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Background work: bulk re-optimisation, prefetching, analytics.
    Low,
    /// The default for interactive queries.
    #[default]
    Normal,
    /// Latency-sensitive queries that should overtake the normal tier.
    High,
    /// Operator traffic that must run as soon as a worker frees up.
    Critical,
}

impl Priority {
    /// All levels, lowest first.
    pub const ALL: [Priority; 4] = [
        Priority::Low,
        Priority::Normal,
        Priority::High,
        Priority::Critical,
    ];

    /// Queue index of the level (0 = lowest).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The next level up (saturating at [`Priority::Critical`]).
    #[inline]
    pub fn promote(self) -> Priority {
        match self {
            Priority::Low => Priority::Normal,
            Priority::Normal => Priority::High,
            Priority::High => Priority::Critical,
            Priority::Critical => Priority::Critical,
        }
    }
}

/// Identifies the querying party a request runs on behalf of.
///
/// A tenant is the unit of *fairness and quota enforcement* in the serving
/// layer: the two-level scheduler picks the tenant first (weighted
/// deficit-round-robin) and only then applies priority+aging among that
/// tenant's own queries, and per-tenant admission quotas bound how much of
/// the shared queue and worker pool one party can occupy. Every
/// [`QueryContext`] carries a tenant id (defaulting to
/// [`TenantId::DEFAULT`]), so attribution — I/O counters, abort reasons,
/// latency — can be aggregated per party all the way down the stack.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The tenant unlabelled queries run under (id 0).
    pub const DEFAULT: TenantId = TenantId(0);

    /// A tenant with the given id.
    #[inline]
    pub fn new(id: u32) -> Self {
        TenantId(id)
    }

    /// The raw id.
    #[inline]
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant {}", self.0)
    }
}

/// Why a query was aborted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// [`QueryContext::cancel`] was called (by a ticket holder or the
    /// serving layer).
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The fault count reached the configured I/O budget.
    IoBudgetExceeded,
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbortReason::Cancelled => write!(f, "cancelled"),
            AbortReason::DeadlineExceeded => write!(f, "deadline exceeded"),
            AbortReason::IoBudgetExceeded => write!(f, "I/O budget exceeded"),
        }
    }
}

/// Typed abort error returned by the R-tree's context-aware traversals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Aborted {
    pub reason: AbortReason,
}

impl std::fmt::Display for Aborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query aborted: {}", self.reason)
    }
}

impl std::error::Error for Aborted {}

/// Sticky abort marker values (0 = not aborted). Stored in an `AtomicU8` so
/// the *first* recorded reason wins and later polls agree with it.
const ABORT_NONE: u8 = 0;

fn encode_reason(reason: AbortReason) -> u8 {
    match reason {
        AbortReason::Cancelled => 1,
        AbortReason::DeadlineExceeded => 2,
        AbortReason::IoBudgetExceeded => 3,
    }
}

fn decode_reason(v: u8) -> Option<AbortReason> {
    match v {
        1 => Some(AbortReason::Cancelled),
        2 => Some(AbortReason::DeadlineExceeded),
        3 => Some(AbortReason::IoBudgetExceeded),
        _ => None,
    }
}

#[derive(Debug, Default)]
struct Control {
    cancelled: AtomicBool,
    /// First abort reason observed; sticky once set.
    abort: AtomicU8,
}

/// Per-query control block: attribution counters plus priority, deadline,
/// I/O budget and cancellation.
///
/// Cheap to clone — clones share the same counters and flags. Built
/// builder-style before the query starts:
///
/// ```
/// use cca_storage::{Priority, QueryContext};
/// use std::time::Duration;
///
/// let ctx = QueryContext::new()
///     .with_priority(Priority::High)
///     .with_io_budget(1_000)
///     .with_timeout(Duration::from_millis(250));
/// assert_eq!(ctx.priority(), Priority::High);
/// assert_eq!(ctx.abort_reason(), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct QueryContext {
    session: IoSession,
    control: Arc<Control>,
    priority: Priority,
    tenant: TenantId,
    deadline: Option<Instant>,
    io_budget: Option<u64>,
}

impl QueryContext {
    /// A fresh context: normal priority, no deadline, no budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing attribution session (sharing its counters) in a
    /// context with no limits — the bridge from PR 3's session-based code.
    pub fn from_session(session: IoSession) -> Self {
        QueryContext {
            session,
            ..Self::default()
        }
    }

    /// Sets the scheduling priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Labels the query with the tenant it runs on behalf of. The serving
    /// layer schedules and meters per tenant; unlabelled queries run under
    /// [`TenantId::DEFAULT`].
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Sets an absolute wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline `timeout` from now.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Caps the query at `faults` page faults. The budget trips exactly at
    /// the fault that reaches it: the store records the abort while charging
    /// that fault, and context-aware traversals stop before the next access,
    /// so the partial stats report `io.faults == budget`.
    ///
    /// # Panics
    /// Panics on a zero budget — the abort poll runs before each page
    /// access (it cannot know whether the access would hit or fault), so a
    /// zero-fault budget would abort even queries whose whole working set
    /// is cached. Use [`QueryContext::cancel`] to refuse a query outright.
    pub fn with_io_budget(mut self, faults: u64) -> Self {
        assert!(faults >= 1, "I/O budget must allow at least one fault");
        self.io_budget = Some(faults);
        self
    }

    /// Caps the query's *charged I/O cost* (the paper's 10 ms/fault model)
    /// at `ms` milliseconds — sugar for the equivalent fault budget. A cost
    /// budget below one fault's charge (10 ms) rounds up to a one-fault
    /// budget (the tightest enforceable bound: faults are indivisible, and
    /// the pre-access poll cannot predict whether an access will fault).
    pub fn with_cost_budget_ms(self, ms: f64) -> Self {
        assert!(ms >= 0.0, "cost budget must be non-negative");
        self.with_io_budget(((ms / IO_COST_PER_FAULT_MS).floor() as u64).max(1))
    }

    /// The attribution counters this context charges.
    #[inline]
    pub fn session(&self) -> &IoSession {
        &self.session
    }

    /// Traffic charged to this context so far.
    #[inline]
    pub fn stats(&self) -> IoStats {
        self.session.stats()
    }

    /// Scheduling priority.
    #[inline]
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The tenant this query runs on behalf of.
    #[inline]
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The absolute deadline, if any.
    #[inline]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The fault budget, if any.
    #[inline]
    pub fn io_budget(&self) -> Option<u64> {
        self.io_budget
    }

    /// Requests cooperative cancellation: the next abort poll (at the next
    /// page access or loop head) returns [`AbortReason::Cancelled`].
    pub fn cancel(&self) {
        self.control.cancelled.store(true, Ordering::Release);
    }

    /// True once [`QueryContext::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.control.cancelled.load(Ordering::Acquire)
    }

    /// Charges `delta` to the context's counters; called by the store's
    /// shards under the shard lock. A fault that reaches the I/O budget
    /// records [`AbortReason::IoBudgetExceeded`] right here — the budget
    /// check is charged at page-fault time.
    pub fn charge(&self, delta: IoStats) {
        self.session.charge(delta);
        if delta.faults != 0 {
            if let Some(budget) = self.io_budget {
                if self.session.stats().faults >= budget {
                    self.record_abort(AbortReason::IoBudgetExceeded);
                }
            }
        }
    }

    /// Polls the abort state: the sticky recorded reason if one exists,
    /// otherwise cancellation, budget and deadline are checked (in that
    /// order) and the first hit is recorded so every later poll agrees.
    ///
    /// `None` means the query may continue.
    pub fn abort_reason(&self) -> Option<AbortReason> {
        if let Some(reason) = decode_reason(self.control.abort.load(Ordering::Acquire)) {
            return Some(reason);
        }
        if self.is_cancelled() {
            return Some(self.record_abort(AbortReason::Cancelled));
        }
        if let Some(budget) = self.io_budget {
            if self.session.stats().faults >= budget {
                return Some(self.record_abort(AbortReason::IoBudgetExceeded));
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(self.record_abort(AbortReason::DeadlineExceeded));
            }
        }
        None
    }

    /// The abort reason *already recorded* by an earlier poll, without
    /// checking (or recording) anything new. Use this for after-the-fact
    /// accounting: a query that ran to completion without ever observing
    /// an abort stays clean here, even if its deadline has passed by the
    /// time the bookkeeper looks — [`QueryContext::abort_reason`] would
    /// record a fresh reason and disagree with the returned outcome.
    pub fn recorded_abort(&self) -> Option<AbortReason> {
        decode_reason(self.control.abort.load(Ordering::Acquire))
    }

    /// [`QueryContext::abort_reason`] as a `Result`, for `?`-style use in
    /// traversal code.
    pub fn check(&self) -> Result<(), Aborted> {
        match self.abort_reason() {
            Some(reason) => Err(Aborted { reason }),
            None => Ok(()),
        }
    }

    /// True when both handles share the same counters and flags.
    pub fn same_context(&self, other: &QueryContext) -> bool {
        Arc::ptr_eq(&self.control, &other.control)
    }

    /// Records `reason` if no reason is set yet; returns the reason that
    /// actually sticks (the first writer wins under concurrency).
    fn record_abort(&self, reason: AbortReason) -> AbortReason {
        match self.control.abort.compare_exchange(
            ABORT_NONE,
            encode_reason(reason),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => reason,
            Err(existing) => decode_reason(existing).unwrap_or(reason),
        }
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    //! Wire encodings for the scheduling/abort vocabulary: enums as their
    //! snake-case names (self-describing on the wire), [`TenantId`] as its
    //! bare integer.

    use super::{AbortReason, Priority, TenantId};
    use serde::{Deserialize, Error, Serialize, Value};

    impl Serialize for Priority {
        fn to_value(&self) -> Value {
            match self {
                Priority::Low => "low",
                Priority::Normal => "normal",
                Priority::High => "high",
                Priority::Critical => "critical",
            }
            .to_value()
        }
    }

    impl Deserialize for Priority {
        fn from_value(v: &Value) -> Result<Self, Error> {
            match String::from_value(v)?.as_str() {
                "low" => Ok(Priority::Low),
                "normal" => Ok(Priority::Normal),
                "high" => Ok(Priority::High),
                "critical" => Ok(Priority::Critical),
                other => Err(Error(format!("unknown priority `{other}`"))),
            }
        }
    }

    impl Serialize for AbortReason {
        fn to_value(&self) -> Value {
            match self {
                AbortReason::Cancelled => "cancelled",
                AbortReason::DeadlineExceeded => "deadline_exceeded",
                AbortReason::IoBudgetExceeded => "io_budget_exceeded",
            }
            .to_value()
        }
    }

    impl Deserialize for AbortReason {
        fn from_value(v: &Value) -> Result<Self, Error> {
            match String::from_value(v)?.as_str() {
                "cancelled" => Ok(AbortReason::Cancelled),
                "deadline_exceeded" => Ok(AbortReason::DeadlineExceeded),
                "io_budget_exceeded" => Ok(AbortReason::IoBudgetExceeded),
                other => Err(Error(format!("unknown abort reason `{other}`"))),
            }
        }
    }

    impl Serialize for TenantId {
        fn to_value(&self) -> Value {
            self.0.to_value()
        }
    }

    impl Deserialize for TenantId {
        fn from_value(v: &Value) -> Result<Self, Error> {
            u32::from_value(v).map(TenantId)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn scheduling_vocabulary_json_roundtrip() {
            for p in Priority::ALL {
                let back: Priority = serde::json::from_str(&serde::json::to_string(&p)).unwrap();
                assert_eq!(back, p);
            }
            for r in [
                AbortReason::Cancelled,
                AbortReason::DeadlineExceeded,
                AbortReason::IoBudgetExceeded,
            ] {
                let back: AbortReason = serde::json::from_str(&serde::json::to_string(&r)).unwrap();
                assert_eq!(back, r);
            }
            for t in [TenantId::DEFAULT, TenantId(7), TenantId(u32::MAX)] {
                let back: TenantId = serde::json::from_str(&serde::json::to_string(&t)).unwrap();
                assert_eq!(back, t);
            }
            assert!(serde::json::from_str::<Priority>("\"urgent\"").is_err());
            assert!(serde::json::from_str::<AbortReason>("\"oom\"").is_err());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_context_is_clean() {
        let ctx = QueryContext::new();
        assert_eq!(ctx.priority(), Priority::Normal);
        assert_eq!(ctx.abort_reason(), None);
        assert!(ctx.check().is_ok());
        assert_eq!(ctx.stats(), IoStats::default());
        assert!(!ctx.is_cancelled());
    }

    #[test]
    fn cancellation_is_shared_and_sticky() {
        let ctx = QueryContext::new();
        let clone = ctx.clone();
        assert!(ctx.same_context(&clone));
        clone.cancel();
        assert_eq!(ctx.abort_reason(), Some(AbortReason::Cancelled));
        assert_eq!(
            clone.check(),
            Err(Aborted {
                reason: AbortReason::Cancelled
            })
        );
        assert!(!ctx.same_context(&QueryContext::new()));
    }

    #[test]
    fn budget_trips_exactly_at_charge_time() {
        let ctx = QueryContext::new().with_io_budget(3);
        ctx.charge(IoStats {
            hits: 5,
            faults: 2,
            writes: 0,
        });
        assert_eq!(ctx.abort_reason(), None, "2 of 3 faults used");
        // Hits alone never trip the budget.
        ctx.charge(IoStats {
            hits: 100,
            faults: 0,
            writes: 0,
        });
        assert_eq!(ctx.abort_reason(), None);
        ctx.charge(IoStats {
            hits: 0,
            faults: 1,
            writes: 0,
        });
        assert_eq!(ctx.abort_reason(), Some(AbortReason::IoBudgetExceeded));
        assert_eq!(ctx.stats().faults, 3);
    }

    #[test]
    fn first_abort_reason_wins() {
        let ctx = QueryContext::new().with_io_budget(1);
        ctx.charge(IoStats {
            hits: 0,
            faults: 1,
            writes: 0,
        });
        assert_eq!(ctx.abort_reason(), Some(AbortReason::IoBudgetExceeded));
        ctx.cancel();
        // The recorded reason is sticky even though cancellation also holds.
        assert_eq!(ctx.abort_reason(), Some(AbortReason::IoBudgetExceeded));
    }

    #[test]
    fn expired_deadline_aborts() {
        let ctx = QueryContext::new().with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(ctx.abort_reason(), Some(AbortReason::DeadlineExceeded));
        // A generous deadline does not.
        let ctx = QueryContext::new().with_timeout(Duration::from_secs(3600));
        assert_eq!(ctx.abort_reason(), None);
    }

    #[test]
    fn cost_budget_converts_to_faults() {
        let ctx = QueryContext::new().with_cost_budget_ms(50.0);
        assert_eq!(ctx.io_budget(), Some(5), "10 ms per fault");
        // Sub-fault cost budgets round up to the tightest enforceable
        // bound instead of a degenerate insta-abort budget of zero.
        let ctx = QueryContext::new().with_cost_budget_ms(9.0);
        assert_eq!(ctx.io_budget(), Some(1));
        assert_eq!(ctx.abort_reason(), None, "no I/O charged yet");
    }

    #[test]
    #[should_panic(expected = "at least one fault")]
    fn zero_fault_budget_is_rejected() {
        let _ = QueryContext::new().with_io_budget(0);
    }

    #[test]
    fn from_session_shares_counters() {
        let session = IoSession::new();
        let ctx = QueryContext::from_session(session.clone());
        ctx.charge(IoStats {
            hits: 1,
            faults: 2,
            writes: 0,
        });
        assert_eq!(session.stats().faults, 2);
        assert!(ctx.session().same_session(&session));
    }

    #[test]
    fn recorded_abort_peeks_without_recording() {
        let ctx = QueryContext::new().with_deadline(Instant::now() - Duration::from_millis(1));
        // Passive peek: nothing recorded yet, and the peek records nothing
        // even though the deadline has passed.
        assert_eq!(ctx.recorded_abort(), None);
        assert_eq!(ctx.recorded_abort(), None);
        // An active poll records; the peek then agrees.
        assert_eq!(ctx.abort_reason(), Some(AbortReason::DeadlineExceeded));
        assert_eq!(ctx.recorded_abort(), Some(AbortReason::DeadlineExceeded));
    }

    #[test]
    fn tenant_label_defaults_and_sticks() {
        let ctx = QueryContext::new();
        assert_eq!(ctx.tenant(), TenantId::DEFAULT);
        let ctx = ctx.with_tenant(TenantId::new(7));
        assert_eq!(ctx.tenant(), TenantId(7));
        assert_eq!(ctx.tenant().as_u32(), 7);
        // Clones keep the label (it travels with tickets).
        assert_eq!(ctx.clone().tenant(), TenantId(7));
        assert_eq!(format!("{}", ctx.tenant()), "tenant 7");
        assert!(TenantId(1) < TenantId(2));
    }

    #[test]
    fn priority_ladder() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::High < Priority::Critical);
        assert_eq!(Priority::Low.promote(), Priority::Normal);
        assert_eq!(Priority::Critical.promote(), Priority::Critical);
        for (i, p) in Priority::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }
}
