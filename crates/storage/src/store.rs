//! [`PageStore`]: the facade the R-tree talks to.
//!
//! A *sharded* buffer pool: page ids hash (stripe) to one of N shards, each
//! owning its own frames, LRU list, disk segment and lock, so concurrent
//! queries over a shared tree fault pages independently instead of
//! serialising on one global mutex. Counters are per-shard atomics
//! aggregated on read, and every access can additionally be charged to a
//! per-query [`IoSession`], which is what restores per-query I/O
//! attribution in parallel batches.
//!
//! With `shards = 1` the store behaves exactly like the previous
//! single-`Mutex` design (one global LRU) — the equivalence proptest in
//! `tests/shard_equivalence.rs` pins that down.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::disk::PageId;
use crate::shard::{Shard, ShardRouter};
use crate::stats::{IoSession, IoStats};
use crate::DEFAULT_PAGE_SIZE;

/// Sharded paged storage with per-shard LRU buffers, usable through shared
/// references from many threads.
pub struct PageStore {
    page_size: usize,
    router: ShardRouter,
    shards: Box<[Shard]>,
    /// Global dense page allocator; shards materialise their stripe lazily.
    next_page: AtomicU32,
}

/// Default shard count: the next power of two at or above the number of
/// available hardware threads, capped at 16. The cap bounds the one-page
/// per-shard capacity floor (see [`PageStore::set_buffer_capacity`]) so
/// that small paper-style buffers are not silently inflated on many-core
/// hosts, and 16 independent locks already decongest the batch runner's
/// worker counts.
pub fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .next_power_of_two()
        .min(16)
}

impl PageStore {
    /// Creates a store with the paper's default 1 KB pages and a provisional
    /// buffer capacity (callers re-size it to 1 % of the tree after loading).
    pub fn new() -> Self {
        Self::with_config(DEFAULT_PAGE_SIZE, 64)
    }

    /// Creates a store with explicit page size (bytes) and total buffer
    /// capacity (pages), sharded [`default_shards`] ways.
    pub fn with_config(page_size: usize, buffer_pages: usize) -> Self {
        Self::with_config_sharded(page_size, buffer_pages, default_shards())
    }

    /// Creates a store with an explicit shard count (rounded up to a power
    /// of two; `1` reproduces the old single-mutex, single-LRU behaviour).
    /// `buffer_pages` is the *total* capacity, split evenly across shards
    /// (each shard holds at least one page). A shard count exceeding
    /// `buffer_pages` is clamped down so the per-shard floor cannot
    /// inflate the requested capacity at construction time.
    pub fn with_config_sharded(page_size: usize, buffer_pages: usize, shards: usize) -> Self {
        let max_shards = prev_power_of_two(buffer_pages.max(1));
        let shards = shards.max(1).next_power_of_two().min(max_shards);
        let router = ShardRouter::new(shards);
        let shards: Box<[Shard]> = split_capacity(buffer_pages, router.shards())
            .into_iter()
            .map(|cap| Shard::new(page_size, cap))
            .collect();
        PageStore {
            page_size,
            router,
            shards,
            next_page: AtomicU32::new(0),
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of shards (a power of two).
    pub fn num_shards(&self) -> usize {
        self.router.shards()
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> usize {
        self.next_page.load(Ordering::Acquire) as usize
    }

    /// Allocates a fresh zeroed page.
    pub fn alloc_page(&self) -> PageId {
        let id = self.next_page.fetch_add(1, Ordering::AcqRel);
        assert!(id != u32::MAX, "page id overflow");
        PageId(id)
    }

    /// Panics on ids that were never handed out by [`PageStore::alloc_page`]
    /// — accessing them is a storage-layer bug, exactly as on the old
    /// unsharded disk.
    fn check_allocated(&self, id: PageId) {
        assert!(id.index() < self.num_pages(), "access to unallocated {id}");
    }

    /// Reads a page through its shard's buffer pool; `f` receives the page
    /// bytes. Traffic is charged to the shard counters only.
    ///
    /// The closure runs under the shard lock and must not re-enter the
    /// store (same-shard re-entry deadlocks; cross-shard re-entry risks
    /// lock-order inversion against concurrent callers).
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> R {
        self.with_page_session(id, None, f)
    }

    /// Like [`PageStore::with_page`], additionally charging the access to
    /// `session` — the per-query attribution path.
    pub fn with_page_session<R>(
        &self,
        id: PageId,
        session: Option<&IoSession>,
        f: impl FnOnce(&[u8]) -> R,
    ) -> R {
        self.check_allocated(id);
        let local = self.router.local_id(id);
        self.shards[self.router.shard_of(id)].with_inner(session, |inner| {
            inner.ensure_local_page(local);
            inner.pool.with_page(&mut inner.disk, local, f)
        })
    }

    /// Writes a full page through its shard's buffer pool (write-back).
    pub fn write_page(&self, id: PageId, data: &[u8]) {
        self.write_page_session(id, None, data)
    }

    /// Like [`PageStore::write_page`], charging eviction write-backs to
    /// `session`.
    pub fn write_page_session(&self, id: PageId, session: Option<&IoSession>, data: &[u8]) {
        self.check_allocated(id);
        let local = self.router.local_id(id);
        self.shards[self.router.shard_of(id)].with_inner(session, |inner| {
            inner.ensure_local_page(local);
            inner.pool.write_page(&mut inner.disk, local, data);
        });
    }

    /// Flushes dirty pages of every shard to the simulated disk.
    pub fn flush(&self) {
        for shard in self.shards.iter() {
            shard.with_inner(None, |inner| inner.pool.flush_all(&mut inner.disk));
        }
    }

    /// Buffer-pool statistics accumulated so far, aggregated across shards
    /// without taking any shard lock.
    pub fn io_stats(&self) -> IoStats {
        self.shards
            .iter()
            .fold(IoStats::default(), |acc, s| acc + s.stats())
    }

    /// Clears I/O statistics (e.g. after bulk load, before measuring
    /// queries).
    pub fn reset_stats(&self) {
        for shard in self.shards.iter() {
            shard.reset_stats();
        }
    }

    /// Re-sizes the total buffer capacity; used to apply the paper's "1 %
    /// of the tree size" rule once the tree has been built. Each shard gets
    /// an even split, floored at one page, so the effective total is
    /// `max(pages, num_shards())` — on a store with many shards a very
    /// small request is inflated by the floor ([`PageStore::buffer_capacity`]
    /// always reports the real total; build with `shards = 1` for strictly
    /// paper-faithful buffer sizing).
    pub fn set_buffer_capacity(&self, pages: usize) {
        for (shard, cap) in self
            .shards
            .iter()
            .zip(split_capacity(pages, self.num_shards()))
        {
            shard.with_inner(None, move |inner| {
                inner.pool.set_capacity(&mut inner.disk, cap)
            });
        }
    }

    /// Current total buffer capacity in pages (sum over shards).
    pub fn buffer_capacity(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.with_inner(None, |inner| inner.pool.capacity()))
            .sum()
    }

    /// Pages currently cached across all shards.
    pub fn cached_pages(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.with_inner(None, |inner| inner.pool.cached_pages()))
            .sum()
    }

    /// Flushes and empties every shard's cache so a subsequent run starts
    /// cold.
    pub fn clear_cache(&self) {
        for shard in self.shards.iter() {
            shard.with_inner(None, |inner| inner.pool.clear(&mut inner.disk));
        }
    }
}

/// Splits `total` buffer pages over `shards` shards: an even split with the
/// remainder spread over the first shards, and at least one page each.
fn split_capacity(total: usize, shards: usize) -> Vec<usize> {
    let base = total / shards;
    let rem = total % shards;
    (0..shards)
        .map(|i| (base + usize::from(i < rem)).max(1))
        .collect()
}

/// The largest power of two at or below `n` (`n >= 1`).
fn prev_power_of_two(n: usize) -> usize {
    let next = n.next_power_of_two();
    if next == n {
        n
    } else {
        next / 2
    }
}

impl Default for PageStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_facade() {
        for shards in [1, 4] {
            let store = PageStore::with_config_sharded(32, 4, shards);
            let a = store.alloc_page();
            let b = store.alloc_page();
            store.write_page(a, &[1u8; 32]);
            store.write_page(b, &[2u8; 32]);
            store.with_page(a, |d| assert_eq!(d, &[1u8; 32]));
            store.with_page(b, |d| assert_eq!(d, &[2u8; 32]));
            assert_eq!(store.num_pages(), 2);
        }
    }

    #[test]
    fn stats_visible_and_resettable() {
        // shards = 1 reproduces the old global-LRU eviction sequence.
        let store = PageStore::with_config_sharded(32, 1, 1);
        let a = store.alloc_page();
        let b = store.alloc_page();
        store.write_page(a, &[1u8; 32]);
        store.flush();
        store.clear_cache();
        store.reset_stats();
        store.with_page(a, |_| ());
        store.with_page(b, |_| ()); // evicts a (capacity 1)
        store.with_page(a, |_| ());
        let s = store.io_stats();
        assert_eq!(s.faults, 3);
        assert_eq!(s.hits, 0);
        assert!(s.charged_io_time_ms() == 30.0);
    }

    #[test]
    fn one_percent_rule_applied_by_caller() {
        let store = PageStore::with_config_sharded(32, 1000, 1);
        for _ in 0..500 {
            store.alloc_page();
        }
        // Caller computes 1% of pages, min 1.
        let cap = (store.num_pages() / 100).max(1);
        store.set_buffer_capacity(cap);
        assert_eq!(store.buffer_capacity(), 5);
    }

    #[test]
    fn capacity_splits_across_shards_with_floor() {
        let store = PageStore::with_config_sharded(32, 10, 4);
        assert_eq!(store.num_shards(), 4);
        // 10 over 4 shards: 3+3+2+2.
        assert_eq!(store.buffer_capacity(), 10);
        store.set_buffer_capacity(2);
        // Floor of one page per shard.
        assert_eq!(store.buffer_capacity(), 4);
    }

    #[test]
    fn cold_start_after_clear_cache() {
        for shards in [1, 8] {
            let store = PageStore::with_config_sharded(32, 8, shards);
            let a = store.alloc_page();
            store.write_page(a, &[5u8; 32]);
            store.flush();
            store.with_page(a, |_| ());
            store.clear_cache();
            store.reset_stats();
            store.with_page(a, |d| assert_eq!(d, &[5u8; 32]));
            assert_eq!(store.io_stats().faults, 1);
            assert_eq!(store.cached_pages(), 1);
        }
    }

    #[test]
    fn sessions_attribute_traffic_per_caller() {
        let store = PageStore::with_config_sharded(32, 8, 4);
        let pages: Vec<_> = (0..8).map(|_| store.alloc_page()).collect();
        for (i, &p) in pages.iter().enumerate() {
            store.write_page(p, &[i as u8; 32]);
        }
        store.flush();
        store.clear_cache();
        store.reset_stats();
        let a = IoSession::new();
        let b = IoSession::new();
        store.with_page_session(pages[0], Some(&a), |_| ());
        store.with_page_session(pages[0], Some(&a), |_| ());
        store.with_page_session(pages[1], Some(&b), |_| ());
        assert_eq!(a.stats().faults, 1);
        assert_eq!(a.stats().hits, 1);
        assert_eq!(b.stats().faults, 1);
        let global = store.io_stats();
        assert_eq!(global, a.stats() + b.stats());
    }

    #[test]
    fn store_is_shareable_across_threads() {
        for shards in [1, 4] {
            let store = PageStore::with_config_sharded(32, 4, shards);
            let pages: Vec<_> = (0..8).map(|_| store.alloc_page()).collect();
            for (i, &p) in pages.iter().enumerate() {
                store.write_page(p, &[i as u8; 32]);
            }
            store.flush();
            store.clear_cache();
            store.reset_stats();
            std::thread::scope(|scope| {
                for t in 0..4 {
                    let store = &store;
                    let pages = &pages;
                    scope.spawn(move || {
                        for round in 0..50 {
                            let idx = (t + round) % pages.len();
                            store.with_page(pages[idx], |d| assert_eq!(d[0] as usize, idx));
                        }
                    });
                }
            });
            let s = store.io_stats();
            assert_eq!(s.hits + s.faults, 200);
        }
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn unallocated_page_access_panics() {
        let store = PageStore::with_config_sharded(32, 4, 4);
        store.alloc_page();
        store.with_page(PageId(3), |_| ());
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        let store = PageStore::with_config_sharded(32, 16, 5);
        assert_eq!(store.num_shards(), 8);
        assert!(default_shards().is_power_of_two());
        assert!(default_shards() <= 16);
    }

    #[test]
    fn shard_count_clamped_by_requested_capacity() {
        // 3 buffer pages cannot honour 8 one-page-minimum shards; the shard
        // count is clamped so the requested total stays exact.
        let store = PageStore::with_config_sharded(32, 3, 8);
        assert_eq!(store.num_shards(), 2);
        assert_eq!(store.buffer_capacity(), 3);
    }
}
