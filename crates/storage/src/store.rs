//! [`PageStore`]: the facade the R-tree talks to.
//!
//! Combines a [`DiskManager`] and a [`BufferPool`] behind `&self` methods via
//! interior mutability. Page accesses are serialised through a `Mutex`, so a
//! built tree is `Sync` and can be shared by the batch runner's worker
//! threads; single-threaded runs pay only an uncontended lock per access.
//! I/O statistics and the LRU state are global to the store — concurrent
//! queries share the buffer pool exactly like concurrent transactions share
//! a DBMS buffer cache.

use std::sync::{Mutex, MutexGuard};

use crate::buffer::BufferPool;
use crate::disk::{DiskManager, PageId};
use crate::stats::IoStats;
use crate::DEFAULT_PAGE_SIZE;

struct Inner {
    disk: DiskManager,
    pool: BufferPool,
}

/// Paged storage with a buffer pool, usable through shared references from
/// many threads.
pub struct PageStore {
    inner: Mutex<Inner>,
}

impl PageStore {
    /// Creates a store with the paper's default 1 KB pages and a provisional
    /// buffer capacity (callers re-size it to 1 % of the tree after loading).
    pub fn new() -> Self {
        Self::with_config(DEFAULT_PAGE_SIZE, 64)
    }

    /// Creates a store with explicit page size (bytes) and buffer capacity
    /// (pages).
    pub fn with_config(page_size: usize, buffer_pages: usize) -> Self {
        PageStore {
            inner: Mutex::new(Inner {
                disk: DiskManager::new(page_size),
                pool: BufferPool::new(buffer_pages),
            }),
        }
    }

    /// Locks the store; a panicked holder cannot leave the page data in a
    /// torn state (all mutation is in-memory bookkeeping), so poisoning is
    /// deliberately ignored.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.lock().disk.page_size()
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> usize {
        self.lock().disk.num_pages()
    }

    /// Allocates a fresh zeroed page.
    pub fn alloc_page(&self) -> PageId {
        self.lock().disk.alloc_page()
    }

    /// Reads a page through the buffer pool; `f` receives the page bytes.
    ///
    /// The closure runs under the store lock and must not re-enter the
    /// store (it would deadlock; the single-threaded storage discipline of
    /// the old `RefCell` design, enforced differently).
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> R {
        let inner = &mut *self.lock();
        inner.pool.with_page(&mut inner.disk, id, f)
    }

    /// Writes a full page through the buffer pool (write-back).
    pub fn write_page(&self, id: PageId, data: &[u8]) {
        let inner = &mut *self.lock();
        inner.pool.write_page(&mut inner.disk, id, data);
    }

    /// Flushes dirty pages to the simulated disk.
    pub fn flush(&self) {
        let inner = &mut *self.lock();
        inner.pool.flush_all(&mut inner.disk);
    }

    /// Buffer-pool statistics accumulated so far.
    pub fn io_stats(&self) -> IoStats {
        self.lock().pool.stats()
    }

    /// Clears I/O statistics (e.g. after bulk load, before measuring
    /// queries).
    pub fn reset_stats(&self) {
        self.lock().pool.reset_stats();
    }

    /// Re-sizes the buffer pool; used to apply the paper's "1 % of the tree
    /// size" rule once the tree has been built.
    pub fn set_buffer_capacity(&self, pages: usize) {
        let inner = &mut *self.lock();
        inner.pool.set_capacity(&mut inner.disk, pages);
    }

    /// Current buffer capacity in pages.
    pub fn buffer_capacity(&self) -> usize {
        self.lock().pool.capacity()
    }

    /// Flushes and empties the cache so a subsequent run starts cold.
    pub fn clear_cache(&self) {
        let inner = &mut *self.lock();
        inner.pool.clear(&mut inner.disk);
    }
}

impl Default for PageStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_facade() {
        let store = PageStore::with_config(32, 2);
        let a = store.alloc_page();
        let b = store.alloc_page();
        store.write_page(a, &[1u8; 32]);
        store.write_page(b, &[2u8; 32]);
        store.with_page(a, |d| assert_eq!(d, &[1u8; 32]));
        store.with_page(b, |d| assert_eq!(d, &[2u8; 32]));
        assert_eq!(store.num_pages(), 2);
    }

    #[test]
    fn stats_visible_and_resettable() {
        let store = PageStore::with_config(32, 1);
        let a = store.alloc_page();
        let b = store.alloc_page();
        store.write_page(a, &[1u8; 32]);
        store.flush();
        store.clear_cache();
        store.reset_stats();
        store.with_page(a, |_| ());
        store.with_page(b, |_| ()); // evicts a (capacity 1)
        store.with_page(a, |_| ());
        let s = store.io_stats();
        assert_eq!(s.faults, 3);
        assert_eq!(s.hits, 0);
        assert!(s.charged_io_time_ms() == 30.0);
    }

    #[test]
    fn one_percent_rule_applied_by_caller() {
        let store = PageStore::with_config(32, 1000);
        for _ in 0..500 {
            store.alloc_page();
        }
        // Caller computes 1% of pages, min 1.
        let cap = (store.num_pages() / 100).max(1);
        store.set_buffer_capacity(cap);
        assert_eq!(store.buffer_capacity(), 5);
    }

    #[test]
    fn cold_start_after_clear_cache() {
        let store = PageStore::with_config(32, 8);
        let a = store.alloc_page();
        store.write_page(a, &[5u8; 32]);
        store.flush();
        store.with_page(a, |_| ());
        store.clear_cache();
        store.reset_stats();
        store.with_page(a, |d| assert_eq!(d, &[5u8; 32]));
        assert_eq!(store.io_stats().faults, 1);
    }

    #[test]
    fn store_is_shareable_across_threads() {
        let store = PageStore::with_config(32, 4);
        let pages: Vec<_> = (0..8).map(|_| store.alloc_page()).collect();
        for (i, &p) in pages.iter().enumerate() {
            store.write_page(p, &[i as u8; 32]);
        }
        store.flush();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let store = &store;
                let pages = &pages;
                scope.spawn(move || {
                    for round in 0..50 {
                        let idx = (t + round) % pages.len();
                        store.with_page(pages[idx], |d| assert_eq!(d[0] as usize, idx));
                    }
                });
            }
        });
        let s = store.io_stats();
        assert_eq!(s.hits + s.faults, 200);
    }
}
