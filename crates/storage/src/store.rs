//! [`PageStore`]: the facade the R-tree talks to.
//!
//! Combines a [`DiskManager`] and a [`BufferPool`] behind `&self` methods via
//! interior mutability. The CCA algorithms are single-threaded (the paper's
//! cost model is sequential CPU + charged I/O), so a `RefCell` is the right
//! tool; the type is deliberately `!Sync`.

use std::cell::RefCell;

use crate::buffer::BufferPool;
use crate::disk::{DiskManager, PageId};
use crate::stats::IoStats;
use crate::DEFAULT_PAGE_SIZE;

struct Inner {
    disk: DiskManager,
    pool: BufferPool,
}

/// Paged storage with a buffer pool, usable through shared references.
pub struct PageStore {
    inner: RefCell<Inner>,
}

impl PageStore {
    /// Creates a store with the paper's default 1 KB pages and a provisional
    /// buffer capacity (callers re-size it to 1 % of the tree after loading).
    pub fn new() -> Self {
        Self::with_config(DEFAULT_PAGE_SIZE, 64)
    }

    /// Creates a store with explicit page size (bytes) and buffer capacity
    /// (pages).
    pub fn with_config(page_size: usize, buffer_pages: usize) -> Self {
        PageStore {
            inner: RefCell::new(Inner {
                disk: DiskManager::new(page_size),
                pool: BufferPool::new(buffer_pages),
            }),
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.inner.borrow().disk.page_size()
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> usize {
        self.inner.borrow().disk.num_pages()
    }

    /// Allocates a fresh zeroed page.
    pub fn alloc_page(&self) -> PageId {
        self.inner.borrow_mut().disk.alloc_page()
    }

    /// Reads a page through the buffer pool; `f` receives the page bytes.
    ///
    /// The closure must not re-enter the store (single-threaded storage
    /// discipline; enforced by `RefCell` at runtime).
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> R {
        let inner = &mut *self.inner.borrow_mut();
        inner.pool.with_page(&mut inner.disk, id, f)
    }

    /// Writes a full page through the buffer pool (write-back).
    pub fn write_page(&self, id: PageId, data: &[u8]) {
        let inner = &mut *self.inner.borrow_mut();
        inner.pool.write_page(&mut inner.disk, id, data);
    }

    /// Flushes dirty pages to the simulated disk.
    pub fn flush(&self) {
        let inner = &mut *self.inner.borrow_mut();
        inner.pool.flush_all(&mut inner.disk);
    }

    /// Buffer-pool statistics accumulated so far.
    pub fn io_stats(&self) -> IoStats {
        self.inner.borrow().pool.stats()
    }

    /// Clears I/O statistics (e.g. after bulk load, before measuring
    /// queries).
    pub fn reset_stats(&self) {
        self.inner.borrow_mut().pool.reset_stats();
    }

    /// Re-sizes the buffer pool; used to apply the paper's "1 % of the tree
    /// size" rule once the tree has been built.
    pub fn set_buffer_capacity(&self, pages: usize) {
        let inner = &mut *self.inner.borrow_mut();
        inner.pool.set_capacity(&mut inner.disk, pages);
    }

    /// Current buffer capacity in pages.
    pub fn buffer_capacity(&self) -> usize {
        self.inner.borrow().pool.capacity()
    }

    /// Flushes and empties the cache so a subsequent run starts cold.
    pub fn clear_cache(&self) {
        let inner = &mut *self.inner.borrow_mut();
        inner.pool.clear(&mut inner.disk);
    }
}

impl Default for PageStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_facade() {
        let store = PageStore::with_config(32, 2);
        let a = store.alloc_page();
        let b = store.alloc_page();
        store.write_page(a, &[1u8; 32]);
        store.write_page(b, &[2u8; 32]);
        store.with_page(a, |d| assert_eq!(d, &[1u8; 32]));
        store.with_page(b, |d| assert_eq!(d, &[2u8; 32]));
        assert_eq!(store.num_pages(), 2);
    }

    #[test]
    fn stats_visible_and_resettable() {
        let store = PageStore::with_config(32, 1);
        let a = store.alloc_page();
        let b = store.alloc_page();
        store.write_page(a, &[1u8; 32]);
        store.flush();
        store.clear_cache();
        store.reset_stats();
        store.with_page(a, |_| ());
        store.with_page(b, |_| ()); // evicts a (capacity 1)
        store.with_page(a, |_| ());
        let s = store.io_stats();
        assert_eq!(s.faults, 3);
        assert_eq!(s.hits, 0);
        assert!(s.charged_io_time_ms() == 30.0);
    }

    #[test]
    fn one_percent_rule_applied_by_caller() {
        let store = PageStore::with_config(32, 1000);
        for _ in 0..500 {
            store.alloc_page();
        }
        // Caller computes 1% of pages, min 1.
        let cap = (store.num_pages() / 100).max(1);
        store.set_buffer_capacity(cap);
        assert_eq!(store.buffer_capacity(), 5);
    }

    #[test]
    fn cold_start_after_clear_cache() {
        let store = PageStore::with_config(32, 8);
        let a = store.alloc_page();
        store.write_page(a, &[5u8; 32]);
        store.flush();
        store.with_page(a, |_| ());
        store.clear_cache();
        store.reset_stats();
        store.with_page(a, |d| assert_eq!(d, &[5u8; 32]));
        assert_eq!(store.io_stats().faults, 1);
    }
}
