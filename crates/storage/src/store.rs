//! [`PageStore`]: the facade the R-tree talks to.
//!
//! A *sharded* buffer pool: page ids hash (stripe) to one of N shards, each
//! owning its own frames, LRU list, disk segment and lock, so concurrent
//! queries over a shared tree fault pages independently instead of
//! serialising on one global mutex. Counters are per-shard atomics
//! aggregated on read, and every access can additionally be charged to a
//! per-query [`QueryContext`], which is what restores per-query I/O
//! attribution in parallel batches — and what trips per-query I/O budgets
//! at page-fault time.
//!
//! With `shards = 1` the store behaves exactly like the previous
//! single-`Mutex` design (one global LRU) — the equivalence proptest in
//! `tests/shard_equivalence.rs` pins that down.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::context::QueryContext;
use crate::disk::PageId;
use crate::shard::{Shard, ShardRouter};
use crate::stats::IoStats;
use crate::DEFAULT_PAGE_SIZE;

/// Sharded paged storage with per-shard LRU buffers, usable through shared
/// references from many threads.
pub struct PageStore {
    page_size: usize,
    router: ShardRouter,
    shards: Box<[Shard]>,
    /// Global dense page allocator; shards materialise their stripe lazily.
    next_page: AtomicU32,
}

/// Default shard count: the next power of two at or above the number of
/// available hardware threads, capped at 16. The cap bounds the one-page
/// per-shard capacity floor (see [`PageStore::set_buffer_capacity`]) so
/// that small paper-style buffers are not silently inflated on many-core
/// hosts, and 16 independent locks already decongest the batch runner's
/// worker counts.
pub fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .next_power_of_two()
        .min(16)
}

impl PageStore {
    /// Creates a store with the paper's default 1 KB pages and a provisional
    /// buffer capacity (callers re-size it to 1 % of the tree after loading).
    pub fn new() -> Self {
        Self::with_config(DEFAULT_PAGE_SIZE, 64)
    }

    /// Creates a store with explicit page size (bytes) and total buffer
    /// capacity (pages), sharded [`default_shards`] ways.
    pub fn with_config(page_size: usize, buffer_pages: usize) -> Self {
        Self::with_config_sharded(page_size, buffer_pages, default_shards())
    }

    /// Creates a store with an explicit shard count (rounded up to a power
    /// of two; `1` reproduces the old single-mutex, single-LRU behaviour).
    /// `buffer_pages` is the *total* capacity, split evenly across shards
    /// (each shard holds at least one page). A shard count exceeding
    /// `buffer_pages` is clamped down so the per-shard floor cannot
    /// inflate the requested capacity at construction time.
    pub fn with_config_sharded(page_size: usize, buffer_pages: usize, shards: usize) -> Self {
        let max_shards = prev_power_of_two(buffer_pages.max(1));
        let shards = shards.max(1).next_power_of_two().min(max_shards);
        let router = ShardRouter::new(shards);
        let shards: Box<[Shard]> = split_capacity(buffer_pages, router.shards())
            .into_iter()
            .map(|cap| Shard::new(page_size, cap))
            .collect();
        PageStore {
            page_size,
            router,
            shards,
            next_page: AtomicU32::new(0),
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of shards (a power of two).
    pub fn num_shards(&self) -> usize {
        self.router.shards()
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> usize {
        self.next_page.load(Ordering::Acquire) as usize
    }

    /// Allocates a fresh zeroed page.
    pub fn alloc_page(&self) -> PageId {
        let id = self.next_page.fetch_add(1, Ordering::AcqRel);
        assert!(id != u32::MAX, "page id overflow");
        PageId(id)
    }

    /// Panics on ids that were never handed out by [`PageStore::alloc_page`]
    /// — accessing them is a storage-layer bug, exactly as on the old
    /// unsharded disk.
    fn check_allocated(&self, id: PageId) {
        assert!(id.index() < self.num_pages(), "access to unallocated {id}");
    }

    /// Reads a page through its shard's buffer pool; `f` receives the page
    /// bytes. Traffic is charged to the shard counters only.
    ///
    /// The closure runs under the shard lock and must not re-enter the
    /// store (same-shard re-entry deadlocks; cross-shard re-entry risks
    /// lock-order inversion against concurrent callers).
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> R {
        self.with_page_ctx(id, None, f)
    }

    /// Like [`PageStore::with_page`], additionally charging the access to
    /// `ctx` — the per-query attribution path. Charging a fault to a
    /// context with an I/O budget performs the budget check right here, so
    /// a context-aware traversal observes the abort before its next access.
    ///
    /// Page *hits* are served lock-free: the shard's seqlock-validated hot
    /// directory copies the bytes without acquiring the shard mutex (see
    /// [`PageStore::lock_acquisitions`]). Only faults — and hits that lost a
    /// race with a writer — take the lock.
    pub fn with_page_ctx<R>(
        &self,
        id: PageId,
        ctx: Option<&QueryContext>,
        f: impl FnOnce(&[u8]) -> R,
    ) -> R {
        self.check_allocated(id);
        let local = self.router.local_id(id);
        let shard = &self.shards[self.router.shard_of(id)];
        match shard.try_read_hot(local, ctx, f) {
            Ok(result) => result,
            Err(f) => shard.with_inner(ctx, |inner| {
                inner.ensure_local_page(local);
                inner.pool.with_page(&mut inner.disk, local, f)
            }),
        }
    }

    /// Writes a full page through its shard's buffer pool (write-back).
    pub fn write_page(&self, id: PageId, data: &[u8]) {
        self.write_page_ctx(id, None, data)
    }

    /// Like [`PageStore::write_page`], charging eviction write-backs to
    /// `ctx`.
    pub fn write_page_ctx(&self, id: PageId, ctx: Option<&QueryContext>, data: &[u8]) {
        self.check_allocated(id);
        let local = self.router.local_id(id);
        self.shards[self.router.shard_of(id)].with_inner(ctx, |inner| {
            inner.ensure_local_page(local);
            inner.pool.write_page(&mut inner.disk, local, data);
        });
    }

    /// Flushes dirty pages of every shard to the simulated disk.
    pub fn flush(&self) {
        for shard in self.shards.iter() {
            shard.with_inner(None, |inner| inner.pool.flush_all(&mut inner.disk));
        }
    }

    /// Total shard-mutex acquisitions since construction, summed across
    /// shards. A page hit served by the optimistic read path leaves this
    /// flat — the lock-counter test pins that contract.
    pub fn lock_acquisitions(&self) -> u64 {
        self.shards.iter().map(|s| s.lock_acquisitions()).sum()
    }

    /// Buffer-pool statistics accumulated so far, aggregated across shards
    /// without taking any shard lock.
    pub fn io_stats(&self) -> IoStats {
        self.shards
            .iter()
            .fold(IoStats::default(), |acc, s| acc + s.stats())
    }

    /// Clears I/O statistics (e.g. after bulk load, before measuring
    /// queries).
    pub fn reset_stats(&self) {
        for shard in self.shards.iter() {
            shard.reset_stats();
        }
    }

    /// Re-sizes the total buffer capacity; used to apply the paper's "1 %
    /// of the tree size" rule once the tree has been built.
    ///
    /// The split is *size-aware*: each shard receives capacity proportional
    /// to the number of allocated pages striped to it (largest-remainder
    /// rounding), so the effective total always equals `pages` exactly —
    /// even below one page per shard, where a shard can end up with zero
    /// frames and serves its stripe read-through. This closes the old
    /// truncate-and-floor gap that inflated tiny paper-style buffers on
    /// many-shard stores.
    pub fn set_buffer_capacity(&self, pages: usize) {
        let sizes: Vec<usize> = (0..self.num_shards())
            .map(|i| self.stripe_size(i))
            .collect();
        for (shard, cap) in self
            .shards
            .iter()
            .zip(split_capacity_size_aware(pages, &sizes))
        {
            shard.with_inner(None, move |inner| {
                inner.pool.set_capacity(&mut inner.disk, cap)
            });
        }
    }

    /// Number of allocated pages striped to `shard` (ids stripe
    /// round-robin, so the first `num_pages % num_shards` shards hold one
    /// page more).
    fn stripe_size(&self, shard: usize) -> usize {
        let n = self.num_pages();
        let s = self.num_shards();
        (n + s - 1 - shard) / s
    }

    /// Current total buffer capacity in pages (sum over shards).
    pub fn buffer_capacity(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.with_inner(None, |inner| inner.pool.capacity()))
            .sum()
    }

    /// Pages currently cached across all shards.
    pub fn cached_pages(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.with_inner(None, |inner| inner.pool.cached_pages()))
            .sum()
    }

    /// Flushes and empties every shard's cache so a subsequent run starts
    /// cold.
    pub fn clear_cache(&self) {
        for shard in self.shards.iter() {
            shard.with_inner(None, |inner| inner.pool.clear(&mut inner.disk));
        }
    }
}

/// Splits `total` buffer pages over `shards` shards: an even split with the
/// remainder spread over the first shards, and at least one page each. Used
/// at construction time, when no pages exist to weight the split by (the
/// shard count is clamped so the floor cannot inflate the total).
fn split_capacity(total: usize, shards: usize) -> Vec<usize> {
    let base = total / shards;
    let rem = total % shards;
    (0..shards)
        .map(|i| (base + usize::from(i < rem)).max(1))
        .collect()
}

/// Splits `total` buffer pages proportionally to per-shard resident page
/// counts (`sizes`), using largest-remainder rounding. The returned
/// capacities sum to exactly `total`; shards holding no pages get no
/// frames. With all sizes equal this degrades to the even split (without
/// the one-page floor).
fn split_capacity_size_aware(total: usize, sizes: &[usize]) -> Vec<usize> {
    let shards = sizes.len();
    let weight: usize = sizes.iter().sum();
    if weight == 0 {
        // No pages allocated yet: plain even split, first shards take the
        // remainder.
        let base = total / shards;
        let rem = total % shards;
        return (0..shards).map(|i| base + usize::from(i < rem)).collect();
    }
    let mut caps: Vec<usize> = Vec::with_capacity(shards);
    let mut order: Vec<(usize, usize, usize)> = Vec::with_capacity(shards); // (rem, size, idx)
    for (i, &size) in sizes.iter().enumerate() {
        let ideal = total * size;
        caps.push(ideal / weight);
        order.push((ideal % weight, size, i));
    }
    let assigned: usize = caps.iter().sum();
    // Hand the leftover pages to the largest fractional remainders,
    // breaking ties toward larger stripes then lower indices.
    order.sort_by(|a, b| (b.0, b.1).cmp(&(a.0, a.1)).then(a.2.cmp(&b.2)));
    for &(_, _, i) in order.iter().take(total - assigned) {
        caps[i] += 1;
    }
    caps
}

/// The largest power of two at or below `n` (`n >= 1`).
fn prev_power_of_two(n: usize) -> usize {
    let next = n.next_power_of_two();
    if next == n {
        n
    } else {
        next / 2
    }
}

impl Default for PageStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_facade() {
        for shards in [1, 4] {
            let store = PageStore::with_config_sharded(32, 4, shards);
            let a = store.alloc_page();
            let b = store.alloc_page();
            store.write_page(a, &[1u8; 32]);
            store.write_page(b, &[2u8; 32]);
            store.with_page(a, |d| assert_eq!(d, &[1u8; 32]));
            store.with_page(b, |d| assert_eq!(d, &[2u8; 32]));
            assert_eq!(store.num_pages(), 2);
        }
    }

    #[test]
    fn stats_visible_and_resettable() {
        // shards = 1 reproduces the old global-LRU eviction sequence.
        let store = PageStore::with_config_sharded(32, 1, 1);
        let a = store.alloc_page();
        let b = store.alloc_page();
        store.write_page(a, &[1u8; 32]);
        store.flush();
        store.clear_cache();
        store.reset_stats();
        store.with_page(a, |_| ());
        store.with_page(b, |_| ()); // evicts a (capacity 1)
        store.with_page(a, |_| ());
        let s = store.io_stats();
        assert_eq!(s.faults, 3);
        assert_eq!(s.hits, 0);
        assert!(s.charged_io_time_ms() == 30.0);
    }

    #[test]
    fn one_percent_rule_applied_by_caller() {
        let store = PageStore::with_config_sharded(32, 1000, 1);
        for _ in 0..500 {
            store.alloc_page();
        }
        // Caller computes 1% of pages, min 1.
        let cap = (store.num_pages() / 100).max(1);
        store.set_buffer_capacity(cap);
        assert_eq!(store.buffer_capacity(), 5);
    }

    #[test]
    fn capacity_splits_across_shards_exactly() {
        let store = PageStore::with_config_sharded(32, 10, 4);
        assert_eq!(store.num_shards(), 4);
        // 10 over 4 shards: 3+3+2+2.
        assert_eq!(store.buffer_capacity(), 10);
        // Sub-shard totals are honoured exactly: the size-aware split hands
        // out 0-frame (read-through) shards instead of flooring at one.
        store.set_buffer_capacity(2);
        assert_eq!(store.buffer_capacity(), 2);
        store.set_buffer_capacity(7);
        assert_eq!(store.buffer_capacity(), 7);
    }

    /// The ROADMAP regression: at ≤ 2 pages of capacity per shard the old
    /// truncate-then-floor split inflated the requested total; the
    /// size-aware split keeps it exact and weighted by stripe population.
    #[test]
    fn tiny_buffer_split_is_size_aware() {
        let store = PageStore::with_config_sharded(32, 64, 4);
        // 10 pages stripe as 3,3,2,2 over the 4 shards.
        let pages: Vec<_> = (0..10).map(|_| store.alloc_page()).collect();
        for &p in &pages {
            store.write_page(p, &[7u8; 32]);
        }
        store.flush();
        for cap in 1..=8 {
            store.set_buffer_capacity(cap);
            assert_eq!(store.buffer_capacity(), cap, "requested {cap}");
        }
        // ≤ 2 pages/shard: every page stays readable through the 0-frame
        // (read-through) shards and fault accounting still works.
        store.set_buffer_capacity(2);
        store.clear_cache();
        store.reset_stats();
        for &p in &pages {
            store.with_page(p, |d| assert_eq!(d[0], 7));
        }
        assert_eq!(store.io_stats().faults, 10, "cold pass faults every page");
        assert!(store.cached_pages() <= 2);

        // Proportionality: with capacity 5 over stripes 3,3,2,2 the two
        // 3-page shards take the remainder before the 2-page shards.
        assert_eq!(
            split_capacity_size_aware(5, &[3, 3, 2, 2]),
            vec![2, 1, 1, 1]
        );
        assert_eq!(
            split_capacity_size_aware(2, &[2, 2, 2, 2]),
            vec![1, 1, 0, 0]
        );
        assert_eq!(
            split_capacity_size_aware(3, &[0, 4, 0, 2]),
            vec![0, 2, 0, 1]
        );
        assert_eq!(
            split_capacity_size_aware(4, &[0, 0, 0, 0]),
            vec![1, 1, 1, 1]
        );
    }

    #[test]
    fn cold_start_after_clear_cache() {
        for shards in [1, 8] {
            let store = PageStore::with_config_sharded(32, 8, shards);
            let a = store.alloc_page();
            store.write_page(a, &[5u8; 32]);
            store.flush();
            store.with_page(a, |_| ());
            store.clear_cache();
            store.reset_stats();
            store.with_page(a, |d| assert_eq!(d, &[5u8; 32]));
            assert_eq!(store.io_stats().faults, 1);
            assert_eq!(store.cached_pages(), 1);
        }
    }

    #[test]
    fn contexts_attribute_traffic_per_caller() {
        let store = PageStore::with_config_sharded(32, 8, 4);
        let pages: Vec<_> = (0..8).map(|_| store.alloc_page()).collect();
        for (i, &p) in pages.iter().enumerate() {
            store.write_page(p, &[i as u8; 32]);
        }
        store.flush();
        store.clear_cache();
        store.reset_stats();
        let a = QueryContext::new();
        let b = QueryContext::new();
        store.with_page_ctx(pages[0], Some(&a), |_| ());
        store.with_page_ctx(pages[0], Some(&a), |_| ());
        store.with_page_ctx(pages[1], Some(&b), |_| ());
        assert_eq!(a.stats().faults, 1);
        assert_eq!(a.stats().hits, 1);
        assert_eq!(b.stats().faults, 1);
        let global = store.io_stats();
        assert_eq!(global, a.stats() + b.stats());
    }

    #[test]
    fn context_budget_trips_at_fault_time_in_store() {
        for shards in [1, 4] {
            let store = PageStore::with_config_sharded(32, 8, shards);
            let pages: Vec<_> = (0..8).map(|_| store.alloc_page()).collect();
            for &p in &pages {
                store.write_page(p, &[1u8; 32]);
            }
            store.flush();
            store.clear_cache();
            store.reset_stats();
            let ctx = QueryContext::new().with_io_budget(3);
            for &p in &pages[..3] {
                store.with_page_ctx(p, Some(&ctx), |_| ());
            }
            assert_eq!(
                ctx.abort_reason(),
                Some(crate::AbortReason::IoBudgetExceeded),
                "shards = {shards}"
            );
            assert_eq!(ctx.stats().faults, 3);
        }
    }

    #[test]
    fn store_is_shareable_across_threads() {
        for shards in [1, 4] {
            let store = PageStore::with_config_sharded(32, 4, shards);
            let pages: Vec<_> = (0..8).map(|_| store.alloc_page()).collect();
            for (i, &p) in pages.iter().enumerate() {
                store.write_page(p, &[i as u8; 32]);
            }
            store.flush();
            store.clear_cache();
            store.reset_stats();
            std::thread::scope(|scope| {
                for t in 0..4 {
                    let store = &store;
                    let pages = &pages;
                    scope.spawn(move || {
                        for round in 0..50 {
                            let idx = (t + round) % pages.len();
                            store.with_page(pages[idx], |d| assert_eq!(d[0] as usize, idx));
                        }
                    });
                }
            });
            let s = store.io_stats();
            assert_eq!(s.hits + s.faults, 200);
        }
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn unallocated_page_access_panics() {
        let store = PageStore::with_config_sharded(32, 4, 4);
        store.alloc_page();
        store.with_page(PageId(3), |_| ());
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        let store = PageStore::with_config_sharded(32, 16, 5);
        assert_eq!(store.num_shards(), 8);
        assert!(default_shards().is_power_of_two());
        assert!(default_shards() <= 16);
    }

    #[test]
    fn shard_count_clamped_by_requested_capacity() {
        // 3 buffer pages cannot honour 8 one-page-minimum shards; the shard
        // count is clamped so the requested total stays exact.
        let store = PageStore::with_config_sharded(32, 3, 8);
        assert_eq!(store.num_shards(), 2);
        assert_eq!(store.buffer_capacity(), 3);
    }
}
