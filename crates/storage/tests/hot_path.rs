//! The optimistic (lock-free) hit path must be a *transparent* fast path:
//!
//! 1. Hits on resident pages never acquire the shard mutex (pinned by the
//!    lock-acquisition counter).
//! 2. Under racing readers the bytes and the exact hit/fault counts are
//!    identical to what the `shards = 1` mutex path produces: every access
//!    is charged to exactly one counter, and no reader ever observes a torn
//!    page — even with a concurrent writer flipping page contents.

use cca_storage::{IoStats, PageStore, QueryContext};

/// Warmed pages are served without a single mutex acquisition.
#[test]
fn hits_skip_the_shard_mutex() {
    for shards in [1, 4] {
        let store = PageStore::with_config_sharded(64, 16, shards);
        let pages: Vec<_> = (0..8).map(|_| store.alloc_page()).collect();
        for (i, &p) in pages.iter().enumerate() {
            store.write_page(p, &[i as u8; 64]);
        }
        // Warm: every page faults into its frame (locked path).
        for &p in &pages {
            store.with_page(p, |_| ());
        }
        store.reset_stats();
        let locks_before = store.lock_acquisitions();
        for round in 0..50 {
            for (i, &p) in pages.iter().enumerate() {
                store.with_page(p, |d| assert_eq!(d[0] as usize, i, "round {round}"));
            }
        }
        assert_eq!(
            store.lock_acquisitions(),
            locks_before,
            "hit-only traffic must not touch the shard mutex (shards = {shards})"
        );
        let s = store.io_stats();
        assert_eq!(s.hits, 50 * pages.len() as u64);
        assert_eq!(s.faults, 0);
    }
}

/// Racing readers over a fully resident working set: identical bytes to the
/// mutex path, exact per-session attribution, and zero lock traffic.
#[test]
fn concurrent_hits_match_mutex_path_exactly() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 500;
    for shards in [1, 4] {
        let store = PageStore::with_config_sharded(32, 16, shards);
        let pages: Vec<_> = (0..16).map(|_| store.alloc_page()).collect();
        for (i, &p) in pages.iter().enumerate() {
            store.write_page(p, &[i as u8; 32]);
        }
        for &p in &pages {
            store.with_page(p, |_| ());
        }
        store.reset_stats();
        let locks_before = store.lock_acquisitions();

        let sessions: Vec<QueryContext> = (0..THREADS).map(|_| QueryContext::new()).collect();
        std::thread::scope(|scope| {
            for (t, session) in sessions.iter().enumerate() {
                let store = &store;
                let pages = &pages;
                scope.spawn(move || {
                    for round in 0..ROUNDS {
                        let idx = (t * 5 + round * 3) % pages.len();
                        store.with_page_ctx(pages[idx], Some(session), |d| {
                            // Byte-exact: the same data the locked path
                            // would serve, never a torn mix.
                            assert_eq!(d, &[idx as u8; 32]);
                        });
                    }
                });
            }
        });

        // Exact counts: every access was a hit, charged to exactly one
        // session, and the aggregate matches the mutex path's bookkeeping.
        let total: IoStats = sessions
            .iter()
            .fold(IoStats::default(), |acc, s| acc + s.stats());
        let expect = IoStats {
            hits: (THREADS * ROUNDS) as u64,
            faults: 0,
            writes: 0,
        };
        assert_eq!(total, expect, "shards = {shards}");
        assert_eq!(store.io_stats(), expect, "shards = {shards}");
        assert_eq!(
            store.lock_acquisitions(),
            locks_before,
            "resident working set: no reader may lock (shards = {shards})"
        );
    }
}

/// A writer flipping whole pages while readers race: the seqlock must never
/// expose a torn page — every observed page is uniformly old or uniformly
/// new — and reads + writes still partition the counters exactly.
#[test]
fn racing_writer_never_exposes_torn_pages() {
    const READERS: usize = 6;
    const READS: usize = 4000;
    const WRITES: usize = 2000;
    let store = PageStore::with_config_sharded(256, 8, 2);
    let pages: Vec<_> = (0..4).map(|_| store.alloc_page()).collect();
    for &p in &pages {
        store.write_page(p, &[0u8; 256]);
    }
    for &p in &pages {
        store.with_page(p, |_| ());
    }
    store.reset_stats();

    let sessions: Vec<QueryContext> = (0..READERS).map(|_| QueryContext::new()).collect();
    let writer_session = QueryContext::new();
    std::thread::scope(|scope| {
        for (t, session) in sessions.iter().enumerate() {
            let store = &store;
            let pages = &pages;
            scope.spawn(move || {
                for round in 0..READS {
                    let idx = (t + round) % pages.len();
                    store.with_page_ctx(pages[idx], Some(session), |d| {
                        let first = d[0];
                        assert!(
                            d.iter().all(|&b| b == first),
                            "torn page observed: starts {first}, mixed bytes"
                        );
                    });
                }
            });
        }
        let store = &store;
        let pages = &pages;
        let writer_session = &writer_session;
        scope.spawn(move || {
            for round in 0..WRITES {
                let idx = round % pages.len();
                let byte = (round % 251) as u8;
                store.write_page_ctx(pages[idx], Some(writer_session), &[byte; 256]);
            }
        });
    });

    let mut total: IoStats = sessions
        .iter()
        .fold(IoStats::default(), |acc, s| acc + s.stats());
    total = total + writer_session.stats();
    assert_eq!(
        total,
        store.io_stats(),
        "sessions must partition the global counters exactly"
    );
    assert_eq!(
        total.hits + total.faults,
        (READERS * READS) as u64,
        "every read charged exactly once"
    );
}
