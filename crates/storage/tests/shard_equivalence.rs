//! The sharded store must be a *refactor*, not a behaviour change:
//!
//! 1. With `shards = 1` a [`PageStore`] reproduces the old single-`Mutex`
//!    design — one global LRU over one disk — access for access: the same
//!    hit/fault/evict sequence, pinned against a reference model built from
//!    the raw [`BufferPool`] + [`DiskManager`] pair (which *is* the old
//!    store minus the lock).
//! 2. Per-query [`QueryContext`]s partition the store's traffic exactly:
//!    under concurrency, disjoint sessions sum to the global aggregate.

use cca_storage::{BufferPool, DiskManager, IoStats, PageId, PageStore, QueryContext};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Read page `i % allocated` through the pool.
    Read(usize),
    /// Write page `i % allocated` through the pool (write-allocate, dirty).
    Write(usize, u8),
    /// Flush all dirty frames.
    Flush,
    /// Cold-start the cache.
    Clear,
    /// Re-size the buffer (1..=8 pages).
    SetCapacity(usize),
}

fn op_strategy(pages: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..pages).prop_map(Op::Read),
        (0..pages).prop_map(Op::Read),
        (0..pages).prop_map(Op::Read),
        ((0..pages), any::<u8>()).prop_map(|(i, b)| Op::Write(i, b)),
        ((0..pages), any::<u8>()).prop_map(|(i, b)| Op::Write(i, b)),
        Just(Op::Flush),
        Just(Op::Clear),
        (1usize..=8).prop_map(Op::SetCapacity),
    ]
}

/// The old behaviour, verbatim: one pool over one disk, no sharding.
struct Reference {
    disk: DiskManager,
    pool: BufferPool,
    ids: Vec<PageId>,
}

impl Reference {
    fn new(page_size: usize, capacity: usize, pages: usize) -> Self {
        let mut disk = DiskManager::new(page_size);
        let ids = (0..pages).map(|_| disk.alloc_page()).collect();
        Reference {
            disk,
            pool: BufferPool::new(capacity),
            ids,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-shard store ≡ old single-mutex pool, op for op: identical
    /// hit/fault/write deltas (hence identical eviction decisions — a
    /// diverging victim would surface as a diverging fault within a few
    /// ops of the cyclic access mixes generated here) and identical bytes.
    #[test]
    fn single_shard_matches_old_pool_behaviour(
        capacity in 1usize..6,
        ops in proptest::collection::vec(op_strategy(12), 1..120),
    ) {
        const PAGE: usize = 16;
        const PAGES: usize = 12;
        let mut reference = Reference::new(PAGE, capacity, PAGES);
        let store = PageStore::with_config_sharded(PAGE, capacity, 1);
        let ids: Vec<PageId> = (0..PAGES).map(|_| store.alloc_page()).collect();

        for (step, op) in ops.iter().enumerate() {
            let before_ref = reference.pool.stats();
            let before_store = store.io_stats();
            match *op {
                Op::Read(i) => {
                    let got_ref = reference.pool.with_page(
                        &mut reference.disk,
                        reference.ids[i],
                        |d| d.to_vec(),
                    );
                    let got_store = store.with_page(ids[i], |d| d.to_vec());
                    prop_assert_eq!(&got_ref, &got_store, "bytes diverged at step {}", step);
                }
                Op::Write(i, byte) => {
                    let data = vec![byte; PAGE];
                    reference.pool.write_page(&mut reference.disk, reference.ids[i], &data);
                    store.write_page(ids[i], &data);
                }
                Op::Flush => {
                    reference.pool.flush_all(&mut reference.disk);
                    store.flush();
                }
                Op::Clear => {
                    reference.pool.clear(&mut reference.disk);
                    store.clear_cache();
                }
                Op::SetCapacity(cap) => {
                    reference.pool.set_capacity(&mut reference.disk, cap);
                    store.set_buffer_capacity(cap);
                    prop_assert_eq!(reference.pool.capacity(), store.buffer_capacity());
                }
            }
            let delta_ref = reference.pool.stats().since(&before_ref);
            let delta_store = store.io_stats().since(&before_store);
            prop_assert_eq!(
                delta_ref, delta_store,
                "stat delta diverged at step {} on {:?}", step, op
            );
            prop_assert_eq!(reference.pool.cached_pages(), store.cached_pages());
        }
    }
}

/// Disjoint sessions partition the store's traffic exactly: with every
/// access charged to some session, per-session stats sum to the global
/// aggregate even under contention on a multi-shard pool.
#[test]
fn concurrent_sessions_sum_to_global_aggregate() {
    const THREADS: usize = 8;
    const PAGES: usize = 64;
    const ROUNDS: usize = 300;
    let store = PageStore::with_config_sharded(32, 16, 4);
    let ids: Vec<PageId> = (0..PAGES).map(|_| store.alloc_page()).collect();
    for (i, &id) in ids.iter().enumerate() {
        store.write_page(id, &[i as u8; 32]);
    }
    store.flush();
    store.clear_cache();
    store.reset_stats();

    let sessions: Vec<QueryContext> = (0..THREADS).map(|_| QueryContext::new()).collect();
    std::thread::scope(|scope| {
        for (t, session) in sessions.iter().enumerate() {
            let store = &store;
            let ids = &ids;
            scope.spawn(move || {
                // Each worker walks its own stride so the mix covers
                // shard-local hits, cross-thread sharing and evictions.
                for round in 0..ROUNDS {
                    let idx = (t * 7 + round * 3) % ids.len();
                    store.with_page_ctx(ids[idx], Some(session), |d| {
                        assert_eq!(d[0] as usize, idx);
                    });
                }
            });
        }
    });

    let total: IoStats = sessions
        .iter()
        .fold(IoStats::default(), |acc, s| acc + s.stats());
    let global = store.io_stats();
    assert_eq!(
        total, global,
        "per-session traffic must partition the global counters"
    );
    assert_eq!(global.logical_reads() as usize, THREADS * ROUNDS);
    assert!(
        global.faults > 0,
        "working set exceeds the pool: must fault"
    );
    for s in &sessions {
        assert_eq!(s.stats().logical_reads() as usize, ROUNDS);
    }
}
