//! The typed request/response vocabulary the gateway speaks, plus its
//! hand-written serde impls (tagged maps, the workspace enum idiom).
//!
//! Every way a query can fail inside the serving stack maps to a distinct
//! [`ErrorCode`] on the wire — admission shedding
//! ([`Rejected::QueueFull`], [`Rejected::TenantQuotaExceeded`]) and every
//! [`AbortReason`] included — so a client can always tell *why* it got no
//! matching back. Nothing is silently dropped: aborted queries return
//! their partial [`AlgoStats`] alongside the error.

use std::time::Duration;

use cca_core::{AlgoStats, Matching, SolverConfig};
use cca_geo::Point;
use cca_serve::{Rejected, TenantStats};
use cca_storage::{AbortReason, Priority, TenantId};
use serde::{Deserialize, Error, Serialize, Value};

/// Version tag exchanged in the handshake; bumped on incompatible wire
/// changes.
pub const PROTOCOL_VERSION: u32 = 1;

/// First frame on every connection: the client introduces its tenant and
/// protocol version.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hello {
    pub tenant: TenantId,
    pub version: u32,
}

impl Hello {
    /// A current-version handshake for `tenant`.
    pub fn new(tenant: TenantId) -> Self {
        Hello {
            tenant,
            version: PROTOCOL_VERSION,
        }
    }
}

/// The server's handshake acknowledgement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HelloAck {
    pub version: u32,
}

/// What a solve runs against: a dataset preloaded on the server (solved
/// against its disk-backed R-tree, warm cache) or problem data shipped
/// inline in the request (solved in memory).
#[derive(Clone, Debug, PartialEq)]
pub enum ProblemSpec {
    Dataset(String),
    Inline {
        providers: Vec<(Point, u32)>,
        customers: Vec<Point>,
    },
}

/// One capacity-constrained assignment query.
#[derive(Clone, Debug)]
pub struct SolveRequest {
    /// Which solver and with what knobs ([`SolverConfig`]).
    pub config: SolverConfig,
    pub problem: ProblemSpec,
    /// Scheduling priority inside the serving queue.
    pub priority: Priority,
    /// Deadline measured from admission (queue wait included).
    pub deadline: Option<Duration>,
    /// Page-fault budget for dataset solves.
    pub io_budget: Option<u64>,
}

impl SolveRequest {
    /// A normal-priority, unbounded request.
    pub fn new(config: SolverConfig, problem: ProblemSpec) -> Self {
        SolveRequest {
            config,
            problem,
            priority: Priority::Normal,
            deadline: None,
            io_budget: None,
        }
    }

    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    pub fn io_budget(mut self, faults: u64) -> Self {
        self.io_budget = Some(faults);
        self
    }
}

/// A client→server frame (after the handshake).
#[derive(Clone, Debug)]
pub enum NetRequest {
    Solve(SolveRequest),
    /// Ask for the per-tenant serving stats.
    Stats,
    Ping,
}

/// A successful solve: the matching plus the algorithm/I-O counters.
#[derive(Clone, Debug)]
pub struct SolveReply {
    pub matching: Matching,
    pub stats: AlgoStats,
}

/// Per-tenant serving stats, one entry per tenant the instance has seen.
#[derive(Clone, Debug)]
pub struct StatsReply {
    pub tenants: Vec<TenantStats>,
}

/// Why a request failed, as a stable numeric code. Codes 1–2 are
/// admission shedding ([`Rejected`]), 3–5 are in-flight aborts
/// ([`AbortReason`]) — each source variant gets its own code, so nothing
/// collapses into a generic failure on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The instance's global queue was full ([`Rejected::QueueFull`]).
    QueueFull,
    /// The tenant's own queue-slot quota was exhausted
    /// ([`Rejected::TenantQuotaExceeded`]).
    TenantQuotaExceeded,
    /// The query was cancelled ([`AbortReason::Cancelled`]).
    Cancelled,
    /// The query ran past its deadline ([`AbortReason::DeadlineExceeded`]).
    DeadlineExceeded,
    /// The query exhausted its page-fault budget
    /// ([`AbortReason::IoBudgetExceeded`]).
    IoBudgetExceeded,
    /// The request named a solver the registry doesn't know.
    UnknownSolver,
    /// The request named a dataset the gateway hasn't preloaded.
    UnknownDataset,
    /// The frame decoded but the request is invalid.
    BadRequest,
    /// Handshake version disagreed — the client spoke a different
    /// protocol revision.
    VersionMismatch,
    /// The server failed internally (e.g. a solver panic).
    Internal,
    /// The server is at its connection limit and refused this connection.
    ConnectionLimit,
    /// The connection sat idle past the server's per-connection read
    /// timeout and was closed.
    ReadTimeout,
}

impl ErrorCode {
    /// The stable wire code.
    pub fn code(self) -> u16 {
        match self {
            ErrorCode::QueueFull => 1,
            ErrorCode::TenantQuotaExceeded => 2,
            ErrorCode::Cancelled => 3,
            ErrorCode::DeadlineExceeded => 4,
            ErrorCode::IoBudgetExceeded => 5,
            ErrorCode::UnknownSolver => 6,
            ErrorCode::UnknownDataset => 7,
            ErrorCode::BadRequest => 8,
            ErrorCode::VersionMismatch => 9,
            ErrorCode::Internal => 10,
            ErrorCode::ConnectionLimit => 11,
            ErrorCode::ReadTimeout => 12,
        }
    }

    /// The code's enum, if known.
    pub fn from_code(code: u16) -> Option<Self> {
        Some(match code {
            1 => ErrorCode::QueueFull,
            2 => ErrorCode::TenantQuotaExceeded,
            3 => ErrorCode::Cancelled,
            4 => ErrorCode::DeadlineExceeded,
            5 => ErrorCode::IoBudgetExceeded,
            6 => ErrorCode::UnknownSolver,
            7 => ErrorCode::UnknownDataset,
            8 => ErrorCode::BadRequest,
            9 => ErrorCode::VersionMismatch,
            10 => ErrorCode::Internal,
            11 => ErrorCode::ConnectionLimit,
            12 => ErrorCode::ReadTimeout,
            _ => return None,
        })
    }

    /// All codes, for exhaustiveness tests.
    pub const ALL: [ErrorCode; 12] = [
        ErrorCode::QueueFull,
        ErrorCode::TenantQuotaExceeded,
        ErrorCode::Cancelled,
        ErrorCode::DeadlineExceeded,
        ErrorCode::IoBudgetExceeded,
        ErrorCode::UnknownSolver,
        ErrorCode::UnknownDataset,
        ErrorCode::BadRequest,
        ErrorCode::VersionMismatch,
        ErrorCode::Internal,
        ErrorCode::ConnectionLimit,
        ErrorCode::ReadTimeout,
    ];
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::QueueFull => "queue full",
            ErrorCode::TenantQuotaExceeded => "tenant quota exceeded",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::DeadlineExceeded => "deadline exceeded",
            ErrorCode::IoBudgetExceeded => "io budget exceeded",
            ErrorCode::UnknownSolver => "unknown solver",
            ErrorCode::UnknownDataset => "unknown dataset",
            ErrorCode::BadRequest => "bad request",
            ErrorCode::VersionMismatch => "version mismatch",
            ErrorCode::Internal => "internal error",
            ErrorCode::ConnectionLimit => "connection limit reached",
            ErrorCode::ReadTimeout => "connection read timeout",
        };
        write!(f, "{name} (code {})", self.code())
    }
}

impl From<&Rejected> for ErrorCode {
    fn from(r: &Rejected) -> Self {
        match r {
            Rejected::QueueFull { .. } => ErrorCode::QueueFull,
            Rejected::TenantQuotaExceeded { .. } => ErrorCode::TenantQuotaExceeded,
        }
    }
}

impl From<AbortReason> for ErrorCode {
    fn from(r: AbortReason) -> Self {
        match r {
            AbortReason::Cancelled => ErrorCode::Cancelled,
            AbortReason::DeadlineExceeded => ErrorCode::DeadlineExceeded,
            AbortReason::IoBudgetExceeded => ErrorCode::IoBudgetExceeded,
        }
    }
}

/// A structured failure reply. Aborted solves (codes 3–5) carry their
/// partial counters so a shed-or-aborted query is still attributable.
#[derive(Clone, Debug)]
pub struct WireFault {
    pub code: ErrorCode,
    pub message: String,
    /// Partial [`AlgoStats`] for in-flight aborts; `None` for requests
    /// that never ran.
    pub partial_stats: Option<AlgoStats>,
}

impl std::fmt::Display for WireFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// A server→client frame.
#[derive(Clone, Debug)]
pub enum NetResponse {
    Hello(HelloAck),
    Solved(SolveReply),
    Stats(StatsReply),
    Pong,
    Error(WireFault),
}

// ---------------------------------------------------------------------
// Serde impls (hand-written; the vendored shim has no derive).
// ---------------------------------------------------------------------

impl Serialize for Hello {
    fn to_value(&self) -> Value {
        Value::map([
            ("tenant", self.tenant.to_value()),
            ("version", self.version.to_value()),
        ])
    }
}

impl Deserialize for Hello {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Hello {
            tenant: Deserialize::from_value(v.get("tenant")?)?,
            version: u32::from_value(v.get("version")?)?,
        })
    }
}

impl Serialize for HelloAck {
    fn to_value(&self) -> Value {
        Value::map([("version", self.version.to_value())])
    }
}

impl Deserialize for HelloAck {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(HelloAck {
            version: u32::from_value(v.get("version")?)?,
        })
    }
}

impl Serialize for ProblemSpec {
    fn to_value(&self) -> Value {
        match self {
            ProblemSpec::Dataset(name) => {
                Value::map([("kind", "dataset".to_value()), ("name", name.to_value())])
            }
            ProblemSpec::Inline {
                providers,
                customers,
            } => Value::map([
                ("kind", "inline".to_value()),
                ("providers", providers.to_value()),
                ("customers", customers.to_value()),
            ]),
        }
    }
}

impl Deserialize for ProblemSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match String::from_value(v.get("kind")?)?.as_str() {
            "dataset" => Ok(ProblemSpec::Dataset(String::from_value(v.get("name")?)?)),
            "inline" => Ok(ProblemSpec::Inline {
                providers: Deserialize::from_value(v.get("providers")?)?,
                customers: Deserialize::from_value(v.get("customers")?)?,
            }),
            other => Err(Error(format!("unknown problem kind `{other}`"))),
        }
    }
}

impl Serialize for SolveRequest {
    fn to_value(&self) -> Value {
        Value::map([
            ("config", self.config.to_value()),
            ("problem", self.problem.to_value()),
            ("priority", self.priority.to_value()),
            ("deadline", self.deadline.to_value()),
            ("io_budget", self.io_budget.to_value()),
        ])
    }
}

impl Deserialize for SolveRequest {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(SolveRequest {
            config: Deserialize::from_value(v.get("config")?)?,
            problem: Deserialize::from_value(v.get("problem")?)?,
            priority: Deserialize::from_value(v.get("priority")?)?,
            deadline: Deserialize::from_value(v.get("deadline")?)?,
            io_budget: Deserialize::from_value(v.get("io_budget")?)?,
        })
    }
}

impl Serialize for NetRequest {
    fn to_value(&self) -> Value {
        match self {
            NetRequest::Solve(req) => {
                Value::map([("kind", "solve".to_value()), ("request", req.to_value())])
            }
            NetRequest::Stats => Value::map([("kind", "stats".to_value())]),
            NetRequest::Ping => Value::map([("kind", "ping".to_value())]),
        }
    }
}

impl Deserialize for NetRequest {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match String::from_value(v.get("kind")?)?.as_str() {
            "solve" => Ok(NetRequest::Solve(Deserialize::from_value(
                v.get("request")?,
            )?)),
            "stats" => Ok(NetRequest::Stats),
            "ping" => Ok(NetRequest::Ping),
            other => Err(Error(format!("unknown request kind `{other}`"))),
        }
    }
}

impl Serialize for SolveReply {
    fn to_value(&self) -> Value {
        Value::map([
            ("matching", self.matching.to_value()),
            ("stats", self.stats.to_value()),
        ])
    }
}

impl Deserialize for SolveReply {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(SolveReply {
            matching: Deserialize::from_value(v.get("matching")?)?,
            stats: Deserialize::from_value(v.get("stats")?)?,
        })
    }
}

impl Serialize for StatsReply {
    fn to_value(&self) -> Value {
        Value::map([("tenants", self.tenants.to_value())])
    }
}

impl Deserialize for StatsReply {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(StatsReply {
            tenants: Deserialize::from_value(v.get("tenants")?)?,
        })
    }
}

impl Serialize for ErrorCode {
    fn to_value(&self) -> Value {
        self.code().to_value()
    }
}

impl Deserialize for ErrorCode {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let code = u16::from_value(v)?;
        ErrorCode::from_code(code).ok_or_else(|| Error(format!("unknown error code {code}")))
    }
}

impl Serialize for WireFault {
    fn to_value(&self) -> Value {
        Value::map([
            ("code", self.code.to_value()),
            ("message", self.message.to_value()),
            ("partial_stats", self.partial_stats.to_value()),
        ])
    }
}

impl Deserialize for WireFault {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(WireFault {
            code: Deserialize::from_value(v.get("code")?)?,
            message: String::from_value(v.get("message")?)?,
            partial_stats: Deserialize::from_value(v.get("partial_stats")?)?,
        })
    }
}

impl Serialize for NetResponse {
    fn to_value(&self) -> Value {
        match self {
            NetResponse::Hello(ack) => {
                Value::map([("kind", "hello".to_value()), ("ack", ack.to_value())])
            }
            NetResponse::Solved(reply) => {
                Value::map([("kind", "solved".to_value()), ("reply", reply.to_value())])
            }
            NetResponse::Stats(reply) => {
                Value::map([("kind", "stats".to_value()), ("reply", reply.to_value())])
            }
            NetResponse::Pong => Value::map([("kind", "pong".to_value())]),
            NetResponse::Error(fault) => {
                Value::map([("kind", "error".to_value()), ("fault", fault.to_value())])
            }
        }
    }
}

impl Deserialize for NetResponse {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match String::from_value(v.get("kind")?)?.as_str() {
            "hello" => Ok(NetResponse::Hello(Deserialize::from_value(v.get("ack")?)?)),
            "solved" => Ok(NetResponse::Solved(Deserialize::from_value(
                v.get("reply")?,
            )?)),
            "stats" => Ok(NetResponse::Stats(Deserialize::from_value(
                v.get("reply")?,
            )?)),
            "pong" => Ok(NetResponse::Pong),
            "error" => Ok(NetResponse::Error(Deserialize::from_value(
                v.get("fault")?,
            )?)),
            other => Err(Error(format!("unknown response kind `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_are_distinct_and_roundtrip() {
        let mut seen = std::collections::HashSet::new();
        for code in ErrorCode::ALL {
            assert!(seen.insert(code.code()), "{code:?} reuses a wire code");
            assert_eq!(ErrorCode::from_code(code.code()), Some(code));
        }
        assert_eq!(ErrorCode::from_code(0), None);
        assert_eq!(ErrorCode::from_code(13), None);
    }

    #[test]
    fn every_shed_and_abort_variant_maps_to_its_own_code() {
        use cca_storage::TenantId;
        let codes = [
            ErrorCode::from(&Rejected::QueueFull { capacity: 1 }),
            ErrorCode::from(&Rejected::TenantQuotaExceeded {
                tenant: TenantId(1),
                queue_slots: 1,
            }),
            ErrorCode::from(AbortReason::Cancelled),
            ErrorCode::from(AbortReason::DeadlineExceeded),
            ErrorCode::from(AbortReason::IoBudgetExceeded),
        ];
        let distinct: std::collections::HashSet<u16> = codes.iter().map(|c| c.code()).collect();
        assert_eq!(distinct.len(), codes.len(), "no two sources share a code");
    }

    #[test]
    fn request_and_response_json_roundtrip() {
        let req = NetRequest::Solve(
            SolveRequest::new(
                SolverConfig::new("ida").theta(8.0),
                ProblemSpec::Inline {
                    providers: vec![(Point::new(1.0, 2.0), 3)],
                    customers: vec![Point::new(4.0, 5.0)],
                },
            )
            .priority(Priority::High)
            .deadline(Duration::from_millis(250))
            .io_budget(1000),
        );
        let json = serde::json::to_string(&req);
        let back: NetRequest = serde::json::from_str(&json).unwrap();
        // The shim's Value model is ordered (BTreeMap), so equal JSON means
        // equal message.
        assert_eq!(serde::json::to_string(&back), json);

        let resp = NetResponse::Error(WireFault {
            code: ErrorCode::DeadlineExceeded,
            message: "query ran 300ms past its 250ms deadline".into(),
            partial_stats: None,
        });
        let json = serde::json::to_string(&resp);
        let back: NetResponse = serde::json::from_str(&json).unwrap();
        assert_eq!(serde::json::to_string(&back), json);
        match back {
            NetResponse::Error(fault) => {
                assert_eq!(fault.code, ErrorCode::DeadlineExceeded);
                assert!(fault.partial_stats.is_none());
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn handshake_frames_roundtrip() {
        use cca_storage::TenantId;
        let hello = Hello::new(TenantId(42));
        let back: Hello = serde::json::from_str(&serde::json::to_string(&hello)).unwrap();
        assert_eq!(back, hello);
        assert_eq!(back.version, PROTOCOL_VERSION);

        let ack = HelloAck {
            version: PROTOCOL_VERSION,
        };
        let back: HelloAck = serde::json::from_str(&serde::json::to_string(&ack)).unwrap();
        assert_eq!(back, ack);
    }
}
