//! The transport-agnostic frame codec: length-prefixed frames over any
//! `Read`/`Write` pair, with serde-encoded payloads.
//!
//! A frame is a 4-byte big-endian payload length followed by the payload
//! (UTF-8 JSON via the workspace serde shim). The codec knows nothing
//! about sockets — the blocking TCP server and client in this crate drive
//! it over `TcpStream` halves, and an async front-end could drive the
//! same functions over its own buffered streams.
//!
//! Every failure is a typed [`WireError`]; no input, however truncated or
//! garbled, panics the decoder (the codec proptests pin this down).

use std::io::{self, Read, Write};

use serde::{Deserialize, Serialize};

/// Default per-frame size bound (16 MiB): generous enough for an inline
/// problem with a few hundred thousand points, small enough that a bogus
/// length prefix cannot make a peer allocate without limit.
pub const DEFAULT_MAX_FRAME: usize = 16 * 1024 * 1024;

/// Why a frame could not be read, written, or decoded.
#[derive(Debug)]
pub enum WireError {
    /// Transport failure underneath the frame layer.
    Io(io::Error),
    /// The stream ended in the middle of a frame (header or payload) —
    /// distinct from a clean close at a frame boundary, which the read
    /// path reports as `None`.
    Truncated,
    /// The declared payload length exceeds the size bound; the stream is
    /// desynchronised and must be closed.
    FrameTooLarge { len: usize, max: usize },
    /// The payload arrived intact but is not the expected message (bad
    /// UTF-8, bad JSON, or a JSON shape the type rejects).
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::Truncated => write!(f, "stream ended mid-frame"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte bound")
            }
            WireError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8], max: usize) -> Result<(), WireError> {
    if payload.len() > max {
        return Err(WireError::FrameTooLarge {
            len: payload.len(),
            max,
        });
    }
    let len = u32::try_from(payload.len()).map_err(|_| WireError::FrameTooLarge {
        len: payload.len(),
        max,
    })?;
    w.write_all(&len.to_be_bytes()).map_err(WireError::Io)?;
    w.write_all(payload).map_err(WireError::Io)?;
    w.flush().map_err(WireError::Io)
}

/// Reads one frame's payload. `Ok(None)` is a clean close: the peer shut
/// the stream down exactly at a frame boundary. An EOF anywhere *inside*
/// a frame is [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max {
        return Err(WireError::FrameTooLarge { len, max });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| match e.kind() {
        io::ErrorKind::UnexpectedEof => WireError::Truncated,
        _ => WireError::Io(e),
    })?;
    Ok(Some(payload))
}

/// Encodes a message into frame-payload bytes.
pub fn encode<T: Serialize + ?Sized>(msg: &T) -> Vec<u8> {
    serde::json::to_string(msg).into_bytes()
}

/// Decodes frame-payload bytes into a message.
pub fn decode<T: Deserialize>(payload: &[u8]) -> Result<T, WireError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| WireError::Malformed(format!("invalid UTF-8: {e}")))?;
    serde::json::from_str(text).map_err(|e| WireError::Malformed(e.to_string()))
}

/// [`encode`] + [`write_frame`].
pub fn send_message<T: Serialize + ?Sized>(
    w: &mut impl Write,
    msg: &T,
    max: usize,
) -> Result<(), WireError> {
    write_frame(w, &encode(msg), max)
}

/// [`read_frame`] + [`decode`]; `Ok(None)` is the peer's clean close.
pub fn recv_message<T: Deserialize>(r: &mut impl Read, max: usize) -> Result<Option<T>, WireError> {
    match read_frame(r, max)? {
        Some(payload) => decode(&payload).map(Some),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", 64).unwrap();
        write_frame(&mut buf, b"", 64).unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, 64).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_header_and_payload_are_typed_errors() {
        let mut full = Vec::new();
        write_frame(&mut full, b"payload", 64).unwrap();
        for cut in 1..full.len() {
            let mut r = io::Cursor::new(full[..cut].to_vec());
            assert!(
                matches!(read_frame(&mut r, 64), Err(WireError::Truncated)),
                "cut at {cut} must be Truncated"
            );
        }
    }

    #[test]
    fn oversized_frames_are_rejected_on_both_sides() {
        let mut buf = Vec::new();
        assert!(matches!(
            write_frame(&mut buf, &[0u8; 100], 64),
            Err(WireError::FrameTooLarge { len: 100, max: 64 })
        ));
        let mut evil = Vec::new();
        evil.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut r = io::Cursor::new(evil);
        assert!(matches!(
            read_frame(&mut r, 64),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn garbage_payload_decodes_to_malformed_not_panic() {
        assert!(matches!(
            decode::<u64>(&[0xff, 0xfe, 0x00]),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            decode::<u64>(b"{not json"),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            decode::<u64>(b"\"a string, not a number\""),
            Err(WireError::Malformed(_))
        ));
    }
}
