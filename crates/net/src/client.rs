//! A small blocking client for the gateway protocol.
//!
//! One [`NetClient`] is one connection (and therefore one tenant — the
//! tenant is fixed by the handshake). Calls are synchronous
//! request/response; a [`WireFault`] reply surfaces as
//! [`NetError::Server`] with the typed [`ErrorCode`] intact, so callers
//! can distinguish shedding from deadline aborts from bad requests.

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use cca_storage::TenantId;
use serde::Serialize;

use crate::codec::{self, WireError, DEFAULT_MAX_FRAME};
use crate::proto::{
    Hello, NetRequest, NetResponse, SolveReply, SolveRequest, StatsReply, WireFault,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum NetError {
    /// The transport or codec failed underneath the protocol.
    Wire(WireError),
    /// The server answered with a typed fault (shed, aborted, bad
    /// request, …) — inspect [`WireFault::code`]. Boxed because an
    /// abort fault carries the run's full partial stats.
    Server(Box<WireFault>),
    /// The server closed the connection.
    Closed,
    /// The server answered with a frame the call didn't expect.
    Unexpected(&'static str),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Server(fault) => write!(f, "server fault: {fault}"),
            NetError::Closed => write!(f, "server closed the connection"),
            NetError::Unexpected(what) => write!(f, "unexpected reply to {what}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

/// A blocking connection to a [`crate::NetServer`], bound to one tenant.
pub struct NetClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame: usize,
    tenant: TenantId,
}

impl NetClient {
    /// Connects, performs the tenant handshake and returns a ready
    /// client. Fails with [`NetError::Server`] on a version mismatch.
    pub fn connect(addr: impl ToSocketAddrs, tenant: TenantId) -> Result<Self, NetError> {
        Self::connect_with(addr, tenant, DEFAULT_MAX_FRAME)
    }

    /// [`NetClient::connect`] with a custom per-frame size bound (must
    /// match the server's to make use of it).
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        tenant: TenantId,
        max_frame: usize,
    ) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr).map_err(|e| NetError::Wire(WireError::Io(e)))?;
        let read_half = stream
            .try_clone()
            .map_err(|e| NetError::Wire(WireError::Io(e)))?;
        let mut client = NetClient {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            max_frame,
            tenant,
        };
        client.send(&Hello::new(tenant))?;
        match client.recv()? {
            NetResponse::Hello(_) => Ok(client),
            NetResponse::Error(fault) => Err(NetError::Server(Box::new(fault))),
            _ => Err(NetError::Unexpected("handshake")),
        }
    }

    /// The tenant this connection authenticated as.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Submits one solve and blocks for its outcome. Shed or aborted
    /// queries come back as [`NetError::Server`] with the distinct
    /// [`crate::ErrorCode`] (and, for aborts, the partial stats).
    pub fn solve(&mut self, request: SolveRequest) -> Result<SolveReply, NetError> {
        self.send(&NetRequest::Solve(request))?;
        match self.recv()? {
            NetResponse::Solved(reply) => Ok(reply),
            NetResponse::Error(fault) => Err(NetError::Server(Box::new(fault))),
            _ => Err(NetError::Unexpected("solve")),
        }
    }

    /// Fetches the per-tenant serving stats (all tenants, not just this
    /// connection's).
    pub fn stats(&mut self) -> Result<StatsReply, NetError> {
        self.send(&NetRequest::Stats)?;
        match self.recv()? {
            NetResponse::Stats(reply) => Ok(reply),
            NetResponse::Error(fault) => Err(NetError::Server(Box::new(fault))),
            _ => Err(NetError::Unexpected("stats")),
        }
    }

    /// Round-trips a ping.
    pub fn ping(&mut self) -> Result<(), NetError> {
        self.send(&NetRequest::Ping)?;
        match self.recv()? {
            NetResponse::Pong => Ok(()),
            NetResponse::Error(fault) => Err(NetError::Server(Box::new(fault))),
            _ => Err(NetError::Unexpected("ping")),
        }
    }

    fn send<T: Serialize>(&mut self, msg: &T) -> Result<(), NetError> {
        codec::send_message(&mut self.writer, msg, self.max_frame).map_err(NetError::from)
    }

    fn recv(&mut self) -> Result<NetResponse, NetError> {
        match codec::recv_message(&mut self.reader, self.max_frame)? {
            Some(response) => Ok(response),
            None => Err(NetError::Closed),
        }
    }
}
