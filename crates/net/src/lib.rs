//! `cca-net` — the network gateway over a persistent CCA serving
//! instance.
//!
//! Three layers, each usable without the one above it:
//!
//! * [`codec`] — transport-agnostic length-prefixed frames over any
//!   `Read`/`Write` pair, with serde-encoded payloads and typed
//!   [`WireError`]s for every way bytes can go wrong.
//! * [`proto`] — the request/response vocabulary: a per-connection
//!   tenant [`Hello`] handshake, solves against inline problem data or a
//!   server-preloaded dataset (with priority, deadline and I/O budget),
//!   a stats request returning per-tenant [`cca_serve::TenantStats`]
//!   (queue counters, attributed I/O, sliding-window QPS), and
//!   structured errors: every admission shed
//!   ([`cca_serve::Rejected`]) and every in-flight abort
//!   ([`cca_storage::AbortReason`]) maps to its own [`ErrorCode`] — no
//!   silent drops.
//! * the transport — a blocking thread-per-connection TCP server
//!   ([`NetServer`]) over a transport-free protocol engine
//!   ([`Gateway`]), and a small blocking [`NetClient`]. The server
//!   enforces a connection cap and an idle read timeout
//!   ([`NetServerConfig`]), both surfaced to the peer as typed wire
//!   faults rather than silent drops.
//!
//! The gateway's [`cca_serve::ServingInstance`] is persistent: it
//! outlives individual connections *and* individual batches, so a
//! [`cca::BatchRunner`] can run batches through
//! [`cca::BatchRunner::run_on`] on the same instance that is serving TCP
//! tenants, with quotas, fairness and cumulative per-tenant stats spanning
//! both worlds.
//!
//! ```no_run
//! use std::sync::Arc;
//! use cca_net::{Gateway, NetClient, NetServer, ProblemSpec, SolveRequest};
//! use cca::{ServeConfig, SolverConfig, TenantId};
//!
//! let gateway = Arc::new(Gateway::builder()
//!     .serve_config(ServeConfig::default().workers(2))
//!     .start());
//! let server = NetServer::bind("127.0.0.1:0", Arc::clone(&gateway)).unwrap();
//!
//! let mut client = NetClient::connect(server.local_addr(), TenantId(7)).unwrap();
//! let reply = client.solve(SolveRequest::new(
//!     SolverConfig::new("ida"),
//!     ProblemSpec::Inline {
//!         providers: vec![(cca::geo::Point::new(0.0, 0.0), 4)],
//!         customers: vec![cca::geo::Point::new(1.0, 1.0)],
//!     },
//! )).unwrap();
//! assert_eq!(reply.matching.size(), 1);
//! server.shutdown();
//! ```

pub mod codec;
pub mod proto;

mod client;
mod server;

pub use client::{NetClient, NetError};
pub use codec::{WireError, DEFAULT_MAX_FRAME};
pub use proto::{
    ErrorCode, Hello, HelloAck, NetRequest, NetResponse, ProblemSpec, SolveReply, SolveRequest,
    StatsReply, WireFault, PROTOCOL_VERSION,
};
pub use server::{Gateway, GatewayBuilder, NetServer, NetServerConfig};
