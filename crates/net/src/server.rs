//! The gateway (protocol → serving stack) and the blocking TCP server
//! that drives it thread-per-connection.
//!
//! [`Gateway`] is transport-free: it owns the persistent
//! [`ServingInstance`], the preloaded datasets and the solver registry,
//! and turns one [`NetRequest`] into one [`NetResponse`]. [`NetServer`]
//! is the TCP shell around it — an accept loop spawning one blocking
//! thread per connection, each of which performs the tenant handshake and
//! then loops request/response over the frame codec. Embedders that want
//! a different transport (unix sockets, an in-process harness, async)
//! reuse [`Gateway::handle`] unchanged.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cca::{Problem, QueryResult, SpatialAssignment};
use cca_core::solver::SolverRegistry;
use cca_serve::{Request, ServeConfig, ServingInstance};
use cca_storage::{QueryContext, TenantId};

use crate::codec::{self, WireError, DEFAULT_MAX_FRAME};
use crate::proto::{
    ErrorCode, Hello, HelloAck, NetRequest, NetResponse, ProblemSpec, SolveReply, SolveRequest,
    StatsReply, WireFault, PROTOCOL_VERSION,
};

/// Configures and starts a [`Gateway`].
pub struct GatewayBuilder {
    serve: ServeConfig,
    registry: SolverRegistry,
    datasets: Vec<(String, Arc<SpatialAssignment>)>,
    max_frame: usize,
}

impl GatewayBuilder {
    /// The serving configuration (workers, queue capacity, tenant quotas,
    /// aging, rate window) for the gateway's persistent instance.
    pub fn serve_config(mut self, config: ServeConfig) -> Self {
        self.serve = config;
        self
    }

    /// Replaces the solver registry.
    pub fn registry(mut self, registry: SolverRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Preloads `data` under `name` for [`ProblemSpec::Dataset`] solves.
    pub fn dataset(mut self, name: impl Into<String>, data: Arc<SpatialAssignment>) -> Self {
        self.datasets.push((name.into(), data));
        self
    }

    /// Per-frame size bound for the gateway's connections.
    pub fn max_frame(mut self, max: usize) -> Self {
        assert!(max >= 64, "frames must at least fit a handshake");
        self.max_frame = max;
        self
    }

    /// Starts the serving instance and returns the gateway.
    pub fn start(self) -> Gateway {
        Gateway {
            instance: ServingInstance::start(self.serve),
            registry: self.registry,
            datasets: self.datasets.into_iter().collect(),
            max_frame: self.max_frame,
        }
    }
}

/// The protocol engine over a persistent [`ServingInstance`]: maps typed
/// requests to scheduler submissions and outcomes (including every shed
/// and abort) to typed responses.
pub struct Gateway {
    instance: ServingInstance<QueryResult>,
    registry: SolverRegistry,
    datasets: HashMap<String, Arc<SpatialAssignment>>,
    max_frame: usize,
}

impl Gateway {
    /// A builder with default serving config, the default registry, no
    /// datasets and the default frame bound.
    pub fn builder() -> GatewayBuilder {
        GatewayBuilder {
            serve: ServeConfig::default(),
            registry: SolverRegistry::with_defaults(),
            datasets: Vec::new(),
            max_frame: DEFAULT_MAX_FRAME,
        }
    }

    /// The underlying serving instance — shared with any other submitter
    /// (e.g. a [`cca::BatchRunner`] running batches through
    /// `run_on(gateway.instance(), ..)` alongside network traffic).
    pub fn instance(&self) -> &ServingInstance<QueryResult> {
        &self.instance
    }

    /// The per-frame size bound connections should enforce.
    pub fn max_frame(&self) -> usize {
        self.max_frame
    }

    /// Handles one request from `tenant`, blocking until the outcome is
    /// known. Every failure path returns a typed [`NetResponse::Error`].
    pub fn handle(&self, tenant: TenantId, request: NetRequest) -> NetResponse {
        match request {
            NetRequest::Ping => NetResponse::Pong,
            NetRequest::Stats => NetResponse::Stats(StatsReply {
                tenants: self.instance.tenant_stats(),
            }),
            NetRequest::Solve(req) => self.solve(tenant, req),
        }
    }

    fn solve(&self, tenant: TenantId, req: SolveRequest) -> NetResponse {
        // Validate before burning a queue slot: a bad solver name or
        // dataset must not count against the tenant's quota.
        let solver = match self.registry.build(&req.config) {
            Ok(solver) => solver,
            Err(e) => return fault(ErrorCode::UnknownSolver, e.to_string()),
        };

        let mut ctx = QueryContext::new()
            .with_tenant(tenant)
            .with_priority(req.priority);
        if let Some(deadline) = req.deadline {
            ctx = ctx.with_timeout(deadline);
        }
        if let Some(faults) = req.io_budget {
            ctx = ctx.with_io_budget(faults);
        }

        let config = req.config;
        let label = solver.label();
        let work: Box<dyn FnOnce(&QueryContext) -> QueryResult + Send> = match req.problem {
            ProblemSpec::Dataset(name) => {
                let Some(data) = self.datasets.get(&name) else {
                    return fault(ErrorCode::UnknownDataset, format!("no dataset `{name}`"));
                };
                let data = Arc::clone(data);
                Box::new(move |ctx: &QueryContext| {
                    let problem = data.problem().with_context(ctx);
                    let outcome = solver.run(&problem);
                    let aborted = outcome.abort_reason();
                    let (matching, stats) = outcome.into_parts();
                    QueryResult {
                        index: 0,
                        label,
                        config,
                        matching,
                        stats,
                        aborted,
                    }
                })
            }
            ProblemSpec::Inline {
                providers,
                customers,
            } => Box::new(move |ctx: &QueryContext| {
                let problem = Problem::new(&providers)
                    .with_customers(&customers)
                    .with_context(ctx);
                let outcome = solver.run(&problem);
                let aborted = outcome.abort_reason();
                let (matching, stats) = outcome.into_parts();
                QueryResult {
                    index: 0,
                    label,
                    config,
                    matching,
                    stats,
                    aborted,
                }
            }),
        };

        let ticket = match self.instance.submit(Request::new(work).context(ctx)) {
            Ok(ticket) => ticket,
            // Admission shedding → its own wire code per variant.
            Err(rejected) => return fault(ErrorCode::from(&rejected), rejected.to_string()),
        };
        let result = match catch_unwind(AssertUnwindSafe(move || ticket.wait())) {
            Ok(result) => result,
            Err(_) => return fault(ErrorCode::Internal, "query execution panicked"),
        };
        match result.aborted {
            // In-flight aborts → their own codes, with the partial
            // counters attached (the run's exact attributed I/O).
            Some(reason) => NetResponse::Error(WireFault {
                code: ErrorCode::from(reason),
                message: reason.to_string(),
                partial_stats: Some(result.stats),
            }),
            None => NetResponse::Solved(SolveReply {
                matching: result.matching,
                stats: result.stats,
            }),
        }
    }
}

fn fault(code: ErrorCode, message: impl Into<String>) -> NetResponse {
    NetResponse::Error(WireFault {
        code,
        message: message.into(),
        partial_stats: None,
    })
}

/// Connection-level limits for a [`NetServer`].
///
/// Both limits exist to keep a blocking thread-per-connection server from
/// being pinned down by misbehaving peers: a connection flood would
/// otherwise spawn unbounded threads, and an idle-but-open connection
/// would park one thread forever in a blocking read. Every enforcement is
/// a *typed* wire fault ([`ErrorCode::ConnectionLimit`] /
/// [`ErrorCode::ReadTimeout`]) before the socket closes — never a silent
/// drop or a hang.
#[derive(Clone, Copy, Debug)]
pub struct NetServerConfig {
    /// Maximum simultaneously served connections; further connections are
    /// refused with [`ErrorCode::ConnectionLimit`].
    pub max_connections: usize,
    /// How long a connection may sit idle between frames before it is
    /// closed with [`ErrorCode::ReadTimeout`]. `None` waits forever.
    pub read_timeout: Option<Duration>,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            max_connections: 256,
            read_timeout: Some(Duration::from_secs(30)),
        }
    }
}

impl NetServerConfig {
    /// Sets the connection cap.
    pub fn max_connections(mut self, max: usize) -> Self {
        assert!(max >= 1, "a server that accepts nothing serves nothing");
        self.max_connections = max;
        self
    }

    /// Sets (or clears) the per-connection idle read timeout.
    pub fn read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }
}

/// A blocking thread-per-connection TCP front-end over a [`Gateway`].
///
/// Binding spawns an accept-loop thread; each accepted connection gets its
/// own thread that handshakes ([`Hello`] / [`HelloAck`]) and then serves
/// the request/response loop, subject to the [`NetServerConfig`] limits.
/// [`NetServer::shutdown`] (or drop) stops accepting, shuts every live
/// connection's socket down and joins all threads.
pub struct NetServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<ConnHandle>>>,
}

struct ConnHandle {
    stream: TcpStream,
    thread: JoinHandle<()>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port, then
    /// [`NetServer::local_addr`]) and starts serving `gateway` with the
    /// default connection limits.
    pub fn bind(addr: impl ToSocketAddrs, gateway: Arc<Gateway>) -> io::Result<NetServer> {
        Self::bind_with(addr, gateway, NetServerConfig::default())
    }

    /// [`NetServer::bind`] with explicit connection limits.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        gateway: Arc<Gateway>,
        config: NetServerConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<ConnHandle>>> = Arc::default();
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("cca-net-accept".into())
                .spawn(move || accept_loop(listener, gateway, config, stop, conns))
                .expect("spawn accept thread")
        };
        Ok(NetServer {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
            conns,
        })
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, disconnects every live connection and joins all
    /// server threads. In-flight requests on those connections finish or
    /// fail their reply write; queued work in the gateway's instance is
    /// unaffected (the instance outlives its front-ends).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop is blocked in `accept`; a throwaway connection
        // wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().expect("conns lock"));
        for conn in conns {
            let _ = conn.stream.shutdown(Shutdown::Both);
            let _ = conn.thread.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    gateway: Arc<Gateway>,
    config: NetServerConfig,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<ConnHandle>>>,
) {
    let live = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Admission check before spawning anything: a refused connection
        // gets a typed goodbye, not a thread.
        if live.load(Ordering::SeqCst) >= config.max_connections {
            let max = gateway.max_frame();
            let mut writer = BufWriter::new(&stream);
            let _ = codec::send_message(
                &mut writer,
                &fault(
                    ErrorCode::ConnectionLimit,
                    format!(
                        "server is at its {}-connection limit",
                        config.max_connections
                    ),
                ),
                max,
            );
            drop(writer);
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        // Keep a raw clone so shutdown can sever the socket under the
        // connection thread and join it.
        let Ok(raw) = stream.try_clone() else {
            continue;
        };
        live.fetch_add(1, Ordering::SeqCst);
        let gateway = Arc::clone(&gateway);
        let live_in_thread = Arc::clone(&live);
        let thread = std::thread::Builder::new()
            .name("cca-net-conn".into())
            .spawn(move || {
                serve_connection(gateway, stream, config.read_timeout);
                live_in_thread.fetch_sub(1, Ordering::SeqCst);
            })
            .expect("spawn connection thread");
        let mut conns = conns.lock().expect("conns lock");
        // Reap finished handles so a long-lived server's registry doesn't
        // grow with every connection it ever served.
        conns.retain(|c| !c.thread.is_finished());
        conns.push(ConnHandle {
            stream: raw,
            thread,
        });
    }
}

/// One connection's lifetime: handshake, then frames until the peer
/// closes, the stream dies, framing desynchronises, or the idle timeout
/// fires.
fn serve_connection(gateway: Arc<Gateway>, stream: TcpStream, read_timeout: Option<Duration>) {
    // A blocking read observes the timeout as `WouldBlock`/`TimedOut`;
    // the connection loop turns that into a typed `ReadTimeout` fault.
    let _ = stream.set_read_timeout(read_timeout);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    connection_loop(&gateway, &mut reader, &mut writer);
    // The accept loop retains its own clone of this socket (so shutdown
    // can sever blocked connections), which keeps the connection open
    // past this thread's exit. Shut the socket down explicitly or the
    // peer would never observe EOF. Every reply was flushed frame-by-
    // frame, so nothing is lost.
    let _ = writer.get_ref().shutdown(Shutdown::Both);
}

fn connection_loop(
    gateway: &Gateway,
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
) {
    let max = gateway.max_frame();

    // Handshake: the first frame must be a `Hello` naming the tenant.
    let hello: Hello = match codec::recv_message(reader, max) {
        Ok(Some(hello)) => hello,
        Ok(None) => return,
        Err(e) => {
            let _ = send_wire_fault(writer, &e, max);
            return;
        }
    };
    if hello.version != PROTOCOL_VERSION {
        let _ = codec::send_message(
            writer,
            &fault(
                ErrorCode::VersionMismatch,
                format!(
                    "client speaks protocol v{}, server speaks v{PROTOCOL_VERSION}",
                    hello.version
                ),
            ),
            max,
        );
        return;
    }
    if codec::send_message(
        writer,
        &NetResponse::Hello(HelloAck {
            version: PROTOCOL_VERSION,
        }),
        max,
    )
    .is_err()
    {
        return;
    }

    loop {
        let request: NetRequest = match codec::recv_message(reader, max) {
            Ok(Some(request)) => request,
            // Clean close at a frame boundary: the client is done.
            Ok(None) => return,
            // The frame arrived whole but didn't decode — framing is still
            // in sync, so answer with a typed error and keep serving.
            Err(WireError::Malformed(msg)) => {
                if codec::send_message(writer, &fault(ErrorCode::BadRequest, msg), max).is_err() {
                    return;
                }
                continue;
            }
            // Oversized length prefix, truncation, transport death: the
            // byte stream cannot be trusted any further.
            Err(e) => {
                let _ = send_wire_fault(writer, &e, max);
                return;
            }
        };
        let response = gateway.handle(hello.tenant, request);
        if codec::send_message(writer, &response, max).is_err() {
            return;
        }
    }
}

/// Best-effort typed goodbye for codec-level failures before closing.
/// An expired idle read timeout surfaces here as a transport error and
/// gets its own [`ErrorCode::ReadTimeout`]; everything else is a
/// [`ErrorCode::BadRequest`].
fn send_wire_fault(
    writer: &mut impl io::Write,
    error: &WireError,
    max: usize,
) -> Result<(), WireError> {
    let response = if is_read_timeout(error) {
        fault(
            ErrorCode::ReadTimeout,
            "connection idle past the server's read timeout",
        )
    } else {
        fault(ErrorCode::BadRequest, error.to_string())
    };
    codec::send_message(writer, &response, max)
}

/// Whether a codec failure is an expired `set_read_timeout` deadline.
/// Platforms disagree on the error kind (`WouldBlock` on unix,
/// `TimedOut` on windows), so accept both.
fn is_read_timeout(error: &WireError) -> bool {
    match error {
        WireError::Io(e) => matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        ),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_core::SolverConfig;
    use cca_geo::Point;

    fn tiny_gateway() -> Gateway {
        Gateway::builder()
            .serve_config(ServeConfig::default().workers(1).queue_capacity(4))
            .start()
    }

    #[test]
    fn gateway_solves_an_inline_problem_without_any_transport() {
        let gateway = tiny_gateway();
        let request = NetRequest::Solve(SolveRequest::new(
            SolverConfig::new("sspa"),
            ProblemSpec::Inline {
                providers: vec![(Point::new(0.0, 0.0), 2), (Point::new(10.0, 0.0), 2)],
                customers: vec![
                    Point::new(1.0, 0.0),
                    Point::new(2.0, 0.0),
                    Point::new(9.0, 0.0),
                ],
            },
        ));
        match gateway.handle(TenantId(1), request) {
            NetResponse::Solved(reply) => {
                assert_eq!(reply.matching.size(), 3, "all customers assigned");
            }
            other => panic!("expected a solve reply, got {other:?}"),
        }
    }

    #[test]
    fn unknown_solver_and_dataset_fail_without_burning_quota() {
        let gateway = tiny_gateway();
        let inline = ProblemSpec::Inline {
            providers: vec![(Point::new(0.0, 0.0), 1)],
            customers: vec![Point::new(1.0, 0.0)],
        };
        let r = gateway.handle(
            TenantId(1),
            NetRequest::Solve(SolveRequest::new(
                SolverConfig::new("no-such-solver"),
                inline,
            )),
        );
        match r {
            NetResponse::Error(fault) => assert_eq!(fault.code, ErrorCode::UnknownSolver),
            other => panic!("expected unknown-solver, got {other:?}"),
        }
        let r = gateway.handle(
            TenantId(1),
            NetRequest::Solve(SolveRequest::new(
                SolverConfig::new("sspa"),
                ProblemSpec::Dataset("not-loaded".into()),
            )),
        );
        match r {
            NetResponse::Error(fault) => assert_eq!(fault.code, ErrorCode::UnknownDataset),
            other => panic!("expected unknown-dataset, got {other:?}"),
        }
        // Neither request should have registered with the scheduler.
        assert!(gateway.instance().tenant_stats().is_empty());
    }

    #[test]
    fn connections_past_the_cap_get_a_typed_rejection() {
        let gateway = Arc::new(tiny_gateway());
        let server = NetServer::bind_with(
            "127.0.0.1:0",
            Arc::clone(&gateway),
            NetServerConfig::default().max_connections(1),
        )
        .unwrap();
        let addr = server.local_addr();
        let max = gateway.max_frame();

        // The first connection takes the only slot (and works normally).
        let mut first = crate::NetClient::connect(addr, TenantId(1)).unwrap();
        first.ping().unwrap();

        // The second is refused before any handshake: the server sends a
        // `ConnectionLimit` fault unprompted and closes.
        let mut second = TcpStream::connect(addr).unwrap();
        let reply: NetResponse = codec::recv_message(&mut second, max).unwrap().unwrap();
        match reply {
            NetResponse::Error(fault) => assert_eq!(fault.code, ErrorCode::ConnectionLimit),
            other => panic!("expected connection-limit fault, got {other:?}"),
        }
        assert!(
            codec::recv_message::<NetResponse>(&mut second, max)
                .unwrap()
                .is_none(),
            "refused connection is closed"
        );

        // Releasing the slot re-admits new connections (the live count
        // decrements when the connection thread exits).
        drop(first);
        let mut readmitted = None;
        for _ in 0..2_000 {
            match crate::NetClient::connect(addr, TenantId(1)) {
                Ok(client) => {
                    readmitted = Some(client);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(1)),
            }
        }
        readmitted
            .expect("slot frees after disconnect")
            .ping()
            .unwrap();

        server.shutdown();
    }

    #[test]
    fn idle_connections_time_out_with_a_typed_fault() {
        let gateway = Arc::new(tiny_gateway());
        let server = NetServer::bind_with(
            "127.0.0.1:0",
            Arc::clone(&gateway),
            NetServerConfig::default().read_timeout(Some(Duration::from_millis(50))),
        )
        .unwrap();
        let addr = server.local_addr();
        let max = gateway.max_frame();

        // A connection that never sends its Hello trips the idle timeout:
        // the server answers with a `ReadTimeout` fault and closes.
        let mut silent = TcpStream::connect(addr).unwrap();
        let reply: NetResponse = codec::recv_message(&mut silent, max).unwrap().unwrap();
        match reply {
            NetResponse::Error(fault) => assert_eq!(fault.code, ErrorCode::ReadTimeout),
            other => panic!("expected read-timeout fault, got {other:?}"),
        }
        assert!(
            codec::recv_message::<NetResponse>(&mut silent, max)
                .unwrap()
                .is_none(),
            "timed-out connection is closed"
        );

        // A connection that keeps talking inside the window is unaffected.
        let mut chatty = crate::NetClient::connect(addr, TenantId(1)).unwrap();
        for _ in 0..3 {
            std::thread::sleep(Duration::from_millis(20));
            chatty.ping().unwrap();
        }

        server.shutdown();
    }

    #[test]
    fn ping_and_stats_answer_without_solving() {
        let gateway = tiny_gateway();
        assert!(matches!(
            gateway.handle(TenantId(1), NetRequest::Ping),
            NetResponse::Pong
        ));
        match gateway.handle(TenantId(1), NetRequest::Stats) {
            NetResponse::Stats(reply) => assert!(reply.tenants.is_empty()),
            other => panic!("expected stats, got {other:?}"),
        }
    }
}
