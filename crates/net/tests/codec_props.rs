//! Property tests for the frame codec and the protocol encodings:
//! arbitrary payloads and messages roundtrip; truncated, oversized and
//! garbage inputs produce typed [`WireError`]s — never a panic, never a
//! silent wrong answer.

use std::io::Cursor;
use std::time::Duration;

use cca_core::SolverConfig;
use cca_geo::Point;
use cca_net::codec::{self, WireError};
use cca_net::{NetRequest, ProblemSpec, SolveRequest};
use cca_storage::Priority;
use proptest::collection;
use proptest::prelude::*;

const MAX: usize = 64 * 1024;

fn arb_point() -> impl Strategy<Value = Point> {
    (-1.0e6f64..1.0e6, -1.0e6f64..1.0e6).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_problem() -> impl Strategy<Value = ProblemSpec> {
    prop_oneof![
        (0usize..5).prop_map(|i| ProblemSpec::Dataset(format!("dataset-{i}"))),
        (
            collection::vec((arb_point(), 1u32..50), 1..6),
            collection::vec(arb_point(), 0..8),
        )
            .prop_map(|(providers, customers)| ProblemSpec::Inline {
                providers,
                customers,
            }),
    ]
}

fn arb_solve() -> impl Strategy<Value = SolveRequest> {
    let names = ["ida", "sspa", "ria", "nia", "ca"];
    let priority = prop_oneof![
        Just(Priority::Low),
        Just(Priority::Normal),
        Just(Priority::High),
        Just(Priority::Critical),
    ];
    (
        0usize..names.len(),
        arb_problem(),
        priority,
        prop_oneof![Just(None), (1u64..60_000).prop_map(Some)],
        prop_oneof![Just(None), (1u64..1_000_000).prop_map(Some)],
    )
        .prop_map(move |(name, problem, priority, deadline_ms, io_budget)| {
            let mut req =
                SolveRequest::new(SolverConfig::new(names[name]), problem).priority(priority);
            if let Some(ms) = deadline_ms {
                req = req.deadline(Duration::from_millis(ms));
            }
            if let Some(faults) = io_budget {
                req = req.io_budget(faults);
            }
            req
        })
}

fn arb_request() -> impl Strategy<Value = NetRequest> {
    prop_oneof![
        arb_solve().prop_map(NetRequest::Solve),
        Just(NetRequest::Stats),
        Just(NetRequest::Ping),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_payloads_roundtrip_through_frames(
        payloads in collection::vec(collection::vec(any::<u8>(), 0..512), 1..8),
    ) {
        let mut wire = Vec::new();
        for payload in &payloads {
            codec::write_frame(&mut wire, payload, MAX).unwrap();
        }
        let mut reader = Cursor::new(wire);
        for payload in &payloads {
            let got = codec::read_frame(&mut reader, MAX).unwrap().unwrap();
            prop_assert_eq!(&got, payload);
        }
        prop_assert!(codec::read_frame(&mut reader, MAX).unwrap().is_none());
    }

    #[test]
    fn any_truncation_is_a_typed_error_never_a_panic(
        payload in collection::vec(any::<u8>(), 0..256),
        cut_seed in any::<u64>(),
    ) {
        let mut wire = Vec::new();
        codec::write_frame(&mut wire, &payload, MAX).unwrap();
        // Cut strictly inside the frame (cut == len would be a clean EOF
        // *after* it, cut == 0 a clean EOF *before* it).
        let cut = 1 + (cut_seed as usize) % (wire.len() - 1);
        let mut reader = Cursor::new(wire[..cut].to_vec());
        prop_assert!(matches!(
            codec::read_frame(&mut reader, MAX),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn garbage_bytes_never_panic_the_frame_reader(
        garbage in collection::vec(any::<u8>(), 0..64),
    ) {
        // Whatever the bytes, the reader returns a frame, a clean EOF or
        // a typed error — the match is exhaustive on purpose.
        let mut reader = Cursor::new(garbage);
        match codec::read_frame(&mut reader, 16) {
            Ok(Some(frame)) => assert!(frame.len() <= 16),
            Ok(None) => {}
            Err(WireError::Truncated)
            | Err(WireError::FrameTooLarge { .. })
            | Err(WireError::Io(_))
            | Err(WireError::Malformed(_)) => {}
        }
    }

    #[test]
    fn garbage_bytes_never_panic_the_message_decoder(
        garbage in collection::vec(any::<u8>(), 0..128),
    ) {
        if let Err(e) = codec::decode::<NetRequest>(&garbage) {
            prop_assert!(matches!(e, WireError::Malformed(_)));
        }
    }

    #[test]
    fn oversized_declared_lengths_are_rejected_without_allocating(
        declared in (17u32..u32::MAX),
        trailing in collection::vec(any::<u8>(), 0..16),
    ) {
        let mut wire = declared.to_be_bytes().to_vec();
        wire.extend_from_slice(&trailing);
        let mut reader = Cursor::new(wire);
        prop_assert!(matches!(
            codec::read_frame(&mut reader, 16),
            Err(WireError::FrameTooLarge { max: 16, .. })
        ));
    }

    #[test]
    fn protocol_messages_roundtrip_through_the_codec(request in arb_request()) {
        let bytes = codec::encode(&request);
        prop_assert!(bytes.len() <= MAX, "requests stay well under the bound");
        let back: NetRequest = codec::decode(&bytes).unwrap();
        // The shim's map model is ordered, so byte-equal re-encoding means
        // the decoded message is the same message.
        prop_assert_eq!(codec::encode(&back), bytes);
    }
}
