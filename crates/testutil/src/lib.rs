//! Shared test scaffolding for the CCA workspace.
//!
//! The exact-algorithm tests, approximation tests and adversarial suites
//! all need the same four ingredients: a seeded random instance, an R-tree
//! over its customers, the independent flow-solver optimum, and `γ`. They
//! used to be copy-pasted per module; this crate is the single home.

use cca_flow::sspa::{solve_complete_bipartite, unit_customers, FlowProvider};
use cca_geo::Point;
use cca_rtree::RTree;
use cca_storage::PageStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniformly random points in the `[0, 1000)²` world.
pub fn random_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)))
        .collect()
}

/// A seeded random instance: `nq` providers with capacities in
/// `1..=max_cap`, `np` unit customers, all uniform in the world square.
pub fn random_instance(
    seed: u64,
    nq: usize,
    np: usize,
    max_cap: u32,
) -> (Vec<(Point, u32)>, Vec<Point>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let providers: Vec<(Point, u32)> = (0..nq)
        .map(|_| {
            (
                Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)),
                rng.random_range(1..=max_cap),
            )
        })
        .collect();
    let customers: Vec<Point> = (0..np)
        .map(|_| Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)))
        .collect();
    (providers, customers)
}

/// The optimal assignment cost per the independent complete-bipartite
/// flow solver (the oracle every algorithm is checked against).
pub fn optimal_cost(providers: &[(Point, u32)], customers: &[Point]) -> f64 {
    let fps: Vec<FlowProvider> = providers
        .iter()
        .map(|&(pos, cap)| FlowProvider { pos, cap })
        .collect();
    let (asg, _) = solve_complete_bipartite(&fps, &unit_customers(customers));
    asg.cost
}

/// Bulk-loads customers into an R-tree with the test-default storage
/// settings (1 KB pages, generous buffer).
pub fn build_tree(customers: &[Point]) -> RTree {
    let items: Vec<(Point, u64)> = customers
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as u64))
        .collect();
    let tree = RTree::bulk_load(PageStore::with_config(1024, 4096), &items);
    tree.finish_build(1.0);
    tree
}

/// `γ = min(|P|, Σ q.k)` — the size every maximal matching must reach.
pub fn gamma(providers: &[(Point, u32)], customers: &[Point]) -> u64 {
    let cap: u64 = providers.iter().map(|&(_, k)| u64::from(k)).sum();
    cap.min(customers.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_shapes_and_determinism() {
        let (q, p) = random_instance(9, 4, 30, 5);
        assert_eq!(q.len(), 4);
        assert_eq!(p.len(), 30);
        assert!(q.iter().all(|&(_, k)| (1..=5).contains(&k)));
        assert_eq!(random_instance(9, 4, 30, 5), (q.clone(), p.clone()));
        assert_eq!(
            gamma(&q, &p),
            q.iter().map(|&(_, k)| u64::from(k)).sum::<u64>().min(30)
        );
        let tree = build_tree(&p);
        assert_eq!(tree.len(), 30);
        assert!(optimal_cost(&q, &p) > 0.0);
    }
}
